//! Writing a *new* PEI workload against the public API — the paper
//! positions the architecture as a substrate for "(possibly) different
//! types of PEIs" (§5); this example builds sparse matrix-vector multiply
//! (SpMV, y += A·x) from scratch using `pim.fadd`, without touching the
//! built-in workload crate internals.
//!
//! Each nonzero A[r][c] contributes `A[r][c] * x[c]` to `y[r]`; with rows
//! distributed across threads, the accumulations into `y` are exactly the
//! kind of fine-grained atomic float adds the PEI abstraction targets.
//!
//! ```text
//! cargo run --release --example custom_workload_spmv
//! ```

use pei::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let rows = 20_000;
    let cols = 20_000;
    let nnz_per_row = 12;
    let threads = 4;
    let mut rng = StdRng::seed_from_u64(123);

    // Sparse matrix in COO form, plus a dense vector x.
    let x: Vec<f64> = (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut coo: Vec<(u32, u32, f64)> = Vec::new();
    for r in 0..rows as u32 {
        for _ in 0..nnz_per_row {
            coo.push((r, rng.gen_range(0..cols as u32), rng.gen_range(-1.0..1.0)));
        }
    }

    // Simulated memory: y lives there (it is the PEI target); the matrix
    // and x are streamed (timing-only loads).
    let mut store = BackingStore::new();
    let y_base = store.alloc(rows as u64 * 8, 64);
    let a_base = store.alloc(coo.len() as u64 * 16, 64); // (col, value) pairs
    let y_addr = |r: u32| y_base.offset(r as u64 * 8);

    // Reference result.
    let mut y_ref = vec![0f64; rows];
    for &(r, c, v) in &coo {
        y_ref[r as usize] += v * x[c as usize];
    }

    // Trace: each thread walks a slice of the nonzeros; per nonzero it
    // loads the matrix entry, computes the product, and issues an atomic
    // float-add PEI into y[r].
    let per = coo.len().div_ceil(threads);
    let phase: Vec<Vec<Op>> = coo
        .chunks(per)
        .map(|slice| {
            let mut ops = Vec::new();
            for (i, &(r, c, v)) in slice.iter().enumerate() {
                if i % 4 == 0 {
                    ops.push(Op::load(a_base.offset(i as u64 * 16)));
                }
                ops.push(Op::Compute(3)); // product + address generation
                ops.push(Op::pei(
                    PimOpKind::AddF64,
                    y_addr(r),
                    OperandValue::F64(v * x[c as usize]),
                ));
            }
            ops.push(Op::Pfence);
            ops
        })
        .collect();

    let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
    let mut sys = System::new(cfg, store);
    sys.add_workload(
        Box::new(VecPhases::new(threads, vec![phase]).named("SpMV")),
        (0..threads).collect(),
    );
    let r = sys.run(u64::MAX);

    // Validate: simulated y equals the reference (PEI atomicity at work).
    let max_err = (0..rows as u32)
        .map(|row| (sys.store().read_f64(y_addr(row)) - y_ref[row as usize]).abs())
        .fold(0f64, f64::max)
        / y_ref.iter().map(|v| v.abs()).fold(1e-12, f64::max);

    println!(
        "SpMV: {} nonzeros in {} cycles (IPC {:.2}), {:.1}% of adds in memory",
        coo.len(),
        r.cycles,
        r.ipc(),
        100.0 * r.pim_fraction
    );
    println!("max relative error vs reference: {max_err:.2e}");
    assert!(max_err < 1e-12, "atomic float adds must be exact");
    println!("validation ✓ — a brand-new workload, no simulator changes needed");
}
