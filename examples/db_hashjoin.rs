//! In-memory database hash join accelerated with the `pim.hprobe`
//! operation: bucket probes execute inside the memory cube, returning the
//! match flag and next-bucket pointer so the host only chases pointers
//! through 9-byte results instead of pulling 64-byte buckets across the
//! off-chip link.
//!
//! ```text
//! cargo run --release --example db_hashjoin
//! ```

use pei::prelude::*;
use pei::workloads::analytics::HashJoin;

fn main() {
    let params = WorkloadParams {
        pei_budget: 30_000,
        ..WorkloadParams::scaled(4)
    };
    // A build relation far larger than the L3: probe-side locality is low
    // and the PIM operation pays off.
    let table_bytes = 8 * 1024 * 1024;

    println!(
        "hash join: {} MB table, probing under three policies\n",
        table_bytes >> 20
    );
    println!(
        "{:<18} {:>12} {:>10} {:>14}",
        "policy", "cycles", "PIM %", "off-chip MB"
    );
    let mut host_cycles = 0;
    for policy in [
        DispatchPolicy::HostOnly,
        DispatchPolicy::PimOnly,
        DispatchPolicy::LocalityAware,
    ] {
        let (hj, store) = HashJoin::new(table_bytes, &params);
        let (ref_matches, ref_hops) = hj.reference_counts();
        let cfg = MachineConfig::scaled(policy);
        let mut sys = System::new(cfg, store);
        sys.add_workload(Box::new(hj), (0..cfg.cores).collect());
        let r = sys.run(u64::MAX);
        println!(
            "{:<18} {:>12} {:>9.1}% {:>14.2}",
            policy.to_string(),
            r.cycles,
            100.0 * r.pim_fraction,
            r.offchip_bytes as f64 / 1e6,
        );
        if policy == DispatchPolicy::HostOnly {
            host_cycles = r.cycles;
            println!("  (probe stream: {ref_hops} bucket probes, {ref_matches} matches)");
        }
        if policy == DispatchPolicy::LocalityAware && host_cycles > 0 {
            println!(
                "\nLocality-Aware speedup over Host-Only: {:.2}x",
                host_cycles as f64 / r.cycles as f64
            );
        }
    }
}
