//! Quickstart: run PageRank with PIM-enabled instructions on the scaled
//! machine and compare the three execution policies of the paper.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pei::prelude::*;

fn main() {
    // Build the workload once per policy (each run consumes its trace).
    let params = WorkloadParams::scaled(4);

    println!("PageRank (medium input) under the paper's three policies:\n");
    println!(
        "{:<18} {:>12} {:>8} {:>10} {:>12}",
        "policy", "cycles", "IPC", "PIM %", "off-chip MB"
    );

    let mut baseline = None;
    for policy in [
        DispatchPolicy::HostOnly,
        DispatchPolicy::PimOnly,
        DispatchPolicy::LocalityAware,
    ] {
        let (store, trace) = Workload::Pr.build(InputSize::Medium, &params);
        let cfg = MachineConfig::scaled(policy);
        let mut sys = System::new(cfg, store);
        sys.add_workload(trace, (0..cfg.cores).collect());
        let r = sys.run(u64::MAX);

        println!(
            "{:<18} {:>12} {:>8.2} {:>9.1}% {:>12.2}",
            policy.to_string(),
            r.cycles,
            r.ipc(),
            100.0 * r.pim_fraction,
            r.offchip_bytes as f64 / 1e6,
        );
        let base = *baseline.get_or_insert(r.cycles);
        if policy == DispatchPolicy::LocalityAware {
            println!(
                "\nLocality-Aware speedup over Host-Only: {:.2}x",
                base as f64 / r.cycles as f64
            );
        }
    }
}
