//! Graph analytics with PEIs: BFS levels computed *in memory* and
//! validated bit-for-bit against a sequential reference — demonstrating
//! that PIM-enabled instructions preserve the sequential programming
//! model (the paper's central claim).
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use pei::prelude::*;
use pei::workloads::graph::Graph;
use pei::workloads::graph_kernels::FrontierMin;

fn main() {
    let n = 4_000;
    let params = WorkloadParams {
        pei_budget: u64::MAX, // run to completion so levels are final
        ..WorkloadParams::scaled(4)
    };

    // Build BFS over a power-law graph; the generator owns the functional
    // state, the returned store becomes the simulated machine's memory.
    let g = Graph::power_law(n, 8, 42);
    println!("graph: {} vertices, {} edges (power-law)", g.n, g.edges());
    let (bfs, store) = FrontierMin::bfs(g, &params, 0);
    let level_addrs: Vec<Addr> = (0..n).map(|v| bfs.dist_addr(v)).collect();

    let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
    let mut sys = System::new(cfg, store);
    sys.add_workload(Box::new(bfs), (0..cfg.cores).collect());
    let r = sys.run(u64::MAX);

    // Independent sequential BFS for validation.
    let g = Graph::power_law(n, 8, 42);
    let mut reference = vec![u64::MAX; n];
    reference[0] = 0;
    let mut q = std::collections::VecDeque::from([0usize]);
    while let Some(v) = q.pop_front() {
        for &w in g.succ(v) {
            if reference[w as usize] == u64::MAX {
                reference[w as usize] = reference[v] + 1;
                q.push_back(w as usize);
            }
        }
    }

    let mut mismatches = 0;
    for v in 0..n {
        if sys.store().read_u64(level_addrs[v]) != reference[v] {
            mismatches += 1;
        }
    }
    let reached = reference.iter().filter(|&&d| d != u64::MAX).count();

    println!(
        "BFS finished in {} cycles ({} PEIs issued)",
        r.cycles, r.peis
    );
    println!(
        "levels executed by PEIs: {:.1}% in memory, {:.1}% on host PCUs",
        100.0 * r.pim_fraction,
        100.0 * (1.0 - r.pim_fraction)
    );
    println!("reachable vertices: {reached}/{n}");
    match mismatches {
        0 => println!("validation: all simulated levels match the sequential reference ✓"),
        m => println!("validation FAILED: {m} mismatching levels"),
    }
    assert_eq!(mismatches, 0);
}
