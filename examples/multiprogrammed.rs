//! Multiprogramming (§7.3): two applications with very different locality
//! behaviour co-scheduled on one machine, each on half the cores. The
//! PMU's locality monitor sees both applications' blocks in one shared
//! structure and steers each PEI individually — no software involvement.
//!
//! ```text
//! cargo run --release --example multiprogrammed
//! ```

use pei::prelude::*;

fn run_pair(policy: DispatchPolicy) -> (f64, f64) {
    let cfg = MachineConfig::scaled(policy);
    let half = cfg.cores / 2;
    let params_a = WorkloadParams {
        threads: half,
        pei_budget: 10_000,
        ..WorkloadParams::scaled(half)
    };
    let params_b = WorkloadParams {
        heap_base: 0x40_0000_0000, // disjoint heap for the co-runner
        ..params_a
    };

    // A cache-friendly small PageRank next to a memory-hungry large ATF.
    let (mut store, pr) = Workload::Pr.build(InputSize::Small, &params_a);
    let (store_b, atf) = Workload::Atf.build(InputSize::Large, &params_b);
    store.merge_from(&store_b);

    let mut sys = System::new(cfg, store);
    sys.add_workload(pr, (0..half).collect());
    sys.add_workload(atf, (half..cfg.cores).collect());
    let r = sys.run(u64::MAX);
    (r.ipc(), r.pim_fraction)
}

fn main() {
    println!("PR-small (cores 0-1) + ATF-large (cores 2-3), sum-of-IPCs:\n");
    println!("{:<18} {:>10} {:>10}", "policy", "sum-IPC", "PIM %");
    let mut base = None;
    for policy in [
        DispatchPolicy::HostOnly,
        DispatchPolicy::PimOnly,
        DispatchPolicy::LocalityAware,
    ] {
        let (ipc, pim) = run_pair(policy);
        println!(
            "{:<18} {:>10.3} {:>9.1}%",
            policy.to_string(),
            ipc,
            100.0 * pim
        );
        let b = *base.get_or_insert(ipc);
        if policy == DispatchPolicy::LocalityAware {
            println!(
                "\nLocality-Aware throughput vs Host-Only: {:.2}x — the monitor sends\n\
                 the small app's hot PEIs to host PCUs and the large app's cold PEIs\n\
                 to memory, per block, within one run.",
                ipc / b
            );
        }
    }
}
