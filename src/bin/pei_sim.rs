//! `pei-sim` — command-line front-end to the simulator: run any of the
//! paper's ten workloads on any machine configuration and print the
//! results (optionally the full per-component statistics).
//!
//! ```text
//! cargo run --release --bin pei-sim -- --workload pr --size large --policy la
//! cargo run --release --bin pei-sim -- -w hj -s medium -p pim --stats
//! cargo run --release --bin pei-sim -- -w bfs -s small -p la --paper --budget 100000
//! cargo run --release --bin pei-sim -- -w sc -s large -p bd --vm
//! ```

use pei::cpu::trace_io::RecordedTrace;
use pei::cpu::{PageMap, TlbConfig};
use pei::prelude::*;

struct Args {
    workload: Workload,
    size: InputSize,
    policy: DispatchPolicy,
    paper: bool,
    ideal_host: bool,
    budget: u64,
    seed: u64,
    stats: bool,
    vm: bool,
    record: Option<String>,
    replay: Option<String>,
}

const USAGE: &str = "\
pei-sim — PIM-enabled-instructions simulator (ISCA 2015 reproduction)

USAGE:
  pei-sim --workload <W> [--size S] [--policy P] [options]

OPTIONS:
  -w, --workload  atf|bfs|pr|sp|wcc|hj|hg|rp|sc|svm     (required)
  -s, --size      small|medium|large                    [default: medium]
  -p, --policy    host|pim|la|bd                        [default: la]
      --ideal-host  use the Ideal-Host reference configuration
      --paper     paper-scale machine (16 cores, 16 MB L3, 8 HMCs)
      --budget N  PEI simulation window                 [default: 40000]
      --seed N    RNG seed                              [default: 0x5eed]
      --vm        virtual memory: per-core TLBs + shuffled page map
      --stats     print the full statistics report
      --record F  save the generated trace + initial memory to file F
                  (then run it)
      --replay F  run a trace previously saved with --record (workload /
                  size / budget arguments are ignored)
  -h, --help      this text
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: Workload::Pr,
        size: InputSize::Medium,
        policy: DispatchPolicy::LocalityAware,
        paper: false,
        ideal_host: false,
        budget: 40_000,
        seed: 0x5eed,
        stats: false,
        vm: false,
        record: None,
        replay: None,
    };
    let mut saw_workload = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "-w" | "--workload" => {
                args.workload = match value("--workload")?.to_lowercase().as_str() {
                    "atf" => Workload::Atf,
                    "bfs" => Workload::Bfs,
                    "pr" => Workload::Pr,
                    "sp" => Workload::Sp,
                    "wcc" => Workload::Wcc,
                    "hj" => Workload::Hj,
                    "hg" => Workload::Hg,
                    "rp" => Workload::Rp,
                    "sc" => Workload::Sc,
                    "svm" => Workload::Svm,
                    other => return Err(format!("unknown workload `{other}`")),
                };
                saw_workload = true;
            }
            "-s" | "--size" => {
                args.size = match value("--size")?.to_lowercase().as_str() {
                    "small" | "s" => InputSize::Small,
                    "medium" | "m" => InputSize::Medium,
                    "large" | "l" => InputSize::Large,
                    other => return Err(format!("unknown size `{other}`")),
                };
            }
            "-p" | "--policy" => {
                args.policy = match value("--policy")?.to_lowercase().as_str() {
                    "host" => DispatchPolicy::HostOnly,
                    "pim" => DispatchPolicy::PimOnly,
                    "la" => DispatchPolicy::LocalityAware,
                    "bd" => DispatchPolicy::LocalityAwareBalanced,
                    other => return Err(format!("unknown policy `{other}`")),
                };
            }
            "--ideal-host" => args.ideal_host = true,
            "--paper" => args.paper = true,
            "--budget" => args.budget = value("--budget")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--vm" => args.vm = true,
            "--stats" => args.stats = true,
            "--record" => args.record = Some(value("--record")?),
            "--replay" => args.replay = Some(value("--replay")?),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !saw_workload && args.replay.is_none() {
        return Err("--workload is required (unless --replay)".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    let mut cfg = if args.paper {
        MachineConfig::paper(args.policy)
    } else {
        MachineConfig::scaled(args.policy)
    };
    if args.ideal_host {
        cfg = cfg.ideal_host();
    }
    if args.vm {
        cfg.tlb = Some(TlbConfig::typical());
        cfg.page_map = PageMap::Shuffled { seed: args.seed };
    }

    let params = WorkloadParams {
        threads: cfg.cores,
        l3_bytes: cfg.mem.l3.capacity,
        pei_budget: args.budget,
        phase_chunk: 8_192,
        seed: args.seed,
        heap_base: WorkloadParams::DEFAULT_HEAP_BASE,
    };

    let (store, trace): (BackingStore, Box<dyn PhasedTrace>) = if let Some(path) = &args.replay {
        eprintln!("replaying {path} under {}...", cfg.policy);
        let mut f =
            std::io::BufReader::new(std::fs::File::open(path).expect("cannot open replay file"));
        let store = BackingStore::load(&mut f).expect("corrupt store section");
        let trace = RecordedTrace::load(&mut f).expect("corrupt trace section");
        (store, Box::new(trace))
    } else {
        eprintln!(
            "running {} ({}) under {} on the {} machine (budget {} PEIs)...",
            args.workload,
            args.size,
            cfg.policy,
            if args.paper { "paper-scale" } else { "scaled" },
            args.budget
        );
        let (store, mut trace) = args.workload.build(args.size, &params);
        if let Some(path) = &args.record {
            let rec = RecordedTrace::record(trace.as_mut());
            let mut f = std::io::BufWriter::new(
                std::fs::File::create(path).expect("cannot create record file"),
            );
            store.save(&mut f).expect("store write failed");
            rec.save(&mut f).expect("trace write failed");
            eprintln!(
                "recorded {} ops across {} phases to {path}",
                rec.total_ops(),
                rec.phases_left()
            );
            (store, Box::new(rec))
        } else {
            (store, trace)
        }
    };
    let mut sys = System::new(cfg, store);
    sys.add_workload(trace, (0..cfg.cores).collect());
    let start = std::time::Instant::now();
    let r = sys.run(u64::MAX);
    let wall = start.elapsed();

    println!("cycles           {:>14}", r.cycles);
    println!("instructions     {:>14}", r.instructions);
    println!("ipc              {:>14.3}", r.ipc());
    println!("peis             {:>14}", r.peis);
    println!("pim_fraction     {:>13.1}%", 100.0 * r.pim_fraction);
    println!("offchip_bytes    {:>14}", r.offchip_bytes);
    println!(
        "offchip_flits    {:>14}",
        format!("{}/{}", r.offchip_flits.0, r.offchip_flits.1)
    );
    println!("dram_accesses    {:>14}", r.dram_accesses);
    println!("energy_total_nj  {:>14.0}", r.energy.total());
    println!(
        "sim_speed        {:>11.0} sim-cycles/s",
        r.cycles as f64 / wall.as_secs_f64()
    );
    if args.stats {
        println!("\n--- full statistics ---\n{}", r.stats);
    }
}
