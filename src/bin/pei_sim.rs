//! `pei-sim` — command-line front-end to the simulator: run any of the
//! paper's ten workloads on any machine configuration and print the
//! results (optionally the full per-component statistics).
//!
//! ```text
//! cargo run --release --bin pei-sim -- --workload pr --size large --policy la
//! cargo run --release --bin pei-sim -- -w hj -s medium -p pim --stats
//! cargo run --release --bin pei-sim -- -w bfs -s small -p la --paper --budget 100000
//! cargo run --release --bin pei-sim -- -w sc -s large -p bd --vm
//! ```

use pei::cpu::trace_io::RecordedTrace;
use pei::cpu::{PageMap, TlbConfig};
use pei::prelude::*;

struct Args {
    workload: Workload,
    size: InputSize,
    policy: DispatchPolicy,
    paper: bool,
    ideal_host: bool,
    budget: u64,
    seed: u64,
    stats: bool,
    vm: bool,
    record: Option<String>,
    replay: Option<String>,
    save_at: Option<u64>,
    save_to: String,
    resume: Option<String>,
    submit: Option<String>,
    tenant: Option<String>,
    priority: Option<String>,
    connect_timeout_ms: u64,
    deadline_ms: Option<u64>,
}

const USAGE: &str = "\
pei-sim — PIM-enabled-instructions simulator (ISCA 2015 reproduction)

USAGE:
  pei-sim --workload <W> [--size S] [--policy P] [options]

OPTIONS:
  -w, --workload  atf|bfs|pr|sp|wcc|hj|hg|rp|sc|svm     (required)
  -s, --size      small|medium|large                    [default: medium]
  -p, --policy    host|pim|la|bd                        [default: la]
      --ideal-host  use the Ideal-Host reference configuration
      --paper     paper-scale machine (16 cores, 16 MB L3, 8 HMCs)
      --budget N  PEI simulation window                 [default: 40000]
      --seed N    RNG seed                              [default: 0x5eed]
      --vm        virtual memory: per-core TLBs + shuffled page map
      --stats     print the full statistics report
      --record F  save the generated trace + initial memory to file F
                  (then run it)
      --replay F  run a trace previously saved with --record (workload /
                  size / budget arguments are ignored)
      --save-at N pause at the first event boundary >= cycle N, write a
                  machine snapshot (see --save-to), and exit
      --save-to F snapshot path for --save-at          [default: pei.snap]
      --resume F  restore the snapshot at F and run to completion; the
                  workload is rebuilt from the snapshot's own metadata,
                  so no other arguments are needed
      --submit S  don't simulate locally: submit the run to the pei-serve
                  daemon at S — a Unix socket path, or host:port for a
                  daemon listening with --tcp — and print its result
                  (incompatible with --ideal-host, --vm, --record,
                  --replay, --save-at, and --resume)
      --tenant T  tag the --submit under tenant T's fair-share queue
      --priority P  schedule the --submit in band P (high|normal|low)
      --connect-timeout MS  keep retrying the --submit connection (with
                  exponential backoff) for up to MS milliseconds before
                  giving up — covers the daemon's startup window
                  [default: 10000]
      --deadline-ms N  wall-clock budget for the submitted job in
                  milliseconds; the daemon stops it at the next slice
                  boundary past budget with a `deadline-exceeded` error
  -h, --help      this text
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: Workload::Pr,
        size: InputSize::Medium,
        policy: DispatchPolicy::LocalityAware,
        paper: false,
        ideal_host: false,
        budget: 40_000,
        seed: 0x5eed,
        stats: false,
        vm: false,
        record: None,
        replay: None,
        save_at: None,
        save_to: String::from("pei.snap"),
        resume: None,
        submit: None,
        tenant: None,
        priority: None,
        connect_timeout_ms: 10_000,
        deadline_ms: None,
    };
    let mut saw_workload = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "-w" | "--workload" => {
                args.workload = match value("--workload")?.to_lowercase().as_str() {
                    "atf" => Workload::Atf,
                    "bfs" => Workload::Bfs,
                    "pr" => Workload::Pr,
                    "sp" => Workload::Sp,
                    "wcc" => Workload::Wcc,
                    "hj" => Workload::Hj,
                    "hg" => Workload::Hg,
                    "rp" => Workload::Rp,
                    "sc" => Workload::Sc,
                    "svm" => Workload::Svm,
                    other => return Err(format!("unknown workload `{other}`")),
                };
                saw_workload = true;
            }
            "-s" | "--size" => {
                args.size = match value("--size")?.to_lowercase().as_str() {
                    "small" | "s" => InputSize::Small,
                    "medium" | "m" => InputSize::Medium,
                    "large" | "l" => InputSize::Large,
                    other => return Err(format!("unknown size `{other}`")),
                };
            }
            "-p" | "--policy" => {
                args.policy = match value("--policy")?.to_lowercase().as_str() {
                    "host" => DispatchPolicy::HostOnly,
                    "pim" => DispatchPolicy::PimOnly,
                    "la" => DispatchPolicy::LocalityAware,
                    "bd" => DispatchPolicy::LocalityAwareBalanced,
                    other => return Err(format!("unknown policy `{other}`")),
                };
            }
            "--ideal-host" => args.ideal_host = true,
            "--paper" => args.paper = true,
            "--budget" => args.budget = value("--budget")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--vm" => args.vm = true,
            "--stats" => args.stats = true,
            "--record" => args.record = Some(value("--record")?),
            "--replay" => args.replay = Some(value("--replay")?),
            "--save-at" => {
                args.save_at = Some(value("--save-at")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--save-to" => args.save_to = value("--save-to")?,
            "--resume" => args.resume = Some(value("--resume")?),
            "--submit" => args.submit = Some(value("--submit")?),
            "--tenant" => args.tenant = Some(value("--tenant")?),
            "--priority" => args.priority = Some(value("--priority")?),
            "--connect-timeout" => {
                args.connect_timeout_ms = value("--connect-timeout")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !saw_workload && args.replay.is_none() && args.resume.is_none() {
        return Err("--workload is required (unless --replay or --resume)".into());
    }
    if args.resume.is_some() && (args.save_at.is_some() || args.record.is_some()) {
        return Err("--resume cannot be combined with --save-at or --record".into());
    }
    if args.submit.is_some()
        && (args.ideal_host
            || args.vm
            || args.record.is_some()
            || args.replay.is_some()
            || args.save_at.is_some()
            || args.resume.is_some())
    {
        return Err(
            "--submit sends a recipe the daemon can replay; --ideal-host, --vm, --record, \
             --replay, --save-at, and --resume have no recipe form"
                .into(),
        );
    }
    if args.submit.is_none() && (args.tenant.is_some() || args.priority.is_some()) {
        return Err("--tenant and --priority only make sense with --submit".into());
    }
    if args.submit.is_none() && args.deadline_ms.is_some() {
        return Err("--deadline-ms only makes sense with --submit".into());
    }
    if let Some(p) = &args.priority {
        if pei_types::wire::Priority::parse(p).is_none() {
            return Err(format!("unknown priority `{p}` (high|normal|low)"));
        }
    }
    Ok(args)
}

/// `--submit`: run the recipe on a `pei-serve` daemon instead of
/// simulating locally, printing the result in the exact format a local
/// run prints (the byte-identity contract makes them interchangeable).
/// The address is a Unix socket path, or `host:port` for a daemon
/// listening with `--tcp` (anything containing a `:` and no `/` is
/// treated as TCP).
fn submit_to_daemon(socket: &str, args: &Args) -> ! {
    use pei_types::wire::{Priority, Recipe, Request, Response};
    use std::io::{BufRead, BufReader, Read, Write};

    let mut recipe = Recipe::new(
        &format!("{}", args.workload).to_lowercase(),
        &format!("{}", args.size).to_lowercase(),
        match args.policy {
            DispatchPolicy::HostOnly => "host",
            DispatchPolicy::PimOnly => "pim",
            DispatchPolicy::LocalityAware => "la",
            DispatchPolicy::LocalityAwareBalanced => "lab",
        },
    );
    recipe.paper = args.paper;
    recipe.seed = args.seed;
    recipe.budget = Some(args.budget);

    // `host:port` → TCP, anything else → Unix socket path. Connection
    // refusals are retried with exponential backoff until
    // --connect-timeout lapses: a daemon started a moment ago may not
    // have bound its listener yet, and polling beats guessing a sleep.
    let tcp = socket.contains(':') && !socket.contains('/');
    let connect = || -> std::io::Result<(Box<dyn Read>, Box<dyn Write>)> {
        if tcp {
            let stream = std::net::TcpStream::connect(socket)?;
            stream.set_nodelay(true).ok();
            let w = stream.try_clone()?;
            Ok((Box::new(stream), Box::new(w)))
        } else {
            let stream = std::os::unix::net::UnixStream::connect(socket)?;
            let w = stream.try_clone()?;
            Ok((Box::new(stream), Box::new(w)))
        }
    };
    let give_up_at =
        std::time::Instant::now() + std::time::Duration::from_millis(args.connect_timeout_ms);
    let mut backoff = std::time::Duration::from_millis(10);
    let (reader, mut writer) = loop {
        match connect() {
            Ok(pair) => break pair,
            Err(e) => {
                let now = std::time::Instant::now();
                if now >= give_up_at {
                    eprintln!(
                        "error: cannot reach pei-serve at {}{socket} after {} ms: {e}",
                        if tcp { "tcp " } else { "" },
                        args.connect_timeout_ms
                    );
                    std::process::exit(1);
                }
                std::thread::sleep(backoff.min(give_up_at - now));
                backoff = (backoff * 2).min(std::time::Duration::from_millis(500));
            }
        }
    };
    writeln!(
        writer,
        "{}",
        Request::Submit {
            recipe,
            trace: None,
            tenant: args.tenant.clone(),
            priority: args
                .priority
                .as_deref()
                .and_then(Priority::parse)
                .unwrap_or_default(),
            deadline_ms: args.deadline_ms,
        }
        .encode()
    )
    .expect("submit frame written");
    writer.flush().expect("submit frame flushed");
    let start = std::time::Instant::now();
    for line in BufReader::new(reader).lines() {
        let line = line.unwrap_or_else(|e| {
            eprintln!("error: connection to {socket} broke: {e}");
            std::process::exit(1);
        });
        match Response::decode(&line) {
            Err(e) => {
                eprintln!("error: undecodable frame from the daemon: {e}");
                std::process::exit(1);
            }
            Ok(Response::Ack { job }) => {
                eprintln!("submitted to {socket} as job {job}...");
            }
            Ok(Response::Progress { .. }) => {}
            Ok(Response::Result(r)) => {
                let wall = start.elapsed();
                println!("cycles           {:>14}", r.cycles);
                println!("instructions     {:>14}", r.instructions);
                println!(
                    "ipc              {:>14.3}",
                    r.instructions as f64 / r.cycles.max(1) as f64
                );
                println!("peis             {:>14}", r.peis);
                println!("pim_fraction     {:>13.1}%", 100.0 * r.pim_fraction);
                println!("offchip_bytes    {:>14}", r.offchip_bytes);
                println!(
                    "offchip_flits    {:>14}",
                    format!("{}/{}", r.offchip_flits.0, r.offchip_flits.1)
                );
                println!("dram_accesses    {:>14}", r.dram_accesses);
                println!("energy_total_nj  {:>14.0}", r.energy_total_nj);
                println!(
                    "sim_speed        {:>11.0} sim-cycles/s",
                    r.cycles as f64 / wall.as_secs_f64()
                );
                if args.stats {
                    println!("\n--- full statistics ---\n{}", r.stats);
                }
                std::process::exit(0);
            }
            Ok(Response::Cancelled { job, cycle }) => {
                eprintln!("error: job {job} was cancelled at cycle {cycle}");
                std::process::exit(1);
            }
            Ok(Response::Error {
                kind,
                message,
                violations,
                ..
            }) => {
                eprintln!("error [{kind}]: {message}");
                for v in violations {
                    eprintln!("  violation: {v}");
                }
                std::process::exit(1);
            }
            Ok(Response::Stats(_) | Response::Bye) => {}
        }
    }
    eprintln!("error: {socket} closed the connection without a result");
    std::process::exit(1);
}

/// The snapshot metadata keys `--save-at` writes and `--resume` reads
/// to rebuild the identical workload without re-supplying arguments.
fn snapshot_meta(args: &Args) -> Vec<(String, String)> {
    let mut meta = vec![
        ("tool".into(), "pei-sim".into()),
        (
            "workload".into(),
            format!("{}", args.workload).to_lowercase(),
        ),
        ("size".into(), format!("{}", args.size).to_lowercase()),
        (
            "policy".into(),
            match args.policy {
                DispatchPolicy::HostOnly => "host",
                DispatchPolicy::PimOnly => "pim",
                DispatchPolicy::LocalityAware => "la",
                DispatchPolicy::LocalityAwareBalanced => "bd",
            }
            .into(),
        ),
        ("paper".into(), format!("{}", args.paper)),
        ("ideal_host".into(), format!("{}", args.ideal_host)),
        ("budget".into(), format!("{}", args.budget)),
        ("seed".into(), format!("{}", args.seed)),
        ("vm".into(), format!("{}", args.vm)),
    ];
    if let Some(path) = &args.replay {
        meta.push(("replay".into(), path.clone()));
    }
    meta
}

/// Rebuilds `--save-at`-era arguments from a snapshot's metadata.
fn args_from_meta(snap: &Snapshot, resume_path: &str) -> Result<Args, String> {
    let get = |k: &str| {
        snap.meta_get(k)
            .map(str::to_owned)
            .ok_or_else(|| format!("snapshot {resume_path} has no `{k}` metadata"))
    };
    let parse_u64 = |k: &str| -> Result<u64, String> {
        get(k)?
            .parse()
            .map_err(|e| format!("bad `{k}` metadata: {e}"))
    };
    Ok(Args {
        workload: match get("workload")?.as_str() {
            "atf" => Workload::Atf,
            "bfs" => Workload::Bfs,
            "pr" => Workload::Pr,
            "sp" => Workload::Sp,
            "wcc" => Workload::Wcc,
            "hj" => Workload::Hj,
            "hg" => Workload::Hg,
            "rp" => Workload::Rp,
            "sc" => Workload::Sc,
            "svm" => Workload::Svm,
            other => return Err(format!("unknown workload `{other}` in snapshot metadata")),
        },
        size: match get("size")?.as_str() {
            "small" => InputSize::Small,
            "medium" => InputSize::Medium,
            "large" => InputSize::Large,
            other => return Err(format!("unknown size `{other}` in snapshot metadata")),
        },
        policy: match get("policy")?.as_str() {
            "host" => DispatchPolicy::HostOnly,
            "pim" => DispatchPolicy::PimOnly,
            "la" => DispatchPolicy::LocalityAware,
            "bd" => DispatchPolicy::LocalityAwareBalanced,
            other => return Err(format!("unknown policy `{other}` in snapshot metadata")),
        },
        paper: get("paper")? == "true",
        ideal_host: get("ideal_host")? == "true",
        budget: parse_u64("budget")?,
        seed: parse_u64("seed")?,
        stats: false,
        vm: get("vm")? == "true",
        record: None,
        replay: snap.meta_get("replay").map(str::to_owned),
        save_at: None,
        save_to: String::new(),
        resume: None,
        submit: None,
        tenant: None,
        priority: None,
        connect_timeout_ms: 10_000,
        deadline_ms: None,
    })
}

fn main() {
    let cli = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    if let Some(socket) = &cli.submit {
        submit_to_daemon(socket, &cli);
    }

    // Under --resume the run is described by the snapshot's own
    // metadata, not the command line (only --stats carries over).
    let mut resume_snap = None;
    let args = if let Some(path) = &cli.resume {
        let snap = match Snapshot::read(std::path::Path::new(path)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read snapshot {path}: {e}");
                std::process::exit(1);
            }
        };
        let mut a = match args_from_meta(&snap, path) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        a.stats = cli.stats;
        eprintln!(
            "resuming {} ({}) under {} from {path} at cycle {}...",
            a.workload,
            a.size,
            match a.policy {
                DispatchPolicy::HostOnly => "host",
                DispatchPolicy::PimOnly => "pim",
                DispatchPolicy::LocalityAware => "la",
                DispatchPolicy::LocalityAwareBalanced => "bd",
            },
            snap.cycle()
        );
        resume_snap = Some(snap);
        a
    } else {
        cli
    };

    let mut cfg = if args.paper {
        MachineConfig::paper(args.policy)
    } else {
        MachineConfig::scaled(args.policy)
    };
    if args.ideal_host {
        cfg = cfg.ideal_host();
    }
    if args.vm {
        cfg.tlb = Some(TlbConfig::typical());
        cfg.page_map = PageMap::Shuffled { seed: args.seed };
    }

    let params = WorkloadParams {
        threads: cfg.cores,
        l3_bytes: cfg.mem.l3.capacity,
        pei_budget: args.budget,
        phase_chunk: 8_192,
        seed: args.seed,
        heap_base: WorkloadParams::DEFAULT_HEAP_BASE,
    };

    let (store, trace): (BackingStore, Box<dyn PhasedTrace>) = if let Some(path) = &args.replay {
        if resume_snap.is_none() {
            eprintln!("replaying {path} under {}...", cfg.policy);
        }
        let mut f =
            std::io::BufReader::new(std::fs::File::open(path).expect("cannot open replay file"));
        let store = BackingStore::load(&mut f).expect("corrupt store section");
        let trace = RecordedTrace::load(&mut f).expect("corrupt trace section");
        (store, Box::new(trace))
    } else {
        if resume_snap.is_none() {
            eprintln!(
                "running {} ({}) under {} on the {} machine (budget {} PEIs)...",
                args.workload,
                args.size,
                cfg.policy,
                if args.paper { "paper-scale" } else { "scaled" },
                args.budget
            );
        }
        let (store, mut trace) = args.workload.build(args.size, &params);
        if let Some(path) = &args.record {
            let rec = RecordedTrace::record(trace.as_mut());
            let mut f = std::io::BufWriter::new(
                std::fs::File::create(path).expect("cannot create record file"),
            );
            store.save(&mut f).expect("store write failed");
            rec.save(&mut f).expect("trace write failed");
            eprintln!(
                "recorded {} ops across {} phases to {path}",
                rec.total_ops(),
                rec.phases_left()
            );
            (store, Box::new(rec))
        } else {
            (store, trace)
        }
    };
    let mut sys = System::new(cfg, store);
    sys.add_workload(trace, (0..cfg.cores).collect());
    if let Some(snap) = &resume_snap {
        if let Err(e) = sys.restore(snap) {
            eprintln!("error: cannot resume: {e}");
            std::process::exit(1);
        }
    }
    let start = std::time::Instant::now();
    let r = if let Some(at) = args.save_at {
        match sys.run_paused(u64::MAX, Some(PauseAt::Cycle(at))) {
            RunStatus::Paused { at: cycle } => {
                let snap = match sys.snapshot_with_meta(&snapshot_meta(&args)) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error: cannot snapshot: {e}");
                        std::process::exit(1);
                    }
                };
                if let Err(e) = snap.write(std::path::Path::new(&args.save_to)) {
                    eprintln!("error: cannot write {}: {e}", args.save_to);
                    std::process::exit(1);
                }
                eprintln!(
                    "saved snapshot at cycle {cycle} ({} bytes) to {}; resume with --resume {}",
                    snap.as_bytes().len(),
                    args.save_to,
                    args.save_to
                );
                return;
            }
            RunStatus::Completed(r) => {
                eprintln!(
                    "run completed at cycle {} before --save-at {at}; nothing saved",
                    r.cycles
                );
                r
            }
        }
    } else {
        sys.run(u64::MAX)
    };
    let wall = start.elapsed();

    println!("cycles           {:>14}", r.cycles);
    println!("instructions     {:>14}", r.instructions);
    println!("ipc              {:>14.3}", r.ipc());
    println!("peis             {:>14}", r.peis);
    println!("pim_fraction     {:>13.1}%", 100.0 * r.pim_fraction);
    println!("offchip_bytes    {:>14}", r.offchip_bytes);
    println!(
        "offchip_flits    {:>14}",
        format!("{}/{}", r.offchip_flits.0, r.offchip_flits.1)
    );
    println!("dram_accesses    {:>14}", r.dram_accesses);
    println!("energy_total_nj  {:>14.0}", r.energy.total());
    println!(
        "sim_speed        {:>11.0} sim-cycles/s",
        r.cycles as f64 / wall.as_secs_f64()
    );
    if args.stats {
        println!("\n--- full statistics ---\n{}", r.stats);
    }
}
