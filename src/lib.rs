//! # pei — PIM-Enabled Instructions (ISCA 2015) in Rust
//!
//! A full reproduction of *"PIM-Enabled Instructions: A Low-Overhead,
//! Locality-Aware Processing-in-Memory Architecture"* (Ahn, Yoo, Mutlu,
//! Choi — ISCA 2015): a cycle-level simulator of a multi-core host with a
//! three-level MESI cache hierarchy and HMC main memory, the PEI
//! architecture on top (PCUs, PMU with PIM directory + locality monitor,
//! pfence, locality-aware and balanced dispatch), the paper's ten
//! data-intensive workloads, and an experiment harness regenerating every
//! figure of the evaluation section.
//!
//! This crate re-exports the workspace's public API; see the individual
//! crates for details:
//!
//! * [`types`] — shared architectural vocabulary (addresses, packets,
//!   PIM op set).
//! * [`engine`] — discrete-event kernel, bandwidth/occupancy primitives,
//!   statistics.
//! * [`mem`] — backing store, private caches, inclusive L3 with MESI
//!   directory, crossbar.
//! * [`hmc`] — vaults, DRAM banks (FR-FCFS, open page), TSVs, serialized
//!   off-chip links.
//! * [`cpu`] — trace ops and the out-of-order-window core model.
//! * [`core`] — **the paper's contribution**: PIM operations, PCUs, PIM
//!   directory, locality monitor, PMU, dispatch policies.
//! * [`system`] — whole-machine assembly, presets, energy model.
//! * [`workloads`] — the ten case-study applications and input
//!   generators.
//!
//! # Quickstart
//!
//! ```
//! use pei::prelude::*;
//!
//! // Build PageRank on a small power-law graph ...
//! let params = WorkloadParams::scaled(4);
//! let (store, trace) = Workload::Pr.build(InputSize::Small, &params);
//!
//! // ... and run it on the scaled machine with locality-aware dispatch.
//! let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
//! let mut sys = System::new(cfg, store);
//! sys.add_workload(trace, (0..cfg.cores).collect());
//! let result = sys.run(u64::MAX);
//! println!("IPC = {:.2}, PIM% = {:.0}%", result.ipc(), 100.0 * result.pim_fraction);
//! ```
//!
//! This crate's place in the workspace is mapped in DESIGN.md §5.

pub use pei_core as core;
pub use pei_cpu as cpu;
pub use pei_engine as engine;
pub use pei_hmc as hmc;
pub use pei_mem as mem;
pub use pei_system as system;
pub use pei_types as types;
pub use pei_workloads as workloads;

/// The most common imports for driving experiments.
pub mod prelude {
    pub use pei_core::{DispatchPolicy, PimDirectory};
    pub use pei_cpu::trace::{Op, PhasedTrace, VecPhases};
    pub use pei_mem::BackingStore;
    pub use pei_system::{MachineConfig, PauseAt, RunResult, RunStatus, Snapshot, System};
    pub use pei_types::{Addr, BlockAddr, OperandValue, PimOpKind};
    pub use pei_workloads::{InputSize, Workload, WorkloadParams};
}
