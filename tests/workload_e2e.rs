//! End-to-end tests: every workload through the full timing simulator,
//! plus functional cross-validation of simulated memory against the
//! sequential reference implementations for workloads whose PEI-target
//! arrays are updated exclusively by PEIs (ATF, BFS, SP, WCC).

use pei::prelude::*;
use pei::workloads::graph::Graph;
use pei::workloads::graph_kernels::{Atf, FrontierMin, Wcc};

fn quick_params(threads: usize) -> WorkloadParams {
    WorkloadParams {
        pei_budget: 5_000,
        ..WorkloadParams::quick_test(threads)
    }
}

#[test]
fn every_workload_runs_under_every_policy() {
    let params = WorkloadParams {
        pei_budget: 800,
        ..WorkloadParams::quick_test(2)
    };
    for w in Workload::ALL {
        for policy in [
            DispatchPolicy::HostOnly,
            DispatchPolicy::PimOnly,
            DispatchPolicy::LocalityAware,
            DispatchPolicy::LocalityAwareBalanced,
        ] {
            let (store, trace) = w.build(InputSize::Small, &params);
            let mut cfg = MachineConfig::scaled(policy);
            cfg.cores = 2;
            let mut sys = System::new(cfg, store);
            sys.add_workload(trace, vec![0, 1]);
            let r = sys.run(200_000_000);
            assert!(r.cycles > 0, "{w} under {policy}");
            assert!(r.peis > 0, "{w} under {policy} issued no PEIs");
            match policy {
                DispatchPolicy::HostOnly => assert_eq!(r.pim_fraction, 0.0),
                DispatchPolicy::PimOnly => assert_eq!(r.pim_fraction, 1.0),
                _ => {}
            }
        }
    }
}

/// Runs a prepared (trace, store) pair and returns the finished system.
fn run_full(store: BackingStore, trace: Box<dyn PhasedTrace>, policy: DispatchPolicy) -> System {
    let mut cfg = MachineConfig::scaled(policy);
    cfg.cores = 2;
    let mut sys = System::new(cfg, store);
    sys.add_workload(trace, vec![0, 1]);
    sys.run(500_000_000);
    sys
}

#[test]
fn atf_simulated_memory_matches_reference() {
    for policy in [
        DispatchPolicy::HostOnly,
        DispatchPolicy::PimOnly,
        DispatchPolicy::LocalityAware,
    ] {
        let g = Graph::power_law(300, 6, 21);
        let (atf, store) = Atf::new(g, &quick_params(2));
        // Drive generation through the simulator; the generator's own
        // functional state advances as phases are pulled.
        let n = 300;
        let addrs: Vec<Addr> = (0..n).map(|v| atf.followers_addr(v)).collect();
        let atf_box: Box<dyn PhasedTrace> = Box::new(atf);
        let sys = run_full(store, atf_box, policy);
        // Recompute the reference independently.
        let g = Graph::power_law(300, 6, 21);
        let params = quick_params(2);
        let (ref_atf, _s) = Atf::new(g, &params);
        let mut reference = ref_atf;
        while reference.next_phase().is_some() {}
        for (v, addr) in addrs.iter().enumerate() {
            assert_eq!(
                sys.store().read_u64(*addr),
                reference.reference()[v],
                "follower count of vertex {v} under {policy}"
            );
        }
    }
}

#[test]
fn bfs_simulated_levels_match_reference() {
    let g = Graph::power_law(400, 6, 33);
    let (bfs, store) = FrontierMin::bfs(g, &quick_params(2), 0);
    let addrs: Vec<Addr> = (0..400).map(|v| bfs.dist_addr(v)).collect();
    let sys = run_full(store, Box::new(bfs), DispatchPolicy::LocalityAware);
    // Independent reference.
    let g = Graph::power_law(400, 6, 33);
    let (mut reference, _s) = FrontierMin::bfs(g, &quick_params(2), 0);
    while reference.next_phase().is_some() {}
    for (v, addr) in addrs.iter().enumerate() {
        assert_eq!(
            sys.store().read_u64(*addr),
            reference.reference()[v],
            "level of vertex {v}"
        );
    }
}

#[test]
fn wcc_simulated_labels_match_reference() {
    let g = Graph::power_law(300, 5, 44);
    let (wcc, store) = Wcc::new(g, &quick_params(2));
    let addrs: Vec<Addr> = (0..300).map(|v| wcc.label_addr(v)).collect();
    let sys = run_full(store, Box::new(wcc), DispatchPolicy::PimOnly);
    let g = Graph::power_law(300, 5, 44);
    let (mut reference, _s) = Wcc::new(g, &quick_params(2));
    while reference.next_phase().is_some() {}
    for (v, addr) in addrs.iter().enumerate() {
        assert_eq!(
            sys.store().read_u64(*addr),
            reference.reference()[v],
            "label of vertex {v}"
        );
    }
}

#[test]
fn sp_simulated_distances_match_reference() {
    let g = Graph::power_law(300, 6, 55);
    let (sp, store) = FrontierMin::sssp(g, &quick_params(2), 0);
    let addrs: Vec<Addr> = (0..300).map(|v| sp.dist_addr(v)).collect();
    let sys = run_full(store, Box::new(sp), DispatchPolicy::LocalityAware);
    let g = Graph::power_law(300, 6, 55);
    let (mut reference, _s) = FrontierMin::sssp(g, &quick_params(2), 0);
    while reference.next_phase().is_some() {}
    for (v, addr) in addrs.iter().enumerate() {
        assert_eq!(sys.store().read_u64(*addr), reference.reference()[v]);
    }
}

#[test]
fn results_are_deterministic_across_runs() {
    let run = || {
        let params = quick_params(2);
        let (store, trace) = Workload::Pr.build(InputSize::Small, &params);
        let mut cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
        cfg.cores = 2;
        let mut sys = System::new(cfg, store);
        sys.add_workload(trace, vec![0, 1]);
        let r = sys.run(500_000_000);
        (
            r.cycles,
            r.instructions,
            r.offchip_bytes,
            r.pim_fraction.to_bits(),
        )
    };
    assert_eq!(run(), run(), "simulation must be bit-reproducible");
}
