//! Paper-shape regression tests: the qualitative results of the paper's
//! evaluation, encoded as assertions at miniature scale so the headline
//! behaviour cannot silently regress.
//!
//! These use small budgets and 2-core machines; they check *orderings*
//! (who wins), not magnitudes.

use pei::prelude::*;

/// Runs `w` on a 2-core machine. `sizing_l3` controls the *input* sizing
/// base (Table 3 footprints are `{1/4, 2, 16}×` this), independent of the
/// machine's real 1 MB L3 — small-input claims shrink it so the budget
/// window covers several reuse passes, the way the paper's 2-billion-
/// instruction window does.
fn run_sized(
    w: Workload,
    size: InputSize,
    policy: DispatchPolicy,
    budget: u64,
    sizing_l3: usize,
) -> RunResult {
    let mut cfg = MachineConfig::scaled(policy);
    cfg.cores = 2;
    let params = WorkloadParams {
        threads: 2,
        l3_bytes: sizing_l3,
        pei_budget: budget,
        phase_chunk: 4_096,
        seed: 0xabcd,
        heap_base: WorkloadParams::DEFAULT_HEAP_BASE,
    };
    let (store, trace) = w.build(size, &params);
    let mut sys = System::new(cfg, store);
    sys.add_workload(trace, vec![0, 1]);
    sys.run(u64::MAX)
}

/// Machine-proportional sizing (inputs sized against the real 1 MB L3).
fn run(w: Workload, size: InputSize, policy: DispatchPolicy, budget: u64) -> RunResult {
    run_sized(w, size, policy, budget, 1024 * 1024)
}

/// Reuse-friendly sizing: small inputs are ~64 KB so a 20 K-PEI window
/// re-touches every block many times.
fn run_small_sized(w: Workload, size: InputSize, policy: DispatchPolicy) -> RunResult {
    run_sized(w, size, policy, 20_000, 256 * 1024)
}

/// §2.2 / Fig. 2 / Fig. 6a: on cache-resident inputs, always-offload
/// loses to host execution.
#[test]
fn pim_only_loses_on_small_graph_inputs() {
    for w in [Workload::Pr, Workload::Bfs] {
        let host = run_small_sized(w, InputSize::Small, DispatchPolicy::HostOnly);
        let pim = run_small_sized(w, InputSize::Small, DispatchPolicy::PimOnly);
        assert!(
            pim.cycles > host.cycles,
            "{w}: PIM-Only must lose on small inputs ({} vs {})",
            pim.cycles,
            host.cycles
        );
    }
}

/// Fig. 6c: on large inputs, offloading wins big for the writer-PEI
/// graph kernels.
#[test]
fn pim_only_wins_on_large_graph_inputs() {
    for w in [Workload::Atf, Workload::Pr] {
        let host = run(w, InputSize::Large, DispatchPolicy::HostOnly, 6_000);
        let pim = run(w, InputSize::Large, DispatchPolicy::PimOnly, 6_000);
        assert!(
            (pim.cycles as f64) < 0.8 * host.cycles as f64,
            "{w}: PIM-Only must win clearly on large inputs ({} vs {})",
            pim.cycles,
            host.cycles
        );
    }
}

/// Figs. 6/8: Locality-Aware tracks the better static policy within a
/// modest margin at both extremes.
#[test]
fn locality_aware_tracks_the_winner() {
    for (w, size) in [
        (Workload::Pr, InputSize::Large),
        (Workload::Atf, InputSize::Large),
    ] {
        let host = run(w, size, DispatchPolicy::HostOnly, 6_000).cycles as f64;
        let pim = run(w, size, DispatchPolicy::PimOnly, 6_000).cycles as f64;
        let la = run(w, size, DispatchPolicy::LocalityAware, 6_000).cycles as f64;
        let best = host.min(pim);
        assert!(
            la <= 1.25 * best,
            "{w}/{size}: LA ({la}) strays from the best policy ({best})"
        );
    }
}

/// Fig. 8: the offload fraction grows monotonically (within noise) with
/// input size.
#[test]
fn offload_fraction_grows_with_input_size() {
    let small = run_small_sized(
        Workload::Pr,
        InputSize::Small,
        DispatchPolicy::LocalityAware,
    );
    let medium = run(
        Workload::Pr,
        InputSize::Medium,
        DispatchPolicy::LocalityAware,
        8_000,
    );
    let large = run(
        Workload::Pr,
        InputSize::Large,
        DispatchPolicy::LocalityAware,
        8_000,
    );
    assert!(
        small.pim_fraction < medium.pim_fraction && medium.pim_fraction < large.pim_fraction,
        "PIM%: {:.2} -> {:.2} -> {:.2}",
        small.pim_fraction,
        medium.pim_fraction,
        large.pim_fraction
    );
    assert!(large.pim_fraction > 0.5);
    assert!(small.pim_fraction < 0.3);
}

/// Fig. 7: PIM-Only's off-chip traffic blows up on small inputs and
/// shrinks on large ones, relative to host execution.
#[test]
fn offchip_traffic_crossover() {
    let w = Workload::Pr;
    let host_s = run_small_sized(w, InputSize::Small, DispatchPolicy::HostOnly).offchip_bytes;
    let pim_s = run_small_sized(w, InputSize::Small, DispatchPolicy::PimOnly).offchip_bytes;
    assert!(pim_s > 2 * host_s, "small: {pim_s} vs {host_s}");
    let host_l = run(w, InputSize::Large, DispatchPolicy::HostOnly, 6_000).offchip_bytes;
    let pim_l = run(w, InputSize::Large, DispatchPolicy::PimOnly, 6_000).offchip_bytes;
    assert!(pim_l < host_l, "large: {pim_l} vs {host_l}");
}

/// §7.7: the memory-side PCUs stay a small share of HMC energy.
#[test]
fn memory_pcu_energy_share_is_negligible() {
    let pim = run(
        Workload::Atf,
        InputSize::Large,
        DispatchPolicy::PimOnly,
        6_000,
    );
    let share = pim.energy.pcu_mem_share() / pim.energy.hmc_total();
    assert!(share < 0.05, "share = {share}");
    assert!(share > 0.0);
}

/// §7.6: a real PIM directory costs only a few percent over Ideal-Host.
#[test]
fn real_directory_is_nearly_free() {
    let w = Workload::Atf;
    let mut cfg = MachineConfig::scaled(DispatchPolicy::HostOnly);
    cfg.cores = 2;
    let params = WorkloadParams {
        threads: 2,
        l3_bytes: cfg.mem.l3.capacity,
        pei_budget: 8_000,
        phase_chunk: 4_096,
        seed: 0xabcd,
        heap_base: WorkloadParams::DEFAULT_HEAP_BASE,
    };
    let (store, trace) = w.build(InputSize::Medium, &params);
    let mut sys = System::new(cfg, store);
    sys.add_workload(trace, vec![0, 1]);
    let real = sys.run(u64::MAX).cycles as f64;

    let (store, trace) = w.build(InputSize::Medium, &params);
    let mut sys = System::new(cfg.ideal_host(), store);
    sys.add_workload(trace, vec![0, 1]);
    let ideal = sys.run(u64::MAX).cycles as f64;
    assert!(real <= 1.10 * ideal, "real {real} vs ideal {ideal}");
}
