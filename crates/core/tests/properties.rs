//! Property-based tests of the PEI architecture's invariants: the PIM
//! directory's atomicity guarantees under arbitrary interleavings, and
//! the algebraic properties of the PIM operations.

use pei_core::ops::apply;
use pei_core::{AcquireResult, PimDirectory};
use pei_mem::BackingStore;
use pei_types::{BlockAddr, OperandValue, PimOpKind, ReqId};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum DirOp {
    Acquire { block: u64, writer: bool },
    ReleaseOldest,
}

fn dir_op() -> impl Strategy<Value = DirOp> {
    prop_oneof![
        3 => (0u64..8, any::<bool>()).prop_map(|(block, writer)| DirOp::Acquire { block, writer }),
        2 => Just(DirOp::ReleaseOldest),
    ]
}

proptest! {
    /// The fundamental atomicity invariant (§4.3): at no point does a
    /// block have two concurrent writers, or a writer concurrent with a
    /// reader. Checked under arbitrary acquire/release interleavings for
    /// both the real (tag-less, aliasing) and ideal directories.
    #[test]
    fn no_false_negatives_ever(ops in proptest::collection::vec(dir_op(), 1..300), ideal in any::<bool>()) {
        let mut dir = PimDirectory::new(16, ideal);
        let mut next_id = 0u64;
        // Held locks: id -> (block, writer)
        let mut held: HashMap<ReqId, (u64, bool)> = HashMap::new();
        let mut queued: Vec<(ReqId, u64, bool)> = Vec::new();
        let mut fifo: Vec<ReqId> = Vec::new();

        let check = |held: &HashMap<ReqId, (u64, bool)>| {
            for (&id, &(b, w)) in held {
                for (&id2, &(b2, w2)) in held {
                    if id != id2 && b == b2 {
                        // Same block: must not mix a writer with anything.
                        assert!(!(w || w2), "writer sharing block {b} with another PEI");
                    }
                }
            }
        };

        for op in ops {
            match op {
                DirOp::Acquire { block, writer } => {
                    next_id += 1;
                    let id = ReqId(next_id);
                    match dir.acquire(id, BlockAddr(block), writer) {
                        AcquireResult::Granted => {
                            held.insert(id, (block, writer));
                        }
                        AcquireResult::Queued => queued.push((id, block, writer)),
                    }
                    fifo.push(id);
                }
                DirOp::ReleaseOldest => {
                    // Release the oldest currently-held lock, if any.
                    let oldest = fifo.iter().find(|id| held.contains_key(id)).copied();
                    if let Some(id) = oldest {
                        held.remove(&id);
                        let mut granted = Vec::new();
                        dir.release(id, &mut granted);
                        for (gid, gw) in granted {
                            let pos = queued.iter().position(|(q, _, _)| *q == gid)
                                .expect("granted id was queued");
                            let (_, b, w) = queued.remove(pos);
                            prop_assert_eq!(w, gw);
                            held.insert(gid, (b, w));
                        }
                    }
                }
            }
            check(&held);
        }
        // Drain: releasing everything leaves the directory empty.
        while let Some(id) = fifo.iter().find(|id| held.contains_key(id)).copied() {
            held.remove(&id);
            let mut granted = Vec::new();
            dir.release(id, &mut granted);
            for (gid, _) in granted {
                let pos = queued.iter().position(|(q, _, _)| *q == gid).unwrap();
                let (_, b, w) = queued.remove(pos);
                held.insert(gid, (b, w));
            }
            check(&held);
        }
        prop_assert_eq!(dir.in_flight(), 0);
        prop_assert!(queued.is_empty(), "no waiter starves once all locks release");
    }

    /// min is idempotent, commutative, and bounded by its operands.
    #[test]
    fn min_pei_algebra(init in any::<u64>(), vals in proptest::collection::vec(any::<u64>(), 1..20)) {
        let mut m = BackingStore::new();
        let a = m.alloc_block();
        m.write_u64(a, init);
        for &v in &vals {
            apply(PimOpKind::MinU64, a, &OperandValue::U64(v), &mut m);
        }
        let expect = vals.iter().copied().chain([init]).min().unwrap();
        prop_assert_eq!(m.read_u64(a), expect);
        // Replaying the whole sequence changes nothing (idempotence).
        for &v in &vals {
            apply(PimOpKind::MinU64, a, &OperandValue::U64(v), &mut m);
        }
        prop_assert_eq!(m.read_u64(a), expect);
    }

    /// Increment executed n times adds exactly n.
    #[test]
    fn inc_pei_counts(init in any::<u64>(), n in 0usize..50) {
        let mut m = BackingStore::new();
        let a = m.alloc_block();
        m.write_u64(a, init);
        for _ in 0..n {
            apply(PimOpKind::IncU64, a, &OperandValue::None, &mut m);
        }
        prop_assert_eq!(m.read_u64(a), init.wrapping_add(n as u64));
    }

    /// Reader operations never mutate their target block.
    #[test]
    fn readers_pure(contents in proptest::collection::vec(any::<u8>(), 64..=64), key in any::<u64>()) {
        let mut m = BackingStore::new();
        let a = m.alloc_block();
        m.write_bytes(a, &contents);
        let before = m.read_block(a.block());
        apply(PimOpKind::HashProbe, a, &OperandValue::U64(key), &mut m);
        apply(PimOpKind::HistBin, a, &OperandValue::from_bytes(&[7]), &mut m);
        apply(PimOpKind::EuclideanDist, a, &OperandValue::from_bytes(&[0; 64]), &mut m);
        apply(PimOpKind::DotProduct, a, &OperandValue::from_bytes(&[0; 32]), &mut m);
        prop_assert_eq!(m.read_block(a.block()), before);
    }

    /// The locality monitor's query is a pure predicate w.r.t. occupancy:
    /// it never reports a hit for a block that was never touched.
    #[test]
    fn monitor_no_phantom_hits(touched in proptest::collection::vec(0u64..256, 0..100)) {
        // Full-tag (ideal) mode: partial-tag aliases are the documented
        // exception in real mode.
        let mut mon = pei_core::LocalityMonitor::new(16, 4, 10, true);
        let mut seen = std::collections::HashSet::new();
        for &b in &touched {
            mon.on_l3_access(BlockAddr(b));
            seen.insert(b);
        }
        for probe in 0u64..256 {
            if !seen.contains(&probe) {
                prop_assert!(!mon.query(BlockAddr(probe)), "phantom hit for {}", probe);
            }
        }
    }
}
