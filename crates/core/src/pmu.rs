//! The PEI management unit (§4.3): atomicity, coherence management,
//! locality-aware dispatch, balanced dispatch, and pfence.
//!
//! The PMU sits next to the L3 and is shared by all host processors. Every
//! PEI visits it to (1) take its reader-writer lock in the PIM directory,
//! (2) get an execution-location decision from the locality monitor, and —
//! when offloaded — (3) have its target block back-invalidated /
//! back-written-back before the PIM command leaves for memory.

use crate::directory::{AcquireResult, PimDirectory};
use crate::dispatch::{balanced_choice, DispatchPolicy};
use crate::monitor::LocalityMonitor;
use pei_engine::{CounterId, Counters, Outbox, StatsReport};
use pei_mem::msg::PimFlush;
use pei_types::{Addr, BlockAddr, CoreId, Cycle, OperandValue, PimCmd, PimOpKind, PimOut, ReqId};
use std::collections::HashMap;

/// PMU configuration (§6.1 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmuConfig {
    /// Execution-location policy.
    pub policy: DispatchPolicy,
    /// PIM-directory entries (2048 in the paper).
    pub dir_entries: usize,
    /// PIM-directory access latency in host cycles (2 in the paper).
    pub dir_latency: Cycle,
    /// Locality-monitor access latency in host cycles (3 in the paper).
    pub mon_latency: Cycle,
    /// Idealize the directory (infinite, zero-latency; §7.6 / Ideal-Host).
    pub ideal_dir: bool,
    /// Idealize the locality monitor (full tags, zero latency; §7.6).
    pub ideal_mon: bool,
    /// Locality-monitor sets (same as the L3 tag array).
    pub mon_sets: usize,
    /// Locality-monitor ways (same as the L3 tag array).
    pub mon_ways: usize,
    /// Partial-tag width (10 in the paper).
    pub mon_tag_bits: u32,
    /// Honor the locality monitor's first-hit ignore bit (§4.3). Always
    /// on in the paper; exposed as an ablation knob.
    pub mon_ignore_bit: bool,
}

impl PmuConfig {
    /// The paper's PMU for an L3 with `l3_sets` × `l3_ways`.
    pub fn paper(policy: DispatchPolicy, l3_sets: usize, l3_ways: usize) -> Self {
        PmuConfig {
            policy,
            dir_entries: 2048,
            dir_latency: 2,
            mon_latency: 3,
            ideal_dir: false,
            ideal_mon: false,
            mon_sets: l3_sets,
            mon_ways: l3_ways,
            mon_tag_bits: 10,
            mon_ignore_bit: true,
        }
    }

    /// The Ideal-Host configuration of §7: host-only execution with an
    /// infinitely large, zero-latency PIM directory — i.e. PEIs behave
    /// like ordinary host instructions with free atomicity.
    pub fn ideal_host(l3_sets: usize, l3_ways: usize) -> Self {
        PmuConfig {
            ideal_dir: true,
            dir_latency: 0,
            ..Self::paper(DispatchPolicy::HostOnly, l3_sets, l3_ways)
        }
    }
}

/// Inputs to the PMU.
#[derive(Debug, Clone, PartialEq)]
pub enum PmuIn {
    /// A PEI registers (from a host-side PCU).
    Request {
        /// PEI transaction id.
        id: ReqId,
        /// Issuing core.
        core: CoreId,
        /// Operation.
        op: PimOpKind,
        /// Target address.
        target: Addr,
        /// Input operands.
        input: OperandValue,
    },
    /// A host-side PCU finished executing a PEI (release its lock).
    HostRelease {
        /// PEI transaction id.
        id: ReqId,
    },
    /// The L3 finished the back-invalidation / back-writeback for an
    /// offloaded PEI.
    FlushDone {
        /// PEI transaction id (flushes reuse the PEI's id).
        id: ReqId,
    },
    /// The memory-side completion arrived over the response link.
    MemResult {
        /// The completion packet.
        out: PimOut,
    },
    /// A core issued a pfence.
    Pfence {
        /// The fencing core.
        core: CoreId,
    },
}

/// Outputs of the PMU.
#[derive(Debug, Clone, PartialEq)]
pub enum PmuOut {
    /// Execute on the host-side PCU of `core`.
    DecideHost {
        /// PEI transaction id.
        id: ReqId,
        /// The owning core.
        core: CoreId,
        /// Decision cycle.
        at: Cycle,
    },
    /// Back-invalidate / back-writeback the target block at the L3.
    Flush {
        /// The flush request (id = the PEI's id).
        flush: PimFlush,
        /// Departure cycle.
        at: Cycle,
    },
    /// Send the PIM command to the HMC controller.
    Launch {
        /// The command packet.
        cmd: PimCmd,
        /// Departure cycle.
        at: Cycle,
    },
    /// Deliver memory-side outputs back to the owning host PCU.
    MemResultToPcu {
        /// PEI transaction id.
        id: ReqId,
        /// The owning core.
        core: CoreId,
        /// Output operands.
        output: OperandValue,
        /// Delivery cycle.
        at: Cycle,
    },
    /// The pfence issued by `core` has completed.
    PfenceDone {
        /// The fencing core.
        core: CoreId,
        /// Completion cycle.
        at: Cycle,
    },
    /// The PEI was dispatched to memory: its operands left the host-side
    /// PCU's memory-mapped registers, so the PCU entry (and the core's
    /// operand-buffer credit) frees immediately (Fig. 5 step 4). This is
    /// what lets in-flight PEIs scale to the memory-side buffer pool.
    DispatchedMem {
        /// PEI transaction id.
        id: ReqId,
        /// The owning core.
        core: CoreId,
        /// Dispatch cycle.
        at: Cycle,
    },
}

impl PmuIn {
    /// Appends the input to a snapshot stream (used by the system layer to
    /// serialize in-flight events).
    pub fn encode(&self, e: &mut pei_types::snap::Encoder) {
        match self {
            PmuIn::Request {
                id,
                core,
                op,
                target,
                input,
            } => {
                e.tag(0);
                e.u64(id.0);
                e.u16(core.0);
                e.u8(op.opcode());
                e.u64(target.0);
                input.save(e);
            }
            PmuIn::HostRelease { id } => {
                e.tag(1);
                e.u64(id.0);
            }
            PmuIn::FlushDone { id } => {
                e.tag(2);
                e.u64(id.0);
            }
            PmuIn::MemResult { out } => {
                e.tag(3);
                out.save(e);
            }
            PmuIn::Pfence { core } => {
                e.tag(4);
                e.u16(core.0);
            }
        }
    }

    /// Reads one input back from a snapshot stream.
    ///
    /// # Errors
    ///
    /// Fails on truncation or an unknown variant tag.
    pub fn decode(d: &mut pei_types::snap::Decoder<'_>) -> pei_types::snap::SnapResult<PmuIn> {
        let offset = d.offset();
        Ok(match d.u8()? {
            0 => PmuIn::Request {
                id: ReqId(d.u64()?),
                core: CoreId(d.u16()?),
                op: {
                    let code = d.u8()?;
                    PimOpKind::from_opcode(code, d)?
                },
                target: Addr(d.u64()?),
                input: OperandValue::load(d)?,
            },
            1 => PmuIn::HostRelease {
                id: ReqId(d.u64()?),
            },
            2 => PmuIn::FlushDone {
                id: ReqId(d.u64()?),
            },
            3 => PmuIn::MemResult {
                out: PimOut::load(d)?,
            },
            4 => PmuIn::Pfence {
                core: CoreId(d.u16()?),
            },
            found => {
                return Err(pei_types::snap::SnapError::BadTag {
                    offset,
                    found,
                    what: "PmuIn variant",
                })
            }
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnState {
    WaitLock,
    HostRunning,
    WaitFlush,
    WaitMem,
}

#[derive(Debug)]
struct PeiTxn {
    core: CoreId,
    op: PimOpKind,
    target: Addr,
    input: OperandValue,
    writer: bool,
    state: TxnState,
}

/// The PMU's counter bank (registered once at construction).
#[derive(Debug)]
struct PmuCounters {
    host_dispatched: CounterId,
    mem_dispatched: CounterId,
    balanced_overrides: CounterId,
    bd_dither: CounterId,
    pfences: CounterId,
}

impl PmuCounters {
    fn register(c: &mut Counters) -> Self {
        PmuCounters {
            host_dispatched: c.register("host_dispatched"),
            mem_dispatched: c.register("mem_dispatched"),
            balanced_overrides: c.register("balanced_overrides"),
            bd_dither: c.register("bd_dither"),
            pfences: c.register("pfences"),
        }
    }
}

/// The PEI management unit.
#[derive(Debug)]
pub struct Pmu {
    cfg: PmuConfig,
    dir: PimDirectory,
    mon: LocalityMonitor,
    txns: HashMap<ReqId, PeiTxn>,
    outstanding_writers: u64,
    fence_waiters: Vec<CoreId>,
    /// Reusable buffer for directory grants (cleared after each release).
    grant_scratch: Vec<(ReqId, bool)>,
    counters: Counters,
    c: PmuCounters,
}

impl Pmu {
    /// Creates a PMU per `cfg`.
    pub fn new(cfg: PmuConfig) -> Self {
        let mut mon =
            LocalityMonitor::new(cfg.mon_sets, cfg.mon_ways, cfg.mon_tag_bits, cfg.ideal_mon);
        mon.set_ignore_enabled(cfg.mon_ignore_bit);
        let mut counters = Counters::new();
        let c = PmuCounters::register(&mut counters);
        Pmu {
            dir: PimDirectory::new(cfg.dir_entries, cfg.ideal_dir),
            mon,
            txns: HashMap::new(),
            outstanding_writers: 0,
            fence_waiters: Vec::new(),
            grant_scratch: Vec::new(),
            counters,
            c,
            cfg,
        }
    }

    /// The active dispatch policy.
    pub fn policy(&self) -> DispatchPolicy {
        self.cfg.policy
    }

    /// Shadows an L3 access into the locality monitor (called by the
    /// system for every GetS/GetM the L3 banks process).
    pub fn on_l3_access(&mut self, block: BlockAddr) {
        if self.cfg.policy.uses_monitor() {
            self.mon.on_l3_access(block);
        }
    }

    /// Processes one PMU input. `balance` is the HMC controller's current
    /// `(C_req, C_res)` sample, used by balanced dispatch.
    pub fn handle(
        &mut self,
        now: Cycle,
        input: PmuIn,
        balance: (u64, u64),
        out: &mut Outbox<PmuOut>,
    ) {
        match input {
            PmuIn::Request {
                id,
                core,
                op,
                target,
                input,
            } => {
                let writer = op.is_writer();
                self.outstanding_writers += u64::from(writer);
                self.txns.insert(
                    id,
                    PeiTxn {
                        core,
                        op,
                        target,
                        input,
                        writer,
                        state: TxnState::WaitLock,
                    },
                );
                match self.dir.acquire(id, target.block(), writer) {
                    AcquireResult::Granted => {
                        self.decide(now + self.cfg.dir_latency, id, balance, out)
                    }
                    AcquireResult::Queued => {}
                }
            }
            PmuIn::HostRelease { id } => self.release(now, id, balance, out),
            PmuIn::FlushDone { id } => {
                let txn = self.txns.get_mut(&id).expect("flush for unknown PEI");
                debug_assert_eq!(txn.state, TxnState::WaitFlush);
                txn.state = TxnState::WaitMem;
                let cmd = PimCmd {
                    id,
                    target: txn.target,
                    op: txn.op,
                    input: std::mem::take(&mut txn.input),
                };
                out.push(PmuOut::Launch { cmd, at: now });
            }
            PmuIn::MemResult { out: result } => {
                let txn = self.txns.get(&result.id).expect("result for unknown PEI");
                debug_assert_eq!(txn.state, TxnState::WaitMem);
                out.push(PmuOut::MemResultToPcu {
                    id: result.id,
                    core: txn.core,
                    output: result.output,
                    at: now,
                });
                self.release(now, result.id, balance, out);
            }
            PmuIn::Pfence { core } => {
                self.counters.inc(self.c.pfences);
                if self.outstanding_writers == 0 {
                    out.push(PmuOut::PfenceDone {
                        core,
                        at: now + self.cfg.dir_latency,
                    });
                } else {
                    self.fence_waiters.push(core);
                }
            }
        }
    }

    fn decide(&mut self, now: Cycle, id: ReqId, balance: (u64, u64), out: &mut Outbox<PmuOut>) {
        let (op, target, core) = {
            let txn = self.txns.get(&id).expect("deciding unknown PEI");
            (txn.op, txn.target, txn.core)
        };
        let block = target.block();
        let (to_memory, lat) = match self.cfg.policy {
            DispatchPolicy::HostOnly => (false, self.cfg.dir_latency),
            DispatchPolicy::PimOnly => (true, self.cfg.dir_latency),
            DispatchPolicy::LocalityAware => {
                let mon_lat = if self.cfg.ideal_mon {
                    0
                } else {
                    self.cfg.mon_latency
                };
                (!self.mon.query(block), self.cfg.dir_latency + mon_lat)
            }
            DispatchPolicy::LocalityAwareBalanced => {
                let mon_lat = if self.cfg.ideal_mon {
                    0
                } else {
                    self.cfg.mon_latency
                };
                if self.mon.query(block) {
                    (false, self.cfg.dir_latency + mon_lat)
                } else {
                    let (c_req, c_res) = balance;
                    let mut mem = balanced_choice(op, c_req, c_res);
                    if !mem {
                        // Dither host overrides 1-in-2: the EMA counters
                        // move slowly relative to per-op flit deltas, so
                        // undithered overrides come in long runs that fill
                        // the operand buffers with slow host executions;
                        // interleaving keeps the mix fine-grained.
                        self.counters.inc(self.c.bd_dither);
                        mem = !self.counters.get(self.c.bd_dither).is_multiple_of(2);
                        if !mem {
                            self.counters.inc(self.c.balanced_overrides);
                        }
                    }
                    (mem, self.cfg.dir_latency + mon_lat)
                }
            }
        };
        let at = now + lat;
        let txn = self.txns.get_mut(&id).expect("deciding unknown PEI");
        if to_memory {
            self.counters.inc(self.c.mem_dispatched);
            txn.state = TxnState::WaitFlush;
            let writer = txn.writer;
            let core = txn.core;
            if self.cfg.policy.uses_monitor() {
                self.mon.on_pim_issue(block);
            }
            out.push(PmuOut::DispatchedMem { id, core, at });
            out.push(PmuOut::Flush {
                flush: PimFlush {
                    id,
                    block,
                    invalidate: writer,
                },
                at,
            });
        } else {
            self.counters.inc(self.c.host_dispatched);
            txn.state = TxnState::HostRunning;
            out.push(PmuOut::DecideHost { id, core, at });
        }
    }

    fn release(&mut self, now: Cycle, id: ReqId, balance: (u64, u64), out: &mut Outbox<PmuOut>) {
        let txn = self.txns.remove(&id).expect("release of unknown PEI");
        if txn.writer {
            self.outstanding_writers -= 1;
            if self.outstanding_writers == 0 {
                // Drain waiters without dropping the Vec's capacity: swap it
                // out, push, clear and swap it back.
                let mut waiters = std::mem::take(&mut self.fence_waiters);
                for &core in &waiters {
                    out.push(PmuOut::PfenceDone {
                        core,
                        at: now + self.cfg.dir_latency,
                    });
                }
                waiters.clear();
                self.fence_waiters = waiters;
            }
        }
        // Reuse the grant scratch; `decide` never re-enters `release`, so
        // taking the buffer for the loop is safe.
        let mut granted = std::mem::take(&mut self.grant_scratch);
        self.dir.release(id, &mut granted);
        for &(gid, _writer) in &granted {
            self.decide(now + self.cfg.dir_latency, gid, balance, out);
        }
        granted.clear();
        self.grant_scratch = granted;
    }

    /// `(host-dispatched, memory-dispatched)` PEI counts — the "PIM %"
    /// series of Fig. 8.
    pub fn dispatch_counts(&self) -> (u64, u64) {
        (
            self.counters.get(self.c.host_dispatched),
            self.counters.get(self.c.mem_dispatched),
        )
    }

    /// PEIs currently registered (test helper).
    pub fn in_flight(&self) -> usize {
        self.txns.len()
    }

    /// PEIs holding or awaiting a PIM-directory reader-writer lock.
    /// Registration and lock acquisition are atomic within one PMU
    /// handler call (as are completion and release), so between events
    /// this equals [`in_flight`](Self::in_flight) — the invariant
    /// pei-system's checked mode sweeps.
    pub fn dir_in_flight(&self) -> usize {
        self.dir.in_flight()
    }

    /// Fault hook: acquires a directory writer lock on `block` under a
    /// synthetic PEI id the PMU never registered and will never release —
    /// the directory's lock population now disagrees with the PEI
    /// transaction table, validating the directory-accounting checker.
    pub fn fault_leak_dir_lock(&mut self, block: BlockAddr) {
        let _ = self.dir.acquire(ReqId(u64::MAX), block, true);
    }

    /// Labels the current counter values (including the locality
    /// monitor's) as the end of phase `label` (see `Counters::snapshot`).
    pub fn snapshot_phase(&mut self, label: &'static str) {
        self.counters.snapshot(label);
        self.mon.snapshot_phase(label);
    }

    /// Dumps statistics under `prefix`.
    pub fn report(&self, prefix: &str, stats: &mut StatsReport) {
        // `bd_dither` is an internal dithering phase, not a published stat.
        self.counters
            .flush_if(prefix, stats, |name| name != "bd_dither");
        let (grants, queued, peak) = self.dir.stats();
        stats.add(format!("{prefix}dir.grants"), grants as f64);
        stats.add(format!("{prefix}dir.queued"), queued as f64);
        stats.add(format!("{prefix}dir.peak_queue"), peak as f64);
        self.mon.report(&format!("{prefix}mon."), stats);
    }
}

impl TxnState {
    fn encode(self) -> u8 {
        match self {
            TxnState::WaitLock => 0,
            TxnState::HostRunning => 1,
            TxnState::WaitFlush => 2,
            TxnState::WaitMem => 3,
        }
    }

    fn decode(d: &mut pei_types::snap::Decoder<'_>) -> pei_types::snap::SnapResult<TxnState> {
        let offset = d.offset();
        Ok(match d.u8()? {
            0 => TxnState::WaitLock,
            1 => TxnState::HostRunning,
            2 => TxnState::WaitFlush,
            3 => TxnState::WaitMem,
            found => {
                return Err(pei_types::snap::SnapError::BadTag {
                    offset,
                    found,
                    what: "PEI transaction state",
                })
            }
        })
    }
}

impl pei_types::snap::SnapshotState for Pmu {
    fn save(&self, e: &mut pei_types::snap::Encoder) {
        // The grant scratch is drained within each `release` call, so it
        // is always empty between events and is not serialized.
        debug_assert!(self.grant_scratch.is_empty());
        self.dir.save(e);
        self.mon.save(e);
        let mut txns: Vec<_> = self.txns.iter().collect();
        txns.sort_by_key(|(id, _)| id.0);
        e.seq(txns.len());
        for (id, t) in txns {
            e.u64(id.0);
            e.u16(t.core.0);
            e.u8(t.op.opcode());
            e.u64(t.target.0);
            t.input.save(e);
            e.bool(t.writer);
            e.u8(t.state.encode());
        }
        e.u64(self.outstanding_writers);
        e.seq(self.fence_waiters.len());
        for core in &self.fence_waiters {
            e.u16(core.0);
        }
        self.counters.save(e);
    }

    fn load(&mut self, d: &mut pei_types::snap::Decoder<'_>) -> pei_types::snap::SnapResult<()> {
        self.dir.load(d)?;
        self.mon.load(d)?;
        let n = d.seq(21)?;
        self.txns = HashMap::with_capacity(n);
        for _ in 0..n {
            let id = ReqId(d.u64()?);
            let core = CoreId(d.u16()?);
            let code = d.u8()?;
            let op = PimOpKind::from_opcode(code, d)?;
            let target = Addr(d.u64()?);
            let input = OperandValue::load(d)?;
            let writer = d.bool()?;
            let state = TxnState::decode(d)?;
            self.txns.insert(
                id,
                PeiTxn {
                    core,
                    op,
                    target,
                    input,
                    writer,
                    state,
                },
            );
        }
        self.outstanding_writers = d.u64()?;
        let n = d.seq(2)?;
        self.fence_waiters = Vec::with_capacity(n);
        for _ in 0..n {
            self.fence_waiters.push(CoreId(d.u16()?));
        }
        self.grant_scratch.clear();
        self.counters.load(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pmu(policy: DispatchPolicy) -> Pmu {
        Pmu::new(PmuConfig::paper(policy, 64, 4))
    }

    fn request(id: u64, op: PimOpKind, addr: u64) -> PmuIn {
        PmuIn::Request {
            id: ReqId(id),
            core: CoreId(0),
            op,
            target: Addr(addr),
            input: OperandValue::U64(1),
        }
    }

    #[test]
    fn host_only_always_decides_host() {
        let mut p = pmu(DispatchPolicy::HostOnly);
        let mut out = Outbox::new();
        p.handle(0, request(1, PimOpKind::MinU64, 0x40), (0, 0), &mut out);
        assert!(matches!(out[0], PmuOut::DecideHost { .. }));
        assert_eq!(p.dispatch_counts(), (1, 0));
    }

    #[test]
    fn pim_only_flushes_then_launches() {
        let mut p = pmu(DispatchPolicy::PimOnly);
        let mut out = Outbox::new();
        p.handle(0, request(1, PimOpKind::MinU64, 0x40), (0, 0), &mut out);
        assert!(
            matches!(out[0], PmuOut::DispatchedMem { .. }),
            "memory dispatch frees the host-side entry first: {out:?}"
        );
        match &out[1] {
            PmuOut::Flush { flush, .. } => {
                assert!(flush.invalidate, "writer PEI back-invalidates");
                assert_eq!(flush.block, BlockAddr(1));
            }
            o => panic!("unexpected {o:?}"),
        }
        out.clear();
        p.handle(10, PmuIn::FlushDone { id: ReqId(1) }, (0, 0), &mut out);
        assert!(matches!(out[0], PmuOut::Launch { .. }));
        out.clear();
        p.handle(
            100,
            PmuIn::MemResult {
                out: PimOut {
                    id: ReqId(1),
                    block: BlockAddr(1),
                    output: OperandValue::None,
                },
            },
            (0, 0),
            &mut out,
        );
        assert!(matches!(out[0], PmuOut::MemResultToPcu { .. }));
        assert_eq!(p.in_flight(), 0);
        assert_eq!(p.dispatch_counts(), (0, 1));
    }

    #[test]
    fn reader_pei_uses_back_writeback() {
        let mut p = pmu(DispatchPolicy::PimOnly);
        let mut out = Outbox::new();
        p.handle(0, request(1, PimOpKind::HashProbe, 0x40), (0, 0), &mut out);
        match &out[1] {
            PmuOut::Flush { flush, .. } => assert!(!flush.invalidate),
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn locality_aware_uses_monitor() {
        let mut p = pmu(DispatchPolicy::LocalityAware);
        let mut out = Outbox::new();
        // Cold block: goes to memory.
        p.handle(0, request(1, PimOpKind::MinU64, 0x40), (0, 0), &mut out);
        assert!(out.iter().any(|o| matches!(o, PmuOut::Flush { .. })));
        // A hot block (seen at the L3) stays on the host.
        p.on_l3_access(BlockAddr(9));
        out.clear();
        p.handle(10, request(2, PimOpKind::MinU64, 9 * 64), (0, 0), &mut out);
        assert!(matches!(out[0], PmuOut::DecideHost { .. }));
    }

    #[test]
    fn pim_allocated_monitor_entry_needs_two_touches() {
        let mut p = pmu(DispatchPolicy::LocalityAware);
        let mut out = Outbox::new();
        // Same block, three PEIs in sequence (completing in between).
        for (i, expect_mem) in [(1u64, true), (2, true), (3, false)] {
            out.clear();
            p.handle(
                i * 100,
                request(i, PimOpKind::MinU64, 0x40),
                (0, 0),
                &mut out,
            );
            if expect_mem {
                assert!(
                    out.iter().any(|o| matches!(o, PmuOut::Flush { .. })),
                    "PEI {i} should offload (ignore-bit filter)"
                );
                p.handle(
                    i * 100 + 10,
                    PmuIn::FlushDone { id: ReqId(i) },
                    (0, 0),
                    &mut out,
                );
                p.handle(
                    i * 100 + 50,
                    PmuIn::MemResult {
                        out: PimOut {
                            id: ReqId(i),
                            block: BlockAddr(1),
                            output: OperandValue::None,
                        },
                    },
                    (0, 0),
                    &mut out,
                );
            } else {
                assert!(
                    matches!(out[0], PmuOut::DecideHost { .. }),
                    "PEI {i} should run on host after repeated touches"
                );
            }
        }
    }

    #[test]
    fn atomicity_serializes_same_block_writers() {
        let mut p = pmu(DispatchPolicy::HostOnly);
        let mut out = Outbox::new();
        p.handle(0, request(1, PimOpKind::AddF64, 0x40), (0, 0), &mut out);
        p.handle(0, request(2, PimOpKind::AddF64, 0x40), (0, 0), &mut out);
        // Only the first got a decision.
        assert_eq!(
            out.iter()
                .filter(|o| matches!(o, PmuOut::DecideHost { .. }))
                .count(),
            1
        );
        out.clear();
        p.handle(50, PmuIn::HostRelease { id: ReqId(1) }, (0, 0), &mut out);
        assert!(
            matches!(out[0], PmuOut::DecideHost { id: ReqId(2), .. }),
            "queued writer granted on release: {out:?}"
        );
    }

    #[test]
    fn pfence_waits_for_outstanding_writers() {
        let mut p = pmu(DispatchPolicy::HostOnly);
        let mut out = Outbox::new();
        p.handle(0, request(1, PimOpKind::IncU64, 0x40), (0, 0), &mut out);
        out.clear();
        p.handle(5, PmuIn::Pfence { core: CoreId(3) }, (0, 0), &mut out);
        assert!(out.is_empty(), "fence must wait for writer PEI");
        p.handle(50, PmuIn::HostRelease { id: ReqId(1) }, (0, 0), &mut out);
        assert!(out.iter().any(|o| matches!(
            o,
            PmuOut::PfenceDone {
                core: CoreId(3),
                ..
            }
        )));
    }

    #[test]
    fn pfence_ignores_readers() {
        let mut p = pmu(DispatchPolicy::HostOnly);
        let mut out = Outbox::new();
        p.handle(0, request(1, PimOpKind::HashProbe, 0x40), (0, 0), &mut out);
        out.clear();
        p.handle(5, PmuIn::Pfence { core: CoreId(0) }, (0, 0), &mut out);
        assert!(
            out.iter().any(|o| matches!(o, PmuOut::PfenceDone { .. })),
            "reader PEIs do not block pfence"
        );
    }

    #[test]
    fn balanced_dispatch_overrides_on_request_pressure() {
        let mut p = pmu(DispatchPolicy::LocalityAwareBalanced);
        let mut out = Outbox::new();
        // Cold blocks, request channel saturated: SC's 80-byte PIM
        // requests should be overridden to host execution — dithered
        // 1-in-2, so two misses produce exactly one override.
        for i in 1..=2u64 {
            p.handle(
                0,
                PmuIn::Request {
                    id: ReqId(i),
                    core: CoreId(0),
                    op: PimOpKind::EuclideanDist,
                    target: Addr(0x40 * (1 + 64 * i)),
                    input: OperandValue::from_bytes(&[0; 64]),
                },
                (1000, 10),
                &mut out,
            );
        }
        let hosts = out
            .iter()
            .filter(|o| matches!(o, PmuOut::DecideHost { .. }))
            .count();
        assert_eq!(hosts, 1, "dithered override: one of two goes host");
        let mut s = StatsReport::new();
        p.report("pmu.", &mut s);
        assert_eq!(s.get("pmu.balanced_overrides"), Some(1.0));
    }
}
