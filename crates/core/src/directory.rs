//! The PIM directory: atomicity management for in-flight PEIs (§4.3).
//!
//! A direct-mapped, tag-less table of reader-writer locks indexed by the
//! XOR-folded target block address. Tag-lessness means two different
//! blocks can map to the same entry and get (rarely) serialized — a false
//! positive the paper accepts for its 3.25 KB storage cost — but false
//! negatives (two writers on the same block simultaneously) are
//! impossible, because equal blocks always fold to the same entry.
//!
//! Grants are FIFO per entry, which provides both the paper's
//! "non-readable while a writer waits" starvation avoidance and its
//! multiple-readers concurrency.

use pei_types::{BlockAddr, ReqId};
use std::collections::{HashMap, VecDeque};

/// Outcome of an acquire attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireResult {
    /// The lock was granted immediately.
    Granted,
    /// The PEI was queued; it will appear in a later
    /// [`PimDirectory::release`] result.
    Queued,
}

#[derive(Debug, Default)]
struct Entry {
    /// Number of reader PEIs currently executing.
    readers: u32,
    /// Whether a writer PEI is currently executing.
    writer: bool,
    /// FIFO of waiting PEIs: `(id, is_writer)`.
    queue: VecDeque<(ReqId, bool)>,
}

impl Entry {
    fn can_grant(&self, writer: bool) -> bool {
        if writer {
            self.readers == 0 && !self.writer && self.queue.is_empty()
        } else {
            !self.writer && self.queue.is_empty()
        }
    }

    /// Pops newly grantable waiters after a release into `granted`,
    /// returning how many were appended.
    fn drain_grants_into(&mut self, granted: &mut Vec<(ReqId, bool)>) -> u64 {
        let mut n = 0;
        while let Some(&(id, writer)) = self.queue.front() {
            let ok = if writer {
                self.readers == 0 && !self.writer
            } else {
                !self.writer
            };
            if !ok {
                break;
            }
            self.queue.pop_front();
            n += 1;
            if writer {
                self.writer = true;
                granted.push((id, true));
                break; // a writer is exclusive
            }
            self.readers += 1;
            granted.push((id, false));
        }
        n
    }
}

/// The PIM directory.
///
/// # Examples
///
/// ```
/// use pei_core::{PimDirectory, AcquireResult};
/// use pei_types::{BlockAddr, ReqId};
///
/// let mut dir = PimDirectory::new(2048, false);
/// assert_eq!(dir.acquire(ReqId(1), BlockAddr(5), true), AcquireResult::Granted);
/// // A second writer to the same block queues.
/// assert_eq!(dir.acquire(ReqId(2), BlockAddr(5), true), AcquireResult::Queued);
/// let mut granted = Vec::new();
/// dir.release(ReqId(1), &mut granted);
/// assert_eq!(granted, vec![(ReqId(2), true)]);
/// ```
#[derive(Debug)]
pub struct PimDirectory {
    entries: Vec<Entry>,
    index_bits: u32,
    /// Ideal mode (§7.6): per-block exact locks, no aliasing.
    ideal: bool,
    ideal_entries: HashMap<BlockAddr, Entry>,
    held: HashMap<ReqId, (BlockAddr, bool)>,
    // statistics
    grants: u64,
    queued: u64,
    peak_queue: usize,
}

impl PimDirectory {
    /// Creates a directory with `entries` reader-writer locks (a power of
    /// two; the paper uses 2048). With `ideal = true`, locks are exact
    /// per-block (infinite storage, no false-positive serialization).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize, ideal: bool) -> Self {
        assert!(
            entries.is_power_of_two(),
            "entry count must be a power of two"
        );
        PimDirectory {
            entries: (0..entries).map(|_| Entry::default()).collect(),
            index_bits: entries.trailing_zeros(),
            ideal,
            ideal_entries: HashMap::new(),
            held: HashMap::new(),
            grants: 0,
            queued: 0,
            peak_queue: 0,
        }
    }

    fn entry_mut(&mut self, block: BlockAddr) -> &mut Entry {
        if self.ideal {
            self.ideal_entries.entry(block).or_default()
        } else {
            let idx = block.xor_fold(self.index_bits) as usize;
            &mut self.entries[idx]
        }
    }

    /// Requests the lock for a PEI targeting `block`.
    ///
    /// # Panics
    ///
    /// Panics if `id` already holds or awaits a lock (PEI ids are unique).
    pub fn acquire(&mut self, id: ReqId, block: BlockAddr, writer: bool) -> AcquireResult {
        assert!(
            self.held.insert(id, (block, writer)).is_none(),
            "duplicate PEI id in PIM directory"
        );
        let entry = self.entry_mut(block);
        if entry.can_grant(writer) {
            if writer {
                entry.writer = true;
            } else {
                entry.readers += 1;
            }
            self.grants += 1;
            AcquireResult::Granted
        } else {
            entry.queue.push_back((id, writer));
            let qlen = entry.queue.len();
            self.queued += 1;
            self.peak_queue = self.peak_queue.max(qlen);
            AcquireResult::Queued
        }
    }

    /// Releases the lock held by `id`, appending the newly granted waiters
    /// to `granted` in FIFO order. The caller owns (and typically reuses)
    /// the buffer; it is not cleared here.
    ///
    /// # Panics
    ///
    /// Panics if `id` holds no lock.
    pub fn release(&mut self, id: ReqId, granted: &mut Vec<(ReqId, bool)>) {
        let (block, writer) = self.held.remove(&id).expect("release of unknown PEI id");
        let entry = self.entry_mut(block);
        if writer {
            debug_assert!(entry.writer);
            entry.writer = false;
        } else {
            debug_assert!(entry.readers > 0);
            entry.readers -= 1;
        }
        self.grants += entry.drain_grants_into(granted);
        if self.ideal {
            // Garbage-collect idle ideal entries.
            let e = self.ideal_entries.get(&block).expect("present");
            if e.readers == 0 && !e.writer && e.queue.is_empty() {
                self.ideal_entries.remove(&block);
            }
        }
    }

    /// Number of PEIs currently holding or awaiting locks.
    pub fn in_flight(&self) -> usize {
        self.held.len()
    }

    /// `(immediate grants, queued acquisitions, peak queue length)`.
    pub fn stats(&self) -> (u64, u64, usize) {
        (self.grants, self.queued, self.peak_queue)
    }

    /// Storage overhead in bits per entry, as reported in §6.1 (13 bits:
    /// readable + writeable + 10-bit reader counter + 1-bit writer
    /// counter). Our functional model tracks the same information.
    pub const BITS_PER_ENTRY: usize = 13;
}

fn save_entry(e: &mut pei_types::snap::Encoder, en: &Entry) {
    e.u32(en.readers);
    e.bool(en.writer);
    e.seq(en.queue.len());
    for &(id, w) in &en.queue {
        e.u64(id.0);
        e.bool(w);
    }
}

fn load_entry(d: &mut pei_types::snap::Decoder<'_>) -> pei_types::snap::SnapResult<Entry> {
    let readers = d.u32()?;
    let writer = d.bool()?;
    let n = d.seq(9)?;
    let mut queue = VecDeque::with_capacity(n);
    for _ in 0..n {
        queue.push_back((ReqId(d.u64()?), d.bool()?));
    }
    Ok(Entry {
        readers,
        writer,
        queue,
    })
}

impl pei_types::snap::SnapshotState for PimDirectory {
    fn save(&self, e: &mut pei_types::snap::Encoder) {
        e.seq(self.entries.len());
        for en in &self.entries {
            save_entry(e, en);
        }
        let mut ideal: Vec<_> = self.ideal_entries.iter().collect();
        ideal.sort_by_key(|(b, _)| b.0);
        e.seq(ideal.len());
        for (b, en) in ideal {
            e.u64(b.0);
            save_entry(e, en);
        }
        let mut held: Vec<_> = self.held.iter().collect();
        held.sort_by_key(|(id, _)| id.0);
        e.seq(held.len());
        for (id, &(b, w)) in held {
            e.u64(id.0);
            e.u64(b.0);
            e.bool(w);
        }
        e.u64(self.grants);
        e.u64(self.queued);
        e.usize(self.peak_queue);
    }

    fn load(&mut self, d: &mut pei_types::snap::Decoder<'_>) -> pei_types::snap::SnapResult<()> {
        let n = d.seq(9)?;
        pei_types::snap::check_len("PIM-directory entries", n, self.entries.len())?;
        for en in &mut self.entries {
            *en = load_entry(d)?;
        }
        let n = d.seq(17)?;
        self.ideal_entries = HashMap::with_capacity(n);
        for _ in 0..n {
            let block = BlockAddr(d.u64()?);
            let en = load_entry(d)?;
            self.ideal_entries.insert(block, en);
        }
        let n = d.seq(17)?;
        self.held = HashMap::with_capacity(n);
        for _ in 0..n {
            let id = ReqId(d.u64()?);
            let block = BlockAddr(d.u64()?);
            let writer = d.bool()?;
            self.held.insert(id, (block, writer));
        }
        self.grants = d.u64()?;
        self.queued = d.u64()?;
        self.peak_queue = d.usize()?;
        Ok(())
    }
}

#[cfg(test)]
impl PimDirectory {
    /// Test helper: ids currently *holding* (not queued) a lock on blocks
    /// equal to `block_mod` modulo 4 (used by the interleaving test).
    fn held_ids_for_test(&self, block_mod: u64) -> Vec<ReqId> {
        self.held
            .iter()
            .filter(|(id, (b, w))| {
                *w && b.0 == block_mod && {
                    // held but not queued: check it is not in any queue
                    let idx = b.xor_fold(self.index_bits) as usize;
                    !self.entries[idx].queue.iter().any(|(qid, _)| qid == *id)
                }
            })
            .map(|(id, _)| *id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> PimDirectory {
        PimDirectory::new(2048, false)
    }

    /// Test shorthand: release and collect the grants.
    fn rel(d: &mut PimDirectory, id: ReqId) -> Vec<(ReqId, bool)> {
        let mut granted = Vec::new();
        d.release(id, &mut granted);
        granted
    }

    #[test]
    fn readers_share() {
        let mut d = dir();
        assert_eq!(
            d.acquire(ReqId(1), BlockAddr(5), false),
            AcquireResult::Granted
        );
        assert_eq!(
            d.acquire(ReqId(2), BlockAddr(5), false),
            AcquireResult::Granted
        );
        assert!(rel(&mut d, ReqId(1)).is_empty());
        assert!(rel(&mut d, ReqId(2)).is_empty());
    }

    #[test]
    fn writer_excludes_readers_and_writers() {
        let mut d = dir();
        d.acquire(ReqId(1), BlockAddr(5), true);
        assert_eq!(
            d.acquire(ReqId(2), BlockAddr(5), false),
            AcquireResult::Queued
        );
        assert_eq!(
            d.acquire(ReqId(3), BlockAddr(5), true),
            AcquireResult::Queued
        );
        let granted = rel(&mut d, ReqId(1));
        // FIFO: the reader queued first goes first, alone (writer behind).
        assert_eq!(granted, vec![(ReqId(2), false)]);
        let granted = rel(&mut d, ReqId(2));
        assert_eq!(granted, vec![(ReqId(3), true)]);
    }

    #[test]
    fn waiting_writer_blocks_new_readers() {
        // §4.3: the entry is marked non-readable to avoid write starvation.
        let mut d = dir();
        d.acquire(ReqId(1), BlockAddr(5), false); // reader executing
        d.acquire(ReqId(2), BlockAddr(5), true); // writer waits
        assert_eq!(
            d.acquire(ReqId(3), BlockAddr(5), false),
            AcquireResult::Queued,
            "reader behind waiting writer must queue"
        );
        let granted = rel(&mut d, ReqId(1));
        assert_eq!(granted, vec![(ReqId(2), true)]);
        let granted = rel(&mut d, ReqId(2));
        assert_eq!(granted, vec![(ReqId(3), false)]);
    }

    #[test]
    fn consecutive_readers_granted_together() {
        let mut d = dir();
        d.acquire(ReqId(1), BlockAddr(5), true);
        d.acquire(ReqId(2), BlockAddr(5), false);
        d.acquire(ReqId(3), BlockAddr(5), false);
        let granted = rel(&mut d, ReqId(1));
        assert_eq!(granted, vec![(ReqId(2), false), (ReqId(3), false)]);
    }

    #[test]
    fn aliasing_blocks_serialize_in_real_mode() {
        // Two blocks that fold to the same index: block and
        // block + entries (fold is XOR of 11-bit slices, so adding the
        // table size flips only upper fold bits — craft a collision).
        let mut d = PimDirectory::new(2, false);
        // With 1-bit index, blocks 0 and 2 both fold to 0 (binary 10 -> 1^0=1; use 0 and 3: 11 -> 1^1 = 0).
        assert_eq!(BlockAddr(0).xor_fold(1), BlockAddr(3).xor_fold(1));
        d.acquire(ReqId(1), BlockAddr(0), true);
        assert_eq!(
            d.acquire(ReqId(2), BlockAddr(3), true),
            AcquireResult::Queued,
            "false-positive serialization"
        );
    }

    #[test]
    fn ideal_mode_has_no_aliasing() {
        let mut d = PimDirectory::new(2, true);
        d.acquire(ReqId(1), BlockAddr(0), true);
        assert_eq!(
            d.acquire(ReqId(2), BlockAddr(3), true),
            AcquireResult::Granted,
            "ideal directory must not alias"
        );
        rel(&mut d, ReqId(1));
        rel(&mut d, ReqId(2));
        assert_eq!(d.in_flight(), 0);
    }

    #[test]
    fn never_two_writers_same_block() {
        // Property-style check over a deterministic interleaving.
        let mut d = dir();
        let mut active_writers = std::collections::HashSet::new();
        let mut queued = VecDeque::new();
        for i in 0..100u64 {
            let id = ReqId(i);
            match d.acquire(id, BlockAddr(i % 4), true) {
                AcquireResult::Granted => {
                    assert!(
                        active_writers.insert(i % 4),
                        "two writers on block {}",
                        i % 4
                    );
                }
                AcquireResult::Queued => queued.push_back(id),
            }
            if i % 3 == 2 {
                if let Some(&w) = active_writers.iter().next() {
                    let done: Vec<ReqId> = d.held_ids_for_test(w).into_iter().take(1).collect();
                    for id in done {
                        active_writers.remove(&w);
                        for (gid, _) in rel(&mut d, id) {
                            let blk = gid.0 % 4;
                            assert!(active_writers.insert(blk), "double grant on {blk}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "duplicate PEI id")]
    fn duplicate_id_rejected() {
        let mut d = dir();
        d.acquire(ReqId(1), BlockAddr(0), false);
        d.acquire(ReqId(1), BlockAddr(1), false);
    }

    #[test]
    #[should_panic(expected = "unknown PEI id")]
    fn release_unknown_rejected() {
        dir().release(ReqId(42), &mut Vec::new());
    }
}
