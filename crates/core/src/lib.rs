//! PIM-enabled instructions: the paper's contribution.
//!
//! This crate implements the architecture of §3–§4:
//!
//! * [`ops`] — execution semantics of the seven PIM operations of Table 1
//!   against the functional backing store (both host-side and memory-side
//!   PCUs call the same `apply`, which is exactly the paper's "all PCUs
//!   have the same computation logic").
//! * [`directory`] — the PIM directory: a direct-mapped, tag-less table of
//!   reader-writer locks indexed by XOR-folded block addresses, providing
//!   PEI atomicity with rare false-positive serialization (§4.3).
//! * [`monitor`] — the locality monitor: an L3-shaped partial-tag array
//!   with per-entry ignore bits that predicts whether a PEI's target block
//!   is cache-resident (§4.3).
//! * [`pcu`] — PEI computation units: the host-side PCU (shares its core's
//!   L1 port) and the memory-side PCU (one per vault, drives the vault's
//!   DRAM controller), each with an operand buffer and configurable
//!   execution width (§4.2).
//! * [`pmu`] — the PEI management unit near the L3: coordinates atomicity,
//!   coherence (back-invalidation / back-writeback), locality-aware
//!   dispatch, balanced dispatch (§7.4), and pfence (§3.2).
//! * [`dispatch`] — the execution-location policies evaluated in §7
//!   (Host-Only, PIM-Only, Locality-Aware, plus balanced dispatch).
//!
//! This crate's place in the workspace is mapped in DESIGN.md §5.

pub mod directory;
pub mod dispatch;
pub mod monitor;
pub mod ops;
pub mod pcu;
pub mod pmu;

pub use directory::{AcquireResult, PimDirectory};
pub use dispatch::DispatchPolicy;
pub use monitor::LocalityMonitor;
pub use ops::apply;
pub use pcu::{HostPcu, HostPcuOut, MemPcu, MemPcuOut, PcuConfig};
pub use pmu::{Pmu, PmuConfig, PmuIn, PmuOut};
