//! Execution semantics of the PIM operations (Table 1).
//!
//! Every PCU in the system executes operations through [`apply`], mutating
//! the functional backing store — so a workload's final memory contents are
//! bit-comparable with its sequential reference implementation regardless
//! of where each PEI executed. The PIM directory guarantees the atomicity
//! that makes this well-defined under concurrency.
//!
//! # Hash-bucket layout (HashProbe)
//!
//! A bucket is one 64-byte cache block: four 8-byte keys, a payload slot,
//! and an 8-byte next-bucket pointer in the last word. A key of 0 is an
//! empty slot; a next pointer of 0 terminates the chain. `pei-workloads`
//! builds its hash tables in exactly this layout.

use pei_mem::BackingStore;
use pei_types::{Addr, OperandValue, PimOpKind, BLOCK_BYTES};

/// Keys per hash bucket (HashProbe layout).
pub const BUCKET_KEYS: usize = 4;
/// Byte offset of the next-bucket pointer within a bucket block.
pub const BUCKET_NEXT_OFFSET: u64 = (BLOCK_BYTES - 8) as u64;

/// Executes `op` against the cache block containing `target`, reading the
/// `input` operand and returning the output operand.
///
/// The single-cache-block restriction (§3.1) holds by construction: all
/// memory reads/writes stay within `target`'s block.
///
/// # Panics
///
/// Panics if `input` does not match the operand type the operation expects
/// (a malformed PEI, which real hardware would reject at decode).
pub fn apply(
    op: PimOpKind,
    target: Addr,
    input: &OperandValue,
    mem: &mut BackingStore,
) -> OperandValue {
    match op {
        PimOpKind::IncU64 => {
            let v = mem.read_u64(target);
            mem.write_u64(target, v.wrapping_add(1));
            OperandValue::None
        }
        PimOpKind::MinU64 => {
            let new = input.as_u64().expect("min expects a u64 operand");
            let cur = mem.read_u64(target);
            if new < cur {
                mem.write_u64(target, new);
            }
            OperandValue::None
        }
        PimOpKind::AddF64 => {
            let delta = input.as_f64().expect("fadd expects an f64 operand");
            let cur = mem.read_f64(target);
            mem.write_f64(target, cur + delta);
            OperandValue::None
        }
        PimOpKind::HashProbe => {
            let key = input.as_u64().expect("probe expects a u64 key");
            let base = target.block().base();
            let mut matched = 0u8;
            for k in 0..BUCKET_KEYS {
                if mem.read_u64(base.offset(8 * k as u64)) == key {
                    matched = 1;
                    break;
                }
            }
            let next = mem.read_u64(base.offset(BUCKET_NEXT_OFFSET));
            let mut out = [0u8; 9];
            out[0] = matched;
            out[1..].copy_from_slice(&next.to_le_bytes());
            OperandValue::from_bytes(&out)
        }
        PimOpKind::HistBin => {
            let shift = match input {
                OperandValue::U64(v) => *v as u32,
                OperandValue::Bytes(b) if b.len() == 1 => b[0] as u32,
                other => panic!("histbin expects a 1-byte shift operand, got {other:?}"),
            };
            let base = target.block().base();
            let mut bins = [0u8; 16];
            for (i, bin) in bins.iter_mut().enumerate() {
                let w = mem.read_u32(base.offset(4 * i as u64));
                *bin = ((w >> shift) & 0xff) as u8;
            }
            OperandValue::from_bytes(&bins)
        }
        PimOpKind::EuclideanDist => {
            let b = input.as_bytes().expect("eudist expects a 64-byte vector");
            assert_eq!(b.len(), 64, "eudist operand must be 16 f32 values");
            let base = target.block().base();
            let mut acc = 0f32;
            for i in 0..16 {
                let x = mem.read_f32(base.offset(4 * i as u64));
                let y = f32::from_le_bytes(b[4 * i..4 * i + 4].try_into().unwrap());
                acc += (x - y) * (x - y);
            }
            OperandValue::from_bytes(&acc.to_le_bytes())
        }
        PimOpKind::DotProduct => {
            let b = input.as_bytes().expect("dot expects a 32-byte vector");
            assert_eq!(b.len(), 32, "dot operand must be 4 f64 values");
            let base = target.block().base();
            let mut acc = 0f64;
            for i in 0..4 {
                let x = mem.read_f64(base.offset(8 * i as u64));
                let y = f64::from_le_bytes(b[8 * i..8 * i + 8].try_into().unwrap());
                acc += x * y;
            }
            OperandValue::F64(acc)
        }
    }
}

/// Host-clock execution latency of each operation's computation logic, in
/// cycles. Simple integer ops take a cycle or two; the 16-lane FP
/// reductions (distance, dot product) take longer on the PCU's narrow
/// datapath.
pub fn host_latency(op: PimOpKind) -> u64 {
    match op {
        PimOpKind::IncU64 | PimOpKind::MinU64 => 2,
        PimOpKind::AddF64 => 4,
        PimOpKind::HashProbe => 4,
        PimOpKind::HistBin => 8,
        PimOpKind::EuclideanDist => 16,
        PimOpKind::DotProduct => 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_with_block() -> (BackingStore, Addr) {
        let mut m = BackingStore::new();
        let a = m.alloc_block();
        (m, a)
    }

    #[test]
    fn inc_increments_in_place() {
        let (mut m, a) = mem_with_block();
        m.write_u64(a, 41);
        let out = apply(PimOpKind::IncU64, a, &OperandValue::None, &mut m);
        assert_eq!(out, OperandValue::None);
        assert_eq!(m.read_u64(a), 42);
    }

    #[test]
    fn inc_wraps_at_max() {
        let (mut m, a) = mem_with_block();
        m.write_u64(a, u64::MAX);
        apply(PimOpKind::IncU64, a, &OperandValue::None, &mut m);
        assert_eq!(m.read_u64(a), 0);
    }

    #[test]
    fn min_keeps_smaller_value() {
        let (mut m, a) = mem_with_block();
        m.write_u64(a, 10);
        apply(PimOpKind::MinU64, a, &OperandValue::U64(7), &mut m);
        assert_eq!(m.read_u64(a), 7);
        apply(PimOpKind::MinU64, a, &OperandValue::U64(9), &mut m);
        assert_eq!(m.read_u64(a), 7, "larger operand must not overwrite");
    }

    #[test]
    fn fadd_accumulates() {
        let (mut m, a) = mem_with_block();
        m.write_f64(a, 1.5);
        apply(PimOpKind::AddF64, a, &OperandValue::F64(0.25), &mut m);
        assert_eq!(m.read_f64(a), 1.75);
    }

    #[test]
    fn fadd_is_order_insensitive_for_commutative_sums() {
        // The atomicity guarantee means only the *set* of deltas matters.
        let (mut m, a) = mem_with_block();
        let deltas = [0.5, 0.25, 1.0, 2.0];
        for d in deltas {
            apply(PimOpKind::AddF64, a, &OperandValue::F64(d), &mut m);
        }
        let (mut m2, a2) = mem_with_block();
        for d in deltas.iter().rev() {
            apply(PimOpKind::AddF64, a2, &OperandValue::F64(*d), &mut m2);
        }
        assert_eq!(m.read_f64(a), m2.read_f64(a2));
    }

    #[test]
    fn probe_finds_key_and_returns_next() {
        let (mut m, a) = mem_with_block();
        let base = a.block().base();
        m.write_u64(base.offset(0), 100);
        m.write_u64(base.offset(8), 200);
        m.write_u64(base.offset(BUCKET_NEXT_OFFSET), 0xdead0000);
        let out = apply(PimOpKind::HashProbe, a, &OperandValue::U64(200), &mut m);
        let bytes = out.as_bytes().unwrap();
        assert_eq!(bytes[0], 1, "key 200 present");
        assert_eq!(
            u64::from_le_bytes(bytes[1..].try_into().unwrap()),
            0xdead0000
        );
        let miss = apply(PimOpKind::HashProbe, a, &OperandValue::U64(999), &mut m);
        assert_eq!(miss.as_bytes().unwrap()[0], 0);
    }

    #[test]
    fn probe_output_is_9_bytes_per_table1() {
        let (mut m, a) = mem_with_block();
        let out = apply(PimOpKind::HashProbe, a, &OperandValue::U64(1), &mut m);
        assert_eq!(out.byte_len(), 9);
    }

    #[test]
    fn histbin_shifts_and_truncates_each_word() {
        let (mut m, a) = mem_with_block();
        let base = a.block().base();
        for i in 0..16u64 {
            m.write_u32(base.offset(4 * i), (i as u32) << 8);
        }
        let out = apply(
            PimOpKind::HistBin,
            a,
            &OperandValue::from_bytes(&[8u8]),
            &mut m,
        );
        let bins = out.as_bytes().unwrap();
        assert_eq!(bins.len(), 16);
        for (i, b) in bins.iter().enumerate() {
            assert_eq!(*b as usize, i);
        }
    }

    #[test]
    fn eudist_matches_scalar_computation() {
        let (mut m, a) = mem_with_block();
        let base = a.block().base();
        let point: Vec<f32> = (0..16).map(|i| i as f32 * 0.5).collect();
        let center: Vec<f32> = (0..16).map(|i| 8.0 - i as f32).collect();
        for (i, v) in point.iter().enumerate() {
            m.write_f32(base.offset(4 * i as u64), *v);
        }
        let mut operand = Vec::new();
        for v in &center {
            operand.extend_from_slice(&v.to_le_bytes());
        }
        let out = apply(
            PimOpKind::EuclideanDist,
            a,
            &OperandValue::from_bytes(&operand),
            &mut m,
        );
        let got = f32::from_le_bytes(out.as_bytes().unwrap().try_into().unwrap());
        let want: f32 = point
            .iter()
            .zip(&center)
            .map(|(x, y)| (x - y) * (x - y))
            .sum();
        assert_eq!(got, want);
    }

    #[test]
    fn dot_product_matches_scalar_computation() {
        let (mut m, a) = mem_with_block();
        let base = a.block().base();
        let x = [1.0f64, -2.0, 3.0, 0.5];
        let w = [2.0f64, 1.0, -1.0, 4.0];
        for (i, v) in x.iter().enumerate() {
            m.write_f64(base.offset(8 * i as u64), *v);
        }
        let mut operand = Vec::new();
        for v in &w {
            operand.extend_from_slice(&v.to_le_bytes());
        }
        let out = apply(
            PimOpKind::DotProduct,
            a,
            &OperandValue::from_bytes(&operand),
            &mut m,
        );
        let want: f64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
        assert_eq!(out.as_f64(), Some(want));
    }

    #[test]
    fn readers_do_not_mutate_memory() {
        let (mut m, a) = mem_with_block();
        let base = a.block().base();
        for i in 0..8u64 {
            m.write_u64(base.offset(8 * i), i * 1000 + 7);
        }
        let before: Vec<u8> = m.read_block(a.block()).to_vec();
        apply(PimOpKind::HashProbe, a, &OperandValue::U64(7), &mut m);
        apply(
            PimOpKind::HistBin,
            a,
            &OperandValue::from_bytes(&[0u8]),
            &mut m,
        );
        apply(
            PimOpKind::EuclideanDist,
            a,
            &OperandValue::from_bytes(&[0u8; 64]),
            &mut m,
        );
        apply(
            PimOpKind::DotProduct,
            a,
            &OperandValue::from_bytes(&[0u8; 32]),
            &mut m,
        );
        assert_eq!(m.read_block(a.block()).to_vec(), before);
    }

    #[test]
    #[should_panic(expected = "expects a u64")]
    fn wrong_operand_type_rejected() {
        let (mut m, a) = mem_with_block();
        apply(PimOpKind::MinU64, a, &OperandValue::None, &mut m);
    }

    #[test]
    fn latencies_are_positive_for_all_ops() {
        for op in PimOpKind::ALL {
            assert!(host_latency(op) > 0);
        }
    }
}
