//! The locality monitor: hardware data-locality prediction for PEIs (§4.3).
//!
//! A tag array with the same sets/ways as the last-level cache, holding
//! 10-bit partial tags (folded-XOR of the full tag), LRU replacement
//! information, and a 1-bit *ignore* flag per entry. It shadows every L3
//! access, and is additionally updated when a PIM operation is issued to
//! memory — so locality is monitored regardless of where PEIs execute.
//! Entries allocated *by* a PIM operation have their ignore flag set, so
//! the first hit to such an entry is ignored (going to memory once more)
//! before the block is considered cache-worthy.

use pei_engine::{CounterId, Counters, StatsReport};
use pei_types::BlockAddr;

#[derive(Debug, Clone, Copy, Default)]
struct MonEntry {
    valid: bool,
    partial_tag: u16,
    full_tag: u64,
    ignore: bool,
    lru: u8,
}

/// The locality monitor.
///
/// # Examples
///
/// ```
/// use pei_core::LocalityMonitor;
/// use pei_types::BlockAddr;
///
/// let mut mon = LocalityMonitor::new(1024, 16, 10, false);
/// assert!(!mon.query(BlockAddr(7)), "cold block predicts low locality");
/// mon.on_l3_access(BlockAddr(7));
/// assert!(mon.query(BlockAddr(7)), "L3-touched block predicts high locality");
/// ```
#[derive(Debug)]
pub struct LocalityMonitor {
    sets: usize,
    ways: usize,
    tag_bits: u32,
    /// Ideal mode (§7.6): full tags, i.e. no partial-tag false positives.
    ideal: bool,
    /// Whether the per-entry ignore bit is honored (§4.3; an ablation
    /// knob — disabling it makes the first hit to a PIM-allocated entry
    /// count as high locality).
    ignore_enabled: bool,
    entries: Vec<MonEntry>,
    counters: Counters,
    c: MonCounters,
}

/// The monitor's counter bank.
#[derive(Debug)]
struct MonCounters {
    queries: CounterId,
    hits: CounterId,
    ignored_first_hits: CounterId,
    partial_tag_aliases: CounterId,
}

impl MonCounters {
    fn register(c: &mut Counters) -> Self {
        MonCounters {
            queries: c.register("queries"),
            hits: c.register("hits"),
            ignored_first_hits: c.register("ignored_first_hits"),
            partial_tag_aliases: c.register("partial_tag_aliases"),
        }
    }
}

impl LocalityMonitor {
    /// Creates a monitor with the L3's geometry (`sets` × `ways`) and
    /// `tag_bits`-wide partial tags (the paper uses 10).
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two, `ways` is zero, or
    /// `tag_bits` is not in `1..=16`.
    pub fn new(sets: usize, ways: usize, tag_bits: u32, ideal: bool) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0, "way count must be nonzero");
        assert!((1..=16).contains(&tag_bits), "partial tags are 1..=16 bits");
        let mut counters = Counters::new();
        let c = MonCounters::register(&mut counters);
        LocalityMonitor {
            sets,
            ways,
            tag_bits,
            ideal,
            ignore_enabled: true,
            entries: vec![MonEntry::default(); sets * ways],
            counters,
            c,
        }
    }

    #[inline]
    fn set_of(&self, block: BlockAddr) -> usize {
        (block.0 as usize) & (self.sets - 1)
    }

    #[inline]
    fn tags_of(&self, block: BlockAddr) -> (u16, u64) {
        let full = block.0 >> self.sets.trailing_zeros();
        let partial = BlockAddr(full).xor_fold(self.tag_bits) as u16;
        (partial, full)
    }

    fn find(&self, block: BlockAddr) -> Option<usize> {
        let set = self.set_of(block);
        let (partial, full) = self.tags_of(block);
        (0..self.ways).find(|&w| {
            let e = &self.entries[set * self.ways + w];
            e.valid
                && if self.ideal {
                    e.full_tag == full
                } else {
                    e.partial_tag == partial
                }
        })
    }

    fn promote(&mut self, set: usize, way: usize) {
        let old = self.entries[set * self.ways + way].lru;
        for w in 0..self.ways {
            let e = &mut self.entries[set * self.ways + w];
            if e.valid && e.lru < old {
                e.lru += 1;
            }
        }
        self.entries[set * self.ways + way].lru = 0;
    }

    fn touch(&mut self, block: BlockAddr, from_pim: bool) {
        let set = self.set_of(block);
        let (partial, full) = self.tags_of(block);
        match self.find(block) {
            Some(way) => {
                self.promote(set, way);
                // Re-touch by a demand access clears PIM-allocated status.
                if !from_pim {
                    self.entries[set * self.ways + way].ignore = false;
                }
            }
            None => {
                // Allocate the LRU (or an invalid) way.
                let way = (0..self.ways)
                    .find(|&w| !self.entries[set * self.ways + w].valid)
                    .unwrap_or_else(|| {
                        (0..self.ways)
                            .max_by_key(|&w| self.entries[set * self.ways + w].lru)
                            .expect("ways > 0")
                    });
                self.entries[set * self.ways + way] = MonEntry {
                    valid: true,
                    partial_tag: partial,
                    full_tag: full,
                    ignore: from_pim,
                    lru: u8::MAX,
                };
                self.promote(set, way);
            }
        }
    }

    /// Disables the first-hit ignore filter (ablation studies).
    pub fn set_ignore_enabled(&mut self, enabled: bool) {
        self.ignore_enabled = enabled;
    }

    /// Shadows a last-level cache access to `block` (hit promotion and/or
    /// block replacement, as in the L3 tag array).
    pub fn on_l3_access(&mut self, block: BlockAddr) {
        self.touch(block, false);
    }

    /// Records that a PIM operation targeting `block` was issued to
    /// memory: "the locality monitor is updated as if there is a
    /// last-level cache access to its target cache block."
    pub fn on_pim_issue(&mut self, block: BlockAddr) {
        self.touch(block, true);
    }

    /// Predicts whether `block` has high data locality. A hit on an entry
    /// whose ignore flag is set clears the flag and reports low locality
    /// (the first-hit filter for PIM-allocated entries).
    pub fn query(&mut self, block: BlockAddr) -> bool {
        self.counters.inc(self.c.queries);
        let set = self.set_of(block);
        let (_, full) = self.tags_of(block);
        match self.find(block) {
            Some(way) => {
                let e = &mut self.entries[set * self.ways + way];
                if e.ignore && self.ignore_enabled {
                    e.ignore = false;
                    self.counters.inc(self.c.ignored_first_hits);
                    false
                } else {
                    if e.full_tag != full {
                        // Partial-tag alias: counted for §7.6 analysis
                        // (still reported as a hit, as real hardware would).
                        self.counters.inc(self.c.partial_tag_aliases);
                    }
                    self.counters.inc(self.c.hits);
                    self.promote(set, way);
                    true
                }
            }
            None => false,
        }
    }

    /// Storage overhead in bits per entry (§6.1: valid + 10-bit partial
    /// tag + 4-bit LRU + ignore = 16 bits).
    pub fn bits_per_entry(&self) -> u32 {
        1 + self.tag_bits + 4 + 1
    }

    /// Labels the current counter values as the end of phase `label`
    /// (see `Counters::snapshot`).
    pub fn snapshot_phase(&mut self, label: &'static str) {
        self.counters.snapshot(label);
    }

    /// Dumps statistics under `prefix`.
    pub fn report(&self, prefix: &str, stats: &mut StatsReport) {
        self.counters.flush(prefix, stats);
    }
}

impl pei_types::snap::SnapshotState for LocalityMonitor {
    fn save(&self, e: &mut pei_types::snap::Encoder) {
        e.bool(self.ignore_enabled);
        e.seq(self.entries.len());
        for en in &self.entries {
            e.bool(en.valid);
            e.u16(en.partial_tag);
            e.u64(en.full_tag);
            e.bool(en.ignore);
            e.u8(en.lru);
        }
        self.counters.save(e);
    }

    fn load(&mut self, d: &mut pei_types::snap::Decoder<'_>) -> pei_types::snap::SnapResult<()> {
        self.ignore_enabled = d.bool()?;
        let n = d.seq(13)?;
        pei_types::snap::check_len("locality-monitor entries", n, self.entries.len())?;
        for en in &mut self.entries {
            en.valid = d.bool()?;
            en.partial_tag = d.u16()?;
            en.full_tag = d.u64()?;
            en.ignore = d.bool()?;
            en.lru = d.u8()?;
        }
        self.counters.load(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mon() -> LocalityMonitor {
        LocalityMonitor::new(64, 4, 10, false)
    }

    #[test]
    fn cold_miss_then_l3_touch_hits() {
        let mut m = mon();
        assert!(!m.query(BlockAddr(42)));
        m.on_l3_access(BlockAddr(42));
        assert!(m.query(BlockAddr(42)));
    }

    #[test]
    fn pim_allocated_entry_ignores_first_hit() {
        let mut m = mon();
        m.on_pim_issue(BlockAddr(42));
        assert!(!m.query(BlockAddr(42)), "first hit ignored");
        assert!(m.query(BlockAddr(42)), "second hit counts");
    }

    #[test]
    fn l3_access_clears_ignore() {
        let mut m = mon();
        m.on_pim_issue(BlockAddr(42));
        m.on_l3_access(BlockAddr(42));
        assert!(m.query(BlockAddr(42)), "demand touch upgrades the entry");
    }

    #[test]
    fn lru_eviction_forgets_cold_blocks() {
        let mut m = LocalityMonitor::new(1, 2, 10, false);
        m.on_l3_access(BlockAddr(1));
        m.on_l3_access(BlockAddr(2));
        m.on_l3_access(BlockAddr(3)); // evicts 1
        assert!(!m.query(BlockAddr(1)));
        assert!(m.query(BlockAddr(2)));
        assert!(m.query(BlockAddr(3)));
    }

    #[test]
    fn partial_tags_can_alias_but_ideal_does_not() {
        // Two blocks in the same set whose full tags fold to the same
        // 10-bit partial tag: tag and tag ^ (x << 10) with xor_fold
        // collision. Full tags 0b1 and (1 << 10) | 0b0? fold(1<<10)=1.
        let sets = 64usize;
        let a = BlockAddr(1 << 6); // set 0, full tag 1
        let b = BlockAddr((1 << 10) << 6); // set 0, full tag 1024, fold -> 1
        assert_eq!(
            BlockAddr(a.0 >> 6).xor_fold(10),
            BlockAddr(b.0 >> 6).xor_fold(10)
        );
        let mut real = LocalityMonitor::new(sets, 4, 10, false);
        real.on_l3_access(a);
        assert!(real.query(b), "partial tags alias");
        let mut ideal = LocalityMonitor::new(sets, 4, 10, true);
        ideal.on_l3_access(a);
        assert!(!ideal.query(b), "ideal monitor uses full tags");
    }

    #[test]
    fn paper_entry_is_16_bits() {
        assert_eq!(mon().bits_per_entry(), 16);
    }

    #[test]
    fn stats_track_queries() {
        let mut m = mon();
        m.on_pim_issue(BlockAddr(9));
        m.query(BlockAddr(9));
        let mut s = StatsReport::new();
        m.report("mon.", &mut s);
        assert_eq!(s.get("mon.queries"), Some(1.0));
        assert_eq!(s.get("mon.ignored_first_hits"), Some(1.0));
    }
}
