//! PEI computation units (§4.2).
//!
//! Every PCU has the same computation logic (so any PEI can execute on any
//! PCU) and an operand buffer that decouples memory access from
//! computation: a PEI's target-block fetch is issued as soon as a buffer
//! entry is free, even if the computation logic is busy, which is how the
//! architecture extracts memory-level parallelism from simple operations.
//!
//! * [`HostPcu`] — one per core, sharing the core's L1 port; executes PEIs
//!   with high data locality.
//! * [`MemPcu`] — one per vault, driving the vault's DRAM controller;
//!   executes offloaded PEIs.

use crate::ops;
use pei_engine::{ClockDomain, CounterId, Counters, OccupancyPool, Outbox, StatsReport};
use pei_mem::msg::CoreReq;
use pei_mem::BackingStore;
use pei_types::mem::ns;
use pei_types::{Addr, CoreId, Cycle, OperandValue, PimCmd, PimOpKind, PimOut, ReqId};
use std::collections::{HashMap, VecDeque};

/// PCU microarchitecture parameters (§6.1 defaults; Fig. 11 sweeps them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcuConfig {
    /// Operand-buffer entries (default 4).
    pub operand_entries: usize,
    /// Execution width of the computation logic (default 1).
    pub exec_width: usize,
    /// Latency of the memory-mapped register interface between a core and
    /// its host-side PCU, in host cycles.
    pub mmreg_latency: Cycle,
}

impl PcuConfig {
    /// The paper's configuration: four operand-buffer entries,
    /// single-issue computation logic.
    pub fn paper() -> Self {
        PcuConfig {
            operand_entries: 4,
            exec_width: 1,
            mmreg_latency: 2,
        }
    }
}

/// One in-flight PEI at a host-side PCU.
#[derive(Debug, Clone)]
struct HostTask {
    seq: u64,
    op: PimOpKind,
    target: Addr,
    input: OperandValue,
}

/// Outputs of the host-side PCU.
#[derive(Debug, Clone, PartialEq)]
pub enum HostPcuOut {
    /// Register the PEI with the PMU (lock + locality decision).
    ToPmu {
        /// PEI transaction id.
        id: ReqId,
        /// Operation.
        op: PimOpKind,
        /// Target address.
        target: Addr,
        /// Input operands (forwarded for possible memory-side execution).
        input: OperandValue,
        /// Departure cycle.
        at: Cycle,
    },
    /// Fetch the target block through the core's L1 (host-side execution).
    L1Access {
        /// The cache request (write permission for writer PEIs).
        req: CoreReq,
        /// Departure cycle.
        at: Cycle,
    },
    /// PEI finished: notify the core (frees its operand-buffer credit) and
    /// deliver output operands.
    DoneToCore {
        /// The core's PEI sequence number.
        seq: u64,
        /// Output operands.
        output: OperandValue,
        /// Completion cycle.
        at: Cycle,
    },
    /// PEI finished executing *on the host*: release the PIM-directory
    /// lock (step 6 of Fig. 4, done in background).
    ReleaseToPmu {
        /// PEI transaction id.
        id: ReqId,
        /// Completion cycle.
        at: Cycle,
    },
    /// An operand-buffer entry freed: return the core's PEI credit. For
    /// host execution this coincides with completion; for memory dispatch
    /// it arrives as soon as the operands are handed off.
    CreditToCore {
        /// The core's PEI sequence number.
        seq: u64,
        /// Credit-return cycle.
        at: Cycle,
    },
}

/// The host-side PCU of one core.
#[derive(Debug)]
pub struct HostPcu {
    core: CoreId,
    cfg: PcuConfig,
    compute: OccupancyPool,
    tasks: HashMap<ReqId, HostTask>,
    // Occupied operand-buffer entries. Smaller than `tasks.len()`:
    // memory-dispatched PEIs hand their entry off to the memory side
    // (on_dispatched_mem) but stay in `tasks` until the result returns.
    // Mirrors the core's credit window, so it can never legitimately
    // exceed `cfg.operand_entries` (the invariant-checker bound).
    occupied: usize,
    next_local: u64,
    counters: Counters,
    c: HostPcuCounters,
}

/// The host-side PCU's counter bank.
#[derive(Debug)]
struct HostPcuCounters {
    host_execs: CounterId,
    mem_execs: CounterId,
}

impl HostPcuCounters {
    fn register(c: &mut Counters) -> Self {
        HostPcuCounters {
            host_execs: c.register("host_execs"),
            mem_execs: c.register("mem_execs"),
        }
    }
}

impl HostPcu {
    /// Creates the PCU for `core`.
    pub fn new(core: CoreId, cfg: PcuConfig) -> Self {
        let mut counters = Counters::new();
        let c = HostPcuCounters::register(&mut counters);
        HostPcu {
            core,
            cfg,
            compute: OccupancyPool::new(cfg.exec_width),
            tasks: HashMap::new(),
            occupied: 0,
            next_local: 0,
            counters,
            c,
        }
    }

    /// Accepts a PEI from the core (§4.5 step 1: operands written to the
    /// memory-mapped registers) and forwards it to the PMU.
    pub fn begin(
        &mut self,
        now: Cycle,
        seq: u64,
        op: PimOpKind,
        target: Addr,
        input: OperandValue,
        out: &mut Outbox<HostPcuOut>,
    ) -> ReqId {
        self.next_local += 1;
        self.occupied += 1;
        let id = ReqId::tagged(ns::HOST_PCU, self.core.0, self.next_local);
        self.tasks.insert(
            id,
            HostTask {
                seq,
                op,
                target,
                input: input.clone(),
            },
        );
        out.push(HostPcuOut::ToPmu {
            id,
            op,
            target,
            input,
            at: now + self.cfg.mmreg_latency,
        });
        id
    }

    /// The PMU decided host-side execution: load the target block through
    /// the L1 (§4.5 step 3).
    pub fn on_decision_host(&mut self, now: Cycle, id: ReqId, out: &mut Outbox<HostPcuOut>) {
        let task = self.tasks.get(&id).expect("unknown host PEI");
        out.push(HostPcuOut::L1Access {
            req: CoreReq {
                id,
                addr: task.target,
                write: task.op.is_writer(),
            },
            at: now,
        });
    }

    /// The L1 returned the target block: execute (§4.5 steps 4–7).
    pub fn on_l1_resp(
        &mut self,
        now: Cycle,
        id: ReqId,
        mem: &mut BackingStore,
        out: &mut Outbox<HostPcuOut>,
    ) {
        let task = self.tasks.remove(&id).expect("unknown host PEI");
        self.occupied -= 1;
        self.counters.inc(self.c.host_execs);
        let start = self.compute.reserve(now, ops::host_latency(task.op));
        let mut done = start + ops::host_latency(task.op);
        if task.op.is_writer() {
            done += 1; // store back into the L1 (hit: permission held)
        }
        let output = ops::apply(task.op, task.target, &task.input, mem);
        out.push(HostPcuOut::ReleaseToPmu { id, at: done });
        out.push(HostPcuOut::CreditToCore {
            seq: task.seq,
            at: done + self.cfg.mmreg_latency,
        });
        out.push(HostPcuOut::DoneToCore {
            seq: task.seq,
            output,
            at: done + self.cfg.mmreg_latency,
        });
    }

    /// The PMU dispatched this PEI to memory: the operand-buffer entry is
    /// handed to the PMU/memory side, freeing the core's credit now.
    pub fn on_dispatched_mem(&mut self, now: Cycle, id: ReqId, out: &mut Outbox<HostPcuOut>) {
        let task = self.tasks.get(&id).expect("unknown host PEI");
        self.occupied -= 1;
        out.push(HostPcuOut::CreditToCore {
            seq: task.seq,
            at: now + self.cfg.mmreg_latency,
        });
    }

    /// The PMU executed this PEI in memory and returned its outputs
    /// (§4.5 memory-side step 7→8).
    pub fn on_mem_result(
        &mut self,
        now: Cycle,
        id: ReqId,
        output: OperandValue,
        out: &mut Outbox<HostPcuOut>,
    ) {
        let task = self.tasks.remove(&id).expect("unknown host PEI");
        self.counters.inc(self.c.mem_execs);
        out.push(HostPcuOut::DoneToCore {
            seq: task.seq,
            output,
            at: now + self.cfg.mmreg_latency,
        });
    }

    /// In-flight PEIs owned by this PCU.
    pub fn in_flight(&self) -> usize {
        self.tasks.len()
    }

    /// Occupied operand-buffer entries. Bounded by the core's credit
    /// window (`operand_entries`) — the invariant the `pcu` checker
    /// audits. Unlike [`in_flight`](Self::in_flight), this excludes PEIs
    /// whose entry was handed to the memory side at dispatch.
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Fault-injection hook: claims a phantom operand-buffer entry that
    /// is never released, so the `pcu` checker's host-side bound trips.
    pub fn fault_overfill(&mut self) {
        self.occupied += 1;
    }

    /// `(host-executed, memory-executed)` PEI counts.
    pub fn exec_counts(&self) -> (u64, u64) {
        (
            self.counters.get(self.c.host_execs),
            self.counters.get(self.c.mem_execs),
        )
    }

    /// Labels the current counter values as the end of phase `label`
    /// (see `Counters::snapshot`).
    pub fn snapshot_phase(&mut self, label: &'static str) {
        self.counters.snapshot(label);
    }

    /// Dumps statistics under `prefix`.
    pub fn report(&self, prefix: &str, stats: &mut StatsReport) {
        self.counters.flush(prefix, stats);
    }
}

/// One in-flight PEI at a memory-side PCU.
#[derive(Debug, Clone)]
struct MemTask {
    cmd: PimCmd,
    wrote: bool,
}

/// Outputs of a memory-side PCU.
#[derive(Debug, Clone, PartialEq)]
pub enum MemPcuOut {
    /// A DRAM access to this PCU's vault.
    VaultAccess {
        /// Namespaced request id.
        id: ReqId,
        /// Block to access.
        block: pei_types::BlockAddr,
        /// Whether this is the write-back half of a writer PEI.
        write: bool,
        /// Departure cycle.
        at: Cycle,
    },
    /// The PEI completed; its response heads back over the response link.
    Complete {
        /// The completion packet.
        resp: PimOut,
        /// Completion cycle.
        at: Cycle,
    },
}

/// The memory-side PCU of one vault (§4.2): 2 GHz, four operand-buffer
/// entries, single-issue computation logic.
#[derive(Debug)]
pub struct MemPcu {
    vault_flat: u16,
    cfg: PcuConfig,
    mem_clk: ClockDomain,
    compute: OccupancyPool,
    /// In-service tasks keyed by the DRAM request id currently in flight.
    tasks: HashMap<ReqId, MemTask>,
    waiting: VecDeque<PimCmd>,
    next_local: u64,
    /// High-water mark of occupied operand-buffer entries (a max, so it
    /// lives outside the additive counter bank).
    peak_buffer: usize,
    counters: Counters,
    c: MemPcuCounters,
}

/// The memory-side PCU's counter bank.
#[derive(Debug)]
struct MemPcuCounters {
    executed: CounterId,
}

impl MemPcuCounters {
    fn register(c: &mut Counters) -> Self {
        MemPcuCounters {
            executed: c.register("executed"),
        }
    }
}

impl MemPcu {
    /// Creates the PCU for the vault with flat index `vault_flat`.
    pub fn new(vault_flat: u16, cfg: PcuConfig, mem_clk: ClockDomain) -> Self {
        let mut counters = Counters::new();
        let c = MemPcuCounters::register(&mut counters);
        MemPcu {
            vault_flat,
            cfg,
            mem_clk,
            compute: OccupancyPool::new(cfg.exec_width),
            tasks: HashMap::new(),
            waiting: VecDeque::new(),
            next_local: 0,
            peak_buffer: 0,
            counters,
            c,
        }
    }

    fn fresh_id(&mut self) -> ReqId {
        self.next_local += 1;
        ReqId::tagged(ns::MEM_PCU, self.vault_flat, self.next_local)
    }

    /// Occupied operand-buffer entries (invariant-checker access).
    pub fn in_service(&self) -> usize {
        self.tasks.len()
    }

    /// Operand-buffer capacity (invariant-checker access).
    pub fn operand_capacity(&self) -> usize {
        self.cfg.operand_entries
    }

    /// Fault hook: stuffs a phantom task into the operand buffer,
    /// bypassing admission control — the overflow a lost credit or a
    /// double-started command would produce. The phantom never
    /// completes; it exists to trip the operand-accounting checker.
    pub fn fault_overfill(&mut self) {
        let id = self.fresh_id();
        self.tasks.insert(
            id,
            MemTask {
                cmd: PimCmd {
                    id,
                    target: Addr(0),
                    op: PimOpKind::IncU64,
                    input: OperandValue::None,
                },
                wrote: false,
            },
        );
    }

    /// Accepts a PIM command from the off-chip link. If the operand buffer
    /// is full the command waits in the vault's input queue.
    pub fn on_cmd(&mut self, now: Cycle, cmd: PimCmd, out: &mut Outbox<MemPcuOut>) {
        if self.tasks.len() >= self.cfg.operand_entries {
            self.waiting.push_back(cmd);
            return;
        }
        self.start(now, cmd, out);
    }

    fn start(&mut self, now: Cycle, cmd: PimCmd, out: &mut Outbox<MemPcuOut>) {
        let id = self.fresh_id();
        let block = cmd.block();
        self.tasks.insert(id, MemTask { cmd, wrote: false });
        self.peak_buffer = self.peak_buffer.max(self.tasks.len());
        out.push(MemPcuOut::VaultAccess {
            id,
            block,
            write: false,
            at: self.mem_clk.align_up(now),
        });
    }

    /// A DRAM access issued by this PCU completed.
    pub fn on_vault_done(
        &mut self,
        now: Cycle,
        id: ReqId,
        write: bool,
        mem: &mut BackingStore,
        out: &mut Outbox<MemPcuOut>,
    ) {
        if write {
            // Write-back half finished: the PEI is complete.
            let task = self.tasks.remove(&id).expect("unknown mem PEI write");
            debug_assert!(task.wrote);
            self.finish(now, task, mem, true, out);
        } else {
            // Read half finished: compute, then write back if needed.
            let task = self.tasks.remove(&id).expect("unknown mem PEI read");
            let lat = self.mem_clk.cycles(ops::host_latency(task.cmd.op));
            let start = self.compute.reserve(now, lat);
            let done = start + lat;
            if task.cmd.op.is_writer() {
                let wid = self.fresh_id();
                let block = task.cmd.block();
                self.tasks.insert(
                    wid,
                    MemTask {
                        cmd: task.cmd,
                        wrote: true,
                    },
                );
                out.push(MemPcuOut::VaultAccess {
                    id: wid,
                    block,
                    write: true,
                    at: done,
                });
            } else {
                self.finish(done.max(now), task, mem, false, out);
            }
        }
        // A finished read/write may have freed a buffer entry.
        while self.tasks.len() < self.cfg.operand_entries {
            match self.waiting.pop_front() {
                Some(cmd) => self.start(now, cmd, out),
                None => break,
            }
        }
    }

    fn finish(
        &mut self,
        at: Cycle,
        task: MemTask,
        mem: &mut BackingStore,
        _was_write: bool,
        out: &mut Outbox<MemPcuOut>,
    ) {
        self.counters.inc(self.c.executed);
        let output = ops::apply(task.cmd.op, task.cmd.target, &task.cmd.input, mem);
        out.push(MemPcuOut::Complete {
            resp: PimOut {
                id: task.cmd.id,
                block: task.cmd.block(),
                output,
            },
            at,
        });
    }

    /// PEIs executed by this PCU.
    pub fn executed(&self) -> u64 {
        self.counters.get(self.c.executed)
    }

    /// In-service + queued commands (test helper).
    pub fn backlog(&self) -> usize {
        self.tasks.len() + self.waiting.len()
    }

    /// Labels the current counter values as the end of phase `label`
    /// (see `Counters::snapshot`).
    pub fn snapshot_phase(&mut self, label: &'static str) {
        self.counters.snapshot(label);
    }

    /// Dumps statistics under `prefix`.
    pub fn report(&self, prefix: &str, stats: &mut StatsReport) {
        self.counters.flush(prefix, stats);
    }
}

impl pei_types::snap::SnapshotState for HostPcu {
    fn save(&self, e: &mut pei_types::snap::Encoder) {
        self.compute.save(e);
        let mut tasks: Vec<_> = self.tasks.iter().collect();
        tasks.sort_by_key(|(id, _)| id.0);
        e.seq(tasks.len());
        for (id, t) in tasks {
            e.u64(id.0);
            e.u64(t.seq);
            e.u8(t.op.opcode());
            e.u64(t.target.0);
            t.input.save(e);
        }
        e.usize(self.occupied);
        e.u64(self.next_local);
        self.counters.save(e);
    }

    fn load(&mut self, d: &mut pei_types::snap::Decoder<'_>) -> pei_types::snap::SnapResult<()> {
        self.compute.load(d)?;
        let n = d.seq(26)?;
        self.tasks = HashMap::with_capacity(n);
        for _ in 0..n {
            let id = ReqId(d.u64()?);
            let seq = d.u64()?;
            let code = d.u8()?;
            let op = PimOpKind::from_opcode(code, d)?;
            let target = Addr(d.u64()?);
            let input = OperandValue::load(d)?;
            self.tasks.insert(
                id,
                HostTask {
                    seq,
                    op,
                    target,
                    input,
                },
            );
        }
        self.occupied = d.usize()?;
        self.next_local = d.u64()?;
        self.counters.load(d)
    }
}

impl pei_types::snap::SnapshotState for MemPcu {
    fn save(&self, e: &mut pei_types::snap::Encoder) {
        self.compute.save(e);
        let mut tasks: Vec<_> = self.tasks.iter().collect();
        tasks.sort_by_key(|(id, _)| id.0);
        e.seq(tasks.len());
        for (id, t) in tasks {
            e.u64(id.0);
            t.cmd.save(e);
            e.bool(t.wrote);
        }
        e.seq(self.waiting.len());
        for cmd in &self.waiting {
            cmd.save(e);
        }
        e.u64(self.next_local);
        e.usize(self.peak_buffer);
        self.counters.save(e);
    }

    fn load(&mut self, d: &mut pei_types::snap::Decoder<'_>) -> pei_types::snap::SnapResult<()> {
        self.compute.load(d)?;
        let n = d.seq(27)?;
        self.tasks = HashMap::with_capacity(n);
        for _ in 0..n {
            let id = ReqId(d.u64()?);
            let cmd = PimCmd::load(d)?;
            let wrote = d.bool()?;
            self.tasks.insert(id, MemTask { cmd, wrote });
        }
        let n = d.seq(18)?;
        self.waiting = VecDeque::with_capacity(n);
        for _ in 0..n {
            self.waiting.push_back(PimCmd::load(d)?);
        }
        self.next_local = d.u64()?;
        self.peak_buffer = d.usize()?;
        self.counters.load(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_pcu_full_flow() {
        let mut mem = BackingStore::new();
        let target = mem.alloc_block();
        mem.write_u64(target, 5);
        let mut pcu = HostPcu::new(CoreId(0), PcuConfig::paper());
        let mut out = Outbox::new();
        let id = pcu.begin(
            0,
            0,
            PimOpKind::IncU64,
            target,
            OperandValue::None,
            &mut out,
        );
        assert!(matches!(out[0], HostPcuOut::ToPmu { .. }));
        out.clear();
        pcu.on_decision_host(10, id, &mut out);
        match &out[0] {
            HostPcuOut::L1Access { req, .. } => {
                assert!(req.write, "writer PEI needs write permission");
                assert_eq!(req.addr, target);
            }
            o => panic!("unexpected {o:?}"),
        }
        out.clear();
        pcu.on_l1_resp(20, id, &mut mem, &mut out);
        assert_eq!(mem.read_u64(target), 6, "functional effect applied");
        assert!(out
            .iter()
            .any(|o| matches!(o, HostPcuOut::ReleaseToPmu { .. })));
        assert!(out
            .iter()
            .any(|o| matches!(o, HostPcuOut::DoneToCore { seq: 0, .. })));
        assert_eq!(pcu.exec_counts(), (1, 0));
        assert_eq!(pcu.in_flight(), 0);
    }

    #[test]
    fn host_pcu_reader_needs_no_write_permission() {
        let mut mem = BackingStore::new();
        let target = mem.alloc_block();
        let mut pcu = HostPcu::new(CoreId(0), PcuConfig::paper());
        let mut out = Outbox::new();
        let id = pcu.begin(
            0,
            0,
            PimOpKind::HashProbe,
            target,
            OperandValue::U64(1),
            &mut out,
        );
        out.clear();
        pcu.on_decision_host(10, id, &mut out);
        match &out[0] {
            HostPcuOut::L1Access { req, .. } => assert!(!req.write),
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn host_pcu_mem_result_completes_without_l1() {
        let mut pcu = HostPcu::new(CoreId(0), PcuConfig::paper());
        let mut out = Outbox::new();
        let id = pcu.begin(
            0,
            7,
            PimOpKind::AddF64,
            Addr(0x40),
            OperandValue::F64(1.0),
            &mut out,
        );
        out.clear();
        pcu.on_mem_result(100, id, OperandValue::None, &mut out);
        match &out[0] {
            HostPcuOut::DoneToCore { seq, .. } => assert_eq!(*seq, 7),
            o => panic!("unexpected {o:?}"),
        }
        assert_eq!(pcu.exec_counts(), (0, 1));
    }

    #[test]
    fn host_pcu_serializes_on_single_issue_logic() {
        let mut mem = BackingStore::new();
        let t1 = mem.alloc_block();
        let t2 = mem.alloc_block();
        let mut pcu = HostPcu::new(CoreId(0), PcuConfig::paper());
        let mut out = Outbox::new();
        let a = pcu.begin(
            0,
            0,
            PimOpKind::EuclideanDist,
            t1,
            OperandValue::from_bytes(&[0; 64]),
            &mut out,
        );
        let b = pcu.begin(
            0,
            1,
            PimOpKind::EuclideanDist,
            t2,
            OperandValue::from_bytes(&[0; 64]),
            &mut out,
        );
        out.clear();
        pcu.on_l1_resp(100, a, &mut mem, &mut out);
        pcu.on_l1_resp(100, b, &mut mem, &mut out);
        let dones: Vec<Cycle> = out
            .iter()
            .filter_map(|o| match o {
                HostPcuOut::DoneToCore { at, .. } => Some(*at),
                _ => None,
            })
            .collect();
        assert_eq!(dones.len(), 2);
        assert!(dones[1] >= dones[0] + ops::host_latency(PimOpKind::EuclideanDist));
    }

    #[test]
    fn mem_pcu_reader_flow() {
        let mut mem = BackingStore::new();
        let target = mem.alloc_block();
        mem.write_u64(target, 33);
        let clk = ClockDomain::new(2, 4.0);
        let mut pcu = MemPcu::new(0, PcuConfig::paper(), clk);
        let mut out = Outbox::new();
        pcu.on_cmd(
            1,
            PimCmd {
                id: ReqId(99),
                target,
                op: PimOpKind::HashProbe,
                input: OperandValue::U64(33),
            },
            &mut out,
        );
        let (id, at) = match &out[0] {
            MemPcuOut::VaultAccess {
                id,
                write: false,
                at,
                ..
            } => (*id, *at),
            o => panic!("unexpected {o:?}"),
        };
        assert_eq!(at % 2, 0, "memory-side events align to the 2 GHz clock");
        out.clear();
        pcu.on_vault_done(200, id, false, &mut mem, &mut out);
        match &out[0] {
            MemPcuOut::Complete { resp, .. } => {
                assert_eq!(resp.id, ReqId(99));
                assert_eq!(resp.output.as_bytes().unwrap()[0], 1, "probe matched");
            }
            o => panic!("unexpected {o:?}"),
        }
        assert_eq!(pcu.executed(), 1);
    }

    #[test]
    fn mem_pcu_writer_does_read_modify_write() {
        let mut mem = BackingStore::new();
        let target = mem.alloc_block();
        let clk = ClockDomain::new(2, 4.0);
        let mut pcu = MemPcu::new(0, PcuConfig::paper(), clk);
        let mut out = Outbox::new();
        pcu.on_cmd(
            0,
            PimCmd {
                id: ReqId(7),
                target,
                op: PimOpKind::IncU64,
                input: OperandValue::None,
            },
            &mut out,
        );
        let rid = match &out[0] {
            MemPcuOut::VaultAccess {
                id, write: false, ..
            } => *id,
            o => panic!("unexpected {o:?}"),
        };
        out.clear();
        pcu.on_vault_done(100, rid, false, &mut mem, &mut out);
        let wid = match &out[0] {
            MemPcuOut::VaultAccess {
                id, write: true, ..
            } => *id,
            o => panic!("expected write-back, got {o:?}"),
        };
        out.clear();
        pcu.on_vault_done(200, wid, true, &mut mem, &mut out);
        assert!(matches!(&out[0], MemPcuOut::Complete { resp, .. } if resp.id == ReqId(7)));
        assert_eq!(mem.read_u64(target), 1);
    }

    #[test]
    fn mem_pcu_operand_buffer_backpressure() {
        let mut mem = BackingStore::new();
        let clk = ClockDomain::new(2, 4.0);
        let mut pcu = MemPcu::new(0, PcuConfig::paper(), clk);
        let mut out = Outbox::new();
        let mut blocks = Vec::new();
        for _ in 0..6 {
            blocks.push(mem.alloc_block().block());
        }
        for (i, b) in blocks.iter().enumerate() {
            pcu.on_cmd(
                0,
                PimCmd {
                    id: ReqId(i as u64),
                    target: b.base(),
                    op: PimOpKind::HashProbe,
                    input: OperandValue::U64(0),
                },
                &mut out,
            );
        }
        // Only 4 DRAM reads issued; 2 commands queued.
        let reads = out
            .iter()
            .filter(|o| matches!(o, MemPcuOut::VaultAccess { .. }))
            .count();
        assert_eq!(reads, 4);
        assert_eq!(pcu.backlog(), 6);
        // Completing one admits the next.
        let first = match &out[0] {
            MemPcuOut::VaultAccess { id, .. } => *id,
            _ => unreachable!(),
        };
        out.clear();
        pcu.on_vault_done(100, first, false, &mut mem, &mut out);
        assert!(out
            .iter()
            .any(|o| matches!(o, MemPcuOut::VaultAccess { write: false, .. })));
    }
}
