//! Execution-location policies for PEIs (§7) and the balanced-dispatch
//! heuristic (§7.4).

use pei_types::packet::PacketKind;
use pei_types::PimOpKind;

/// Where PEIs are allowed to execute, matching the four configurations of
/// §7 (Ideal-Host is Host-Only plus an ideal PIM directory, configured in
/// [`crate::PmuConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DispatchPolicy {
    /// All PEIs execute on host-side PCUs.
    HostOnly,
    /// All PEIs are offloaded to memory-side PCUs.
    PimOnly,
    /// The locality monitor decides per PEI (§4.3).
    LocalityAware,
    /// Locality-aware plus balanced dispatch: on a locality miss, the
    /// execution location is chosen to balance request/response link
    /// bandwidth (§7.4).
    LocalityAwareBalanced,
}

impl DispatchPolicy {
    /// All policies, for sweeps.
    pub const ALL: [DispatchPolicy; 4] = [
        DispatchPolicy::HostOnly,
        DispatchPolicy::PimOnly,
        DispatchPolicy::LocalityAware,
        DispatchPolicy::LocalityAwareBalanced,
    ];

    /// Whether this policy consults the locality monitor.
    pub fn uses_monitor(self) -> bool {
        matches!(
            self,
            DispatchPolicy::LocalityAware | DispatchPolicy::LocalityAwareBalanced
        )
    }
}

impl std::fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DispatchPolicy::HostOnly => "Host-Only",
            DispatchPolicy::PimOnly => "PIM-Only",
            DispatchPolicy::LocalityAware => "Locality-Aware",
            DispatchPolicy::LocalityAwareBalanced => "Locality-Aware+BD",
        })
    }
}

/// Balanced dispatch (§7.4): given a PEI that *missed* in the locality
/// monitor and the controller's EMA flit counters, decide whether to
/// offload it to memory (`true`) or force host execution (`false`),
/// exactly as the paper specifies: "if C_res is greater than C_req, our
/// scheme chooses the one that consumes less response bandwidth between
/// host-side and memory-side execution", and symmetrically.
///
/// Host execution of a low-locality PEI costs one block read over the
/// links (16 B request / 80 B response); memory execution costs
/// `16 + input` request bytes and `16 + output` response bytes.
///
/// The PMU additionally dithers consecutive host overrides (see
/// [`crate::Pmu`]) so the mix stays fine-grained.
pub fn balanced_choice(op: PimOpKind, c_req: u64, c_res: u64) -> bool {
    let host_req = PacketKind::ReadReq.wire_bytes();
    let host_res = PacketKind::ReadResp.wire_bytes();
    let mem_req = PacketKind::PimReq {
        input_bytes: op.input_bytes() as u16,
    }
    .wire_bytes();
    let mem_res = PacketKind::PimResp {
        output_bytes: op.output_bytes() as u16,
    }
    .wire_bytes();
    if c_res > c_req {
        // Response link is the bottleneck: minimize response bytes.
        mem_res <= host_res
    } else {
        // Request link is the bottleneck: minimize request bytes (ties
        // keep the locality-miss default of memory execution).
        mem_req <= host_req
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_monitor_usage() {
        assert!(!DispatchPolicy::HostOnly.uses_monitor());
        assert!(!DispatchPolicy::PimOnly.uses_monitor());
        assert!(DispatchPolicy::LocalityAware.uses_monitor());
        assert!(DispatchPolicy::LocalityAwareBalanced.uses_monitor());
    }

    #[test]
    fn sc_under_request_pressure_goes_host() {
        // SC's 64-byte input makes its PIM request packet (80 B) heavier
        // than a host read request (16 B): when the request channel is the
        // bottleneck, balanced dispatch forces host execution (§7.4).
        assert!(!balanced_choice(PimOpKind::EuclideanDist, 100, 50));
    }

    #[test]
    fn sc_under_response_pressure_goes_memory() {
        // SC's PIM response (32 B) is lighter than a block read response
        // (80 B): under response pressure, memory wins.
        assert!(balanced_choice(PimOpKind::EuclideanDist, 50, 100));
    }

    #[test]
    fn small_input_writers_prefer_memory_both_ways() {
        // An increment costs 16 B/16 B in memory — never worse than the
        // host's 16 B/80 B read.
        assert!(balanced_choice(PimOpKind::IncU64, 100, 50));
        assert!(balanced_choice(PimOpKind::IncU64, 50, 100));
    }

    #[test]
    fn display_names() {
        assert_eq!(DispatchPolicy::LocalityAware.to_string(), "Locality-Aware");
        assert_eq!(DispatchPolicy::ALL.len(), 4);
    }
}
