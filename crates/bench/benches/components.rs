//! Criterion microbenchmarks of the simulator's hot components: these
//! bound the cost of simulation itself (events/second), complementing the
//! figure binaries that reproduce the paper's results.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pei_core::{DispatchPolicy, LocalityMonitor, PimDirectory};
use pei_cpu::trace::{Op, VecPhases};
use pei_engine::EventQueue;
use pei_mem::{BackingStore, CacheArray, LineState};
use pei_system::{MachineConfig, System};
use pei_types::{Addr, BlockAddr, OperandValue, PimOpKind, ReqId};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("engine/event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule((i * 7919) % 1000, i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
}

fn bench_cache_array(c: &mut Criterion) {
    c.bench_function("mem/cache_array_probe_1k", |b| {
        let mut arr = CacheArray::new(1024, 16);
        for i in 0..8192u64 {
            arr.insert(BlockAddr(i), LineState::Shared);
        }
        b.iter(|| {
            let mut hits = 0;
            for i in 0..1000u64 {
                if arr.lookup(BlockAddr(i * 13 % 16384)).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

fn bench_pim_directory(c: &mut Criterion) {
    c.bench_function("core/pim_directory_acquire_release_1k", |b| {
        b.iter(|| {
            let mut dir = PimDirectory::new(2048, false);
            let mut granted = Vec::new();
            for i in 0..1000u64 {
                dir.acquire(ReqId(i), BlockAddr(i % 512), i % 3 == 0);
            }
            for i in 0..1000u64 {
                dir.release(ReqId(i), &mut granted);
                black_box(granted.len());
                granted.clear();
            }
        })
    });
}

fn bench_locality_monitor(c: &mut Criterion) {
    c.bench_function("core/locality_monitor_mixed_1k", |b| {
        let mut mon = LocalityMonitor::new(1024, 16, 10, false);
        b.iter(|| {
            let mut hits = 0;
            for i in 0..1000u64 {
                if i % 3 == 0 {
                    mon.on_l3_access(BlockAddr(i % 4096));
                } else if mon.query(BlockAddr(i % 4096)) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

fn bench_pim_op_apply(c: &mut Criterion) {
    c.bench_function("core/apply_fadd_1k", |b| {
        let mut mem = BackingStore::new();
        let a = mem.alloc_block();
        b.iter(|| {
            for _ in 0..1000 {
                pei_core::ops::apply(PimOpKind::AddF64, a, &OperandValue::F64(0.5), &mut mem);
            }
            black_box(mem.read_f64(a))
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    c.bench_function("system/1k_pei_increments_end_to_end", |b| {
        b.iter(|| {
            let mut store = BackingStore::new();
            let targets: Vec<Addr> = (0..256).map(|_| store.alloc_block()).collect();
            let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
            let mut sys = System::new(cfg, store);
            let ops: Vec<Op> = (0..1000)
                .map(|i| Op::pei(PimOpKind::IncU64, targets[i % 256], OperandValue::None))
                .chain([Op::Pfence])
                .collect();
            sys.add_workload(Box::new(VecPhases::single(ops)), vec![0]);
            black_box(sys.run(u64::MAX).cycles)
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_cache_array,
    bench_pim_directory,
    bench_locality_monitor,
    bench_pim_op_apply,
    bench_end_to_end
);
criterion_main!(benches);
