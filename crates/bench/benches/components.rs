//! Criterion microbenchmarks of the simulator's hot components: these
//! bound the cost of simulation itself (events/second), complementing the
//! figure binaries that reproduce the paper's results.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pei_core::{DispatchPolicy, LocalityMonitor, PimDirectory};
use pei_cpu::trace::{Op, VecPhases};
use pei_engine::EventQueue;
use pei_mem::{BackingStore, CacheArray, LineState};
use pei_system::{MachineConfig, System};
use pei_types::{Addr, BlockAddr, OperandValue, PimOpKind, ReqId};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("engine/event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule((i * 7919) % 1000, i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
    // The simulator's actual pattern: a small pending population of
    // near-future events advancing through time (hold model), with a
    // thin far-future tail exercising the calendar queue's overflow
    // path. This is the number the BinaryHeap → calendar-queue swap is
    // judged on; the drain-sorted bench above mostly measures bulk
    // loading.
    c.bench_function("engine/event_queue_steady_state_64k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut x = 0x9e3779b97f4a7c15u64;
            // Seed a plausible pending population.
            for i in 0..48u64 {
                q.schedule(i % 60, i);
            }
            let mut acc = 0u64;
            let mut popped = 0u64;
            while let Some((now, v)) = q.pop() {
                acc = acc.wrapping_add(v);
                popped += 1;
                if popped >= 65_536 {
                    break;
                }
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                // Mostly cache/crossbar/DRAM-scale deltas, one far
                // event (deep channel backlog) per ~100 pops.
                q.schedule(now + 1 + x % 60, v);
                if x.is_multiple_of(101) {
                    q.schedule(now + 4000 + x % 2000, v);
                }
            }
            black_box(acc)
        })
    });
    // Reference: the same steady-state loop over a plain binary heap
    // (the pre-calendar-queue implementation), kept as a permanent
    // side-by-side so the calendar queue's advantage — or a regression
    // — is visible in any bench run, not only across checkouts.
    c.bench_function("engine/event_queue_steady_state_64k_heap_ref", |b| {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        b.iter(|| {
            let mut q: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut x = 0x9e3779b97f4a7c15u64;
            for i in 0..48u64 {
                seq += 1;
                q.push(Reverse((i % 60, seq, i)));
            }
            let mut acc = 0u64;
            let mut popped = 0u64;
            while let Some(Reverse((now, _, v))) = q.pop() {
                acc = acc.wrapping_add(v);
                popped += 1;
                if popped >= 65_536 {
                    break;
                }
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                seq += 1;
                q.push(Reverse((now + 1 + x % 60, seq, v)));
                if x.is_multiple_of(101) {
                    seq += 1;
                    q.push(Reverse((now + 4000 + x % 2000, seq, v)));
                }
            }
            black_box(acc)
        })
    });
}

fn bench_cache_array(c: &mut Criterion) {
    c.bench_function("mem/cache_array_probe_1k", |b| {
        let mut arr = CacheArray::new(1024, 16);
        for i in 0..8192u64 {
            arr.insert(BlockAddr(i), LineState::Shared);
        }
        b.iter(|| {
            let mut hits = 0;
            for i in 0..1000u64 {
                if arr.lookup(BlockAddr(i * 13 % 16384)).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

fn bench_pim_directory(c: &mut Criterion) {
    c.bench_function("core/pim_directory_acquire_release_1k", |b| {
        b.iter(|| {
            let mut dir = PimDirectory::new(2048, false);
            let mut granted = Vec::new();
            for i in 0..1000u64 {
                dir.acquire(ReqId(i), BlockAddr(i % 512), i % 3 == 0);
            }
            for i in 0..1000u64 {
                dir.release(ReqId(i), &mut granted);
                black_box(granted.len());
                granted.clear();
            }
        })
    });
}

fn bench_locality_monitor(c: &mut Criterion) {
    c.bench_function("core/locality_monitor_mixed_1k", |b| {
        let mut mon = LocalityMonitor::new(1024, 16, 10, false);
        b.iter(|| {
            let mut hits = 0;
            for i in 0..1000u64 {
                if i % 3 == 0 {
                    mon.on_l3_access(BlockAddr(i % 4096));
                } else if mon.query(BlockAddr(i % 4096)) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

fn bench_pim_op_apply(c: &mut Criterion) {
    c.bench_function("core/apply_fadd_1k", |b| {
        let mut mem = BackingStore::new();
        let a = mem.alloc_block();
        b.iter(|| {
            for _ in 0..1000 {
                pei_core::ops::apply(PimOpKind::AddF64, a, &OperandValue::F64(0.5), &mut mem);
            }
            black_box(mem.read_f64(a))
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    c.bench_function("system/1k_pei_increments_end_to_end", |b| {
        b.iter(|| {
            let mut store = BackingStore::new();
            let targets: Vec<Addr> = (0..256).map(|_| store.alloc_block()).collect();
            let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
            let mut sys = System::new(cfg, store);
            let ops: Vec<Op> = (0..1000)
                .map(|i| Op::pei(PimOpKind::IncU64, targets[i % 256], OperandValue::None))
                .chain([Op::Pfence])
                .collect();
            sys.add_workload(Box::new(VecPhases::single(ops)), vec![0]);
            black_box(sys.run(u64::MAX).cycles)
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_cache_array,
    bench_pim_directory,
    bench_locality_monitor,
    bench_pim_op_apply,
    bench_end_to_end
);
criterion_main!(benches);
