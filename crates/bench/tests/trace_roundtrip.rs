//! System-level capture → serialize → parse → replay tests: the
//! determinism contract (EXPERIMENTS.md) checked mechanically through
//! the full `.petr` pipeline (DESIGN.md §8).

use pei_bench::tracecap::{self, CaptureSpec};
use pei_bench::Scale;
use pei_core::DispatchPolicy;
use pei_trace::Trace;
use pei_workloads::{InputSize, Workload};

/// A cell small enough to capture and replay in well under a second.
fn tiny_spec() -> CaptureSpec {
    CaptureSpec {
        workload: Workload::Atf,
        size: InputSize::Small,
        policy: DispatchPolicy::LocalityAware,
        scale: Scale::Quick,
        paper_machine: false,
        seed: 0x5eed,
        pei_budget: Some(2_000),
        shards: None,
    }
}

/// A sharded capture must replay on the sharded engine and reproduce
/// byte-identically — the cross-engine leg of the determinism contract.
#[test]
fn sharded_capture_replays_byte_identical() {
    let spec = CaptureSpec {
        shards: Some(2),
        ..tiny_spec()
    };
    let (_, trace) = spec.capture();
    assert_eq!(trace.meta_get("spec.shards"), Some("2"));
    let replay = tracecap::replay(&trace).expect("capture carries a recipe");
    assert_eq!(replay.spec, spec);
    assert!(
        replay.identical(),
        "sharded capture failed to replay: {:?}",
        replay.divergence
    );
}

#[test]
fn capture_replay_is_byte_identical() {
    let spec = tiny_spec();
    let (result, trace) = spec.capture();
    assert!(!trace.records.is_empty());

    // Through the full binary round trip, as the CLI tools would see it.
    let reloaded = Trace::from_bytes(&trace.to_bytes()).expect("encoding round-trips");
    let replay = tracecap::replay(&reloaded).expect("capture carries a recipe");
    assert_eq!(replay.spec, spec);
    assert!(replay.stats_match, "replayed stats diverged");
    assert!(
        replay.divergence.is_none(),
        "replayed event stream diverged: {:?}",
        replay.divergence
    );
    assert!(replay.identical());
    assert_eq!(replay.result.cycles, result.cycles);
    assert_eq!(
        replay.result.stats.to_string(),
        result.stats.to_string(),
        "replay must reproduce the statistics report byte for byte"
    );
}

#[test]
fn capture_meta_carries_recipe_and_stats() {
    let (result, trace) = tiny_spec().capture();
    assert_eq!(trace.meta_get("spec.workload"), Some("ATF"));
    assert_eq!(trace.meta_get("spec.size"), Some("small"));
    assert_eq!(trace.meta_get("spec.policy"), Some("locality-aware"));
    assert_eq!(trace.meta_get("spec.budget"), Some("2000"));
    assert_eq!(
        trace.meta_get("stats"),
        Some(result.stats.to_string().as_str())
    );
    // Machine-shape metadata from the tracer itself coexists with the
    // recipe keys.
    assert_eq!(trace.meta_get("machine.cores"), Some("4"));
}

#[test]
fn replay_detects_recipe_tampering() {
    let (_, mut tampered) = tiny_spec().capture();
    for kv in &mut tampered.meta {
        if kv.0 == "spec.seed" {
            kv.1 = "12345".into();
        }
    }
    let replay = tracecap::replay(&tampered).expect("recipe still parses");
    assert!(
        !replay.identical(),
        "a different seed must not replay identically"
    );
}

#[test]
fn different_policies_produce_divergent_traces() {
    let spec = tiny_spec();
    let other = CaptureSpec {
        policy: DispatchPolicy::HostOnly,
        ..spec
    };
    let (_, a) = spec.capture();
    let (_, b) = other.capture();
    assert!(
        pei_trace::diff(&a, &b).is_some(),
        "host-only and locality-aware runs cannot trace identically"
    );
}

/// The fig6 `--trace` representative cell at full quick scale: the same
/// capture CI's trace-smoke job makes. Slower (~quick-scale run, twice),
/// hence ignored by default; CI and `cargo test -- --ignored` run it.
#[test]
#[ignore = "two quick-scale runs; run explicitly or in CI"]
fn fig6_quick_cell_replays() {
    let spec = CaptureSpec {
        workload: Workload::Atf,
        size: InputSize::Medium,
        policy: DispatchPolicy::LocalityAware,
        scale: Scale::Quick,
        paper_machine: false,
        seed: 0x5eed,
        pei_budget: None,
        shards: None,
    };
    let (_, trace) = spec.capture();
    let replay = tracecap::replay(&trace).expect("capture carries a recipe");
    assert!(replay.identical(), "quick fig6 cell failed to replay");
}
