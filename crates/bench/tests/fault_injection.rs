//! Fault-injection validation of checked mode (DESIGN.md §9).
//!
//! Each test injects one deterministic fault from a seeded
//! [`FaultPlan`] into a real workload run and asserts that the checker
//! guarding that invariant actually fires — naming the culprit
//! component — or, for forward-progress faults, that the watchdog
//! reports the stall instead of panicking. The delay fault is the
//! negative control: it perturbs timing without breaking any
//! invariant, so a checked run must still complete.

use pei_bench::runner::{run_specs, RunSpec};
use pei_bench::ExpOptions;
use pei_core::DispatchPolicy;
use pei_system::{CheckConfig, FailureReport, FaultKind, FaultPlan, RunOutcome, RunResult};
use pei_workloads::{InputSize, Workload};

/// One small real-workload cell: enough traffic to exercise every
/// component, small enough to run in well under a second.
fn tiny_spec(policy: DispatchPolicy) -> RunSpec {
    let opts = ExpOptions {
        seed: 7,
        ..ExpOptions::default()
    };
    let mut params = opts.workload_params();
    params.pei_budget = 2_000;
    RunSpec::sized(
        opts.machine(policy),
        params,
        Workload::Atf,
        InputSize::Small,
    )
}

/// Aggressive sweep settings so faults surface within a short run: the
/// auditors sweep every 256 cycles and an MSHR entry is a leak after
/// 5 000 cycles outstanding.
fn tight_checks() -> CheckConfig {
    CheckConfig {
        interval: 256,
        mshr_age_bound: 5_000,
        ..CheckConfig::default()
    }
}

/// Runs the tiny cell with `kind` injected and checking enabled.
fn run_faulted(kind: FaultKind, seed: u64) -> RunResult {
    let spec = tiny_spec(DispatchPolicy::LocalityAware);
    let mut sys = spec.build();
    sys.inject_faults(&FaultPlan::new(seed).with(kind));
    sys.enable_checks(tight_checks());
    sys.run(spec.max_cycles)
}

/// Unwraps a `CheckFailed` outcome and asserts some violation came from
/// `checker` with a component matching `component_prefix`.
fn expect_violation(r: &RunResult, checker: &str, component_prefix: &str) {
    let report = match &r.outcome {
        RunOutcome::CheckFailed { report } => report,
        other => panic!("expected the {checker} checker to fire, got {other:?}"),
    };
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.checker == checker && v.component.starts_with(component_prefix)),
        "no {checker} violation naming {component_prefix}*: {:?}",
        report.violations
    );
    // The culprit accessor surfaces a component, not a checker name.
    assert!(
        report.culprit().is_some(),
        "a failed run must name a culprit"
    );
}

#[test]
fn mshr_leak_checker_fires_and_names_the_cache() {
    expect_violation(&run_faulted(FaultKind::LeakMshr, 11), "mshr", "cache");
}

#[test]
fn mesi_checker_fires_on_corrupted_line_state() {
    expect_violation(&run_faulted(FaultKind::CorruptLine, 13), "mesi", "cache");
}

#[test]
fn pim_directory_checker_fires_on_leaked_lock() {
    expect_violation(&run_faulted(FaultKind::LeakDirLock, 17), "pim-dir", "pmu");
}

#[test]
fn link_checker_fires_on_leaked_read_credit() {
    expect_violation(&run_faulted(FaultKind::LeakLinkCredit, 19), "link", "link");
}

#[test]
fn pcu_checker_fires_on_overfilled_operand_buffer() {
    expect_violation(&run_faulted(FaultKind::OverfillPcu, 23), "pcu", "mpcu");
}

#[test]
fn event_checker_fires_on_dropped_event() {
    expect_violation(&run_faulted(FaultKind::DropEvent, 29), "events", "queue");
}

#[test]
fn xbar_checker_fires_on_rogue_message() {
    expect_violation(
        &run_faulted(FaultKind::RogueXbarMessage, 31),
        "xbar",
        "xbar",
    );
}

#[test]
fn wedged_vault_stalls_and_the_watchdog_names_it() {
    // Wedge a handful of vaults so the workload is certain to touch one.
    let spec = tiny_spec(DispatchPolicy::LocalityAware);
    let mut sys = spec.build();
    let mut plan = FaultPlan::new(37);
    for _ in 0..4 {
        plan = plan.with(FaultKind::WedgeVault);
    }
    sys.inject_faults(&plan);
    let r = sys.run(spec.max_cycles);
    let report: &FailureReport = match &r.outcome {
        RunOutcome::Stalled { report } => report,
        other => panic!("expected the watchdog to report a stall, got {other:?}"),
    };
    let culprit = report.culprit().expect("stall must name a culprit");
    assert!(
        culprit.starts_with("vault"),
        "the wedged vault is the deepest stuck component, got {culprit}: {}",
        report.summary()
    );
    assert!(
        report
            .occupancies
            .iter()
            .any(|(name, n)| name.ends_with(".backlog") && *n > 0),
        "occupancies must show the queued accesses: {:?}",
        report.occupancies
    );
}

#[test]
fn stalled_sharded_windows_are_thread_count_invariant() {
    // Pin the `FailureReport::save_window` contract for sharded runs:
    // cube records merge into the host sink at every epoch barrier in
    // deterministic order, so the window a stalled run saves is
    // byte-identical at any thread count (and nonempty, since checked
    // mode attaches the ring recorder).
    let run = |threads: usize| {
        let spec = tiny_spec(DispatchPolicy::LocalityAware);
        let mut sys = spec.build();
        let mut plan = FaultPlan::new(37);
        for _ in 0..4 {
            plan = plan.with(FaultKind::WedgeVault);
        }
        sys.inject_faults(&plan);
        sys.enable_checks(tight_checks());
        sys.run_sharded(spec.max_cycles, threads)
    };
    let (a, b) = (run(1), run(4));
    let reports: Vec<&FailureReport> = [&a, &b]
        .iter()
        .map(|r| match &r.outcome {
            RunOutcome::Stalled { report } => report.as_ref(),
            other => panic!("expected a stall under the sharded engine, got {other:?}"),
        })
        .collect();
    let dir = std::env::temp_dir();
    let paths = [
        dir.join("pei_stall_window_t1.petr"),
        dir.join("pei_stall_window_t4.petr"),
    ];
    let mut written = Vec::new();
    for (report, path) in reports.iter().zip(&paths) {
        written.push(report.save_window(path).expect("save_window writes"));
    }
    assert!(written[0] > 0, "a checked stall must retain events");
    assert_eq!(
        written[0], written[1],
        "record counts must not depend on thread count"
    );
    let bytes: Vec<Vec<u8>> = paths
        .iter()
        .map(|p| std::fs::read(p).expect("read window back"))
        .collect();
    assert_eq!(
        bytes[0], bytes[1],
        "saved windows must be byte-identical across thread counts"
    );
    // The saved file is a loadable trace carrying the failure meta.
    let t = pei_trace::Trace::from_bytes(&bytes[0]).expect("window parses");
    assert!(t.meta_get("failure.kind").is_some());
    assert!(t.meta_get("failure.cycle").is_some());
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn delayed_event_is_the_negative_control() {
    // A delay perturbs timing but violates nothing: the checked run
    // completes and no checker fires.
    let r = run_faulted(FaultKind::DelayEvent, 41);
    assert!(
        r.ok(),
        "a pure delay must not trip any checker: {:?}",
        r.outcome
    );
}

#[test]
fn checked_mode_is_result_neutral() {
    // The cycle-neutrality contract: with no fault injected, checked
    // and unchecked runs of the same spec are identical in every
    // reported metric (the fig6 byte-identity gate in CI is the
    // end-to-end version of this).
    let plain = tiny_spec(DispatchPolicy::LocalityAware).run();
    let mut spec = tiny_spec(DispatchPolicy::LocalityAware);
    spec.check = true;
    let checked = spec.run();
    assert!(plain.ok() && checked.ok());
    assert_eq!(plain.cycles, checked.cycles);
    assert_eq!(plain.instructions, checked.instructions);
    assert_eq!(plain.peis, checked.peis);
    assert_eq!(plain.offchip_bytes, checked.offchip_bytes);
    assert_eq!(plain.offchip_flits, checked.offchip_flits);
    assert_eq!(plain.dram_accesses, checked.dram_accesses);
    assert_eq!(
        plain.stats.expect("sim.events"),
        checked.stats.expect("sim.events"),
        "checked mode must not schedule events of its own"
    );
}

#[test]
fn cycle_neutrality_across_jobs() {
    // The satellite regression for the checked-mode PR: with checking
    // off the new machinery must leave results alone at any worker
    // count, and turning checking on must not change them either (CI's
    // fig6 smoke is the binary-level byte-compare of the same
    // contract).
    let policies = [
        DispatchPolicy::HostOnly,
        DispatchPolicy::LocalityAware,
        DispatchPolicy::PimOnly,
    ];
    let plain: Vec<RunSpec> = policies.iter().map(|&p| tiny_spec(p)).collect();
    let checked: Vec<RunSpec> = policies
        .iter()
        .map(|&p| {
            let mut s = tiny_spec(p);
            s.check = true;
            s
        })
        .collect();
    let j1 = run_specs(&plain, 1);
    let j4 = run_specs(&plain, 4);
    let c4 = run_specs(&checked, 4);
    for ((a, b), c) in j1.iter().zip(&j4).zip(&c4) {
        assert!(a.ok() && b.ok() && c.ok());
        assert_eq!(a.cycles, b.cycles, "jobs must not affect results");
        assert_eq!(a.cycles, c.cycles, "checking must not affect results");
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.instructions, c.instructions);
        assert_eq!(a.offchip_bytes, b.offchip_bytes);
        assert_eq!(a.offchip_bytes, c.offchip_bytes);
        assert_eq!(
            a.stats.expect("sim.events"),
            c.stats.expect("sim.events"),
            "checked sweeps must not schedule events"
        );
    }
}

#[test]
fn batch_survives_a_stalled_cell() {
    // Graceful degradation: one cell in a parallel batch stalls; the
    // runner records its failure outcome and completes the siblings.
    let mut specs = vec![
        tiny_spec(DispatchPolicy::HostOnly),
        tiny_spec(DispatchPolicy::LocalityAware),
        tiny_spec(DispatchPolicy::PimOnly),
        tiny_spec(DispatchPolicy::LocalityAwareBalanced),
    ];
    let mut plan = FaultPlan::new(43);
    for _ in 0..4 {
        plan = plan.with(FaultKind::WedgeVault);
    }
    specs[1].fault = Some(plan);
    let results = run_specs(&specs, 2);
    assert_eq!(results.len(), specs.len(), "every cell gets a result slot");
    assert!(
        matches!(results[1].outcome, RunOutcome::Stalled { .. }),
        "the faulted cell must surface its stall: {:?}",
        results[1].outcome
    );
    for (i, r) in results.iter().enumerate() {
        if i != 1 {
            assert!(r.ok(), "sibling cell {i} must complete: {:?}", r.outcome);
        }
    }
}

#[test]
fn fault_plans_are_deterministic() {
    // Same seed, same fault, same run → identical failure reports.
    let a = run_faulted(FaultKind::LeakMshr, 53);
    let b = run_faulted(FaultKind::LeakMshr, 53);
    let (ra, rb) = (
        a.outcome.report().expect("fault must fire"),
        b.outcome.report().expect("fault must fire"),
    );
    assert_eq!(ra.cycle, rb.cycle);
    assert_eq!(ra.violations, rb.violations);
}
