//! Binary search for the first divergent cycle between two runs.
//!
//! When a figure regresses — two cells that the determinism contract
//! (EXPERIMENTS.md) says must agree stop agreeing, or a config change
//! moves a result and the question is *when* the two machines first do
//! something different — the full traces of both runs localize the
//! divergence, but capturing them costs memory proportional to the
//! whole run. This module finds the same answer with bounded capture:
//! it bisects the run by simulated cycle, using machine snapshots
//! (`System::snapshot`, DESIGN.md §11) as restart points, and only
//! traces the final sub-`grain` window.
//!
//! The search compares *machine state*, not traces, at each midpoint:
//! both variants advance from their last agreed snapshot to the probe
//! cycle and re-snapshot, and the snapshots are compared byte-for-byte
//! with the config fingerprints masked out (so variants may differ in
//! policy or workload parameters — the comparison sees only dynamic
//! state: memory, caches, queues, counters). Divergence is assumed
//! monotone — once the states differ they never re-converge — which
//! holds for any config-level regression because the machines process
//! different event streams from the divergence point on.
//!
//! Both variants must run on the same engine (both sequential or both
//! sharded): the sequential engine pauses at an exact cycle while the
//! sharded engine pauses at epoch barriers, so cross-engine probes
//! would compare states at different cycles. Cross-engine *orderings*
//! also differ legitimately (DESIGN.md §10), so bisecting one against
//! the other would report a benign divergence.
//!
//! The `trace_bisect` binary is the CLI wrapper over [`bisect`].

use crate::runner::RunSpec;
use pei_system::{CheckConfig, PauseAt, RunStatus, Snapshot};
use pei_trace::{diff, Divergence, Recorder, Trace};

/// Where two runs first differ.
#[derive(Debug)]
pub enum BisectOutcome {
    /// The runs are identical: equal final states and, over the final
    /// window, equal traces.
    Identical,
    /// The first divergent trace record, found inside the final window.
    Trace {
        /// Cycle of the first divergent record (the earlier side).
        cycle: u64,
        /// The full record-level divergence (record index, both sides
        /// resolved to component/kind names).
        divergence: Divergence,
    },
    /// Machine state diverged inside `(window.0, window.1]` but the
    /// event traces over that window are identical — the difference is
    /// in untraced state (a counter, a replacement bit) and will
    /// surface in the event stream later.
    StateOnly {
        /// The last cycle at which the states were byte-equal and the
        /// first probed cycle at which they differed.
        window: (u64, u64),
    },
}

/// A bisection log entry: one probe of the search.
#[derive(Debug, Clone, Copy)]
pub struct Probe {
    /// The cycle both variants were advanced to.
    pub at: u64,
    /// Whether their states were equal there.
    pub equal: bool,
}

/// The result of [`bisect`]: the outcome plus the probe log.
#[derive(Debug)]
pub struct Bisection {
    /// What was found.
    pub outcome: BisectOutcome,
    /// Every midpoint probed, in search order.
    pub probes: Vec<Probe>,
}

/// A paused (or finished) machine reduced to a comparable value.
struct Stop {
    at: u64,
    snap: Snapshot,
    trace: Option<Trace>,
}

/// Advances `spec` from `from` (fresh build when `None`) to the first
/// pause point at or after cycle `to`, optionally capturing the trace
/// of the advanced window.
fn advance(spec: &RunSpec, from: Option<&Snapshot>, to: u64, traced: bool) -> Result<Stop, String> {
    let mut sys = spec.build();
    if spec.check {
        sys.enable_checks(CheckConfig::default());
    }
    if traced {
        sys.attach_tracer(Box::new(Recorder::new()));
    }
    if let Some(s) = from {
        sys.restore(s).map_err(|e| format!("restore failed: {e}"))?;
    }
    let status = match spec.shards {
        Some(n) => sys.run_sharded_paused(spec.max_cycles, n, Some(to)),
        None => sys.run_paused(spec.max_cycles, Some(PauseAt::Cycle(to))),
    };
    let at = match status {
        RunStatus::Paused { at } => at,
        RunStatus::Completed(r) => r.cycles,
    };
    let trace = if traced {
        let sink = sys.detach_tracer().expect("tracer was attached above");
        let bytes = sink.to_petr().ok_or("tracer retained no capture")?;
        Some(Trace::from_bytes(&bytes).map_err(|e| format!("bad capture: {e}"))?)
    } else {
        None
    };
    let snap = sys
        .snapshot()
        .map_err(|e| format!("snapshot failed: {e}"))?;
    Ok(Stop { at, snap, trace })
}

/// Byte-equality of two snapshots with the config fingerprints masked:
/// compares format magic/version and everything from the cycle field
/// on (memory, caches, queues, counters), ignoring the two fingerprint
/// words so that variants with different configs compare by dynamic
/// state alone.
fn state_eq(a: &Snapshot, b: &Snapshot) -> bool {
    // Header layout: magic (8) + version (2) + fp_class (8) +
    // fp_exact (8), then cycle...; mask bytes 10..26.
    let (a, b) = (a.as_bytes(), b.as_bytes());
    a.len() == b.len() && a[..10] == b[..10] && a[26..] == b[26..]
}

/// Bisects the first divergent cycle between `a` and `b`.
///
/// `grain` bounds the traced window: the search narrows the divergence
/// to an interval no wider than `grain` cycles by state comparison
/// alone, then traces only that window to name the first divergent
/// record. Both specs must select the same engine; neither may carry a
/// fault plan (snapshots refuse armed faults).
///
/// # Errors
///
/// Returns a message when a probe cannot snapshot or restore, or when
/// the specs' engines differ.
pub fn bisect(a: &RunSpec, b: &RunSpec, grain: u64) -> Result<Bisection, String> {
    if a.shards.is_some() != b.shards.is_some() {
        return Err("variants must use the same engine (both --shards or neither)".into());
    }
    if a.fault.is_some() || b.fault.is_some() {
        return Err("cannot bisect runs with fault plans (snapshots refuse armed faults)".into());
    }
    let grain = grain.max(1);
    let mut probes = Vec::new();

    // Establish the far end: advance both to completion and compare.
    let end_a = advance(a, None, u64::MAX, false)?;
    let end_b = advance(b, None, u64::MAX, false)?;
    let end = end_a.at.max(end_b.at);
    if state_eq(&end_a.snap, &end_b.snap) {
        // Final states agree; the traces could still transiently
        // differ, but that is a different question than a regression —
        // report identical (the trace_diff tool compares full traces).
        probes.push(Probe {
            at: end,
            equal: true,
        });
        return Ok(Bisection {
            outcome: BisectOutcome::Identical,
            probes,
        });
    }
    probes.push(Probe {
        at: end,
        equal: false,
    });

    // Invariant: states equal at `lo` (with `lo_a`/`lo_b` snapshots to
    // restart from), unequal at `hi`.
    let mut lo: u64 = 0;
    let mut hi: u64 = end;
    let mut lo_a: Option<Snapshot> = None;
    let mut lo_b: Option<Snapshot> = None;
    while hi - lo > grain {
        let mid = lo + (hi - lo) / 2;
        let sa = advance(a, lo_a.as_ref(), mid, false)?;
        let sb = advance(b, lo_b.as_ref(), mid, false)?;
        // The sharded engine pauses at epoch barriers, so the actual
        // stop may overshoot `mid`; if the two variants stop at
        // different cycles their schedules already diverged there.
        let equal = sa.at == sb.at && state_eq(&sa.snap, &sb.snap);
        probes.push(Probe { at: sa.at, equal });
        if equal {
            lo = sa.at;
            lo_a = Some(sa.snap);
            lo_b = Some(sb.snap);
        } else {
            hi = mid;
        }
        if hi <= lo {
            break;
        }
    }

    // Trace the final window [lo, hi] and name the first divergent
    // record.
    let ta = advance(a, lo_a.as_ref(), hi, true)?;
    let tb = advance(b, lo_b.as_ref(), hi, true)?;
    let (ta, tb) = (
        ta.trace.expect("traced advance captures"),
        tb.trace.expect("traced advance captures"),
    );
    match diff(&ta, &tb) {
        Some(divergence) => {
            let cycle = match &divergence {
                Divergence::Record { left, right, .. } => left.cycle.min(right.cycle),
                Divergence::Length { extra, .. } => extra.cycle,
                Divergence::Dropped { .. } => lo,
            };
            Ok(Bisection {
                outcome: BisectOutcome::Trace { cycle, divergence },
                probes,
            })
        }
        None => Ok(Bisection {
            outcome: BisectOutcome::StateOnly { window: (lo, hi) },
            probes,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExpOptions;
    use pei_core::DispatchPolicy;
    use pei_workloads::{InputSize, Workload};

    fn cell(budget: u64, policy: DispatchPolicy) -> RunSpec {
        let opts = ExpOptions {
            seed: 11,
            ..ExpOptions::default()
        };
        let mut params = opts.workload_params();
        params.pei_budget = budget;
        RunSpec::sized(
            opts.machine(policy),
            params,
            Workload::Atf,
            InputSize::Small,
        )
    }

    #[test]
    fn identical_specs_bisect_to_identical() {
        let a = cell(2_000, DispatchPolicy::LocalityAware);
        let r = bisect(&a, &a.clone(), 512).expect("bisect runs");
        assert!(matches!(r.outcome, BisectOutcome::Identical));
        assert_eq!(r.probes.len(), 1);
    }

    #[test]
    fn policy_divergence_is_found_at_the_full_diff_cycle() {
        // Host-only and locality-aware runs share the pre-PEI warmup
        // prefix and then diverge where the first PEI is dispatched
        // differently. The bisected cycle must match what a full-trace
        // diff reports.
        let a = cell(2_000, DispatchPolicy::HostOnly);
        let b = cell(2_000, DispatchPolicy::LocalityAware);
        let full_a = Trace::from_bytes(
            &a.run_traced(Box::new(Recorder::new()))
                .1
                .to_petr()
                .expect("capture"),
        )
        .expect("parse");
        let full_b = Trace::from_bytes(
            &b.run_traced(Box::new(Recorder::new()))
                .1
                .to_petr()
                .expect("capture"),
        )
        .expect("parse");
        let expect_cycle = match diff(&full_a, &full_b).expect("policies diverge") {
            Divergence::Record { left, right, .. } => left.cycle.min(right.cycle),
            Divergence::Length { extra, .. } => extra.cycle,
            Divergence::Dropped { .. } => unreachable!("unbounded recorders"),
        };
        let r = bisect(&a, &b, 256).expect("bisect runs");
        match r.outcome {
            BisectOutcome::Trace { cycle, .. } => assert_eq!(cycle, expect_cycle),
            other => panic!("expected a trace divergence, got {other:?}"),
        }
        assert!(r.probes.len() > 2, "search actually bisected");
    }

    #[test]
    fn seed_divergence_bisects_and_reports_a_record() {
        // Different workload seeds diverge essentially immediately;
        // the search must still terminate and name a concrete record.
        let a = cell(2_000, DispatchPolicy::LocalityAware);
        let mut b = a.clone();
        b.params.seed = 12;
        let r = bisect(&a, &b, 512).expect("bisect runs");
        match r.outcome {
            BisectOutcome::Trace { divergence, .. } => {
                // Divergence is real and resolvable to names.
                let text = format!("{divergence}");
                assert!(!text.is_empty());
            }
            other => panic!("expected a trace divergence, got {other:?}"),
        }
    }

    #[test]
    fn engine_mismatch_is_rejected() {
        let a = cell(1_000, DispatchPolicy::LocalityAware);
        let mut b = a.clone();
        b.shards = Some(2);
        let err = bisect(&a, &b, 512).unwrap_err();
        assert!(err.contains("same engine"), "got: {err}");
    }
}
