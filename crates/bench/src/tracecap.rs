//! Capture and deterministic replay of simulator event traces.
//!
//! A `.petr` trace (see the `pei-trace` crate and DESIGN.md §8) records
//! every event the machine dispatched. This module makes such captures
//! *replayable*: a [`CaptureSpec`] — the recipe of one simulation cell —
//! is serialized into the trace's metadata table at capture time, so a
//! later process can rebuild the exact same [`RunSpec`], re-execute it,
//! and check that both the event stream and the final [`StatsReport`]
//! come out byte-identical. That check is the determinism contract of
//! EXPERIMENTS.md made mechanical: any divergence names the first
//! differing record.
//!
//! The `trace_capture` and `trace_diff` binaries are thin CLI wrappers
//! over this module; `crates/bench/tests/trace_roundtrip.rs` exercises
//! the full capture → serialize → parse → replay → compare loop.
//!
//! [`StatsReport`]: pei_engine::StatsReport

use crate::runner::RunSpec;
use crate::{ExpOptions, Scale};
use pei_core::DispatchPolicy;
use pei_system::RunResult;
use pei_trace::{diff, Divergence, Recorder, Trace, TraceSink};
use pei_workloads::{InputSize, Workload};

/// Trace-metadata name of a dispatch policy.
pub fn policy_name(p: DispatchPolicy) -> &'static str {
    match p {
        DispatchPolicy::HostOnly => "host-only",
        DispatchPolicy::PimOnly => "pim-only",
        DispatchPolicy::LocalityAware => "locality-aware",
        DispatchPolicy::LocalityAwareBalanced => "locality-aware-balanced",
    }
}

/// Inverse of [`policy_name`].
pub fn parse_policy(s: &str) -> Option<DispatchPolicy> {
    [
        DispatchPolicy::HostOnly,
        DispatchPolicy::PimOnly,
        DispatchPolicy::LocalityAware,
        DispatchPolicy::LocalityAwareBalanced,
    ]
    .into_iter()
    .find(|&p| policy_name(p) == s)
}

/// Trace-metadata name of an input size.
pub fn size_name(s: InputSize) -> &'static str {
    match s {
        InputSize::Small => "small",
        InputSize::Medium => "medium",
        InputSize::Large => "large",
    }
}

/// Inverse of [`size_name`].
pub fn parse_size(s: &str) -> Option<InputSize> {
    InputSize::ALL.into_iter().find(|&x| size_name(x) == s)
}

/// Parses a workload by its figure label (`ATF`, `HJ`, …),
/// case-insensitively.
pub fn parse_workload(s: &str) -> Option<Workload> {
    Workload::ALL
        .into_iter()
        .find(|w| w.label().eq_ignore_ascii_case(s))
}

/// The recipe of one replayable simulation cell.
///
/// Everything here is a *value*: rebuilding the [`RunSpec`] from these
/// fields and running it is a pure function (the determinism contract),
/// so a capture made on one machine replays byte-identically on
/// another. Only recipe-level cells — a standard workload at a standard
/// size on a constructor-built machine — are replayable; sweep cells
/// with hand-tweaked configs are traceable but carry no recipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaptureSpec {
    /// Which workload.
    pub workload: Workload,
    /// Which input size.
    pub size: InputSize,
    /// Dispatch policy.
    pub policy: DispatchPolicy,
    /// Simulation effort (sets the PEI budget).
    pub scale: Scale,
    /// Paper-scale machine instead of the scaled default.
    pub paper_machine: bool,
    /// Workload seed.
    pub seed: u64,
    /// Overrides the scale's PEI budget when set (tests use tiny
    /// budgets to keep the capture→replay loop fast).
    pub pei_budget: Option<u64>,
    /// Capture ran on the sharded engine with this many threads
    /// (`System::run_sharded`, DESIGN.md §10). Part of the recipe
    /// because the sharded schedule is a different valid event ordering
    /// than the sequential one: a replay must re-execute on the same
    /// engine to be byte-comparable. The thread count itself doesn't
    /// affect results, but is preserved verbatim for provenance.
    pub shards: Option<usize>,
}

impl std::fmt::Display for CaptureSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}/{} ({}{}{}, seed {})",
            self.workload.label(),
            size_name(self.size),
            policy_name(self.policy),
            self.scale.name(),
            if self.paper_machine { ", paper" } else { "" },
            if self.shards.is_some() {
                ", sharded"
            } else {
                ""
            },
            self.seed
        )
    }
}

impl CaptureSpec {
    /// The runnable cell this recipe describes.
    pub fn to_run_spec(&self) -> RunSpec {
        let opts = ExpOptions {
            scale: self.scale,
            paper_machine: self.paper_machine,
            seed: self.seed,
            ..ExpOptions::default()
        };
        let mut params = opts.workload_params();
        if let Some(b) = self.pei_budget {
            params.pei_budget = b;
        }
        let mut spec = RunSpec::sized(opts.machine(self.policy), params, self.workload, self.size);
        spec.shards = self.shards;
        spec
    }

    /// Writes this recipe into a sink's metadata table under `spec.*`
    /// keys.
    pub fn write_meta(&self, sink: &mut dyn TraceSink) {
        sink.meta("spec.workload", self.workload.label());
        sink.meta("spec.size", size_name(self.size));
        sink.meta("spec.policy", policy_name(self.policy));
        sink.meta("spec.scale", self.scale.name());
        sink.meta("spec.paper", if self.paper_machine { "1" } else { "0" });
        sink.meta("spec.seed", &self.seed.to_string());
        if let Some(b) = self.pei_budget {
            sink.meta("spec.budget", &b.to_string());
        }
        if let Some(n) = self.shards {
            sink.meta("spec.shards", &n.to_string());
        }
    }

    /// Reads a recipe back out of a trace's metadata. `Err` names the
    /// missing or malformed key — traces captured without a recipe
    /// (sweep cells, hand-built systems) are diffable but not
    /// replayable.
    pub fn from_trace(t: &Trace) -> Result<CaptureSpec, String> {
        fn get<'a>(t: &'a Trace, key: &str) -> Result<&'a str, String> {
            t.meta_get(key)
                .ok_or_else(|| format!("trace has no `{key}` metadata (not a replayable capture)"))
        }
        let workload = parse_workload(get(t, "spec.workload")?)
            .ok_or_else(|| "bad `spec.workload` metadata: unknown workload".to_string())?;
        let size = parse_size(get(t, "spec.size")?)
            .ok_or_else(|| "bad `spec.size` metadata: unknown size".to_string())?;
        let policy = parse_policy(get(t, "spec.policy")?)
            .ok_or_else(|| "bad `spec.policy` metadata: unknown policy".to_string())?;
        let scale = Scale::parse(get(t, "spec.scale")?)
            .ok_or_else(|| "bad `spec.scale` metadata: unknown scale".to_string())?;
        let paper_machine = match get(t, "spec.paper")? {
            "0" => false,
            "1" => true,
            _ => return Err("bad `spec.paper` metadata: expected 0 or 1".into()),
        };
        let seed: u64 = get(t, "spec.seed")?
            .parse()
            .map_err(|_| "bad `spec.seed` metadata: not an integer".to_string())?;
        let pei_budget = match t.meta_get("spec.budget") {
            None => None,
            Some(b) => Some(
                b.parse()
                    .map_err(|_| "bad `spec.budget` metadata: not an integer".to_string())?,
            ),
        };
        let shards = match t.meta_get("spec.shards") {
            None => None,
            Some(n) => Some(
                n.parse()
                    .map_err(|_| "bad `spec.shards` metadata: not an integer".to_string())?,
            ),
        };
        Ok(CaptureSpec {
            workload,
            size,
            policy,
            scale,
            paper_machine,
            seed,
            pei_budget,
            shards,
        })
    }

    /// Runs the cell with a recorder attached and returns the result
    /// plus the finished trace, its metadata carrying both this recipe
    /// and the run's full statistics report (under the `stats` key) so
    /// [`replay`] can verify byte-identity later.
    pub fn capture(&self) -> (RunResult, Trace) {
        let (result, mut sink) = self.to_run_spec().run_traced(Box::new(Recorder::new()));
        self.write_meta(sink.as_mut());
        sink.meta("stats", &result.stats.to_string());
        let bytes = sink.to_petr().expect("a Recorder retains its capture");
        let trace = Trace::from_bytes(&bytes).expect("a Recorder round-trips its own encoding");
        (result, trace)
    }
}

/// The outcome of replaying a captured trace.
#[derive(Debug)]
pub struct Replay {
    /// The recipe that was re-executed.
    pub spec: CaptureSpec,
    /// The re-execution's result.
    pub result: RunResult,
    /// Whether the re-executed statistics report is byte-identical to
    /// the one stored in the capture's `stats` metadata.
    pub stats_match: bool,
    /// First divergence between the captured and re-recorded event
    /// streams, if any.
    pub divergence: Option<Divergence>,
}

impl Replay {
    /// Whether the replay reproduced the capture exactly.
    pub fn identical(&self) -> bool {
        self.stats_match && self.divergence.is_none()
    }
}

/// Re-executes the cell recorded in `t`'s metadata and compares both
/// the event stream and the statistics report against the capture.
/// `Err` means the trace carries no (or malformed) recipe; a
/// *divergent* replay is an `Ok` whose [`Replay::identical`] is false.
pub fn replay(t: &Trace) -> Result<Replay, String> {
    let spec = CaptureSpec::from_trace(t)?;
    let expected_stats = t
        .meta_get("stats")
        .ok_or_else(|| "trace has no `stats` metadata (not a replayable capture)".to_string())?
        .to_string();
    let (result, sink) = spec.to_run_spec().run_traced(Box::new(Recorder::new()));
    let bytes = sink.to_petr().expect("a Recorder retains its capture");
    let reexec = Trace::from_bytes(&bytes).expect("a Recorder round-trips its own encoding");
    let stats_match = result.stats.to_string() == expected_stats;
    let divergence = diff(t, &reexec);
    Ok(Replay {
        spec,
        result,
        stats_match,
        divergence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_round_trips() {
        for w in Workload::ALL {
            assert_eq!(parse_workload(w.label()), Some(w));
        }
        assert_eq!(parse_workload("atf"), Some(Workload::Atf));
        assert_eq!(parse_workload("nope"), None);
        for s in InputSize::ALL {
            assert_eq!(parse_size(size_name(s)), Some(s));
        }
        for p in [
            DispatchPolicy::HostOnly,
            DispatchPolicy::PimOnly,
            DispatchPolicy::LocalityAware,
            DispatchPolicy::LocalityAwareBalanced,
        ] {
            assert_eq!(parse_policy(policy_name(p)), Some(p));
        }
        for sc in [Scale::Quick, Scale::Full] {
            assert_eq!(Scale::parse(sc.name()), Some(sc));
        }
    }

    #[test]
    fn spec_meta_round_trips() {
        let spec = CaptureSpec {
            workload: Workload::Hj,
            size: InputSize::Medium,
            policy: DispatchPolicy::LocalityAwareBalanced,
            scale: Scale::Full,
            paper_machine: true,
            seed: 0xfeed,
            pei_budget: Some(1234),
            shards: Some(2),
        };
        let mut rec = Recorder::new();
        spec.write_meta(&mut rec);
        let t = Trace::from_bytes(&rec.to_petr().unwrap()).unwrap();
        assert_eq!(CaptureSpec::from_trace(&t).unwrap(), spec);
    }

    #[test]
    fn unreplayable_trace_is_reported() {
        let t = Trace::from_bytes(&Recorder::new().to_petr().unwrap()).unwrap();
        let err = CaptureSpec::from_trace(&t).unwrap_err();
        assert!(err.contains("spec.workload"), "{err}");
        assert!(replay(&t).is_err());
    }
}
