//! Deterministic parallel execution of experiment grids.
//!
//! Every figure of the paper's evaluation (§7) is a grid of *mutually
//! independent* simulations: workloads × input sizes × machine
//! configurations, 200 multiprogrammed mixes, parameter sweeps. This
//! module turns one grid cell into a value — a [`RunSpec`] — and fans a
//! batch of them out over a [`std::thread::scope`] worker pool:
//!
//! * **Self-contained jobs.** A `RunSpec` carries everything a cell
//!   needs (machine config, workload parameters, input description,
//!   cycle limit), so running it is a pure function of the spec. Input
//!   seeds are fixed when the spec is *built*, never drawn during
//!   execution, which makes results independent of scheduling.
//! * **Work queue.** Workers claim specs from a shared atomic counter —
//!   no per-thread partitioning, so one slow cell (a large PIM-Only run)
//!   doesn't idle the rest of the pool.
//! * **Ordered collection.** Each result lands in its spec's slot, and
//!   callers print only after [`Batch::run`] returns — output tables are
//!   byte-identical for any `--jobs` value (the determinism contract,
//!   EXPERIMENTS.md).
//!
//! Workload inputs come from the process-wide cache in
//! [`pei_workloads::cache`], so the four configurations of one cell
//! share one generated graph no matter which workers execute them.
//!
//! # Examples
//!
//! ```
//! use pei_bench::runner::{Batch, RunSpec};
//! use pei_bench::ExpOptions;
//! use pei_core::DispatchPolicy;
//! use pei_workloads::{InputSize, Workload};
//!
//! let opts = ExpOptions::default();
//! let params = opts.workload_params();
//! let mut batch = Batch::new();
//! let host = batch.push(RunSpec::sized(
//!     opts.machine(DispatchPolicy::HostOnly),
//!     params,
//!     Workload::Atf,
//!     InputSize::Small,
//! ));
//! let pim = batch.push(RunSpec::sized(
//!     opts.machine(DispatchPolicy::PimOnly),
//!     params,
//!     Workload::Atf,
//!     InputSize::Small,
//! ));
//! let results = batch.run(2);
//! assert!(results[host].cycles > 0 && results[pim].cycles > 0);
//! ```

use crate::{ExpOptions, CYCLE_LIMIT};
use pei_core::DispatchPolicy;
use pei_system::{
    CheckConfig, FaultPlan, MachineConfig, PauseAt, RunResult, RunStatus, Snapshot, System,
};
use pei_workloads::{cache, InputSize, Workload, WorkloadParams};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The input of one simulation cell.
#[derive(Debug, Clone)]
pub enum SpecInput {
    /// A workload at one of the paper's three input sizes (§7.1).
    Sized {
        /// Which workload.
        workload: Workload,
        /// Which input size.
        size: InputSize,
    },
    /// A graph workload on an explicitly sized power-law graph (the
    /// Fig. 2 / Fig. 8 nine-graph series).
    OnGraph {
        /// Which (graph) workload.
        workload: Workload,
        /// Vertex count.
        vertices: usize,
        /// Average out-degree.
        avg_deg: usize,
        /// Graph generation seed.
        graph_seed: u64,
    },
    /// Two co-scheduled workloads splitting the machine's cores in half
    /// (the Fig. 9 multiprogrammed mixes, §7.3). Workload `b` builds
    /// with its own parameters (disjoint heap, derived seed).
    Mix {
        /// First workload and its input size (cores `0..n/2`).
        a: (Workload, InputSize),
        /// Second workload and its input size (cores `n/2..n`).
        b: (Workload, InputSize),
        /// Build parameters for workload `b`.
        params_b: WorkloadParams,
    },
}

/// One simulation cell: everything needed to run it, fixed up front.
///
/// The per-spec seed lives in `params.seed` (and, for graph series, in
/// the explicit `graph_seed`); specs never draw randomness while
/// running, so a batch's results depend only on its specs — not on
/// `--jobs`, scheduling, or which worker picks up which cell.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// The machine to simulate (policy, scale, and any sweep overrides
    /// are all baked into the config — it is `Copy`, so sweeps mutate a
    /// local copy before pushing the spec).
    pub cfg: MachineConfig,
    /// Workload build parameters (threads, footprint, budget, seed).
    pub params: WorkloadParams,
    /// What to simulate.
    pub input: SpecInput,
    /// Upper bound on simulated cycles. A run that exceeds it reports a
    /// `CycleLimit` outcome rather than panicking; the batch runner
    /// surfaces the failure and keeps sibling cells running.
    pub max_cycles: u64,
    /// Checked mode: sweep the invariant auditors during the run (see
    /// `pei_system::check`). Off by default; [`Batch::run_with`] sets it
    /// from `--check`.
    pub check: bool,
    /// Deterministic fault injection for this cell (test harness and
    /// checked-mode validation; `None` in every real experiment).
    pub fault: Option<FaultPlan>,
    /// Run on the sharded engine with this many threads
    /// (`System::run_sharded`, DESIGN.md §10) instead of the sequential
    /// loop. Results are identical for every `Some(n)`;
    /// [`Batch::run_with`] sets it from `--shards`.
    pub shards: Option<usize>,
}

impl RunSpec {
    /// A cell running `workload` at `size` on `cfg`.
    pub fn sized(
        cfg: MachineConfig,
        params: WorkloadParams,
        workload: Workload,
        size: InputSize,
    ) -> RunSpec {
        RunSpec {
            cfg,
            params,
            input: SpecInput::Sized { workload, size },
            max_cycles: CYCLE_LIMIT,
            check: false,
            fault: None,
            shards: None,
        }
    }

    /// A cell running a graph `workload` on an explicit power-law graph.
    pub fn on_graph(
        cfg: MachineConfig,
        params: WorkloadParams,
        workload: Workload,
        vertices: usize,
        avg_deg: usize,
        graph_seed: u64,
    ) -> RunSpec {
        RunSpec {
            cfg,
            params,
            input: SpecInput::OnGraph {
                workload,
                vertices,
                avg_deg,
                graph_seed,
            },
            max_cycles: CYCLE_LIMIT,
            check: false,
            fault: None,
            shards: None,
        }
    }

    /// A multiprogrammed cell: `a` on the lower half of the cores with
    /// `params`, `b` on the upper half with `params_b`.
    pub fn mix(
        cfg: MachineConfig,
        params: WorkloadParams,
        params_b: WorkloadParams,
        a: (Workload, InputSize),
        b: (Workload, InputSize),
    ) -> RunSpec {
        RunSpec {
            cfg,
            params,
            input: SpecInput::Mix { a, b, params_b },
            max_cycles: CYCLE_LIMIT,
            check: false,
            fault: None,
            shards: None,
        }
    }

    /// Builds the simulated machine for this cell — workload inputs
    /// generated, threads mapped to cores — without running it. Callers
    /// that want the plain result use [`run`](RunSpec::run); callers
    /// that attach observers (a [`pei_trace::TraceSink`], say) build
    /// first and drive [`System::run`] themselves.
    pub fn build(&self) -> System {
        match &self.input {
            SpecInput::Sized { workload, size } => {
                let (store, trace) = workload.build(*size, &self.params);
                let mut sys = System::new(self.cfg, store);
                sys.add_workload(trace, (0..self.cfg.cores).collect());
                sys
            }
            SpecInput::OnGraph {
                workload,
                vertices,
                avg_deg,
                graph_seed,
            } => {
                let g = cache::shared_power_law(*vertices, *avg_deg, *graph_seed);
                let (store, trace) = workload.build_on_graph(g, &self.params);
                let mut sys = System::new(self.cfg, store);
                sys.add_workload(trace, (0..self.cfg.cores).collect());
                sys
            }
            SpecInput::Mix { a, b, params_b } => {
                let half = self.cfg.cores / 2;
                let (mut store, trace_a) = a.0.build(a.1, &self.params);
                let (store_b, trace_b) = b.0.build(b.1, params_b);
                store.merge_from(&store_b);
                let mut sys = System::new(self.cfg, store);
                sys.add_workload(trace_a, (0..half).collect());
                sys.add_workload(trace_b, (half..self.cfg.cores).collect());
                sys
            }
        }
    }

    /// Applies the spec's fault plan and checked-mode flag to a freshly
    /// built machine (fault injection first, so the auditors observe
    /// the broken state).
    pub(crate) fn arm(&self, sys: &mut System) {
        if let Some(plan) = &self.fault {
            sys.inject_faults(plan);
        }
        if self.check {
            sys.enable_checks(CheckConfig::default());
        }
    }

    /// Executes this cell to completion. Pure in the spec: equal specs
    /// produce equal results, on any thread, in any order.
    pub fn run(&self) -> RunResult {
        let mut sys = self.build();
        self.arm(&mut sys);
        self.drive(&mut sys)
    }

    /// Runs a built-and-armed machine on the engine this spec selects:
    /// sequential, or sharded with `shards` threads.
    pub(crate) fn drive(&self, sys: &mut System) -> RunResult {
        match self.shards {
            Some(n) => sys.run_sharded(self.max_cycles, n),
            None => sys.run(self.max_cycles),
        }
    }

    /// Executes this cell with `sink` attached as an event tracer,
    /// returning the result and the detached sink. The simulated
    /// outcome is identical to [`run`](RunSpec::run) — tracing observes,
    /// never steers (see DESIGN.md §8).
    pub fn run_traced(
        &self,
        sink: Box<dyn pei_trace::TraceSink>,
    ) -> (RunResult, Box<dyn pei_trace::TraceSink>) {
        let mut sys = self.build();
        sys.attach_tracer(sink);
        self.arm(&mut sys);
        let result = self.drive(&mut sys);
        let sink = sys.detach_tracer().expect("tracer was just attached");
        (result, sink)
    }

    /// One-line description for failure summaries.
    fn describe(&self) -> String {
        let input = match &self.input {
            SpecInput::Sized { workload, size } => format!("{workload:?}/{size:?}"),
            SpecInput::OnGraph {
                workload, vertices, ..
            } => format!("{workload:?}/graph{vertices}"),
            SpecInput::Mix { a, b, .. } => format!("{:?}+{:?}", a.0, b.0),
        };
        format!(
            "{input} on {:?} (seed {})",
            self.cfg.policy, self.params.seed
        )
    }
}

/// An ordered batch of [`RunSpec`]s with slot-indexed results.
///
/// Build the batch first (recording each cell's index), run it once,
/// then print from the returned `Vec` — the index returned by
/// [`Batch::push`] addresses that spec's result regardless of which
/// worker executed it or when it finished.
#[derive(Debug, Default)]
pub struct Batch {
    specs: Vec<RunSpec>,
}

impl Batch {
    /// An empty batch.
    pub fn new() -> Batch {
        Batch::default()
    }

    /// Queues a spec, returning the index of its result slot.
    pub fn push(&mut self, spec: RunSpec) -> usize {
        self.specs.push(spec);
        self.specs.len() - 1
    }

    /// Number of queued specs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Runs every spec on up to `jobs` worker threads and returns the
    /// results in push order. `jobs == 1` runs inline on the calling
    /// thread; results are identical either way.
    pub fn run(self, jobs: usize) -> Vec<RunResult> {
        run_specs(&self.specs, jobs)
    }

    /// Like [`run`](Batch::run), but driven by the shared command-line
    /// options: `--jobs` picks the worker count, `--check` turns on
    /// checked mode for every cell, and `--shards` moves every cell
    /// onto the sharded engine. The one-line change that gives a figure
    /// binary the full sanitizer and parallel-engine surface.
    ///
    /// Cells that differ only in dispatch policy (within one PMU monitor
    /// class) share a warmed snapshot instead of each replaying the
    /// pre-PEI prefix (see [`run_specs_forked`]); `--no-fork` falls back
    /// to cold runs. Results are identical either way.
    pub fn run_with(mut self, opts: &ExpOptions) -> Vec<RunResult> {
        for spec in &mut self.specs {
            if opts.check {
                spec.check = true;
            }
            if opts.shards.is_some() {
                spec.shards = opts.shards;
            }
        }
        run_specs_forked(&self.specs, opts.jobs, !opts.no_fork)
    }
}

/// Runs `specs` on up to `jobs` worker threads, returning results in
/// spec order. The workers share an atomic cursor over the spec list;
/// each claimed cell writes its result into its own slot, so the output
/// is a pure function of `specs` for every `jobs >= 1`.
///
/// A cell that stalls, hits its cycle limit, or fails an invariant
/// check does **not** take the batch down: its failure outcome lands in
/// its slot like any result, sibling cells keep running, and a summary
/// of every failed cell (spec description plus its
/// [`pei_system::FailureReport`]) goes to stderr before this returns.
///
/// # Panics
///
/// Panics if `jobs == 0`, or propagates the panic of any failed cell.
pub fn run_specs(specs: &[RunSpec], jobs: usize) -> Vec<RunResult> {
    assert!(jobs > 0, "--jobs must be at least 1");
    let workers = jobs.min(specs.len());
    let results: Vec<RunResult> = if workers <= 1 {
        specs.iter().map(RunSpec::run).collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<RunResult>>> = specs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = specs.get(i) else { break };
                    let result = spec.run();
                    *slots[i].lock().unwrap() = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker panicked; result slot poisoned")
                    .expect("every spec gets exactly one result")
            })
            .collect()
    };
    report_failures(specs, &results);
    results
}

/// When (and whether) the batch runner forks warmed snapshots across a
/// fork group instead of cold-running every member.
///
/// PR 7 measured forking at 0.93× on quick-scale cells: the trace-driven
/// warmup prefix is only a few thousand cycles there, so serializing and
/// restoring the whole machine costs more than the replay it saves
/// (EXPERIMENTS.md, "Warm-state forking"). The fix is a *prefix-cycle
/// threshold*: after warming a group's first member to the first PEI,
/// the runner checks how long the shared prefix actually was, and below
/// [`min_prefix`](ForkPolicy::min_prefix) it skips the snapshot — the
/// already-warm machine simply continues as the first member's run (no
/// work wasted) and the remaining members run cold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForkPolicy {
    /// Master switch; `false` is the `--no-fork` escape hatch and
    /// degrades to [`run_specs`] exactly.
    pub enabled: bool,
    /// Fork only groups whose warmup prefix reaches at least this many
    /// cycles; shorter prefixes are cheaper to replay than to snapshot.
    pub min_prefix: u64,
}

/// Default auto-bypass threshold, in warmup-prefix cycles.
///
/// Chosen from in-container measurement (EXPERIMENTS.md): today's
/// trace-driven workloads dispatch their first PEI after only 12–27
/// cycles at *every* input size, while one snapshot costs 0.5–32 ms
/// (0.3–18 MB of machine state) — which is why PR 7 measured forking
/// as a 0.93× net *slowdown*. At the engine's measured 4–7 M events/s
/// a snapshot+restore round-trip only breaks even once the shared
/// prefix is worth on the order of 10⁵ cycles of replay, so that is
/// the default gate; workloads with a real pre-PEI warmup phase clear
/// it, everything current bypasses automatically.
pub const FORK_MIN_PREFIX_CYCLES: u64 = 100_000;

impl Default for ForkPolicy {
    fn default() -> ForkPolicy {
        ForkPolicy {
            enabled: true,
            min_prefix: FORK_MIN_PREFIX_CYCLES,
        }
    }
}

impl ForkPolicy {
    /// Never fork (`--no-fork`).
    pub fn disabled() -> ForkPolicy {
        ForkPolicy {
            enabled: false,
            min_prefix: 0,
        }
    }

    /// Fork every eligible group regardless of prefix length — the
    /// identity-pinning tests and `sim_throughput --fork-bench` use
    /// this so the fork path is actually exercised at quick scale.
    pub fn always() -> ForkPolicy {
        ForkPolicy {
            enabled: true,
            min_prefix: 0,
        }
    }

    fn from_flag(fork: bool) -> ForkPolicy {
        if fork {
            ForkPolicy::default()
        } else {
            ForkPolicy::disabled()
        }
    }
}

/// Per-cell accounting of a forked batch (and of `pei-serve`'s resident
/// fork cache): every cell lands in exactly one of the four counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForkStats {
    /// Cells completed from a restored warm snapshot.
    pub hits: u64,
    /// Cells that executed a warmup prefix themselves (one per group
    /// that attempted to fork; the warmed machine always finishes that
    /// member's run itself, so a miss wastes nothing).
    pub misses: u64,
    /// Cells cold-run because the [`ForkPolicy::min_prefix`]
    /// auto-bypass judged their group's prefix too short to snapshot.
    pub bypasses: u64,
    /// Cells that can never fork: no fork key (fault plan, sharded
    /// engine), singleton groups, forking disabled, or nothing
    /// shareable (the group's run completes before any PEI).
    pub ineligible: u64,
}

impl ForkStats {
    /// Fraction of fork-attempting cells served by a restored snapshot:
    /// `hits / (hits + misses)`, `0.0` when nothing attempted.
    pub fn hit_rate(&self) -> f64 {
        let attempts = self.hits + self.misses;
        if attempts == 0 {
            0.0
        } else {
            self.hits as f64 / attempts as f64
        }
    }
}

/// Internal thread-shared tally behind [`ForkStats`].
#[derive(Default)]
struct ForkCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    bypasses: AtomicU64,
    ineligible: AtomicU64,
}

impl ForkCounters {
    fn snapshot(&self) -> ForkStats {
        ForkStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            ineligible: self.ineligible.load(Ordering::Relaxed),
        }
    }
}

/// Like [`run_specs`], but with warm-state forking under the default
/// [`ForkPolicy`]: see [`run_specs_forked_with`]. `fork == false`
/// degrades to [`run_specs`] exactly.
///
/// # Panics
///
/// Panics if `jobs == 0`, or propagates the panic of any failed cell.
pub fn run_specs_forked(specs: &[RunSpec], jobs: usize, fork: bool) -> Vec<RunResult> {
    run_specs_forked_with(specs, jobs, ForkPolicy::from_flag(fork)).0
}

/// Runs `specs` with warm-state forking: cells that share everything
/// except dispatch policy — and whose policies fall in the same PMU
/// monitor class (`DispatchPolicy::uses_monitor`, DESIGN.md §11) — run
/// the pre-PEI warmup prefix **once**, snapshot the machine at the
/// first PEI ([`PauseAt::FirstPei`]), and restore that snapshot per
/// cell instead of replaying the prefix. Until the first PEI no policy
/// decision has been taken and the locality monitor has shadowed the
/// same L3 traffic for every policy in the class, so the forked results
/// are byte-identical to cold runs.
///
/// `policy` controls when the snapshot is worth taking: below
/// [`ForkPolicy::min_prefix`] warmup cycles the runner bypasses the
/// fork — the warmed machine continues as the first member's run and
/// the rest run cold — because at that scale snapshotting is a
/// measured net loss. Cells that cannot share (fault plans, sharded
/// engine, singleton groups) and groups whose warmup completes the
/// whole run or fails to snapshot fall back to cold runs per cell —
/// forking is an optimization, never a requirement. Workers claim
/// whole groups, so a group's snapshot lives on one worker's stack and
/// is dropped before the next claim.
///
/// The returned [`ForkStats`] classify every cell (hit / miss / bypass
/// / ineligible); `sim_throughput --fork-bench` records the hit rate so
/// BENCH_sim_throughput.json says *why* a speedup did or didn't appear.
///
/// # Panics
///
/// Panics if `jobs == 0`, or propagates the panic of any failed cell.
pub fn run_specs_forked_with(
    specs: &[RunSpec],
    jobs: usize,
    policy: ForkPolicy,
) -> (Vec<RunResult>, ForkStats) {
    assert!(jobs > 0, "--jobs must be at least 1");
    if !policy.enabled {
        let results = run_specs(specs, jobs);
        let stats = ForkStats {
            ineligible: specs.len() as u64,
            ..ForkStats::default()
        };
        return (results, stats);
    }
    // Group cells by warm prefix, preserving first-occurrence order so
    // the schedule (and any fallback stderr output) is deterministic.
    let mut key_to_group: HashMap<String, usize> = HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        match fork_key(spec) {
            Some(key) => match key_to_group.entry(key) {
                Entry::Occupied(e) => groups[*e.get()].push(i),
                Entry::Vacant(e) => {
                    e.insert(groups.len());
                    groups.push(vec![i]);
                }
            },
            None => groups.push(vec![i]),
        }
    }
    let counters = ForkCounters::default();
    let workers = jobs.min(groups.len());
    let results: Vec<RunResult> = if workers <= 1 {
        let mut slots: Vec<Option<RunResult>> = specs.iter().map(|_| None).collect();
        for group in &groups {
            for (i, result) in run_group(specs, group, policy, &counters) {
                slots[i] = Some(result);
            }
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every spec is in exactly one group"))
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<RunResult>>> = specs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let g = next.fetch_add(1, Ordering::Relaxed);
                    let Some(group) = groups.get(g) else { break };
                    for (i, result) in run_group(specs, group, policy, &counters) {
                        *slots[i].lock().unwrap() = Some(result);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker panicked; result slot poisoned")
                    .expect("every spec is in exactly one group")
            })
            .collect()
    };
    report_failures(specs, &results);
    (results, counters.snapshot())
}

/// The warm-prefix sharing key of a spec: `Some` iff the cell is
/// eligible for forking, with two specs sharing a warmed snapshot iff
/// their keys are equal. The key is the spec with its policy collapsed
/// to a monitor-class representative — everything before the first PEI
/// is policy-independent within a class, so that is exactly the state
/// the cells may share. `pei-serve` keys its resident fork cache on
/// this same string, so daemon jobs and batch cells share one grouping
/// rule.
pub fn fork_key(spec: &RunSpec) -> Option<String> {
    if spec.fault.is_some() || spec.shards.is_some() {
        // Faults arm at build time (snapshots refuse armed faults), and
        // the sharded engine re-partitions per run; neither forks.
        return None;
    }
    let mut cfg = spec.cfg;
    cfg.policy = if cfg.policy.uses_monitor() {
        DispatchPolicy::LocalityAware
    } else {
        DispatchPolicy::HostOnly
    };
    Some(format!(
        "{cfg:?}|{:?}|{:?}|{}|{}",
        spec.params, spec.input, spec.max_cycles, spec.check
    ))
}

/// Outcome of executing a spec's warmup prefix ([`warm_pause`]).
pub enum Warmup {
    /// The run finished (or failed) before the first PEI — there is no
    /// shareable prefix, and the result is the cell's complete result.
    Done(Box<RunResult>),
    /// Paused just before the first PEI at the given cycle; the machine
    /// is quiescent and ready to snapshot or to continue.
    Paused(Box<System>, u64),
}

/// Runs the warmup prefix of `spec` — build, arm, execute up to the
/// first PEI — and returns the paused machine with its pause cycle, or
/// the completed result if no PEI was ever dispatched. Callers decide
/// whether the prefix is long enough to be worth snapshotting
/// ([`ForkPolicy::min_prefix`]); eligibility ([`fork_key`]) is theirs
/// to check too.
pub fn warm_pause(spec: &RunSpec) -> Warmup {
    let mut sys = spec.build();
    spec.arm(&mut sys);
    match sys.run_paused(spec.max_cycles, Some(PauseAt::FirstPei)) {
        RunStatus::Paused { at } => Warmup::Paused(Box::new(sys), at),
        RunStatus::Completed(r) => Warmup::Done(Box::new(r)),
    }
}

/// Runs the warmup prefix of `spec` — build, arm, execute up to the
/// first PEI — and snapshots the paused machine. `None` when the cell
/// is ineligible (its fork key is `None`), when the run completes
/// without ever issuing a PEI, or when the paused machine refuses to
/// snapshot; callers fall back to cold runs.
pub fn warm_snapshot(spec: &RunSpec) -> Option<Snapshot> {
    fork_key(spec)?;
    match warm_pause(spec) {
        Warmup::Paused(mut sys, _) => sys.snapshot().ok(),
        Warmup::Done(_) => None,
    }
}

/// Finishes `spec` from a warmed snapshot: builds the cell's machine
/// (the restore target must carry the same workload and backing store),
/// restores `snap` over it, and runs to completion. Falls back to a
/// cold [`RunSpec::run`] if the snapshot doesn't fit this spec.
pub fn run_from_warm(spec: &RunSpec, snap: &Snapshot) -> RunResult {
    let mut sys = spec.build();
    spec.arm(&mut sys);
    match sys.restore(snap) {
        Ok(()) => spec.drive(&mut sys),
        Err(_) => spec.run(),
    }
}

/// Runs one fork group under `policy`, tallying into `counters`.
/// Groups of two or more warm the first member's machine to the first
/// PEI, then either snapshot-and-restore per member (prefix at or above
/// the threshold) or bypass (below it): the warmed machine continues as
/// the first member's own run — restoring a paused machine's state is
/// non-perturbing, so nothing is wasted — and the remaining members run
/// cold. Returns `(spec index, result)` pairs.
fn run_group(
    specs: &[RunSpec],
    members: &[usize],
    policy: ForkPolicy,
    counters: &ForkCounters,
) -> Vec<(usize, RunResult)> {
    if members.len() >= 2 {
        counters.misses.fetch_add(1, Ordering::Relaxed);
        match warm_pause(&specs[members[0]]) {
            Warmup::Paused(mut sys, at) => {
                if at >= policy.min_prefix {
                    if let Ok(snap) = sys.snapshot() {
                        counters
                            .hits
                            .fetch_add(members.len() as u64 - 1, Ordering::Relaxed);
                        // The snapshotted machine finishes the first
                        // member itself; siblings restore the snapshot.
                        let first = &specs[members[0]];
                        let mut out = vec![(members[0], first.drive(&mut sys))];
                        out.extend(
                            members[1..]
                                .iter()
                                .map(|&i| (i, run_from_warm(&specs[i], &snap))),
                        );
                        return out;
                    }
                }
                // Auto-bypass (prefix below the threshold) or snapshot
                // refusal: the warm machine is the first member's run;
                // siblings run cold.
                counters
                    .bypasses
                    .fetch_add(members.len() as u64 - 1, Ordering::Relaxed);
                let first = &specs[members[0]];
                let mut out = vec![(members[0], first.drive(&mut sys))];
                out.extend(members[1..].iter().map(|&i| (i, specs[i].run())));
                return out;
            }
            Warmup::Done(r) => {
                // The whole run preceded any PEI; the "warmup" result is
                // the first member's complete result, and there is no
                // shareable prefix for the rest.
                counters
                    .ineligible
                    .fetch_add(members.len() as u64 - 1, Ordering::Relaxed);
                let mut out = vec![(members[0], *r)];
                out.extend(members[1..].iter().map(|&i| (i, specs[i].run())));
                return out;
            }
        }
    }
    counters
        .ineligible
        .fetch_add(members.len() as u64, Ordering::Relaxed);
    members.iter().map(|&i| (i, specs[i].run())).collect()
}

/// Prints each failed cell's spec and failure report to stderr; silent
/// when every cell completed.
fn report_failures(specs: &[RunSpec], results: &[RunResult]) {
    for (spec, result) in specs.iter().zip(results) {
        let Some(report) = result.outcome.report() else {
            continue;
        };
        eprintln!(
            "warning: cell failed: {}: {}",
            spec.describe(),
            report.summary()
        );
        for v in &report.violations {
            eprintln!("  {v}");
        }
        if !report.diagnosis.is_empty() {
            eprintln!("  diagnosis: {}", report.diagnosis.trim_end());
        }
        for (name, n) in &report.occupancies {
            eprintln!("  {name} = {n}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExpOptions;
    use pei_core::DispatchPolicy;

    fn tiny_specs() -> Vec<RunSpec> {
        let opts = ExpOptions {
            seed: 7,
            ..ExpOptions::default()
        };
        let mut params = opts.workload_params();
        params.pei_budget = 2_000;
        let mut specs = Vec::new();
        for w in [Workload::Atf, Workload::Hj] {
            for policy in [DispatchPolicy::HostOnly, DispatchPolicy::LocalityAware] {
                specs.push(RunSpec::sized(
                    opts.machine(policy),
                    params,
                    w,
                    InputSize::Small,
                ));
            }
        }
        specs
    }

    #[test]
    fn parallel_matches_serial() {
        let serial = run_specs(&tiny_specs(), 1);
        let parallel = run_specs(&tiny_specs(), 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.cycles, p.cycles);
            assert_eq!(s.instructions, p.instructions);
            assert_eq!(s.offchip_bytes, p.offchip_bytes);
        }
    }

    #[test]
    fn batch_indices_address_results() {
        let mut batch = Batch::new();
        let idx: Vec<usize> = tiny_specs().into_iter().map(|s| batch.push(s)).collect();
        assert_eq!(batch.len(), idx.len());
        let results = batch.run(2);
        assert_eq!(results.len(), idx.len());
        assert_eq!(idx, (0..results.len()).collect::<Vec<_>>());
    }

    #[test]
    fn sharded_specs_are_thread_count_invariant() {
        // `--shards 1` and `--shards 4` must agree cell for cell (the
        // sequential engine may legally order same-cycle events
        // differently, so it is not part of this comparison).
        let sharded = |n: usize| {
            let mut specs = tiny_specs();
            for s in &mut specs {
                s.shards = Some(n);
            }
            run_specs(&specs, 1)
        };
        for (a, b) in sharded(1).iter().zip(&sharded(4)) {
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.instructions, b.instructions);
            assert_eq!(a.stats, b.stats);
        }
    }

    /// A four-policy grid: both monitor classes are populated with two
    /// policies each, so forking shares two warmed snapshots per
    /// workload instead of running four cold prefixes.
    fn policy_grid() -> Vec<RunSpec> {
        let opts = ExpOptions {
            seed: 7,
            ..ExpOptions::default()
        };
        let mut params = opts.workload_params();
        params.pei_budget = 2_000;
        let mut specs = Vec::new();
        for w in [Workload::Atf, Workload::Hj] {
            for policy in [
                DispatchPolicy::HostOnly,
                DispatchPolicy::PimOnly,
                DispatchPolicy::LocalityAware,
                DispatchPolicy::LocalityAwareBalanced,
            ] {
                specs.push(RunSpec::sized(
                    opts.machine(policy),
                    params,
                    w,
                    InputSize::Small,
                ));
            }
        }
        specs
    }

    #[test]
    fn forked_matches_cold_cell_for_cell() {
        // ForkPolicy::always() so quick-scale prefixes (below the
        // default auto-bypass threshold) still exercise the fork path.
        let specs = policy_grid();
        let (cold, off) = run_specs_forked_with(&specs, 1, ForkPolicy::disabled());
        let (forked, stats) = run_specs_forked_with(&specs, 2, ForkPolicy::always());
        assert_eq!(cold.len(), forked.len());
        for (c, f) in cold.iter().zip(&forked) {
            assert_eq!(c.cycles, f.cycles);
            assert_eq!(c.instructions, f.instructions);
            assert_eq!(c.peis, f.peis);
            assert_eq!(c.stats, f.stats);
        }
        // 2 workloads × 2 monitor classes = 4 groups of 2: one warmup
        // (miss) and one restored sibling (hit) each.
        assert_eq!(
            stats,
            ForkStats {
                hits: 4,
                misses: 4,
                bypasses: 0,
                ineligible: 0
            }
        );
        assert_eq!(stats.hit_rate(), 0.5);
        assert_eq!(off.ineligible, specs.len() as u64);
        assert_eq!(off.hit_rate(), 0.0);
    }

    #[test]
    fn auto_bypass_skips_the_snapshot_and_stays_identical() {
        // An unreachable threshold forces the bypass path everywhere:
        // the first member of each group continues its warmed machine,
        // siblings run cold, and results still match cold runs exactly.
        let specs = policy_grid();
        let (cold, _) = run_specs_forked_with(&specs, 1, ForkPolicy::disabled());
        let policy = ForkPolicy {
            enabled: true,
            min_prefix: u64::MAX,
        };
        let (bypassed, stats) = run_specs_forked_with(&specs, 2, policy);
        for (c, b) in cold.iter().zip(&bypassed) {
            assert_eq!(c.cycles, b.cycles);
            assert_eq!(c.stats, b.stats);
        }
        assert_eq!(
            stats,
            ForkStats {
                hits: 0,
                misses: 4,
                bypasses: 4,
                ineligible: 0
            }
        );
    }

    #[test]
    fn default_policy_bypasses_quick_scale_prefixes() {
        // The satellite contract: at quick scale the warmup prefix is
        // tiny, so the *default* policy must choose bypass over the
        // measured-0.93× snapshot path — while --no-fork stays the
        // manual override.
        let specs = policy_grid();
        let (_, stats) = run_specs_forked_with(&specs, 1, ForkPolicy::default());
        assert_eq!(stats.hits, 0, "quick-scale cells must not fork");
        assert_eq!(stats.bypasses, 4);
    }

    #[test]
    fn fork_keys_group_by_monitor_class() {
        let specs = policy_grid();
        // Per workload: HostOnly+PimOnly share one key, the two
        // locality-aware policies share another.
        assert_eq!(fork_key(&specs[0]), fork_key(&specs[1]));
        assert_eq!(fork_key(&specs[2]), fork_key(&specs[3]));
        assert_ne!(fork_key(&specs[0]), fork_key(&specs[2]));
        assert_ne!(fork_key(&specs[0]), fork_key(&specs[4]));
        // Faulted and sharded cells never fork.
        let mut sharded = specs[0].clone();
        sharded.shards = Some(2);
        assert_eq!(fork_key(&sharded), None);
    }

    #[test]
    fn warm_snapshot_feeds_every_policy_in_its_class() {
        let specs = policy_grid();
        let snap = warm_snapshot(&specs[2]).expect("warmup reaches a PEI");
        let warm_la = run_from_warm(&specs[2], &snap);
        let warm_lab = run_from_warm(&specs[3], &snap);
        let cold_la = specs[2].run();
        let cold_lab = specs[3].run();
        assert_eq!(warm_la.stats, cold_la.stats);
        assert_eq!(warm_lab.stats, cold_lab.stats);
        assert_eq!(warm_la.cycles, cold_la.cycles);
        assert_eq!(warm_lab.cycles, cold_lab.cycles);
    }

    #[test]
    #[should_panic(expected = "--jobs must be at least 1")]
    fn zero_jobs_rejected() {
        run_specs(&[], 0);
    }
}
