//! Experiment harness: shared machinery for the figure-reproduction
//! binaries (`fig2` … `fig12`, `pmu_overhead`, `ablations`).
//!
//! Every binary accepts:
//!
//! * `--scale quick|full` — PEI budget per run (quick ≈ 40 K, full ≈
//!   200 K; the paper's analog is its fixed 2-billion-instruction window);
//! * `--paper` — use the paper-scale machine (16 cores, 16 MB L3,
//!   8 HMCs) instead of the proportionally scaled default (4 cores,
//!   1 MB L3, 1 HMC);
//! * `--seed <n>` — RNG seed;
//! * `--jobs <n>` — worker threads for the experiment grid (default:
//!   available parallelism). Tables are byte-identical for every value —
//!   see [`runner`] and the determinism contract in EXPERIMENTS.md;
//! * `--shards <n>` — run every cell on the sharded engine
//!   (`System::run_sharded`) with `n` threads: the machine splits into
//!   a host shard plus one shard per HMC cube exchanging messages at
//!   epoch barriers (DESIGN.md §10). Results are byte-identical for
//!   every `n >= 1`; intra-run parallelism composes with `--jobs`
//!   (total threads ≈ jobs × shards, so trade one against the other);
//! * `--check` — checked mode: every run sweeps the simulator's
//!   cross-component invariant auditors (MESI, MSHR leaks, flit/credit
//!   conservation, operand accounting, event population; see
//!   `pei_system::check` and DESIGN.md §9), and failed cells surface
//!   structured failure reports on stderr while sibling cells keep
//!   running;
//! * `--no-fork` — run every grid cell cold instead of forking a warmed
//!   snapshot across cells that share a pre-PEI prefix (see
//!   [`runner::run_specs_forked`] and DESIGN.md §11). Results are
//!   byte-identical either way; forking only saves wall-clock time.
//!
//! Binaries describe their grid as [`runner::RunSpec`]s collected into a
//! [`runner::Batch`], run it once, and print from the ordered results.
//! Results print as aligned text tables whose rows mirror the series of
//! the corresponding paper figure; EXPERIMENTS.md records a measured run
//! against the paper's claims.
//!
//! This crate's place in the workspace is mapped in DESIGN.md §5.

#![warn(missing_docs)]

pub mod bisect;
pub mod runner;
pub mod service;
pub mod tracecap;

use pei_core::DispatchPolicy;
use pei_system::{MachineConfig, RunResult, System};
use pei_workloads::{InputSize, Workload, WorkloadParams};

/// Simulation effort per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~40 K PEIs per run: the full figure suite in minutes.
    Quick,
    /// ~200 K PEIs per run.
    Full,
}

impl Scale {
    /// Command-line / trace-metadata name (`quick` or `full`).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }

    /// Inverse of [`name`](Scale::name).
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// Parsed command-line options shared by all figure binaries.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Simulation effort.
    pub scale: Scale,
    /// Paper-scale machine instead of the scaled default.
    pub paper_machine: bool,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the experiment grid (`>= 1`). Affects
    /// wall-clock time only, never results.
    pub jobs: usize,
    /// Run every cell on the sharded engine with this many threads
    /// (`System::run_sharded`; see DESIGN.md §10). `None` uses the
    /// sequential engine. Results are identical for every `Some(n)`,
    /// but the sharded schedule is a *different* (equally valid)
    /// event ordering than the sequential one, so this is an explicit
    /// opt-in rather than a default.
    pub shards: Option<usize>,
    /// If set, also capture the binary's representative cell as an
    /// event trace (`.petr`, see [`tracecap`]) at this path.
    pub trace: Option<std::path::PathBuf>,
    /// Checked mode: every run sweeps the cross-component invariant
    /// auditors (`pei_system::check`) and failed cells surface
    /// structured reports instead of panicking. Results are
    /// byte-identical to unchecked runs unless a checker fires.
    pub check: bool,
    /// Disable warm-state forking: run every cell cold instead of
    /// letting policy siblings share a snapshot taken at the first PEI
    /// (see [`runner::run_specs_forked`]). Results are byte-identical
    /// either way; this is the escape hatch for timing the warmup
    /// itself or isolating a suspected fork bug.
    pub no_fork: bool,
}

impl Default for ExpOptions {
    /// Quick scale, scaled machine, the default seed, one worker per
    /// available hardware thread, and no trace capture.
    fn default() -> Self {
        ExpOptions {
            scale: Scale::Quick,
            paper_machine: false,
            seed: 0x5eed,
            jobs: default_jobs(),
            shards: None,
            trace: None,
            check: false,
            no_fork: false,
        }
    }
}

/// The default `--jobs` value: available hardware parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl ExpOptions {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown arguments.
    pub fn from_args() -> Self {
        let mut opts = ExpOptions::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    let v = args.next().expect("--scale needs quick|full");
                    opts.scale = Scale::parse(&v)
                        .unwrap_or_else(|| panic!("unknown scale `{v}` (quick|full)"));
                }
                "--paper" => opts.paper_machine = true,
                "--seed" => {
                    opts.seed = args
                        .next()
                        .expect("--seed needs a number")
                        .parse()
                        .expect("seed must be an integer");
                }
                "--jobs" => {
                    opts.jobs = args
                        .next()
                        .expect("--jobs needs a number")
                        .parse()
                        .expect("jobs must be an integer");
                    assert!(opts.jobs >= 1, "--jobs must be at least 1");
                }
                "--shards" => {
                    let n: usize = args
                        .next()
                        .expect("--shards needs a number")
                        .parse()
                        .expect("shards must be an integer");
                    assert!(n >= 1, "--shards must be at least 1");
                    opts.shards = Some(n);
                }
                "--trace" => {
                    opts.trace = Some(args.next().expect("--trace needs a path").into());
                }
                "--check" => opts.check = true,
                "--no-fork" => opts.no_fork = true,
                other => {
                    panic!(
                        "unknown argument `{other}` (--scale, --paper, --seed, --jobs, --shards, --trace, --check, --no-fork)"
                    )
                }
            }
        }
        opts
    }

    /// The Ideal-Host reference machine (§7) at the chosen scale.
    pub fn ideal_machine(&self) -> MachineConfig {
        self.machine(DispatchPolicy::HostOnly).ideal_host()
    }

    /// The machine config for `policy` at the chosen machine scale.
    pub fn machine(&self, policy: DispatchPolicy) -> MachineConfig {
        if self.paper_machine {
            MachineConfig::paper(policy)
        } else {
            MachineConfig::scaled(policy)
        }
    }

    /// Workload parameters matched to the machine.
    pub fn workload_params(&self) -> WorkloadParams {
        let m = self.machine(DispatchPolicy::HostOnly);
        WorkloadParams {
            threads: m.cores,
            l3_bytes: m.mem.l3.capacity,
            pei_budget: match self.scale {
                Scale::Quick => 40_000,
                Scale::Full => 200_000,
            },
            phase_chunk: 8_192,
            seed: self.seed,
            heap_base: WorkloadParams::DEFAULT_HEAP_BASE,
        }
    }
}

/// Upper bound on simulated cycles before declaring a run stuck.
pub const CYCLE_LIMIT: u64 = 50_000_000_000;

/// Runs `workload` at `size` under `policy`, returning the result.
pub fn run_one(
    opts: &ExpOptions,
    workload: Workload,
    size: InputSize,
    policy: DispatchPolicy,
) -> RunResult {
    let params = opts.workload_params();
    let (store, trace) = workload.build(size, &params);
    run_trace(opts, store, trace, policy)
}

/// Runs a prepared `(store, trace)` pair under `policy`.
pub fn run_trace(
    opts: &ExpOptions,
    store: pei_mem::BackingStore,
    trace: Box<dyn pei_cpu::trace::PhasedTrace>,
    policy: DispatchPolicy,
) -> RunResult {
    let cfg = opts.machine(policy);
    let mut sys = System::new(cfg, store);
    sys.add_workload(trace, (0..cfg.cores).collect());
    if opts.check {
        sys.enable_checks(pei_system::CheckConfig::default());
    }
    finish(opts, sys)
}

/// Drives a prepared system to completion on whichever engine the
/// options selected: sequential by default, sharded under `--shards`.
fn finish(opts: &ExpOptions, mut sys: System) -> RunResult {
    match opts.shards {
        Some(n) => sys.run_sharded(CYCLE_LIMIT, n),
        None => sys.run(CYCLE_LIMIT),
    }
}

/// If `--trace <path>` was given, captures the binary's representative
/// cell — `workload` at `size` under `policy`, at the options' scale and
/// seed — as a replayable `.petr` event trace at that path (see
/// [`tracecap`]). Call once, after printing the figure, with the cell
/// that best characterizes the figure's behavior. No-op without
/// `--trace`.
pub fn write_trace_if_requested(
    opts: &ExpOptions,
    workload: Workload,
    size: InputSize,
    policy: DispatchPolicy,
) {
    let Some(path) = &opts.trace else { return };
    let spec = tracecap::CaptureSpec {
        workload,
        size,
        policy,
        scale: opts.scale,
        paper_machine: opts.paper_machine,
        seed: opts.seed,
        pei_budget: None,
        shards: opts.shards,
    };
    let (_, trace) = spec.capture();
    std::fs::write(path, trace.to_bytes())
        .unwrap_or_else(|e| panic!("cannot write trace {}: {e}", path.display()));
    eprintln!(
        "captured {} records ({} dropped) from {} to {}",
        trace.records.len(),
        trace.dropped,
        spec,
        path.display()
    );
}

/// Runs with the Ideal-Host reference configuration (§7).
pub fn run_ideal_host(opts: &ExpOptions, workload: Workload, size: InputSize) -> RunResult {
    let params = opts.workload_params();
    let (store, trace) = workload.build(size, &params);
    let cfg = opts.machine(DispatchPolicy::HostOnly).ideal_host();
    let mut sys = System::new(cfg, store);
    sys.add_workload(trace, (0..cfg.cores).collect());
    if opts.check {
        sys.enable_checks(pei_system::CheckConfig::default());
    }
    finish(opts, sys)
}

/// Geometric mean.
///
/// # Panics
///
/// Panics if `xs` is empty or contains non-positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive values");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Prints a header line for a figure table.
pub fn print_title(title: &str) {
    println!("\n# {title}");
    println!("{}", "=".repeat(title.len() + 2));
}

/// Formats a row of right-aligned f64 cells after a left-aligned label.
pub fn print_row(label: &str, cells: &[f64]) {
    print!("{label:<22}");
    for c in cells {
        print!(" {c:>10.3}");
    }
    println!();
}

/// Prints column headers aligned with [`print_row`].
pub fn print_cols(first: &str, cols: &[&str]) {
    print!("{first:<22}");
    for c in cols {
        print!(" {c:>10}");
    }
    println!();
}

/// The nine-graph series of Figs. 2 and 8: synthetic stand-ins for the
/// paper's nine real-world graphs, ordered by vertex count (the paper
/// sorts its x-axis the same way). Returns `(name, vertices)`.
pub fn nine_graphs(l3_bytes: usize) -> Vec<(&'static str, usize)> {
    // Vertex counts span ~L3/3 to ~14×L3 of PEI-visible data (~48 B per
    // vertex) with a 1.6× ladder, mirroring the paper's 62 K – 5 M vertex
    // range (~77×) around its 16 MB L3.
    let base = (l3_bytes / 48 / 3).max(256);
    let names = [
        "syn-p2p-Gnutella31",
        "syn-email-EuAll",
        "syn-soc-Slashdot",
        "syn-web-Stanford",
        "syn-amazon-2008",
        "syn-frwiki-2013",
        "syn-wiki-Talk",
        "syn-cit-Patents",
        "syn-soc-LiveJournal",
    ];
    names
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, (base as f64 * 1.6f64.powi(i as i32)) as usize))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nine_graphs_grow_monotonically() {
        let g = nine_graphs(1 << 20);
        assert_eq!(g.len(), 9);
        for w in g.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
        // Smallest well under L3, largest far above it.
        assert!(g[0].1 * 48 < (1 << 20) / 2);
        assert!(g[8].1 * 48 > 8 * (1 << 20));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }
}
