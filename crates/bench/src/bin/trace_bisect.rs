//! `trace_bisect` — binary-search the first divergent cycle between two
//! variants of one simulation cell.
//!
//! ```text
//! cargo run -p pei-bench --release --bin trace_bisect -- \
//!     -w atf -s small --seed 7 --budget 2000 \
//!     --a policy=la --b policy=bd [--grain 4096] [--check] [--shards N]
//! ```
//!
//! The base cell (workload, size, seed, budget, machine scale) is fixed
//! by the top-level flags; `--a` and `--b` each apply a comma-separated
//! override list (`policy=host|pim|la|bd`, `budget=N`, `seed=N`) to it.
//! The search advances both variants from shared snapshots
//! (`System::snapshot`, DESIGN.md §11), comparing machine state at each
//! midpoint, and only traces the final window — so it names the exact
//! first divergent record without ever holding a full trace (see
//! `pei_bench::bisect`).
//!
//! Exit status: 0 when the variants are identical, 3 when a divergence
//! was found, 2 on usage errors.

use pei_bench::bisect::{bisect, BisectOutcome};
use pei_bench::runner::RunSpec;
use pei_bench::{ExpOptions, Scale};
use pei_core::DispatchPolicy;
use pei_workloads::{InputSize, Workload};

const USAGE: &str = "\
trace_bisect — first divergent cycle between two run variants

USAGE:
  trace_bisect -w <W> [-s SIZE] [--seed N] [--budget N] [--paper]
               --a KEY=V[,KEY=V...] --b KEY=V[,KEY=V...]
               [--grain N] [--check] [--shards N] [--scale quick|full]

VARIANT KEYS:
  policy=host|pim|la|bd    dispatch policy
  budget=N                 PEI budget
  seed=N                   workload seed
";

struct Cli {
    workload: Workload,
    size: InputSize,
    opts: ExpOptions,
    budget: Option<u64>,
    a: String,
    b: String,
    grain: u64,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        workload: Workload::Atf,
        size: InputSize::Small,
        opts: ExpOptions {
            jobs: 1,
            ..ExpOptions::default()
        },
        budget: None,
        a: String::new(),
        b: String::new(),
        grain: 4_096,
    };
    let mut saw_workload = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "-w" | "--workload" => {
                cli.workload = pei_bench::tracecap::parse_workload(&value("--workload")?)
                    .ok_or("unknown workload")?;
                saw_workload = true;
            }
            "-s" | "--size" => {
                cli.size =
                    pei_bench::tracecap::parse_size(&value("--size")?).ok_or("unknown size")?;
            }
            "--seed" => cli.opts.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--budget" => {
                cli.budget = Some(value("--budget")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--scale" => {
                cli.opts.scale =
                    Scale::parse(&value("--scale")?).ok_or("unknown scale (quick|full)")?;
            }
            "--paper" => cli.opts.paper_machine = true,
            "--check" => cli.opts.check = true,
            "--shards" => {
                let n: usize = value("--shards")?.parse().map_err(|e| format!("{e}"))?;
                cli.opts.shards = Some(n);
            }
            "--a" => cli.a = value("--a")?,
            "--b" => cli.b = value("--b")?,
            "--grain" => cli.grain = value("--grain")?.parse().map_err(|e| format!("{e}"))?,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !saw_workload {
        return Err("--workload is required".into());
    }
    Ok(cli)
}

/// Applies one `KEY=V[,KEY=V...]` override list to the base spec.
fn apply_overrides(cli: &Cli, overrides: &str) -> Result<RunSpec, String> {
    let mut policy = DispatchPolicy::LocalityAware;
    let mut params = cli.opts.workload_params();
    if let Some(b) = cli.budget {
        params.pei_budget = b;
    }
    for kv in overrides.split(',').filter(|s| !s.is_empty()) {
        let (k, v) = kv
            .split_once('=')
            .ok_or_else(|| format!("bad override `{kv}` (expected KEY=V)"))?;
        match k {
            "policy" => {
                policy = match v {
                    "host" => DispatchPolicy::HostOnly,
                    "pim" => DispatchPolicy::PimOnly,
                    "la" => DispatchPolicy::LocalityAware,
                    "bd" => DispatchPolicy::LocalityAwareBalanced,
                    other => return Err(format!("unknown policy `{other}`")),
                };
            }
            "budget" => params.pei_budget = v.parse().map_err(|e| format!("bad budget: {e}"))?,
            "seed" => params.seed = v.parse().map_err(|e| format!("bad seed: {e}"))?,
            other => return Err(format!("unknown override key `{other}`")),
        }
    }
    let mut spec = RunSpec::sized(cli.opts.machine(policy), params, cli.workload, cli.size);
    spec.check = cli.opts.check;
    spec.shards = cli.opts.shards;
    Ok(spec)
}

fn main() {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let (a, b) = match (apply_overrides(&cli, &cli.a), apply_overrides(&cli, &cli.b)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "bisecting {:?}/{:?}: a=[{}] vs b=[{}] (grain {})...",
        cli.workload, cli.size, cli.a, cli.b, cli.grain
    );
    let r = match bisect(&a, &b, cli.grain) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    for p in &r.probes {
        eprintln!(
            "  probe cycle {:>12}: {}",
            p.at,
            if p.equal {
                "states equal"
            } else {
                "states differ"
            }
        );
    }
    match r.outcome {
        BisectOutcome::Identical => {
            println!("identical: final machine states are byte-equal");
        }
        BisectOutcome::Trace { cycle, divergence } => {
            println!("first divergence at cycle {cycle}");
            println!("{divergence}");
            std::process::exit(3);
        }
        BisectOutcome::StateOnly { window } => {
            println!(
                "state diverges in ({}, {}] with no trace divergence in that window",
                window.0, window.1
            );
            std::process::exit(3);
        }
    }
}
