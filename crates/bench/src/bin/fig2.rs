//! Figure 2: performance improvement with an in-memory atomic addition
//! operation used for PageRank, across nine graphs of increasing size.
//!
//! Paper shape: memory-side addition *loses* (up to ~20 %) on the small,
//! cache-resident graphs and *wins* (up to ~53 %) on the large ones.
//!
//! ```text
//! cargo run -p pei-bench --release --bin fig2 [-- --scale full --jobs 8]
//! ```

use pei_bench::runner::{Batch, RunSpec};
use pei_bench::{
    nine_graphs, print_cols, print_row, print_title, write_trace_if_requested, ExpOptions,
};
use pei_core::DispatchPolicy;
use pei_workloads::{InputSize, Workload};

fn main() {
    let opts = ExpOptions::from_args();
    let params = opts.workload_params();

    let mut batch = Batch::new();
    let graphs = nine_graphs(params.l3_bytes);
    let cells: Vec<[usize; 2]> = graphs
        .iter()
        .map(|&(_, n)| {
            let mut slot = |policy| {
                batch.push(RunSpec::on_graph(
                    opts.machine(policy),
                    params,
                    Workload::Pr,
                    n,
                    10,
                    params.seed ^ n as u64,
                ))
            };
            [
                slot(DispatchPolicy::HostOnly),
                slot(DispatchPolicy::PimOnly),
            ]
        })
        .collect();
    let results = batch.run_with(&opts);

    print_title("Fig. 2 — PageRank speedup of memory-side atomic addition vs host-side");
    print_cols("graph", &["vertices", "host_cyc", "pim_cyc", "speedup"]);

    for (&(name, n), [host, pim]) in graphs.iter().zip(&cells) {
        let (host, pim) = (&results[*host], &results[*pim]);
        let speedup = host.cycles as f64 / pim.cycles as f64;
        print_row(
            name,
            &[n as f64, host.cycles as f64, pim.cycles as f64, speedup],
        );
    }
    println!("\nspeedup > 1: memory-side addition wins (expected for large graphs)");
    write_trace_if_requested(
        &opts,
        Workload::Pr,
        InputSize::Medium,
        DispatchPolicy::PimOnly,
    );
}
