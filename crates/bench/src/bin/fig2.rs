//! Figure 2: performance improvement with an in-memory atomic addition
//! operation used for PageRank, across nine graphs of increasing size.
//!
//! Paper shape: memory-side addition *loses* (up to ~20 %) on the small,
//! cache-resident graphs and *wins* (up to ~53 %) on the large ones.
//!
//! ```text
//! cargo run -p pei-bench --release --bin fig2 [-- --scale full]
//! ```

use pei_bench::{nine_graphs, print_cols, print_row, print_title, run_trace, ExpOptions};
use pei_core::DispatchPolicy;
use pei_workloads::workload::Workload;
use pei_workloads::Graph;

fn main() {
    let opts = ExpOptions::from_args();
    let params = pei_bench::ExpOptions::workload_params(&opts);

    print_title("Fig. 2 — PageRank speedup of memory-side atomic addition vs host-side");
    print_cols("graph", &["vertices", "host_cyc", "pim_cyc", "speedup"]);

    for (name, n) in nine_graphs(params.l3_bytes) {
        let mk = || {
            let g = Graph::power_law(n, 10, params.seed ^ n as u64);
            Workload::Pr.build_on_graph(g, &params)
        };
        let (store, trace) = mk();
        let host = run_trace(&opts, store, trace, DispatchPolicy::HostOnly);
        let (store, trace) = mk();
        let pim = run_trace(&opts, store, trace, DispatchPolicy::PimOnly);
        let speedup = host.cycles as f64 / pim.cycles as f64;
        print_row(
            name,
            &[n as f64, host.cycles as f64, pim.cycles as f64, speedup],
        );
    }
    println!("\nspeedup > 1: memory-side addition wins (expected for large graphs)");
}
