//! Compares two `.petr` event traces record by record, reporting the
//! first divergence (DESIGN.md §8). The regression workflow: capture a
//! trace before a change and one after (same spec, same seed), then
//!
//! ```text
//! trace_diff before.petr after.petr
//! ```
//!
//! Identical traces exit 0; the first divergent record — its index,
//! cycle, component, kind, and payload on both sides — exits 1, turning
//! "the figures moved" into "the first difference is at cycle N in
//! vault3". Comparison resolves interned names, so two captures with
//! differently ordered string tables still compare equal if they
//! describe the same event stream.

use pei_trace::Trace;

fn load(path: &str) -> Trace {
    Trace::load(std::path::Path::new(path))
        .unwrap_or_else(|e| panic!("cannot load trace {path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [left, right] = args.as_slice() else {
        eprintln!("usage: trace_diff <left.petr> <right.petr>");
        std::process::exit(2);
    };
    let a = load(left);
    let b = load(right);
    println!(
        "{left}: {} records ({} dropped)  vs  {right}: {} records ({} dropped)",
        a.records.len(),
        a.dropped,
        b.records.len(),
        b.dropped
    );
    match pei_trace::diff(&a, &b) {
        None => println!("traces identical"),
        Some(d) => {
            println!("DIVERGED: {d}");
            std::process::exit(1);
        }
    }
}
