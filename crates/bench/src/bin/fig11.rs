//! Figure 11: PCU design-space exploration — (a) operand-buffer size
//! sweep {1, 2, 4, 8, 16} and (b) execution-width sweep {1, 2, 4}, under
//! Locality-Aware dispatch, normalized to the default (4 entries, width 1).
//!
//! Paper shape: performance saturates at 4 operand-buffer entries (> 30 %
//! over a single entry); execution width has a negligible effect because
//! PEI execution time is dominated by memory access.
//!
//! ```text
//! cargo run -p pei-bench --release --bin fig11 [-- --scale full --jobs 8]
//! ```

use pei_bench::runner::{Batch, RunSpec};
use pei_bench::{
    geomean, print_cols, print_row, print_title, write_trace_if_requested, ExpOptions,
};
use pei_core::DispatchPolicy;
use pei_workloads::{InputSize, Workload};

/// The workload subset used for the sweep (one per op class keeps the
/// sweep fast while spanning writer/reader and small/large-operand PEIs).
const SWEEP: [Workload; 4] = [Workload::Pr, Workload::Bfs, Workload::Hj, Workload::Sc];

const ENTRIES: [usize; 5] = [1, 2, 4, 8, 16];
const WIDTHS: [usize; 3] = [1, 2, 4];

fn main() {
    let opts = ExpOptions::from_args();
    let params = opts.workload_params();

    // One spec per distinct (workload, entries, width) point; the
    // default point (4, 1) doubles as the baseline of both sweeps.
    let mut batch = Batch::new();
    let cells: Vec<(Vec<usize>, Vec<usize>)> = SWEEP
        .iter()
        .map(|&w| {
            let mut slot = |entries, width| {
                let mut cfg = opts.machine(DispatchPolicy::LocalityAware);
                cfg.pcu.operand_entries = entries;
                cfg.pcu.exec_width = width;
                batch.push(RunSpec::sized(cfg, params, w, InputSize::Medium))
            };
            let by_entries: Vec<usize> = ENTRIES.iter().map(|&e| slot(e, 1)).collect();
            let baseline = by_entries[2]; // (4, 1)
            let by_width: Vec<usize> = WIDTHS
                .iter()
                .map(|&wd| if wd == 1 { baseline } else { slot(4, wd) })
                .collect();
            (by_entries, by_width)
        })
        .collect();
    let results = batch.run_with(&opts);

    print_title("Fig. 11a — operand-buffer size sweep (speedup vs 4 entries)");
    print_cols("workload", &["1", "2", "4", "8", "16"]);
    let mut per_size: Vec<Vec<f64>> = vec![Vec::new(); ENTRIES.len()];
    for (w, (by_entries, _)) in SWEEP.iter().zip(&cells) {
        let baseline = results[by_entries[2]].cycles as f64;
        let mut row = Vec::new();
        for (i, &cell) in by_entries.iter().enumerate() {
            let s = baseline / results[cell].cycles as f64;
            per_size[i].push(s);
            row.push(s);
        }
        print_row(w.label(), &row);
    }
    print_row(
        "GM",
        &per_size.iter().map(|v| geomean(v)).collect::<Vec<_>>(),
    );

    print_title("Fig. 11b — execution-width sweep (speedup vs width 1)");
    print_cols("workload", &["1", "2", "4"]);
    let mut per_w: Vec<Vec<f64>> = vec![Vec::new(); WIDTHS.len()];
    for (w, (_, by_width)) in SWEEP.iter().zip(&cells) {
        let baseline = results[by_width[0]].cycles as f64;
        let mut row = Vec::new();
        for (i, &cell) in by_width.iter().enumerate() {
            let s = baseline / results[cell].cycles as f64;
            per_w[i].push(s);
            row.push(s);
        }
        print_row(w.label(), &row);
    }
    print_row("GM", &per_w.iter().map(|v| geomean(v)).collect::<Vec<_>>());
    write_trace_if_requested(
        &opts,
        Workload::Pr,
        InputSize::Medium,
        DispatchPolicy::LocalityAware,
    );
}
