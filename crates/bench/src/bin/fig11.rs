//! Figure 11: PCU design-space exploration — (a) operand-buffer size
//! sweep {1, 2, 4, 8, 16} and (b) execution-width sweep {1, 2, 4}, under
//! Locality-Aware dispatch, normalized to the default (4 entries, width 1).
//!
//! Paper shape: performance saturates at 4 operand-buffer entries (> 30 %
//! over a single entry); execution width has a negligible effect because
//! PEI execution time is dominated by memory access.
//!
//! ```text
//! cargo run -p pei-bench --release --bin fig11 [-- --scale full]
//! ```

use pei_bench::{geomean, print_cols, print_row, print_title, ExpOptions, CYCLE_LIMIT};
use pei_core::DispatchPolicy;
use pei_system::System;
use pei_workloads::{InputSize, Workload};

/// The workload subset used for the sweep (one per op class keeps the
/// sweep fast while spanning writer/reader and small/large-operand PEIs).
const SWEEP: [Workload; 4] = [Workload::Pr, Workload::Bfs, Workload::Hj, Workload::Sc];

fn run_with(opts: &ExpOptions, w: Workload, operand_entries: usize, exec_width: usize) -> u64 {
    let params = opts.workload_params();
    let (store, trace) = w.build(InputSize::Medium, &params);
    let mut cfg = opts.machine(DispatchPolicy::LocalityAware);
    cfg.pcu.operand_entries = operand_entries;
    cfg.pcu.exec_width = exec_width;
    let mut sys = System::new(cfg, store);
    sys.add_workload(trace, (0..cfg.cores).collect());
    sys.run(CYCLE_LIMIT).cycles
}

fn main() {
    let opts = ExpOptions::from_args();

    print_title("Fig. 11a — operand-buffer size sweep (speedup vs 4 entries)");
    print_cols("workload", &["1", "2", "4", "8", "16"]);
    let mut per_size: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for w in SWEEP {
        let baseline = run_with(&opts, w, 4, 1) as f64;
        let mut row = Vec::new();
        for (i, entries) in [1usize, 2, 4, 8, 16].iter().enumerate() {
            let s = baseline / run_with(&opts, w, *entries, 1) as f64;
            per_size[i].push(s);
            row.push(s);
        }
        print_row(w.label(), &row);
    }
    print_row(
        "GM",
        &per_size.iter().map(|v| geomean(v)).collect::<Vec<_>>(),
    );

    print_title("Fig. 11b — execution-width sweep (speedup vs width 1)");
    print_cols("workload", &["1", "2", "4"]);
    let mut per_w: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for w in SWEEP {
        let baseline = run_with(&opts, w, 4, 1) as f64;
        let mut row = Vec::new();
        for (i, width) in [1usize, 2, 4].iter().enumerate() {
            let s = baseline / run_with(&opts, w, 4, *width) as f64;
            per_w[i].push(s);
            row.push(s);
        }
        print_row(w.label(), &row);
    }
    print_row("GM", &per_w.iter().map(|v| geomean(v)).collect::<Vec<_>>());
}
