//! Simulator-throughput benchmark: host events/sec and sim-cycles/sec
//! over a fixed workload mix, recorded to `BENCH_sim_throughput.json`.
//!
//! Unlike the figure binaries this measures the *simulator*, not the
//! simulated machine: the same mix run on the same hardware gives a
//! perf trajectory for the event kernel across PRs (see EXPERIMENTS.md
//! §"Simulator throughput" for the methodology and JSON schema).
//!
//! ```text
//! cargo run -p pei-bench --release --bin sim_throughput -- \
//!     [--scale quick|full] [--paper] [--seed <n>] [--repeat <n>] [--label <s>] [--out <path>] \
//!     [--append] [--traced] [--checked] [--shards <n>]
//! ```
//!
//! Runs are strictly serial (`jobs` is fixed at 1) so wall-clock time
//! divides cleanly into per-run throughput. With `--append`, the new
//! record is spliced into the existing JSON array at `--out` instead of
//! replacing it, so the checked-in file accumulates a history.
//!
//! `--traced` attaches a [`pei_trace::NullSink`] to every measured run:
//! the simulator takes the full per-event capture path (interning
//! lookups, one virtual call per event) but retains nothing, so the
//! throughput delta against an untraced run isolates the cost of
//! tracing itself (EXPERIMENTS.md §"Tracing overhead"). Simulated
//! results are identical either way — tracing observes, never steers.
//!
//! `--checked` enables checked mode (`pei_system::check`) on every
//! measured run: the invariant auditors sweep the whole machine at the
//! default interval, so the delta against an unchecked run measures the
//! sanitizer's overhead (EXPERIMENTS.md §"Checked-mode overhead").
//! Simulated results are likewise identical — sweeps observe only.
//!
//! `--shards <n>` runs every measured cell on the sharded engine
//! (`System::run_sharded`, DESIGN.md §10) with `n` threads; pair a
//! `--shards 1` record with a `--shards <n>` record (ideally `--paper`,
//! whose 8 cubes give the partition real width) to measure intra-run
//! parallel speedup (EXPERIMENTS.md §"Sharded-engine speedup"). The
//! sharded schedule is a different valid event ordering than the
//! sequential engine's, so compare sharded records against sharded
//! baselines. `--paper` selects the paper-scale machine.
//!
//! `--fork-bench` measures warm-state forking instead of the per-cell
//! mix: a four-policy × three-workload grid is run twice — once cold
//! (every cell replays its warmup prefix) and once with snapshot
//! forking (`pei_bench::runner::run_specs_forked`, DESIGN.md §11) —
//! and the record's two rows carry the whole-grid wall-clock pair
//! (EXPERIMENTS.md §"Warm-fork speedup"). The two grids' simulated
//! results are asserted identical before anything is recorded.

use std::fmt::Write as _;
use std::time::Instant;

use pei_bench::runner::RunSpec;
use pei_bench::{ExpOptions, Scale};
use pei_core::DispatchPolicy;
use pei_trace::NullSink;
use pei_workloads::{InputSize, Workload};

/// The fixed mix: one graph, one analytics, and one ML workload, each
/// under the host-only and locality-aware policies at medium size —
/// exercising the core/cache path, the PMU/PCU path, and both.
const MIX: [(Workload, DispatchPolicy); 6] = [
    (Workload::Atf, DispatchPolicy::HostOnly),
    (Workload::Atf, DispatchPolicy::LocalityAware),
    (Workload::Hj, DispatchPolicy::HostOnly),
    (Workload::Hj, DispatchPolicy::LocalityAware),
    (Workload::Sc, DispatchPolicy::HostOnly),
    (Workload::Sc, DispatchPolicy::LocalityAware),
];

fn policy_name(p: DispatchPolicy) -> &'static str {
    match p {
        DispatchPolicy::HostOnly => "host-only",
        DispatchPolicy::PimOnly => "pim-only",
        DispatchPolicy::LocalityAware => "locality-aware",
        DispatchPolicy::LocalityAwareBalanced => "locality-aware-balanced",
    }
}

struct Args {
    opts: ExpOptions,
    repeat: usize,
    label: String,
    out: String,
    append: bool,
    traced: bool,
    checked: bool,
    fork_bench: bool,
}

fn parse_args() -> Args {
    let mut opts = ExpOptions {
        jobs: 1,
        ..ExpOptions::default()
    };
    let mut repeat = 3;
    let mut label = String::from("dev");
    let mut out = String::from("BENCH_sim_throughput.json");
    let mut append = false;
    let mut traced = false;
    let mut checked = false;
    let mut fork_bench = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().expect("--scale needs quick|full");
                opts.scale = match v.as_str() {
                    "quick" => Scale::Quick,
                    "full" => Scale::Full,
                    other => panic!("unknown scale `{other}` (quick|full)"),
                };
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .expect("--seed needs a number")
                    .parse()
                    .expect("seed must be an integer");
            }
            "--repeat" => {
                repeat = args
                    .next()
                    .expect("--repeat needs a number")
                    .parse()
                    .expect("repeat must be an integer");
                assert!(repeat >= 1, "--repeat must be at least 1");
            }
            "--label" => label = args.next().expect("--label needs a string"),
            "--out" => out = args.next().expect("--out needs a path"),
            "--append" => append = true,
            "--traced" => traced = true,
            "--checked" => checked = true,
            "--fork-bench" => fork_bench = true,
            "--paper" => opts.paper_machine = true,
            "--shards" => {
                let n: usize = args
                    .next()
                    .expect("--shards needs a number")
                    .parse()
                    .expect("shards must be an integer");
                assert!(n >= 1, "--shards must be at least 1");
                opts.shards = Some(n);
            }
            other => panic!(
                "unknown argument `{other}` (--scale, --paper, --seed, --repeat, --label, --out, --append, --traced, --checked, --shards, --fork-bench)"
            ),
        }
    }
    Args {
        opts,
        repeat,
        label,
        out,
        append,
        traced,
        checked,
        fork_bench,
    }
}

struct Measured {
    workload: &'static str,
    policy: &'static str,
    events: u64,
    sim_cycles: u64,
    wall_s: f64,
    /// Fork-cache accounting of this row's grid (`--fork-bench` only):
    /// records *why* the wall-clock pair did or didn't show a speedup.
    fork: Option<pei_bench::runner::ForkStats>,
}

fn record_json(args: &Args, runs: &[Measured]) -> String {
    let scale = match args.opts.scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    let mut s = String::new();
    let _ = write!(
        s,
        "  {{\n    \"label\": \"{}\",\n    \"scale\": \"{scale}\",\n    \"paper\": {},\n    \"seed\": {},\n    \"traced\": {},\n    \"checked\": {},\n    \"shards\": {},\n    \"runs\": [",
        args.label,
        args.opts.paper_machine,
        args.opts.seed,
        args.traced,
        args.checked,
        args.opts.shards.map_or("null".into(), |n: usize| n.to_string()),
    );
    let (mut ev_tot, mut cy_tot, mut wall_tot) = (0u64, 0u64, 0f64);
    for (i, r) in runs.iter().enumerate() {
        ev_tot += r.events;
        cy_tot += r.sim_cycles;
        wall_tot += r.wall_s;
        let fork = match &r.fork {
            None => String::new(),
            Some(f) => format!(
                ", \"fork_hit_rate\": {:.3}, \"fork_hits\": {}, \"fork_misses\": {}, \"fork_bypasses\": {}",
                f.hit_rate(),
                f.hits,
                f.misses,
                f.bypasses
            ),
        };
        let _ = write!(
            s,
            "{}\n      {{\"workload\": \"{}\", \"policy\": \"{}\", \"events\": {}, \"sim_cycles\": {}, \"wall_s\": {:.3}, \"events_per_s\": {:.0}, \"sim_cycles_per_s\": {:.0}{fork}}}",
            if i == 0 { "" } else { "," },
            r.workload,
            r.policy,
            r.events,
            r.sim_cycles,
            r.wall_s,
            r.events as f64 / r.wall_s,
            r.sim_cycles as f64 / r.wall_s,
        );
    }
    let _ = write!(
        s,
        "\n    ],\n    \"total\": {{\"events\": {ev_tot}, \"sim_cycles\": {cy_tot}, \"wall_s\": {wall_tot:.3}, \"events_per_s\": {:.0}, \"sim_cycles_per_s\": {:.0}}}\n  }}",
        ev_tot as f64 / wall_tot,
        cy_tot as f64 / wall_tot,
    );
    s
}

/// The `--fork-bench` grid: every workload of the mix under all four
/// policies, so each workload contributes two fork groups (host/pim and
/// the two locality-aware policies) of two cells each.
fn fork_bench_specs(args: &Args) -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for w in [Workload::Atf, Workload::Hj, Workload::Sc] {
        for policy in [
            DispatchPolicy::HostOnly,
            DispatchPolicy::PimOnly,
            DispatchPolicy::LocalityAware,
            DispatchPolicy::LocalityAwareBalanced,
        ] {
            let mut spec = RunSpec::sized(
                args.opts.machine(policy),
                args.opts.workload_params(),
                w,
                InputSize::Medium,
            );
            spec.check = args.checked;
            specs.push(spec);
        }
    }
    specs
}

/// Times the fork-bench grid cold and forked, asserts the two result
/// sets identical, and returns one row per mode with whole-grid totals.
fn run_fork_bench(args: &Args) -> Vec<Measured> {
    assert!(
        args.opts.shards.is_none() && !args.traced,
        "--fork-bench measures the plain sequential runner (no --shards/--traced)"
    );
    let specs = fork_bench_specs(args);
    let mut rows = Vec::new();
    let mut reference: Option<Vec<pei_system::RunResult>> = None;
    // ForkPolicy::always() for the forked grid: the bench exists to
    // time the fork machinery itself, so the auto-bypass threshold
    // (which would skip forking at these prefix lengths) is overridden
    // — the recorded hit rate then says how much sharing happened.
    for (mode, policy) in [
        ("cold-grid", pei_bench::runner::ForkPolicy::disabled()),
        ("forked-grid", pei_bench::runner::ForkPolicy::always()),
    ] {
        let mut wall_s = f64::INFINITY;
        let mut measured: Option<(Vec<pei_system::RunResult>, _)> = None;
        for _ in 0..args.repeat {
            let t0 = Instant::now();
            let r = pei_bench::runner::run_specs_forked_with(&specs, 1, policy);
            wall_s = wall_s.min(t0.elapsed().as_secs_f64().max(1e-9));
            measured = Some(r);
        }
        let (results, fork_stats) = measured.expect("repeat >= 1");
        match &reference {
            None => reference = Some(results.clone()),
            Some(cold) => {
                for (c, f) in cold.iter().zip(&results) {
                    assert_eq!(c.cycles, f.cycles, "forked grid diverged from cold grid");
                    assert_eq!(c.stats, f.stats, "forked grid diverged from cold grid");
                }
            }
        }
        let (events, sim_cycles) = results.iter().fold((0u64, 0u64), |(e, c), r| {
            (e + r.stats.expect("sim.events") as u64, c + r.cycles)
        });
        rows.push(Measured {
            workload: "atf+hj+sc x4pol",
            policy: mode,
            events,
            sim_cycles,
            wall_s,
            fork: Some(fork_stats),
        });
    }
    rows
}

/// Prints the header line shared by both tables.
fn print_header() {
    println!(
        "{:<16} {:>15} {:>12} {:>12} {:>9} {:>12} {:>14}",
        "workload", "policy", "events", "sim_cycles", "wall_s", "events/s", "sim_cycles/s"
    );
}

/// Prints one measured row.
fn print_row(m: &Measured) {
    println!(
        "{:<16} {:>15} {:>12} {:>12} {:>9.3} {:>12.0} {:>14.0}",
        m.workload,
        m.policy,
        m.events,
        m.sim_cycles,
        m.wall_s,
        m.events as f64 / m.wall_s,
        m.sim_cycles as f64 / m.wall_s,
    );
}

/// Serializes the record and writes (or `--append`-splices) it to
/// `--out`.
fn write_record(args: &Args, runs: &[Measured]) {
    let record = record_json(args, runs);
    let body = match std::fs::read_to_string(&args.out) {
        Ok(existing) if args.append => {
            // The file is a JSON array of records; splice before the
            // closing bracket. Fall back to replacing on any mismatch.
            match existing.trim_end().strip_suffix(']') {
                Some(head) if head.trim_start().starts_with('[') => {
                    format!("{},\n{record}\n]\n", head.trim_end())
                }
                _ => format!("[\n{record}\n]\n"),
            }
        }
        _ => format!("[\n{record}\n]\n"),
    };
    std::fs::write(&args.out, body).expect("write BENCH_sim_throughput.json");
    println!("wrote {}", args.out);
}

fn main() {
    let args = parse_args();
    if args.fork_bench {
        let runs = run_fork_bench(&args);
        print_header();
        for m in &runs {
            print_row(m);
        }
        let speedup = runs[0].wall_s / runs[1].wall_s;
        println!(
            "fork speedup: {speedup:.2}x (cold {:.3}s / forked {:.3}s)",
            runs[0].wall_s, runs[1].wall_s
        );
        write_record(&args, &runs);
        return;
    }
    let mut runs = Vec::new();
    print_header();
    for (w, policy) in MIX {
        let mut spec = RunSpec::sized(
            args.opts.machine(policy),
            args.opts.workload_params(),
            w,
            InputSize::Medium,
        );
        spec.check = args.checked;
        spec.shards = args.opts.shards;
        // Best-of-N wall time: simulated results are identical across
        // repeats (determinism contract), so the minimum isolates the
        // simulator's speed from scheduler noise on a shared host.
        let mut wall_s = f64::INFINITY;
        let mut res = None;
        for _ in 0..args.repeat {
            let t0 = Instant::now();
            let r = if args.traced {
                spec.run_traced(Box::new(NullSink::new())).0
            } else {
                spec.run()
            };
            wall_s = wall_s.min(t0.elapsed().as_secs_f64().max(1e-9));
            res = Some(r);
        }
        let res = res.expect("repeat >= 1");
        let events = res.stats.expect("sim.events") as u64;
        let m = Measured {
            workload: w.label(),
            policy: policy_name(policy),
            events,
            sim_cycles: res.cycles,
            wall_s,
            fork: None,
        };
        print_row(&m);
        runs.push(m);
    }
    let (ev, cy, wall) = runs.iter().fold((0u64, 0u64, 0f64), |(e, c, w), r| {
        (e + r.events, c + r.sim_cycles, w + r.wall_s)
    });
    println!(
        "{:<16} {:>15} {:>12} {:>12} {:>9.3} {:>12.0} {:>14.0}",
        "TOTAL",
        "",
        ev,
        cy,
        wall,
        ev as f64 / wall,
        cy as f64 / wall,
    );
    write_record(&args, &runs);
}
