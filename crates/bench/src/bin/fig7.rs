//! Figure 7: total off-chip transfer of Host-Only and PIM-Only,
//! normalized to Ideal-Host, for all workloads and input sizes.
//!
//! Paper shape: PIM-Only slashes off-chip traffic for large inputs and
//! *inflates* it enormously for small, cache-resident inputs (up to 502×
//! in SC).
//!
//! ```text
//! cargo run -p pei-bench --release --bin fig7 [-- --scale full]
//! ```

use pei_bench::{print_cols, print_row, print_title, run_ideal_host, run_one, ExpOptions};
use pei_core::DispatchPolicy;
use pei_workloads::{InputSize, Workload};

fn main() {
    let opts = ExpOptions::from_args();
    for size in InputSize::ALL {
        print_title(&format!(
            "Fig. 7 ({size}) — off-chip bytes normalized to Ideal-Host"
        ));
        print_cols("workload", &["host-only", "pim-only"]);
        for w in Workload::ALL {
            let ideal = run_ideal_host(&opts, w, size).offchip_bytes.max(1) as f64;
            let host = run_one(&opts, w, size, DispatchPolicy::HostOnly).offchip_bytes as f64;
            let pim = run_one(&opts, w, size, DispatchPolicy::PimOnly).offchip_bytes as f64;
            print_row(w.label(), &[host / ideal, pim / ideal]);
        }
    }
}
