//! Figure 7: total off-chip transfer of Host-Only and PIM-Only,
//! normalized to Ideal-Host, for all workloads and input sizes.
//!
//! Paper shape: PIM-Only slashes off-chip traffic for large inputs and
//! *inflates* it enormously for small, cache-resident inputs (up to 502×
//! in SC).
//!
//! ```text
//! cargo run -p pei-bench --release --bin fig7 [-- --scale full --jobs 8]
//! ```

use pei_bench::runner::{Batch, RunSpec};
use pei_bench::{print_cols, print_row, print_title, write_trace_if_requested, ExpOptions};
use pei_core::DispatchPolicy;
use pei_workloads::{InputSize, Workload};

fn main() {
    let opts = ExpOptions::from_args();

    let mut batch = Batch::new();
    let params = opts.workload_params();
    let mut cells: Vec<(InputSize, Workload, [usize; 3])> = Vec::new();
    for size in InputSize::ALL {
        for w in Workload::ALL {
            let mut slot = |cfg| batch.push(RunSpec::sized(cfg, params, w, size));
            let ideal = slot(opts.ideal_machine());
            let host = slot(opts.machine(DispatchPolicy::HostOnly));
            let pim = slot(opts.machine(DispatchPolicy::PimOnly));
            cells.push((size, w, [ideal, host, pim]));
        }
    }
    let results = batch.run_with(&opts);

    for size in InputSize::ALL {
        print_title(&format!(
            "Fig. 7 ({size}) — off-chip bytes normalized to Ideal-Host"
        ));
        print_cols("workload", &["host-only", "pim-only"]);
        for (_, w, [ideal, host, pim]) in cells.iter().filter(|(s, ..)| *s == size) {
            let base = results[*ideal].offchip_bytes.max(1) as f64;
            print_row(
                w.label(),
                &[
                    results[*host].offchip_bytes as f64 / base,
                    results[*pim].offchip_bytes as f64 / base,
                ],
            );
        }
    }
    write_trace_if_requested(
        &opts,
        Workload::Sc,
        InputSize::Small,
        DispatchPolicy::PimOnly,
    );
}
