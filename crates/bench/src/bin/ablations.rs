//! Ablation studies beyond the paper's explicit figures, probing the
//! design choices DESIGN.md calls out:
//!
//! 1. PIM-directory size sweep (the paper fixes 2048 entries) — how much
//!    false-positive serialization does a smaller directory cause?
//! 2. Locality-monitor partial-tag width sweep (the paper fixes 10 bits).
//! 3. The ignore-bit filter on/off (the paper motivates it qualitatively
//!    in §4.3); "off" is approximated by an ideal monitor whose fresh
//!    PIM-allocated entries are also first-hit-filtered, vs the real one.
//!
//! ```text
//! cargo run -p pei-bench --release --bin ablations [-- --scale full]
//! ```

use pei_bench::{print_cols, print_row, print_title, ExpOptions, CYCLE_LIMIT};
use pei_core::DispatchPolicy;
use pei_system::System;
use pei_workloads::{InputSize, Workload};

fn run_cfg(
    opts: &ExpOptions,
    w: Workload,
    size: InputSize,
    f: impl FnOnce(&mut pei_system::MachineConfig),
) -> pei_system::RunResult {
    let params = opts.workload_params();
    let (store, trace) = w.build(size, &params);
    let mut cfg = opts.machine(DispatchPolicy::LocalityAware);
    f(&mut cfg);
    let mut sys = System::new(cfg, store);
    sys.add_workload(trace, (0..cfg.cores).collect());
    sys.run(CYCLE_LIMIT)
}

fn main() {
    let opts = ExpOptions::from_args();

    print_title("Ablation 0 — DRAM policies (PR large, PIM-Only, cycles vs default)");
    print_cols("variant", &["cycles_norm", "row_hit%", "refresh_delays"]);
    let dram_base = {
        let params = opts.workload_params();
        let (store, trace) = Workload::Pr.build(InputSize::Large, &params);
        let cfg = opts.machine(pei_core::DispatchPolicy::PimOnly);
        let mut sys = System::new(cfg, store);
        sys.add_workload(trace, (0..cfg.cores).collect());
        sys.run(CYCLE_LIMIT)
    };
    for (name, page_closed, refresh) in [
        ("open+refresh", false, true),
        ("open, no refresh", false, false),
        ("closed+refresh", true, true),
    ] {
        let params = opts.workload_params();
        let (store, trace) = Workload::Pr.build(InputSize::Large, &params);
        let mut cfg = opts.machine(pei_core::DispatchPolicy::PimOnly);
        if page_closed {
            cfg.hmc.page_policy = pei_hmc::PagePolicy::Closed;
        }
        if !refresh {
            cfg.hmc.refresh = None;
        }
        let mut sys = System::new(cfg, store);
        sys.add_workload(trace, (0..cfg.cores).collect());
        let r = sys.run(CYCLE_LIMIT);
        let hits = r.stats.expect("dram.row_hits");
        print_row(
            name,
            &[
                r.cycles as f64 / dram_base.cycles as f64,
                100.0 * hits / r.dram_accesses as f64,
                r.stats.expect("dram.refresh_delays"),
            ],
        );
    }

    print_title("Ablation 1 — PIM-directory entries (PR medium, cycles vs 2048)");
    print_cols("entries", &["cycles_norm", "queued", "peak_q"]);
    let base = run_cfg(&opts, Workload::Pr, InputSize::Medium, |_| {});
    for entries in [64usize, 256, 1024, 2048, 8192] {
        let r = run_cfg(&opts, Workload::Pr, InputSize::Medium, |c| {
            c.dir_entries = entries;
        });
        print_row(
            &entries.to_string(),
            &[
                r.cycles as f64 / base.cycles as f64,
                r.stats.expect("pmu.dir.queued"),
                r.stats.expect("pmu.dir.peak_queue"),
            ],
        );
    }

    print_title("Ablation 2 — locality-monitor partial-tag bits (PR medium)");
    print_cols("tag_bits", &["cycles_norm", "aliases", "pim%"]);
    for bits in [4u32, 6, 8, 10, 14] {
        let r = run_cfg(&opts, Workload::Pr, InputSize::Medium, |c| {
            c.mon_tag_bits = bits;
        });
        print_row(
            &bits.to_string(),
            &[
                r.cycles as f64 / base.cycles as f64,
                r.stats.expect("pmu.mon.partial_tag_aliases"),
                100.0 * r.pim_fraction,
            ],
        );
    }

    print_title("Ablation 3 — ignore bit on/off (Locality-Aware, several workloads)");
    print_cols(
        "workload",
        &["with(cyc)", "without/with", "pim%with", "pim%without"],
    );
    for (w, size) in [
        (Workload::Atf, InputSize::Small),
        (Workload::Pr, InputSize::Medium),
        (Workload::Sc, InputSize::Large),
        (Workload::Hj, InputSize::Medium),
    ] {
        let on = run_cfg(&opts, w, size, |_| {});
        let off = run_cfg(&opts, w, size, |c| c.mon_ignore_bit = false);
        print_row(
            &format!("{w}-{}", size.label()),
            &[
                on.cycles as f64,
                off.cycles as f64 / on.cycles as f64,
                100.0 * on.pim_fraction,
                100.0 * off.pim_fraction,
            ],
        );
    }

    print_title("Ablation 4 — monitor realism (real vs ideal full tags, several workloads)");
    print_cols("workload", &["real", "ideal_mon"]);
    for w in [Workload::Pr, Workload::Atf, Workload::Hj, Workload::Sc] {
        let real = run_cfg(&opts, w, InputSize::Medium, |_| {});
        let ideal = run_cfg(&opts, w, InputSize::Medium, |c| c.ideal_mon = true);
        print_row(w.label(), &[1.0, real.cycles as f64 / ideal.cycles as f64]);
    }
}
