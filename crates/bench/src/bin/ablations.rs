//! Ablation studies beyond the paper's explicit figures, probing the
//! design choices DESIGN.md calls out:
//!
//! 1. PIM-directory size sweep (the paper fixes 2048 entries) — how much
//!    false-positive serialization does a smaller directory cause?
//! 2. Locality-monitor partial-tag width sweep (the paper fixes 10 bits).
//! 3. The ignore-bit filter on/off (the paper motivates it qualitatively
//!    in §4.3); "off" is approximated by an ideal monitor whose fresh
//!    PIM-allocated entries are also first-hit-filtered, vs the real one.
//!
//! ```text
//! cargo run -p pei-bench --release --bin ablations [-- --scale full --jobs 8]
//! ```

use pei_bench::runner::{Batch, RunSpec};
use pei_bench::{print_cols, print_row, print_title, write_trace_if_requested, ExpOptions};
use pei_core::DispatchPolicy;
use pei_workloads::{InputSize, Workload};

const DIR_ENTRIES: [usize; 5] = [64, 256, 1024, 2048, 8192];
const TAG_BITS: [u32; 5] = [4, 6, 8, 10, 14];
const IGNORE_BIT_CASES: [(Workload, InputSize); 4] = [
    (Workload::Atf, InputSize::Small),
    (Workload::Pr, InputSize::Medium),
    (Workload::Sc, InputSize::Large),
    (Workload::Hj, InputSize::Medium),
];
const MON_REALISM: [Workload; 4] = [Workload::Pr, Workload::Atf, Workload::Hj, Workload::Sc];

fn main() {
    let opts = ExpOptions::from_args();
    let params = opts.workload_params();

    // All five ablations go into one batch so a single --jobs fan-out
    // covers the whole study.
    let mut batch = Batch::new();
    let la_slot = |batch: &mut Batch, w, size, f: &dyn Fn(&mut pei_system::MachineConfig)| {
        let mut cfg = opts.machine(DispatchPolicy::LocalityAware);
        f(&mut cfg);
        batch.push(RunSpec::sized(cfg, params, w, size))
    };

    // Ablation 0: PR large under PIM-Only with DRAM-policy variants; the
    // default (open pages + refresh) is both the baseline and a variant.
    let dram_cells: Vec<usize> = [(false, true), (false, false), (true, true)]
        .iter()
        .map(|&(page_closed, refresh)| {
            let mut cfg = opts.machine(DispatchPolicy::PimOnly);
            if page_closed {
                cfg.hmc.page_policy = pei_hmc::PagePolicy::Closed;
            }
            if !refresh {
                cfg.hmc.refresh = None;
            }
            batch.push(RunSpec::sized(cfg, params, Workload::Pr, InputSize::Large))
        })
        .collect();

    // Ablations 1 + 2 share the Locality-Aware PR-medium default baseline.
    let la_base = la_slot(&mut batch, Workload::Pr, InputSize::Medium, &|_| {});
    let dir_cells: Vec<usize> = DIR_ENTRIES
        .iter()
        .map(|&entries| {
            la_slot(&mut batch, Workload::Pr, InputSize::Medium, &move |c| {
                c.dir_entries = entries;
            })
        })
        .collect();
    let tag_cells: Vec<usize> = TAG_BITS
        .iter()
        .map(|&bits| {
            la_slot(&mut batch, Workload::Pr, InputSize::Medium, &move |c| {
                c.mon_tag_bits = bits;
            })
        })
        .collect();

    let ignore_cells: Vec<[usize; 2]> = IGNORE_BIT_CASES
        .iter()
        .map(|&(w, size)| {
            [
                la_slot(&mut batch, w, size, &|_| {}),
                la_slot(&mut batch, w, size, &|c| c.mon_ignore_bit = false),
            ]
        })
        .collect();

    let mon_cells: Vec<[usize; 2]> = MON_REALISM
        .iter()
        .map(|&w| {
            [
                la_slot(&mut batch, w, InputSize::Medium, &|_| {}),
                la_slot(&mut batch, w, InputSize::Medium, &|c| c.ideal_mon = true),
            ]
        })
        .collect();

    let results = batch.run_with(&opts);

    print_title("Ablation 0 — DRAM policies (PR large, PIM-Only, cycles vs default)");
    print_cols("variant", &["cycles_norm", "row_hit%", "refresh_delays"]);
    let dram_base = &results[dram_cells[0]];
    for (name, cell) in ["open+refresh", "open, no refresh", "closed+refresh"]
        .iter()
        .zip(&dram_cells)
    {
        let r = &results[*cell];
        let hits = r.stats.expect("dram.row_hits");
        print_row(
            name,
            &[
                r.cycles as f64 / dram_base.cycles as f64,
                100.0 * hits / r.dram_accesses as f64,
                r.stats.expect("dram.refresh_delays"),
            ],
        );
    }

    print_title("Ablation 1 — PIM-directory entries (PR medium, cycles vs 2048)");
    print_cols("entries", &["cycles_norm", "queued", "peak_q"]);
    let base = &results[la_base];
    for (entries, cell) in DIR_ENTRIES.iter().zip(&dir_cells) {
        let r = &results[*cell];
        print_row(
            &entries.to_string(),
            &[
                r.cycles as f64 / base.cycles as f64,
                r.stats.expect("pmu.dir.queued"),
                r.stats.expect("pmu.dir.peak_queue"),
            ],
        );
    }

    print_title("Ablation 2 — locality-monitor partial-tag bits (PR medium)");
    print_cols("tag_bits", &["cycles_norm", "aliases", "pim%"]);
    for (bits, cell) in TAG_BITS.iter().zip(&tag_cells) {
        let r = &results[*cell];
        print_row(
            &bits.to_string(),
            &[
                r.cycles as f64 / base.cycles as f64,
                r.stats.expect("pmu.mon.partial_tag_aliases"),
                100.0 * r.pim_fraction,
            ],
        );
    }

    print_title("Ablation 3 — ignore bit on/off (Locality-Aware, several workloads)");
    print_cols(
        "workload",
        &["with(cyc)", "without/with", "pim%with", "pim%without"],
    );
    for ((w, size), [on, off]) in IGNORE_BIT_CASES.iter().zip(&ignore_cells) {
        let (on, off) = (&results[*on], &results[*off]);
        print_row(
            &format!("{w}-{}", size.label()),
            &[
                on.cycles as f64,
                off.cycles as f64 / on.cycles as f64,
                100.0 * on.pim_fraction,
                100.0 * off.pim_fraction,
            ],
        );
    }

    print_title("Ablation 4 — monitor realism (real vs ideal full tags, several workloads)");
    print_cols("workload", &["real", "ideal_mon"]);
    for (w, [real, ideal]) in MON_REALISM.iter().zip(&mon_cells) {
        let (real, ideal) = (&results[*real], &results[*ideal]);
        print_row(w.label(), &[1.0, real.cycles as f64 / ideal.cycles as f64]);
    }
    write_trace_if_requested(
        &opts,
        Workload::Pr,
        InputSize::Large,
        DispatchPolicy::LocalityAware,
    );
}
