//! §7.6: performance overhead of the PMU — compares the real PIM
//! directory (2048 tag-less entries, 2-cycle latency) and the real
//! locality monitor (10-bit partial tags, 3-cycle latency) against their
//! idealized versions (infinite storage, zero latency, full tags).
//!
//! Paper result: idealizing buys only ~0.13 % (directory) and ~0.31 %
//! (monitor) — the cost-reduced structures are essentially free.
//!
//! ```text
//! cargo run -p pei-bench --release --bin pmu_overhead [-- --scale full]
//! ```

use pei_bench::{geomean, print_cols, print_row, print_title, ExpOptions, CYCLE_LIMIT};
use pei_core::DispatchPolicy;
use pei_system::System;
use pei_workloads::{InputSize, Workload};

fn run_variant(opts: &ExpOptions, w: Workload, ideal_dir: bool, ideal_mon: bool) -> u64 {
    let params = opts.workload_params();
    let (store, trace) = w.build(InputSize::Medium, &params);
    let mut cfg = opts.machine(DispatchPolicy::LocalityAware);
    cfg.ideal_dir = ideal_dir;
    cfg.ideal_mon = ideal_mon;
    let mut sys = System::new(cfg, store);
    sys.add_workload(trace, (0..cfg.cores).collect());
    sys.run(CYCLE_LIMIT).cycles
}

fn main() {
    let opts = ExpOptions::from_args();
    print_title("§7.6 — speedup from idealizing PMU structures (Locality-Aware, medium inputs)");
    print_cols("workload", &["ideal-dir", "ideal-mon", "ideal-both"]);
    let mut d = Vec::new();
    let mut m = Vec::new();
    let mut b = Vec::new();
    for w in Workload::ALL {
        let real = run_variant(&opts, w, false, false) as f64;
        let idir = real / run_variant(&opts, w, true, false) as f64;
        let imon = real / run_variant(&opts, w, false, true) as f64;
        let both = real / run_variant(&opts, w, true, true) as f64;
        d.push(idir);
        m.push(imon);
        b.push(both);
        print_row(w.label(), &[idir, imon, both]);
    }
    print_row("GM", &[geomean(&d), geomean(&m), geomean(&b)]);
    println!("\nvalues ≈ 1.00 mean the real PMU structures cost almost nothing (§7.6)");
}
