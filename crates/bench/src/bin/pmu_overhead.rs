//! §7.6: performance overhead of the PMU — compares the real PIM
//! directory (2048 tag-less entries, 2-cycle latency) and the real
//! locality monitor (10-bit partial tags, 3-cycle latency) against their
//! idealized versions (infinite storage, zero latency, full tags).
//!
//! Paper result: idealizing buys only ~0.13 % (directory) and ~0.31 %
//! (monitor) — the cost-reduced structures are essentially free.
//!
//! ```text
//! cargo run -p pei-bench --release --bin pmu_overhead [-- --scale full --jobs 8]
//! ```

use pei_bench::runner::{Batch, RunSpec};
use pei_bench::{
    geomean, print_cols, print_row, print_title, write_trace_if_requested, ExpOptions,
};
use pei_core::DispatchPolicy;
use pei_workloads::{InputSize, Workload};

fn main() {
    let opts = ExpOptions::from_args();
    let params = opts.workload_params();

    // Four PMU variants per workload: (ideal_dir, ideal_mon) in
    // {(f,f), (t,f), (f,t), (t,t)}.
    let mut batch = Batch::new();
    let cells: Vec<[usize; 4]> = Workload::ALL
        .iter()
        .map(|&w| {
            let mut slot = |ideal_dir, ideal_mon| {
                let mut cfg = opts.machine(DispatchPolicy::LocalityAware);
                cfg.ideal_dir = ideal_dir;
                cfg.ideal_mon = ideal_mon;
                batch.push(RunSpec::sized(cfg, params, w, InputSize::Medium))
            };
            [
                slot(false, false),
                slot(true, false),
                slot(false, true),
                slot(true, true),
            ]
        })
        .collect();
    let results = batch.run_with(&opts);

    print_title("§7.6 — speedup from idealizing PMU structures (Locality-Aware, medium inputs)");
    print_cols("workload", &["ideal-dir", "ideal-mon", "ideal-both"]);
    let mut d = Vec::new();
    let mut m = Vec::new();
    let mut b = Vec::new();
    for (w, [real, idir, imon, both]) in Workload::ALL.iter().zip(&cells) {
        let real = results[*real].cycles as f64;
        let idir = real / results[*idir].cycles as f64;
        let imon = real / results[*imon].cycles as f64;
        let both = real / results[*both].cycles as f64;
        d.push(idir);
        m.push(imon);
        b.push(both);
        print_row(w.label(), &[idir, imon, both]);
    }
    print_row("GM", &[geomean(&d), geomean(&m), geomean(&b)]);
    println!("\nvalues ≈ 1.00 mean the real PMU structures cost almost nothing (§7.6)");
    write_trace_if_requested(
        &opts,
        Workload::Bfs,
        InputSize::Medium,
        DispatchPolicy::LocalityAware,
    );
}
