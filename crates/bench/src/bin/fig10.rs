//! Figure 10: balanced dispatch (§7.4) — PIM-Only, Locality-Aware, and
//! Locality-Aware + balanced dispatch on the read-dominated SC and SVM
//! workloads with large inputs, normalized to PIM-Only.
//!
//! Paper shape: balanced dispatch adds up to ~25 % on top of
//! Locality-Aware by steering some locality-miss PEIs to the host when
//! that balances request/response link bandwidth.
//!
//! ```text
//! cargo run -p pei-bench --release --bin fig10 [-- --scale full]
//! ```

use pei_bench::{print_cols, print_row, print_title, run_one, ExpOptions};
use pei_core::DispatchPolicy;
use pei_workloads::{InputSize, Workload};

fn main() {
    let opts = ExpOptions::from_args();
    print_title("Fig. 10 — balanced dispatch on SC / SVM (large), normalized to PIM-Only");
    print_cols(
        "workload",
        &["pim-only", "loc-aware", "la+bd", "bd-overrides"],
    );
    for w in [Workload::Sc, Workload::Svm] {
        let pim = run_one(&opts, w, InputSize::Large, DispatchPolicy::PimOnly);
        let la = run_one(&opts, w, InputSize::Large, DispatchPolicy::LocalityAware);
        let bd = run_one(
            &opts,
            w,
            InputSize::Large,
            DispatchPolicy::LocalityAwareBalanced,
        );
        let base = pim.cycles as f64;
        print_row(
            w.label(),
            &[
                1.0,
                base / la.cycles as f64,
                base / bd.cycles as f64,
                bd.stats.expect("pmu.balanced_overrides"),
            ],
        );
    }
    println!("\nla+bd > loc-aware indicates balanced dispatch paying off (§7.4)");
}
