//! Figure 10: balanced dispatch (§7.4) — PIM-Only, Locality-Aware, and
//! Locality-Aware + balanced dispatch on the read-dominated SC and SVM
//! workloads with large inputs, normalized to PIM-Only.
//!
//! Paper shape: balanced dispatch adds up to ~25 % on top of
//! Locality-Aware by steering some locality-miss PEIs to the host when
//! that balances request/response link bandwidth.
//!
//! ```text
//! cargo run -p pei-bench --release --bin fig10 [-- --scale full --jobs 8]
//! ```

use pei_bench::runner::{Batch, RunSpec};
use pei_bench::{print_cols, print_row, print_title, write_trace_if_requested, ExpOptions};
use pei_core::DispatchPolicy;
use pei_workloads::{InputSize, Workload};

fn main() {
    let opts = ExpOptions::from_args();
    let params = opts.workload_params();

    let mut batch = Batch::new();
    let workloads = [Workload::Sc, Workload::Svm];
    let cells: Vec<[usize; 3]> = workloads
        .iter()
        .map(|&w| {
            let mut slot = |policy| {
                batch.push(RunSpec::sized(
                    opts.machine(policy),
                    params,
                    w,
                    InputSize::Large,
                ))
            };
            [
                slot(DispatchPolicy::PimOnly),
                slot(DispatchPolicy::LocalityAware),
                slot(DispatchPolicy::LocalityAwareBalanced),
            ]
        })
        .collect();
    let results = batch.run_with(&opts);

    print_title("Fig. 10 — balanced dispatch on SC / SVM (large), normalized to PIM-Only");
    print_cols(
        "workload",
        &["pim-only", "loc-aware", "la+bd", "bd-overrides"],
    );
    for (w, [pim, la, bd]) in workloads.iter().zip(&cells) {
        let base = results[*pim].cycles as f64;
        print_row(
            w.label(),
            &[
                1.0,
                base / results[*la].cycles as f64,
                base / results[*bd].cycles as f64,
                results[*bd].stats.expect("pmu.balanced_overrides"),
            ],
        );
    }
    println!("\nla+bd > loc-aware indicates balanced dispatch paying off (§7.4)");
    write_trace_if_requested(
        &opts,
        Workload::Sc,
        InputSize::Large,
        DispatchPolicy::LocalityAwareBalanced,
    );
}
