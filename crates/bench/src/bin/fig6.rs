//! Figure 6: speedup of Host-Only / PIM-Only / Locality-Aware, normalized
//! to Ideal-Host, for all ten workloads under small/medium/large inputs
//! (plus the geometric mean).
//!
//! Paper shape: PIM-Only wins big on large inputs (~+44 % GM) but loses on
//! small ones (~−20 % GM); Locality-Aware tracks the better of the two and
//! beats both on medium graph inputs.
//!
//! ```text
//! cargo run -p pei-bench --release --bin fig6 [-- --scale full --jobs 8]
//! ```

use pei_bench::runner::{Batch, RunSpec};
use pei_bench::{
    geomean, print_cols, print_row, print_title, write_trace_if_requested, ExpOptions,
};
use pei_core::DispatchPolicy;
use pei_workloads::{InputSize, Workload};

fn main() {
    let opts = ExpOptions::from_args();

    // The whole grid — 3 sizes × 10 workloads × 4 configs — in one
    // batch, so large cells overlap with small ones across sizes.
    let mut batch = Batch::new();
    let params = opts.workload_params();
    let mut cells: Vec<(InputSize, Workload, [usize; 4])> = Vec::new();
    for size in InputSize::ALL {
        for w in Workload::ALL {
            let mut slot = |cfg| batch.push(RunSpec::sized(cfg, params, w, size));
            let ideal = slot(opts.ideal_machine());
            let host = slot(opts.machine(DispatchPolicy::HostOnly));
            let pim = slot(opts.machine(DispatchPolicy::PimOnly));
            let la = slot(opts.machine(DispatchPolicy::LocalityAware));
            cells.push((size, w, [ideal, host, pim, la]));
        }
    }
    let results = batch.run_with(&opts);

    for size in InputSize::ALL {
        print_title(&format!("Fig. 6 ({size}) — speedup over Ideal-Host"));
        print_cols("workload", &["host-only", "pim-only", "loc-aware", "pim%"]);
        let mut host_all = Vec::new();
        let mut pim_all = Vec::new();
        let mut la_all = Vec::new();
        for (_, w, [ideal, host, pim, la]) in cells.iter().filter(|(s, ..)| *s == size) {
            let s = |i: usize| results[*ideal].cycles as f64 / results[i].cycles as f64;
            host_all.push(s(*host));
            pim_all.push(s(*pim));
            la_all.push(s(*la));
            print_row(
                w.label(),
                &[s(*host), s(*pim), s(*la), 100.0 * results[*la].pim_fraction],
            );
        }
        print_row(
            "GM",
            &[
                geomean(&host_all),
                geomean(&pim_all),
                geomean(&la_all),
                f64::NAN,
            ],
        );
    }
    write_trace_if_requested(
        &opts,
        Workload::Atf,
        InputSize::Medium,
        DispatchPolicy::LocalityAware,
    );
}
