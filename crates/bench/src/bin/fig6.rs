//! Figure 6: speedup of Host-Only / PIM-Only / Locality-Aware, normalized
//! to Ideal-Host, for all ten workloads under small/medium/large inputs
//! (plus the geometric mean).
//!
//! Paper shape: PIM-Only wins big on large inputs (~+44 % GM) but loses on
//! small ones (~−20 % GM); Locality-Aware tracks the better of the two and
//! beats both on medium graph inputs.
//!
//! ```text
//! cargo run -p pei-bench --release --bin fig6 [-- --scale full]
//! ```

use pei_bench::{geomean, print_cols, print_row, print_title, run_ideal_host, run_one, ExpOptions};
use pei_core::DispatchPolicy;
use pei_workloads::{InputSize, Workload};

fn main() {
    let opts = ExpOptions::from_args();
    for size in InputSize::ALL {
        print_title(&format!("Fig. 6 ({size}) — speedup over Ideal-Host"));
        print_cols("workload", &["host-only", "pim-only", "loc-aware", "pim%"]);
        let mut host_all = Vec::new();
        let mut pim_all = Vec::new();
        let mut la_all = Vec::new();
        for w in Workload::ALL {
            let ideal = run_ideal_host(&opts, w, size);
            let host = run_one(&opts, w, size, DispatchPolicy::HostOnly);
            let pim = run_one(&opts, w, size, DispatchPolicy::PimOnly);
            let la = run_one(&opts, w, size, DispatchPolicy::LocalityAware);
            let s = |r: &pei_system::RunResult| ideal.cycles as f64 / r.cycles as f64;
            host_all.push(s(&host));
            pim_all.push(s(&pim));
            la_all.push(s(&la));
            print_row(
                w.label(),
                &[s(&host), s(&pim), s(&la), 100.0 * la.pim_fraction],
            );
        }
        print_row(
            "GM",
            &[
                geomean(&host_all),
                geomean(&pim_all),
                geomean(&la_all),
                f64::NAN,
            ],
        );
    }
}
