//! Figure 9: multiprogrammed workloads — random pairs of applications
//! (each spawning half the cores' worth of threads, with input sizes
//! drawn uniformly at random), comparing Locality-Aware and PIM-Only
//! against Host-Only on the sum-of-IPCs throughput metric (§7.3).
//!
//! Paper shape: Locality-Aware beats both baselines for the overwhelming
//! majority of the 200 mixes.
//!
//! ```text
//! cargo run -p pei-bench --release --bin fig9 [-- --scale full --jobs 8]
//! ```

use pei_bench::runner::{Batch, RunSpec};
use pei_bench::{print_cols, print_row, print_title, write_trace_if_requested, ExpOptions, Scale};
use pei_core::DispatchPolicy;
use pei_engine::SimRng;
use pei_workloads::{InputSize, Workload, WorkloadParams};

fn main() {
    let opts = ExpOptions::from_args();
    let mixes = match opts.scale {
        Scale::Quick => 30,
        Scale::Full => 200,
    };

    // All randomness is drawn here, before any simulation: each mix's
    // workloads, sizes, and input seed are fixed in the specs, so the
    // table is independent of --jobs (EXPERIMENTS.md, determinism
    // contract).
    let mut rng = SimRng::seed_from(opts.seed ^ 0xf19);
    let drawn: Vec<([(Workload, InputSize); 2], u64)> = (0..mixes)
        .map(|_| {
            let pick = |rng: &mut SimRng| {
                let w = Workload::ALL[rng.gen_range(Workload::ALL.len() as u64) as usize];
                let s = InputSize::ALL[rng.gen_range(3) as usize];
                (w, s)
            };
            let mix = [pick(&mut rng), pick(&mut rng)];
            (mix, rng.next_u64())
        })
        .collect();

    let mut batch = Batch::new();
    let cells: Vec<[usize; 3]> = drawn
        .iter()
        .map(|&(mix, seed)| {
            let mut slot = |policy| {
                let cfg = opts.machine(policy);
                let base_params = WorkloadParams {
                    threads: cfg.cores / 2,
                    seed,
                    pei_budget: opts.workload_params().pei_budget / 4,
                    ..opts.workload_params()
                };
                // Disjoint heaps: workload B allocates far above A.
                let params_b = WorkloadParams {
                    heap_base: 0x40_0000_0000,
                    seed: seed ^ 0xb,
                    ..base_params
                };
                batch.push(RunSpec::mix(cfg, base_params, params_b, mix[0], mix[1]))
            };
            [
                slot(DispatchPolicy::HostOnly),
                slot(DispatchPolicy::LocalityAware),
                slot(DispatchPolicy::PimOnly),
            ]
        })
        .collect();
    let results = batch.run_with(&opts);

    print_title("Fig. 9 — multiprogrammed mixes (sum-of-IPCs vs Host-Only)");
    print_cols("mix", &["loc-aware", "pim-only"]);

    let mut la_beats_host = 0;
    let mut la_beats_both = 0;
    for ((mix, _), [host, la, pim]) in drawn.iter().zip(&cells) {
        let la_n = results[*la].ipc() / results[*host].ipc();
        let pim_n = results[*pim].ipc() / results[*host].ipc();
        if la_n >= 0.999 {
            la_beats_host += 1;
        }
        if la_n >= 0.999 && la_n >= pim_n - 1e-3 {
            la_beats_both += 1;
        }
        print_row(
            &format!(
                "{}-{}/{}-{}",
                mix[0].0,
                mix[0].1.label(),
                mix[1].0,
                mix[1].1.label()
            ),
            &[la_n, pim_n],
        );
    }
    println!(
        "\nLocality-Aware >= Host-Only in {la_beats_host}/{mixes} mixes; >= both baselines in {la_beats_both}/{mixes}"
    );
    // Mix cells carry no replayable recipe; trace a representative
    // single-workload cell instead.
    write_trace_if_requested(
        &opts,
        Workload::Hj,
        InputSize::Medium,
        DispatchPolicy::LocalityAware,
    );
}
