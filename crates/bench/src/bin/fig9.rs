//! Figure 9: multiprogrammed workloads — random pairs of applications
//! (each spawning half the cores' worth of threads, with input sizes
//! drawn uniformly at random), comparing Locality-Aware and PIM-Only
//! against Host-Only on the sum-of-IPCs throughput metric (§7.3).
//!
//! Paper shape: Locality-Aware beats both baselines for the overwhelming
//! majority of the 200 mixes.
//!
//! ```text
//! cargo run -p pei-bench --release --bin fig9 [-- --scale full]
//! ```

use pei_bench::{print_cols, print_row, print_title, ExpOptions, Scale, CYCLE_LIMIT};
use pei_core::DispatchPolicy;
use pei_engine::SimRng;
use pei_system::System;
use pei_workloads::{InputSize, Workload, WorkloadParams};

fn run_mix(
    opts: &ExpOptions,
    mix: &[(Workload, InputSize); 2],
    policy: DispatchPolicy,
    seed: u64,
) -> f64 {
    let cfg = opts.machine(policy);
    let half = cfg.cores / 2;
    let base_params = WorkloadParams {
        threads: half,
        seed,
        pei_budget: opts.workload_params().pei_budget / 4,
        ..opts.workload_params()
    };
    // Disjoint heaps: workload B allocates far above workload A.
    let params_b = WorkloadParams {
        heap_base: 0x40_0000_0000,
        seed: seed ^ 0xb,
        ..base_params
    };
    let (mut store, trace_a) = mix[0].0.build(mix[0].1, &base_params);
    let (store_b, trace_b) = mix[1].0.build(mix[1].1, &params_b);
    store.merge_from(&store_b);

    let mut sys = System::new(cfg, store);
    sys.add_workload(trace_a, (0..half).collect());
    sys.add_workload(trace_b, (half..cfg.cores).collect());
    let r = sys.run(CYCLE_LIMIT);
    r.instructions as f64 / r.cycles as f64
}

fn main() {
    let opts = ExpOptions::from_args();
    let mixes = match opts.scale {
        Scale::Quick => 30,
        Scale::Full => 200,
    };
    let mut rng = SimRng::seed_from(opts.seed ^ 0xf19);
    print_title("Fig. 9 — multiprogrammed mixes (sum-of-IPCs vs Host-Only)");
    print_cols("mix", &["loc-aware", "pim-only"]);

    let mut la_beats_host = 0;
    let mut la_beats_both = 0;
    for _ in 0..mixes {
        let pick = |rng: &mut SimRng| {
            let w = Workload::ALL[rng.gen_range(Workload::ALL.len() as u64) as usize];
            let s = InputSize::ALL[rng.gen_range(3) as usize];
            (w, s)
        };
        let mix = [pick(&mut rng), pick(&mut rng)];
        let seed = rng.next_u64();
        let host = run_mix(&opts, &mix, DispatchPolicy::HostOnly, seed);
        let la = run_mix(&opts, &mix, DispatchPolicy::LocalityAware, seed);
        let pim = run_mix(&opts, &mix, DispatchPolicy::PimOnly, seed);
        let la_n = la / host;
        let pim_n = pim / host;
        if la_n >= 0.999 {
            la_beats_host += 1;
        }
        if la_n >= 0.999 && la_n >= pim_n - 1e-3 {
            la_beats_both += 1;
        }
        print_row(
            &format!(
                "{}-{}/{}-{}",
                mix[0].0,
                mix[0].1.label(),
                mix[1].0,
                mix[1].1.label()
            ),
            &[la_n, pim_n],
        );
    }
    println!(
        "\nLocality-Aware >= Host-Only in {la_beats_host}/{mixes} mixes; >= both baselines in {la_beats_both}/{mixes}"
    );
}
