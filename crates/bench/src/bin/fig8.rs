//! Figure 8: PageRank across the nine-graph series — Host-Only, PIM-Only
//! and Locality-Aware speedups (normalized to Host-Only) plus the fraction
//! of PEIs the Locality-Aware machine offloads to memory ("PIM %").
//!
//! Paper shape: the PIM % climbs from ~0.3 % on the smallest graph to
//! ~87 % on the largest, and Locality-Aware tracks (or beats) the better
//! of the two static policies everywhere.
//!
//! ```text
//! cargo run -p pei-bench --release --bin fig8 [-- --scale full]
//! ```

use pei_bench::{nine_graphs, print_cols, print_row, print_title, run_trace, ExpOptions};
use pei_core::DispatchPolicy;
use pei_workloads::workload::Workload;
use pei_workloads::Graph;

fn main() {
    let opts = ExpOptions::from_args();
    let params = opts.workload_params();

    print_title("Fig. 8 — PageRank vs graph size (normalized to Host-Only)");
    print_cols("graph", &["host-only", "pim-only", "loc-aware", "pim%"]);

    for (name, n) in nine_graphs(params.l3_bytes) {
        let mk = || {
            let g = Graph::power_law(n, 10, params.seed ^ n as u64);
            Workload::Pr.build_on_graph(g, &params)
        };
        let (store, trace) = mk();
        let host = run_trace(&opts, store, trace, DispatchPolicy::HostOnly);
        let (store, trace) = mk();
        let pim = run_trace(&opts, store, trace, DispatchPolicy::PimOnly);
        let (store, trace) = mk();
        let la = run_trace(&opts, store, trace, DispatchPolicy::LocalityAware);
        let base = host.cycles as f64;
        print_row(
            name,
            &[
                1.0,
                base / pim.cycles as f64,
                base / la.cycles as f64,
                100.0 * la.pim_fraction,
            ],
        );
    }
}
