//! Figure 8: PageRank across the nine-graph series — Host-Only, PIM-Only
//! and Locality-Aware speedups (normalized to Host-Only) plus the fraction
//! of PEIs the Locality-Aware machine offloads to memory ("PIM %").
//!
//! Paper shape: the PIM % climbs from ~0.3 % on the smallest graph to
//! ~87 % on the largest, and Locality-Aware tracks (or beats) the better
//! of the two static policies everywhere.
//!
//! ```text
//! cargo run -p pei-bench --release --bin fig8 [-- --scale full --jobs 8]
//! ```

use pei_bench::runner::{Batch, RunSpec};
use pei_bench::{
    nine_graphs, print_cols, print_row, print_title, write_trace_if_requested, ExpOptions,
};
use pei_core::DispatchPolicy;
use pei_workloads::{InputSize, Workload};

fn main() {
    let opts = ExpOptions::from_args();
    let params = opts.workload_params();

    let mut batch = Batch::new();
    let graphs = nine_graphs(params.l3_bytes);
    let cells: Vec<[usize; 3]> = graphs
        .iter()
        .map(|&(_, n)| {
            let mut slot = |policy| {
                batch.push(RunSpec::on_graph(
                    opts.machine(policy),
                    params,
                    Workload::Pr,
                    n,
                    10,
                    params.seed ^ n as u64,
                ))
            };
            [
                slot(DispatchPolicy::HostOnly),
                slot(DispatchPolicy::PimOnly),
                slot(DispatchPolicy::LocalityAware),
            ]
        })
        .collect();
    let results = batch.run_with(&opts);

    print_title("Fig. 8 — PageRank vs graph size (normalized to Host-Only)");
    print_cols("graph", &["host-only", "pim-only", "loc-aware", "pim%"]);

    for (&(name, _), [host, pim, la]) in graphs.iter().zip(&cells) {
        let base = results[*host].cycles as f64;
        print_row(
            name,
            &[
                1.0,
                base / results[*pim].cycles as f64,
                base / results[*la].cycles as f64,
                100.0 * results[*la].pim_fraction,
            ],
        );
    }
    write_trace_if_requested(
        &opts,
        Workload::Pr,
        InputSize::Medium,
        DispatchPolicy::LocalityAware,
    );
}
