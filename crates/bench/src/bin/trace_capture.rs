//! Captures, replays, and exports `.petr` event traces (DESIGN.md §8).
//!
//! Three modes:
//!
//! ```text
//! # Capture one cell, writing a replayable trace (and optionally a
//! # Perfetto/Chrome trace_event JSON next to it):
//! trace_capture --workload ATF --size medium --policy locality-aware \
//!     [--scale quick|full] [--paper] [--seed <n>] [--budget <n>] [--shards <n>] \
//!     -o out.petr [--perfetto out.json]
//!
//! # Re-execute a capture's recipe and verify byte-identity of both the
//! # event stream and the statistics report (exit 1 on divergence):
//! trace_capture --replay in.petr
//!
//! # Convert an existing capture for chrome://tracing / ui.perfetto.dev:
//! trace_capture --export in.petr --perfetto out.json
//! ```

use pei_bench::tracecap::{self, CaptureSpec};
use pei_bench::Scale;
use pei_core::DispatchPolicy;
use pei_trace::{perfetto, Trace};

const USAGE: &str = "trace_capture --workload <W> --size <S> --policy <P> \
     [--scale quick|full] [--paper] [--seed <n>] [--budget <n>] [--shards <n>] -o <out.petr> \
     [--perfetto <out.json>] | --replay <in.petr> | --export <in.petr> --perfetto <out.json>";

struct Args {
    spec: CaptureSpec,
    out: Option<String>,
    perfetto: Option<String>,
    replay: Option<String>,
    export: Option<String>,
}

fn parse_args() -> Args {
    let mut spec = CaptureSpec {
        workload: pei_workloads::Workload::Atf,
        size: pei_workloads::InputSize::Medium,
        policy: DispatchPolicy::LocalityAware,
        scale: Scale::Quick,
        paper_machine: false,
        seed: 0x5eed,
        pei_budget: None,
        shards: None,
    };
    let mut out = None;
    let mut perfetto = None;
    let mut replay = None;
    let mut export = None;
    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next()
            .unwrap_or_else(|| panic!("{flag} needs a value\nusage: {USAGE}"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workload" => {
                let v = next(&mut args, "--workload");
                spec.workload = tracecap::parse_workload(&v)
                    .unwrap_or_else(|| panic!("unknown workload `{v}` (ATF, BFS, …, SVM)"));
            }
            "--size" => {
                let v = next(&mut args, "--size");
                spec.size = tracecap::parse_size(&v)
                    .unwrap_or_else(|| panic!("unknown size `{v}` (small|medium|large)"));
            }
            "--policy" => {
                let v = next(&mut args, "--policy");
                spec.policy = tracecap::parse_policy(&v).unwrap_or_else(|| {
                    panic!("unknown policy `{v}` (host-only|pim-only|locality-aware|locality-aware-balanced)")
                });
            }
            "--scale" => {
                let v = next(&mut args, "--scale");
                spec.scale =
                    Scale::parse(&v).unwrap_or_else(|| panic!("unknown scale `{v}` (quick|full)"));
            }
            "--paper" => spec.paper_machine = true,
            "--seed" => {
                spec.seed = next(&mut args, "--seed")
                    .parse()
                    .expect("seed must be an integer");
            }
            "--budget" => {
                spec.pei_budget = Some(
                    next(&mut args, "--budget")
                        .parse()
                        .expect("budget must be an integer"),
                );
            }
            "--shards" => {
                let n: usize = next(&mut args, "--shards")
                    .parse()
                    .expect("shards must be an integer");
                assert!(n >= 1, "--shards must be at least 1");
                spec.shards = Some(n);
            }
            "-o" | "--out" => out = Some(next(&mut args, "-o")),
            "--perfetto" => perfetto = Some(next(&mut args, "--perfetto")),
            "--replay" => replay = Some(next(&mut args, "--replay")),
            "--export" => export = Some(next(&mut args, "--export")),
            other => panic!("unknown argument `{other}`\nusage: {USAGE}"),
        }
    }
    Args {
        spec,
        out,
        perfetto,
        replay,
        export,
    }
}

fn load(path: &str) -> Trace {
    Trace::load(std::path::Path::new(path))
        .unwrap_or_else(|e| panic!("cannot load trace {path}: {e}"))
}

fn main() {
    let args = parse_args();

    if let Some(path) = &args.replay {
        let t = load(path);
        let r = tracecap::replay(&t).unwrap_or_else(|e| panic!("cannot replay {path}: {e}"));
        println!("replayed {}: {} records", r.spec, t.records.len());
        if let Some(d) = &r.divergence {
            println!("event stream DIVERGED: {d}");
        } else {
            println!("event stream identical");
        }
        println!(
            "statistics report {}",
            if r.stats_match {
                "byte-identical"
            } else {
                "DIVERGED"
            }
        );
        if !r.identical() {
            std::process::exit(1);
        }
        return;
    }

    if let Some(path) = &args.export {
        let json_path = args
            .perfetto
            .as_deref()
            .unwrap_or_else(|| panic!("--export needs --perfetto <out.json>\nusage: {USAGE}"));
        let t = load(path);
        let json = perfetto::chrome_trace_json(&t);
        std::fs::write(json_path, json).unwrap_or_else(|e| panic!("cannot write {json_path}: {e}"));
        println!("exported {} records to {json_path}", t.records.len());
        return;
    }

    let out = args
        .out
        .as_deref()
        .unwrap_or_else(|| panic!("capture mode needs -o <out.petr>\nusage: {USAGE}"));
    let (result, trace) = args.spec.capture();
    std::fs::write(out, trace.to_bytes()).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!(
        "captured {}: {} records ({} dropped), {} cycles, wrote {out}",
        args.spec,
        trace.records.len(),
        trace.dropped,
        result.cycles
    );
    if let Some(json_path) = &args.perfetto {
        let json = perfetto::chrome_trace_json(&trace);
        std::fs::write(json_path, json).unwrap_or_else(|e| panic!("cannot write {json_path}: {e}"));
        println!("exported Perfetto JSON to {json_path}");
    }
}
