//! Figure 12: memory-hierarchy energy of Host-Only, PIM-Only and
//! Locality-Aware, normalized to Ideal-Host, with the per-component
//! breakdown (caches / DRAM / off-chip links / TSVs / PCUs / PMU).
//!
//! Paper shape: Locality-Aware consumes the least energy at every input
//! size — for small inputs PIM-Only blows up DRAM and link energy; for
//! large inputs Host-Only pays in off-chip traffic and runtime. The
//! memory-side PCUs stay a tiny fraction (~1.4 %) of HMC energy.
//!
//! ```text
//! cargo run -p pei-bench --release --bin fig12 [-- --scale full --jobs 8]
//! ```

use pei_bench::runner::{Batch, RunSpec};
use pei_bench::{
    geomean, print_cols, print_row, print_title, write_trace_if_requested, ExpOptions,
};
use pei_core::DispatchPolicy;
use pei_system::RunResult;
use pei_workloads::{InputSize, Workload};

fn main() {
    let opts = ExpOptions::from_args();
    let params = opts.workload_params();

    let mut batch = Batch::new();
    let mut cells: Vec<(InputSize, Workload, [usize; 4])> = Vec::new();
    for size in InputSize::ALL {
        for w in Workload::ALL {
            let mut slot = |cfg| batch.push(RunSpec::sized(cfg, params, w, size));
            let grid = [
                slot(opts.ideal_machine()),
                slot(opts.machine(DispatchPolicy::HostOnly)),
                slot(opts.machine(DispatchPolicy::PimOnly)),
                slot(opts.machine(DispatchPolicy::LocalityAware)),
            ];
            cells.push((size, w, grid));
        }
    }
    let results = batch.run_with(&opts);

    for &size in &InputSize::ALL {
        print_title(&format!(
            "Fig. 12 ({size}) — memory-hierarchy energy normalized to Ideal-Host"
        ));
        print_cols(
            "workload",
            &["host-only", "pim-only", "loc-aware", "mpcu/hmc%"],
        );
        let mut host_all = Vec::new();
        let mut pim_all = Vec::new();
        let mut la_all = Vec::new();
        let mut share_all = Vec::new();
        for &(s, w, [ideal, host, pim, la]) in &cells {
            if s != size {
                continue;
            }
            let (ideal, host, pim, la) =
                (&results[ideal], &results[host], &results[pim], &results[la]);
            let n = |r: &RunResult| r.energy.total() / ideal.energy.total();
            let share = if pim.energy.hmc_total() > 0.0 {
                100.0 * pim.energy.pcu_mem_share() / pim.energy.hmc_total()
            } else {
                0.0
            };
            host_all.push(n(host));
            pim_all.push(n(pim));
            la_all.push(n(la));
            if share > 0.0 {
                share_all.push(share);
            }
            print_row(w.label(), &[n(host), n(pim), n(la), share]);
        }
        print_row(
            "GM",
            &[
                geomean(&host_all),
                geomean(&pim_all),
                geomean(&la_all),
                geomean(&share_all),
            ],
        );
    }
    println!("\nmpcu/hmc% = memory-side PCU share of HMC energy under PIM-Only (§7.7: ~1.4%)");
    write_trace_if_requested(
        &opts,
        Workload::Atf,
        InputSize::Large,
        DispatchPolicy::LocalityAware,
    );
}
