//! Library surface for long-lived simulator hosts (`pei-serve`).
//!
//! The batch runner in [`crate::runner`] optimizes one-shot grids: fork
//! groups are known up front, workers claim whole groups, and every
//! snapshot dies with its group. A daemon sees the same cells arrive
//! *over time* — job 7 may share a warm prefix with job 2 that finished
//! minutes ago — so this module keeps the fork machinery **resident**:
//!
//! * [`resolve_recipe`] turns a wire-format [`Recipe`] (string-typed
//!   workload/policy/size names) into a validated [`RunSpec`], reusing
//!   the `tracecap` vocabulary so daemon submissions, `.petr` captures,
//!   and figure binaries all speak the same names. Unknown names come
//!   back as descriptive errors for a structured `error` frame, never a
//!   panic.
//! * [`ForkCache`] holds warmed snapshots keyed by
//!   [`fork_key`] across jobs, with the same
//!   [`ForkPolicy`] auto-bypass as the batch runner and counters that
//!   answer the daemon's `stats` request. Results are byte-identical to
//!   [`RunSpec::run`] whichever path serves them — the daemon's
//!   byte-identity contract rests on that.
//!
//! Both sides call the same primitives
//! ([`warm_pause`](crate::runner::warm_pause),
//! [`run_from_warm`](crate::runner::run_from_warm),
//! `System::run_cancellable`), so the figure binaries and the daemon
//! are thin clients of one code path.

use crate::runner::{fork_key, ForkPolicy, ForkStats, RunSpec, Warmup};
use crate::tracecap::{parse_policy, parse_size, parse_workload, CaptureSpec};
use crate::{ExpOptions, Scale};
use pei_system::{FaultKind, FaultPlan, RunResult, Snapshot};
use pei_types::wire::Recipe;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Why [`ForkCache::run_bounded`] abandoned a run before completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stopped {
    /// The caller's cancel flag was observed set.
    Cancelled,
    /// The wall-clock deadline passed. Like cancellation, the stop
    /// lands on a slice boundary and any cached snapshot stays valid.
    DeadlineExceeded,
}

/// Wire name of a fault kind (`wedge-vault`, `leak-mshr`, …).
pub fn fault_kind_name(k: FaultKind) -> &'static str {
    match k {
        FaultKind::WedgeVault => "wedge-vault",
        FaultKind::LeakMshr => "leak-mshr",
        FaultKind::CorruptLine => "corrupt-line",
        FaultKind::LeakDirLock => "leak-dir-lock",
        FaultKind::LeakLinkCredit => "leak-link-credit",
        FaultKind::OverfillPcu => "overfill-pcu",
        FaultKind::RogueXbarMessage => "rogue-xbar-message",
        FaultKind::DropEvent => "drop-event",
        FaultKind::DelayEvent => "delay-event",
    }
}

/// Inverse of [`fault_kind_name`].
pub fn parse_fault_kind(s: &str) -> Option<FaultKind> {
    [
        FaultKind::WedgeVault,
        FaultKind::LeakMshr,
        FaultKind::CorruptLine,
        FaultKind::LeakDirLock,
        FaultKind::LeakLinkCredit,
        FaultKind::OverfillPcu,
        FaultKind::RogueXbarMessage,
        FaultKind::DropEvent,
        FaultKind::DelayEvent,
    ]
    .into_iter()
    .find(|&k| fault_kind_name(k) == s)
}

/// Validates a wire recipe into a runnable [`RunSpec`].
///
/// The vocabulary is the `tracecap` one: workloads by figure label
/// (case-insensitive), sizes `small|medium|large`, policies by long
/// name (`locality-aware`) or the short CLI aliases
/// (`host|pim|la|lab`), scales `quick|full`. Errors describe the
/// offending field and the accepted values — they become the daemon's
/// `bad-recipe` error frames.
pub fn resolve_recipe(recipe: &Recipe) -> Result<RunSpec, String> {
    let (workload, size, policy, scale) = resolve_vocabulary(recipe)?;
    let opts = ExpOptions {
        scale,
        paper_machine: recipe.paper,
        seed: recipe.seed,
        ..ExpOptions::default()
    };
    let mut params = opts.workload_params();
    if let Some(b) = recipe.budget {
        params.pei_budget = b;
    }
    let mut spec = RunSpec::sized(opts.machine(policy), params, workload, size);
    spec.check = recipe.check;
    spec.shards = match recipe.shards {
        None => None,
        Some(0) => return Err("`shards` must be at least 1".to_owned()),
        Some(n) => Some(n as usize),
    };
    if !recipe.fault_kinds.is_empty() {
        let mut plan = FaultPlan::new(recipe.fault_seed.unwrap_or(recipe.seed));
        for name in &recipe.fault_kinds {
            let kind = parse_fault_kind(name).ok_or_else(|| {
                format!("unknown fault kind `{name}` (e.g. wedge-vault, leak-mshr)")
            })?;
            plan = plan.with(kind);
        }
        spec.fault = Some(plan);
    } else if recipe.fault_seed.is_some() {
        return Err("`fault_seed` without `fault_kinds` arms nothing".to_owned());
    }
    Ok(spec)
}

/// Validates a wire recipe into a traceable [`CaptureSpec`] — the
/// daemon's path for submissions that request a `.petr` capture.
///
/// Checked mode and fault plans are rejected here: the `.petr`
/// metadata vocabulary (`spec.*` keys) has no channel for them, so a
/// replay could not reproduce the run.
pub fn resolve_capture(recipe: &Recipe) -> Result<CaptureSpec, String> {
    if recipe.check || recipe.fault_seed.is_some() || !recipe.fault_kinds.is_empty() {
        return Err(
            "traced runs can't use `check` or fault injection (the trace metadata has no channel for them)"
                .to_owned(),
        );
    }
    let (workload, size, policy, scale) = resolve_vocabulary(recipe)?;
    Ok(CaptureSpec {
        workload,
        size,
        policy,
        scale,
        paper_machine: recipe.paper,
        seed: recipe.seed,
        pei_budget: recipe.budget,
        shards: match recipe.shards {
            None => None,
            Some(0) => return Err("`shards` must be at least 1".to_owned()),
            Some(n) => Some(n as usize),
        },
    })
}

/// The string→enum step shared by [`resolve_recipe`] and
/// [`resolve_capture`].
fn resolve_vocabulary(
    recipe: &Recipe,
) -> Result<
    (
        pei_workloads::Workload,
        pei_workloads::InputSize,
        pei_core::DispatchPolicy,
        Scale,
    ),
    String,
> {
    let workload = parse_workload(&recipe.workload).ok_or_else(|| {
        format!(
            "unknown workload `{}` (atf|bfs|pr|sp|wcc|hj|hg|rp|sc|svm)",
            recipe.workload
        )
    })?;
    let size = parse_size(&recipe.size)
        .ok_or_else(|| format!("unknown size `{}` (small|medium|large)", recipe.size))?;
    let policy = match recipe.policy.as_str() {
        "host" => pei_core::DispatchPolicy::HostOnly,
        "pim" => pei_core::DispatchPolicy::PimOnly,
        "la" => pei_core::DispatchPolicy::LocalityAware,
        "lab" => pei_core::DispatchPolicy::LocalityAwareBalanced,
        long => parse_policy(long).ok_or_else(|| {
            format!(
                "unknown policy `{long}` (host|pim|la|lab or host-only|pim-only|locality-aware|locality-aware-balanced)"
            )
        })?,
    };
    let scale = Scale::parse(&recipe.scale)
        .ok_or_else(|| format!("unknown scale `{}` (quick|full)", recipe.scale))?;
    Ok((workload, size, policy, scale))
}

/// What the cache holds for one fork key.
enum Resident {
    /// A warmed snapshot, shared by reference with running jobs (a
    /// restore reads it; nothing ever mutates it — which is why a
    /// cancelled job cannot corrupt the cache).
    Warm(Arc<Snapshot>),
    /// This key's prefix was measured below the policy threshold (or
    /// refused to snapshot); don't re-warm speculatively on every job.
    Bypass,
}

/// Occupancy and traffic counters of a [`ForkCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Resident warmed snapshots.
    pub entries: u64,
    /// Total bytes of resident snapshot state.
    pub bytes: u64,
    /// The byte budget eviction keeps [`bytes`](CacheStats::bytes)
    /// under (0 = unbounded).
    pub capacity_bytes: u64,
    /// Warm snapshots evicted to stay inside the budget.
    pub evictions: u64,
    /// Total bytes those evictions released.
    pub evicted_bytes: u64,
    /// Per-job hit/miss/bypass/ineligible classification (same meaning
    /// as the batch runner's [`ForkStats`]).
    pub fork: ForkStats,
}

/// One cached decision for a fork key, with the LRU stamp eviction
/// orders by (meaningful only for `Warm` residents).
struct Entry {
    resident: Resident,
    last_used: u64,
}

/// The map plus the byte/LRU accounting it must stay consistent with —
/// everything eviction reads or writes lives under one mutex.
#[derive(Default)]
struct Entries {
    map: HashMap<String, Entry>,
    /// Bytes of all `Warm` residents (kept incrementally; eviction
    /// compares this against the budget).
    resident_bytes: u64,
    /// Monotonic access counter stamping `last_used`.
    tick: u64,
    evictions: u64,
    evicted_bytes: u64,
}

impl Entries {
    fn stamp(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Inserts (or replaces) `key`, keeping `resident_bytes` exact.
    fn insert(&mut self, key: String, resident: Resident) {
        if let Resident::Warm(s) = &resident {
            self.resident_bytes += s.as_bytes().len() as u64;
        }
        let stamp = self.stamp();
        if let Some(old) = self.map.insert(
            key,
            Entry {
                resident,
                last_used: stamp,
            },
        ) {
            if let Resident::Warm(s) = &old.resident {
                self.resident_bytes -= s.as_bytes().len() as u64;
            }
        }
    }

    /// Evicts least-recently-used `Warm` entries until `resident_bytes`
    /// fits `budget`. Evicted keys are removed outright: the next job
    /// of that key re-warms as an ordinary miss, so eviction can never
    /// change results — only where the warmup cycles are spent.
    fn evict_to(&mut self, budget: u64) {
        while self.resident_bytes > budget {
            let victim = self
                .map
                .iter()
                .filter(|(_, e)| matches!(e.resident, Resident::Warm(_)))
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(key) = victim else { break };
            if let Some(Entry {
                resident: Resident::Warm(s),
                ..
            }) = self.map.remove(&key)
            {
                let bytes = s.as_bytes().len() as u64;
                self.resident_bytes -= bytes;
                self.evictions += 1;
                self.evicted_bytes += bytes;
            }
        }
    }
}

/// A process-lifetime warm-snapshot cache for daemon-style hosts.
///
/// Keyed by [`fork_key`]: the first job of a
/// key runs its warmup prefix, and — if the prefix clears the
/// [`ForkPolicy::min_prefix`] auto-bypass — leaves a snapshot behind
/// that later same-key jobs restore instead of replaying. The warmed
/// machine always continues as that first job's own run, so a miss
/// wastes nothing; short-prefix keys are remembered as bypassed so the
/// decision is made once, not per job.
///
/// All methods take `&self`; entries sit behind an internal mutex held
/// only for lookups and inserts (never across a simulation), and the
/// counters are atomics — workers run concurrently. Two concurrent
/// first-jobs of one key may both warm; the losing insert is discarded
/// and both results are still correct (warming is pure).
///
/// Residency is bounded: [`with_budget`](ForkCache::with_budget) caps
/// the bytes of `Warm` snapshots, evicting least-recently-used entries
/// when an insert overflows the cap. An evicted key is forgotten
/// entirely — its next job counts as a miss and re-warms — so eviction
/// trades warmup time for memory and never changes a single result
/// byte (pinned by test and CI).
pub struct ForkCache {
    policy: ForkPolicy,
    /// Byte budget for resident `Warm` snapshots; `None` = unbounded.
    budget: Option<u64>,
    entries: Mutex<Entries>,
    hits: AtomicU64,
    misses: AtomicU64,
    bypasses: AtomicU64,
    ineligible: AtomicU64,
}

impl ForkCache {
    /// An empty, unbounded cache running under `policy`.
    pub fn new(policy: ForkPolicy) -> ForkCache {
        ForkCache::with_budget(policy, None)
    }

    /// An empty cache whose resident `Warm` snapshots are kept under
    /// `budget` bytes by LRU eviction (`None` = unbounded). Eviction is
    /// invisible in results: an evicted key's next job re-warms cold,
    /// byte-identical — only the warmup cost comes back.
    pub fn with_budget(policy: ForkPolicy, budget: Option<u64>) -> ForkCache {
        ForkCache {
            policy,
            budget,
            entries: Mutex::new(Entries::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
            ineligible: AtomicU64::new(0),
        }
    }

    /// Inserts under the budget: the entry lands, then LRU `Warm`
    /// entries (possibly the one just inserted) are evicted until the
    /// residency fits.
    fn insert_bounded(&self, key: String, resident: Resident) {
        let mut entries = self.entries.lock().unwrap();
        entries.insert(key, resident);
        if let Some(budget) = self.budget {
            entries.evict_to(budget);
        }
    }

    /// Executes `spec` through the cache: restore a resident snapshot
    /// on a hit, warm-and-continue (leaving the snapshot behind) on a
    /// miss, plain cold run when the spec is ineligible or its key is
    /// marked bypassed. The result is byte-identical to
    /// [`RunSpec::run`] on every path.
    pub fn run(&self, spec: &RunSpec) -> RunResult {
        let never = AtomicBool::new(false);
        self.run_cancellable(spec, u64::MAX, &never, |_| ())
            .expect("an unset cancel flag never cancels")
    }

    /// [`run`](ForkCache::run), with cooperative cancellation: the
    /// simulation is sliced into `slice`-cycle windows and `cancel` is
    /// checked between them (`System::run_cancellable`); `progress`
    /// receives the cycle reached after each slice. Returns `None` if
    /// the flag was observed set — the job's machine is dropped, and
    /// any snapshot already cached stays valid (it is immutable).
    ///
    /// Sharded specs (`spec.shards`) can't pause mid-run; for them the
    /// flag is only checked before the run starts. Warmups are likewise
    /// run-to-completion (they are milliseconds).
    pub fn run_cancellable(
        &self,
        spec: &RunSpec,
        slice: u64,
        cancel: &AtomicBool,
        progress: impl FnMut(u64),
    ) -> Option<RunResult> {
        let key = if self.policy.enabled {
            fork_key(spec)
        } else {
            None
        };
        let Some(key) = key else {
            self.ineligible.fetch_add(1, Ordering::Relaxed);
            return run_spec_cancellable(spec, slice, cancel, progress);
        };
        let resident = {
            let mut entries = self.entries.lock().unwrap();
            let stamp = entries.stamp();
            match entries.map.get_mut(&key) {
                Some(entry) => match &entry.resident {
                    Resident::Warm(snap) => {
                        entry.last_used = stamp;
                        Some(Some(Arc::clone(snap)))
                    }
                    Resident::Bypass => Some(None),
                },
                None => None,
            }
        };
        match resident {
            Some(Some(snap)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let mut sys = spec.build();
                spec.arm(&mut sys);
                if sys.restore(&snap).is_err() {
                    // A key collision that doesn't fit this machine;
                    // deterministic for the key, so remember the bypass.
                    self.insert_bounded(key, Resident::Bypass);
                    return run_spec_cancellable(spec, slice, cancel, progress);
                }
                sys.run_cancellable(spec.max_cycles, slice, cancel, progress)
            }
            Some(None) => {
                self.bypasses.fetch_add(1, Ordering::Relaxed);
                run_spec_cancellable(spec, slice, cancel, progress)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                match crate::runner::warm_pause(spec) {
                    Warmup::Done(r) => {
                        // The whole run precedes any PEI; nothing to
                        // share for this key, and `r` is the full result.
                        self.insert_bounded(key, Resident::Bypass);
                        if cancel.load(Ordering::Relaxed) {
                            return None;
                        }
                        Some(*r)
                    }
                    Warmup::Paused(mut sys, at) => {
                        let resident = if at >= self.policy.min_prefix {
                            match sys.snapshot() {
                                Ok(snap) => Resident::Warm(Arc::new(snap)),
                                Err(_) => Resident::Bypass,
                            }
                        } else {
                            Resident::Bypass
                        };
                        self.insert_bounded(key, resident);
                        // The warmed machine finishes this job itself.
                        sys.run_cancellable(spec.max_cycles, slice, cancel, progress)
                    }
                }
            }
        }
    }

    /// [`run_cancellable`](ForkCache::run_cancellable), with an
    /// additional wall-clock budget: past `deadline`, the run is
    /// abandoned at the next slice boundary exactly as a cancellation
    /// would be — the job's machine is dropped and resident snapshots
    /// stay valid. When both the flag and the deadline trip in the same
    /// slice window, cancellation wins (it is the caller's explicit
    /// request).
    ///
    /// The same caveats as cancellation apply: sharded specs and
    /// warmups check only before they start, so the deadline is
    /// enforced at slice granularity, not exactly.
    pub fn run_bounded(
        &self,
        spec: &RunSpec,
        slice: u64,
        cancel: &AtomicBool,
        deadline: Option<Instant>,
        mut progress: impl FnMut(u64),
    ) -> Result<RunResult, Stopped> {
        let expired = |d: Option<Instant>| d.is_some_and(|d| Instant::now() >= d);
        if cancel.load(Ordering::Relaxed) {
            return Err(Stopped::Cancelled);
        }
        if expired(deadline) {
            return Err(Stopped::DeadlineExceeded);
        }
        // The engine only understands one stop flag, so compose both
        // conditions into `halt` from inside the slice-boundary hook and
        // remember which tripped first.
        let halt = AtomicBool::new(false);
        let deadline_hit = std::cell::Cell::new(false);
        let out = self.run_cancellable(spec, slice, &halt, |cycle| {
            progress(cycle);
            if cancel.load(Ordering::Relaxed) {
                halt.store(true, Ordering::Relaxed);
            } else if expired(deadline) {
                deadline_hit.set(true);
                halt.store(true, Ordering::Relaxed);
            }
        });
        match out {
            Some(result) => Ok(result),
            None if deadline_hit.get() => Err(Stopped::DeadlineExceeded),
            None => Err(Stopped::Cancelled),
        }
    }

    /// Records a job that ran outside the cache entirely — traced runs
    /// need a tracer attached before the machine starts, so a daemon
    /// executes them cold and reports them here to keep the counters a
    /// complete partition of jobs.
    pub fn note_ineligible(&self) {
        self.ineligible.fetch_add(1, Ordering::Relaxed);
    }

    /// Current occupancy and per-job counters (the daemon's `stats`
    /// frame).
    pub fn stats(&self) -> CacheStats {
        let (entries, bytes, evictions, evicted_bytes) = {
            let e = self.entries.lock().unwrap();
            let warm = e
                .map
                .values()
                .filter(|x| matches!(x.resident, Resident::Warm(_)))
                .count() as u64;
            (warm, e.resident_bytes, e.evictions, e.evicted_bytes)
        };
        CacheStats {
            entries,
            bytes,
            capacity_bytes: self.budget.unwrap_or(0),
            evictions,
            evicted_bytes,
            fork: ForkStats {
                hits: self.hits.load(Ordering::Relaxed),
                misses: self.misses.load(Ordering::Relaxed),
                bypasses: self.bypasses.load(Ordering::Relaxed),
                ineligible: self.ineligible.load(Ordering::Relaxed),
            },
        }
    }
}

/// Cold path: build, arm, and drive `spec` cancellably on its own
/// engine. Sharded runs check the flag once up front (the sharded
/// driver has no mid-run pause for cancellation).
fn run_spec_cancellable(
    spec: &RunSpec,
    slice: u64,
    cancel: &AtomicBool,
    progress: impl FnMut(u64),
) -> Option<RunResult> {
    let mut sys = spec.build();
    spec.arm(&mut sys);
    match spec.shards {
        Some(n) => {
            if cancel.load(Ordering::Relaxed) {
                return None;
            }
            Some(sys.run_sharded(spec.max_cycles, n))
        }
        None => sys.run_cancellable(spec.max_cycles, slice, cancel, progress),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_recipe(policy: &str) -> Recipe {
        let mut r = Recipe::new("atf", "small", policy);
        r.seed = 7;
        r.budget = Some(2_000);
        r
    }

    #[test]
    fn recipes_resolve_through_the_shared_vocabulary() {
        let spec = resolve_recipe(&quick_recipe("la")).unwrap();
        assert_eq!(spec.cfg.policy, pei_core::DispatchPolicy::LocalityAware);
        assert_eq!(spec.params.seed, 7);
        assert_eq!(spec.params.pei_budget, 2_000);
        // Long names and case-insensitive workload labels work too.
        let spec = resolve_recipe(&quick_recipe("locality-aware-balanced")).unwrap();
        assert_eq!(
            spec.cfg.policy,
            pei_core::DispatchPolicy::LocalityAwareBalanced
        );
        let mut r = quick_recipe("host");
        r.workload = "ATF".into();
        assert!(resolve_recipe(&r).is_ok());
    }

    #[test]
    fn bad_recipes_name_the_field() {
        let mut r = quick_recipe("la");
        r.workload = "quicksort".into();
        assert!(resolve_recipe(&r).unwrap_err().contains("workload"));
        let mut r = quick_recipe("warp-speed");
        assert!(resolve_recipe(&r).unwrap_err().contains("policy"));
        r = quick_recipe("la");
        r.size = "tiny".into();
        assert!(resolve_recipe(&r).unwrap_err().contains("size"));
        r = quick_recipe("la");
        r.scale = "epic".into();
        assert!(resolve_recipe(&r).unwrap_err().contains("scale"));
        r = quick_recipe("la");
        r.shards = Some(0);
        assert!(resolve_recipe(&r).unwrap_err().contains("shards"));
        r = quick_recipe("la");
        r.fault_seed = Some(1);
        assert!(resolve_recipe(&r).unwrap_err().contains("fault_kinds"));
        r = quick_recipe("la");
        r.fault_kinds = vec!["gremlin".into()];
        assert!(resolve_recipe(&r).unwrap_err().contains("fault kind"));
    }

    #[test]
    fn fault_recipes_arm_a_plan() {
        let mut r = quick_recipe("la");
        r.check = true;
        r.fault_seed = Some(11);
        r.fault_kinds = vec!["leak-mshr".into(), "wedge-vault".into()];
        let spec = resolve_recipe(&r).unwrap();
        assert!(spec.check);
        let plan = spec.fault.expect("fault plan armed");
        assert_eq!(plan.seed(), 11);
        assert_eq!(plan.kinds(), [FaultKind::LeakMshr, FaultKind::WedgeVault]);
        // Names round-trip for every kind.
        for k in plan.kinds() {
            assert_eq!(parse_fault_kind(fault_kind_name(*k)), Some(*k));
        }
    }

    #[test]
    fn resident_cache_hits_across_jobs_and_stays_byte_identical() {
        let la = resolve_recipe(&quick_recipe("la")).unwrap();
        let lab = resolve_recipe(&quick_recipe("lab")).unwrap();
        let cold_la = la.run();
        let cold_lab = lab.run();

        // ForkPolicy::always() so the quick-scale prefix actually forks.
        let cache = ForkCache::new(ForkPolicy::always());
        let warm_la = cache.run(&la);
        let warm_lab = cache.run(&lab); // same monitor class → same key
        let again = cache.run(&la);
        assert_eq!(warm_la.stats, cold_la.stats);
        assert_eq!(warm_lab.stats, cold_lab.stats);
        assert_eq!(again.stats, cold_la.stats);
        let s = cache.stats();
        assert_eq!(s.entries, 1, "one monitor-class snapshot resident");
        assert!(s.bytes > 0);
        assert_eq!(s.fork.misses, 1, "only the first job warmed");
        assert_eq!(s.fork.hits, 2);
    }

    #[test]
    fn default_policy_remembers_the_bypass() {
        let la = resolve_recipe(&quick_recipe("la")).unwrap();
        let cache = ForkCache::new(ForkPolicy::default());
        let first = cache.run(&la);
        let second = cache.run(&la);
        assert_eq!(first.stats, la.run().stats);
        assert_eq!(first.stats, second.stats);
        let s = cache.stats();
        assert_eq!(s.entries, 0, "quick-scale prefix is below the threshold");
        assert_eq!(s.fork.misses, 1);
        assert_eq!(s.fork.bypasses, 1, "the decision is cached, not re-warmed");
    }

    #[test]
    fn cancellation_leaves_the_cache_intact() {
        let la = resolve_recipe(&quick_recipe("la")).unwrap();
        let cache = ForkCache::new(ForkPolicy::always());
        let reference = cache.run(&la); // warms + caches

        // Cancel a job mid-run (flag raised from the progress hook).
        let cancel = AtomicBool::new(false);
        let out = cache.run_cancellable(&la, 200, &cancel, |_| {
            cancel.store(true, Ordering::Relaxed);
        });
        assert!(out.is_none(), "job observed the flag and stopped");

        // The resident snapshot is untouched: the next job hits it and
        // reproduces the reference byte-for-byte.
        let after = cache.run(&la);
        assert_eq!(after.stats, reference.stats);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn deadlines_stop_runs_like_cancellation_and_spare_the_cache() {
        let la = resolve_recipe(&quick_recipe("la")).unwrap();
        let cache = ForkCache::new(ForkPolicy::always());
        let reference = cache.run(&la); // warms + caches
        let never = AtomicBool::new(false);

        // An already-expired deadline stops the job before it builds a
        // machine — and before the cache counts it.
        let before = cache.stats().fork;
        let out = cache.run_bounded(&la, 200, &never, Some(Instant::now()), |_| ());
        assert_eq!(out.unwrap_err(), Stopped::DeadlineExceeded);
        assert_eq!(cache.stats().fork, before, "expired jobs never run");

        // A deadline tripping mid-run stops at a slice boundary; the
        // resident snapshot still reproduces the reference bytes. (50µs
        // lapses before the first 50-cycle slice retires, but only the
        // slice-boundary hook notices — the pre-check already passed.)
        let soon = Instant::now() + std::time::Duration::from_micros(50);
        let mut ticks = 0u64;
        let out = cache.run_bounded(&la, 50, &never, Some(soon), |_| ticks += 1);
        assert_eq!(out.unwrap_err(), Stopped::DeadlineExceeded);
        assert!(ticks > 0, "the run got at least one slice in");
        assert_eq!(cache.run(&la).stats, reference.stats);

        // Cancellation wins over a lapsed deadline, and no deadline at
        // all reproduces run() byte-for-byte.
        let cancelled = AtomicBool::new(true);
        let out = cache.run_bounded(&la, 200, &cancelled, Some(Instant::now()), |_| ());
        assert_eq!(out.unwrap_err(), Stopped::Cancelled);
        let out = cache.run_bounded(&la, 200, &never, None, |_| ());
        assert_eq!(out.unwrap().stats, reference.stats);
    }

    #[test]
    fn eviction_under_a_tiny_budget_stays_byte_identical_to_cold() {
        let a = resolve_recipe(&quick_recipe("la")).unwrap();
        let mut r = quick_recipe("la");
        r.seed = 8; // a different fork key
        let b = resolve_recipe(&r).unwrap();
        let (cold_a, cold_b) = (a.run(), b.run());

        // A 1-byte budget evicts every snapshot the moment it lands:
        // every job re-warms, none hit, and all stay byte-identical.
        let cache = ForkCache::with_budget(ForkPolicy::always(), Some(1));
        assert_eq!(cache.run(&a).stats, cold_a.stats);
        assert_eq!(cache.run(&b).stats, cold_b.stats);
        assert_eq!(cache.run(&a).stats, cold_a.stats);
        let s = cache.stats();
        assert_eq!(s.entries, 0, "nothing fits a 1-byte budget");
        assert_eq!(s.bytes, 0);
        assert_eq!(s.capacity_bytes, 1);
        assert_eq!(s.fork.misses, 3, "evicted keys miss again");
        assert_eq!(s.fork.hits, 0);
        assert_eq!(s.evictions, 3);
        assert!(s.evicted_bytes > 0);
    }

    #[test]
    fn lru_eviction_drops_the_coldest_key_first() {
        let a = resolve_recipe(&quick_recipe("la")).unwrap();
        let mut r = quick_recipe("la");
        r.seed = 8;
        let b = resolve_recipe(&r).unwrap();

        // Measure one resident snapshot, then budget for one-and-a-half:
        // either key fits alone (their sizes differ only marginally by
        // seed), both together never do.
        let probe = ForkCache::new(ForkPolicy::always());
        probe.run(&a);
        let one = probe.stats().bytes;
        assert!(one > 0);

        let cache = ForkCache::with_budget(ForkPolicy::always(), Some(one + one / 2));
        let cold_a = a.run();
        assert_eq!(cache.run(&a).stats, cold_a.stats); // miss, A resident
        assert_eq!(cache.run(&b).stats, b.run().stats); // miss, evicts A
        assert_eq!(cache.run(&b).stats, b.run().stats); // hit: B survived
        assert_eq!(cache.run(&a).stats, cold_a.stats); // miss: A was evicted
        let s = cache.stats();
        assert_eq!(s.fork.hits, 1, "the freshest key stayed: {s:?}");
        assert_eq!(s.fork.misses, 3);
        assert!(s.evictions >= 1);
        assert!(s.bytes <= one + one / 2, "residency respects the budget");
    }

    #[test]
    fn ineligible_specs_run_cold_through_the_cache() {
        let mut r = quick_recipe("la");
        r.check = true;
        r.fault_kinds = vec!["delay-event".into()]; // negative control: completes
        let spec = resolve_recipe(&r).unwrap();
        let cache = ForkCache::new(ForkPolicy::always());
        let through = cache.run(&spec);
        assert_eq!(through.stats, spec.run().stats);
        let s = cache.stats();
        assert_eq!(s.fork.ineligible, 1);
        assert_eq!(s.entries, 0);
    }
}
