//! Property-based tests: the cache array against a reference model, and
//! the backing store against a flat byte oracle.

use pei_mem::{BackingStore, CacheArray, LineState};
use pei_types::{Addr, BlockAddr};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum CacheOp {
    Insert(u64),
    Touch(u64),
    Invalidate(u64),
    Lookup(u64),
}

fn cache_op() -> impl Strategy<Value = CacheOp> {
    // Small block universe to force conflicts.
    let blk = 0u64..64;
    prop_oneof![
        blk.clone().prop_map(CacheOp::Insert),
        blk.clone().prop_map(CacheOp::Touch),
        blk.clone().prop_map(CacheOp::Invalidate),
        blk.prop_map(CacheOp::Lookup),
    ]
}

proptest! {
    /// The cache array never exceeds its capacity, never duplicates a
    /// block, and present blocks are exactly the not-yet-evicted inserts.
    #[test]
    fn cache_array_is_consistent(ops in proptest::collection::vec(cache_op(), 1..200)) {
        let mut c = CacheArray::new(4, 2);
        let mut present: std::collections::HashSet<u64> = Default::default();
        for op in ops {
            match op {
                CacheOp::Insert(b) => {
                    let evicted = c.insert(BlockAddr(b), LineState::Shared);
                    present.insert(b);
                    if let Some(l) = evicted {
                        if l.block.0 != b {
                            present.remove(&l.block.0);
                        }
                    }
                }
                CacheOp::Touch(b) => c.touch(BlockAddr(b)),
                CacheOp::Invalidate(b) => {
                    c.invalidate(BlockAddr(b));
                    present.remove(&b);
                }
                CacheOp::Lookup(b) => {
                    prop_assert_eq!(c.lookup(BlockAddr(b)).is_some(), present.contains(&b));
                }
            }
            prop_assert!(c.occupancy() <= c.capacity_lines());
            prop_assert_eq!(c.occupancy(), present.len());
        }
    }

    /// LRU: within one set, inserting a new block evicts the least
    /// recently used unlocked line.
    #[test]
    fn lru_evicts_oldest(touch_order in proptest::collection::vec(0u64..4, 0..20)) {
        // One set, 4 ways, blocks 0..4 all map to set 0 (sets=1).
        let mut c = CacheArray::new(1, 4);
        for b in 0..4u64 {
            c.insert(BlockAddr(b), LineState::Shared);
        }
        let mut order: Vec<u64> = vec![0, 1, 2, 3];
        for &t in &touch_order {
            c.touch(BlockAddr(t));
            order.retain(|&x| x != t);
            order.push(t);
        }
        let evicted = c.insert(BlockAddr(99), LineState::Shared).unwrap();
        prop_assert_eq!(evicted.block.0, order[0]);
    }

    /// The backing store behaves like a flat byte array.
    #[test]
    fn backing_store_matches_oracle(
        writes in proptest::collection::vec(
            (0u64..16384, proptest::collection::vec(any::<u8>(), 1..128)),
            1..40
        )
    ) {
        let mut store = BackingStore::new();
        let mut oracle: HashMap<u64, u8> = HashMap::new();
        for (off, data) in &writes {
            store.write_bytes(Addr(0x2000_0000 + off), data);
            for (i, b) in data.iter().enumerate() {
                oracle.insert(off + i as u64, *b);
            }
        }
        let mut buf = vec![0u8; 16384 + 128];
        store.read_bytes(Addr(0x2000_0000), &mut buf);
        for (i, b) in buf.iter().enumerate() {
            prop_assert_eq!(*b, oracle.get(&(i as u64)).copied().unwrap_or(0));
        }
    }

    /// Scalar accessors agree with byte-level writes (endianness).
    #[test]
    fn scalar_views_consistent(v in any::<u64>(), off in 0u64..1000) {
        let mut store = BackingStore::new();
        let a = Addr(0x3000_0000 + off);
        store.write_u64(a, v);
        let mut bytes = [0u8; 8];
        store.read_bytes(a, &mut bytes);
        prop_assert_eq!(u64::from_le_bytes(bytes), v);
        prop_assert_eq!(store.read_u32(a) as u64, v & 0xffff_ffff);
    }
}
