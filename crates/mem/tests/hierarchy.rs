//! Cross-component tests of the cache hierarchy: a miniature event loop
//! drives one private cache against one L3 bank with a fake memory,
//! checking multi-hop protocol sequences that the per-component unit
//! tests cannot see.

use pei_engine::Outbox;
use pei_mem::l3::{L3In, L3Out};
use pei_mem::msg::{CoreReq, MemFetchDone};
use pei_mem::private::PrivOut;
use pei_mem::{L3Bank, MemHierarchyConfig, PrivateCache};
use pei_types::{Addr, CoreId, Cycle, L3BankId, ReqId};
use std::collections::VecDeque;

/// A two-level harness: N private caches + 1 L3 bank + instant memory.
struct Harness {
    privs: Vec<PrivateCache>,
    l3: L3Bank,
    /// (time, event)
    queue: VecDeque<(Cycle, Ev)>,
    completions: Vec<(CoreId, ReqId, Cycle)>,
}

enum Ev {
    ToPriv(usize, pei_mem::msg::L3Resp),
    RecallPriv(usize, pei_mem::msg::Recall),
    ToL3(L3In),
    CoreReq(usize, CoreReq),
}

impl Harness {
    fn new(n: usize) -> Self {
        let cfg = MemHierarchyConfig {
            l3_banks: 1,
            ..MemHierarchyConfig::scaled()
        };
        Harness {
            privs: (0..n)
                .map(|i| PrivateCache::new(CoreId(i as u16), &cfg))
                .collect(),
            l3: L3Bank::new(L3BankId(0), &cfg),
            queue: VecDeque::new(),
            completions: Vec::new(),
        }
    }

    fn req(&mut self, at: Cycle, core: usize, addr: u64, write: bool) {
        self.queue.push_back((
            at,
            Ev::CoreReq(
                core,
                CoreReq {
                    id: ReqId(at << 8 | core as u64),
                    addr: Addr(addr),
                    write,
                },
            ),
        ));
    }

    fn run(&mut self) {
        let mut guard = 0;
        while let Some((now, ev)) = self.queue.pop_front() {
            guard += 1;
            assert!(guard < 100_000, "harness runaway");
            match ev {
                Ev::CoreReq(i, req) => {
                    let mut outs = Outbox::new();
                    self.privs[i].handle_core_req(now, req, &mut outs);
                    self.route_priv(i, outs);
                }
                Ev::ToPriv(i, resp) => {
                    let mut outs = Outbox::new();
                    self.privs[i].handle_l3_resp(now, resp, &mut outs);
                    self.route_priv(i, outs);
                }
                Ev::RecallPriv(i, recall) => {
                    let mut outs = Outbox::new();
                    self.privs[i].handle_recall(now, recall, &mut outs);
                    self.route_priv(i, outs);
                }
                Ev::ToL3(input) => {
                    let mut outs = Outbox::new();
                    self.l3.handle(now, input, &mut outs);
                    for o in outs.drain() {
                        match o {
                            L3Out::Resp { resp, at } => self
                                .queue
                                .push_back((at, Ev::ToPriv(resp.core.index(), resp))),
                            L3Out::Recall { recall, at } => self
                                .queue
                                .push_back((at, Ev::RecallPriv(recall.core.index(), recall))),
                            L3Out::Fetch { fetch, at } => {
                                // Instant memory: reads complete immediately.
                                if !fetch.write {
                                    self.queue.push_back((
                                        at + 10,
                                        Ev::ToL3(L3In::FetchDone(MemFetchDone {
                                            id: fetch.id,
                                            block: fetch.block,
                                        })),
                                    ));
                                }
                            }
                            L3Out::FlushDone { .. } => {}
                        }
                    }
                }
            }
            // Keep rough time order (the queue is FIFO per push; protocol
            // correctness here does not depend on exact ordering).
            self.queue.make_contiguous().sort_by_key(|(t, _)| *t);
        }
    }

    fn route_priv(&mut self, i: usize, mut outs: Outbox<PrivOut>) {
        for o in outs.drain() {
            match o {
                PrivOut::CoreResp { id, at } => self.completions.push((CoreId(i as u16), id, at)),
                PrivOut::ToL3 { req, at } => self.queue.push_back((at, Ev::ToL3(L3In::Req(req)))),
                PrivOut::Ack { ack, at } => self.queue.push_back((at, Ev::ToL3(L3In::Ack(ack)))),
            }
        }
    }
}

#[test]
fn write_sharing_ping_pong_completes() {
    let mut h = Harness::new(4);
    // All four cores repeatedly write the same block.
    for round in 0..8u64 {
        for core in 0..4usize {
            h.req(round * 100 + core as u64, core, 0x40, true);
        }
    }
    h.run();
    assert_eq!(h.completions.len(), 32, "every store must complete");
    assert!(h.l3.is_quiescent());
    // Exactly one core may hold the line at the end, exclusively.
    let holders: Vec<_> = h
        .privs
        .iter()
        .filter(|p| p.holds(pei_types::BlockAddr(1)))
        .collect();
    assert_eq!(holders.len(), 1, "MESI single-writer invariant");
}

#[test]
fn read_sharing_spreads_copies() {
    let mut h = Harness::new(4);
    for core in 0..4usize {
        h.req(core as u64, core, 0x80, false);
    }
    h.run();
    assert_eq!(h.completions.len(), 4);
    let holders = h
        .privs
        .iter()
        .filter(|p| p.holds(pei_types::BlockAddr(2)))
        .count();
    assert_eq!(holders, 4, "read sharing leaves a copy everywhere");
    let (_, sharers, owner) = h.l3.dir_state(pei_types::BlockAddr(2));
    assert_eq!(sharers, 4);
    assert_eq!(owner, None);
}

#[test]
fn capacity_streams_complete_under_inclusive_evictions() {
    let mut h = Harness::new(1);
    // Stream 4x the private L2 capacity through one core: plenty of L3
    // fills and L2 evictions (and, with one bank, L3 evictions too).
    let blocks = 4 * (64 * 1024 / 64);
    for i in 0..blocks as u64 {
        h.req(i, 0, 0x100_000 + i * 64, i % 3 == 0);
    }
    h.run();
    assert_eq!(h.completions.len(), blocks);
    assert!(h.l3.is_quiescent());
}

#[test]
fn mixed_read_write_interleavings_preserve_directory_sanity() {
    let mut h = Harness::new(3);
    // Pseudo-random mix over 8 blocks.
    let mut x = 0x12345u64;
    for step in 0..200u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let core = (x % 3) as usize;
        let block = (x >> 8) % 8;
        h.req(step, core, block * 64, x & 1 == 0);
    }
    h.run();
    assert_eq!(h.completions.len(), 200);
    assert!(h.l3.is_quiescent());
    for b in 0..8u64 {
        let (present, sharers, owner) = h.l3.dir_state(pei_types::BlockAddr(b));
        if present && owner.is_some() {
            assert_eq!(sharers, 1, "owner implies a single presence bit");
        }
        // Presence must agree with the private caches.
        let holding = h
            .privs
            .iter()
            .filter(|p| p.holds(pei_types::BlockAddr(b)))
            .count() as u32;
        assert_eq!(holding, if present { sharers } else { 0 }, "block {b}");
    }
}
