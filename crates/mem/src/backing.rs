//! The functional backing store: the simulated machine's actual bytes.
//!
//! A sparse, page-granular memory. Workload generators allocate simulated
//! data structures here (through [`BackingStore::alloc`]) and both the
//! reference implementations and the simulated PCUs read/write the same
//! bytes, which is what lets integration tests check that PEI execution
//! produces bit-identical results to a sequential reference run.

use pei_types::{Addr, BlockAddr, BLOCK_BYTES};
use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_BYTES: usize = 1 << PAGE_SHIFT;

/// Sparse paged physical memory plus a bump allocator for simulated heaps.
///
/// # Examples
///
/// ```
/// use pei_mem::BackingStore;
///
/// let mut mem = BackingStore::new();
/// let a = mem.alloc(1024, 64);
/// assert_eq!(a.0 % 64, 0);
/// mem.write_f64(a, 2.5);
/// assert_eq!(mem.read_f64(a), 2.5);
/// ```
#[derive(Debug, Default, Clone)]
pub struct BackingStore {
    pages: HashMap<u64, Box<[u8; PAGE_BYTES]>>,
    brk: u64,
}

impl BackingStore {
    /// Creates an empty store with the heap starting at 256 MiB (clear of
    /// the null page and of low fixed addresses tests like to use).
    pub fn new() -> Self {
        Self::with_base(0x1000_0000)
    }

    /// Creates an empty store whose heap starts at `base` (multiprogrammed
    /// experiments give each co-running workload a disjoint heap).
    pub fn with_base(base: u64) -> Self {
        BackingStore {
            pages: HashMap::new(),
            brk: base,
        }
    }

    /// Copies every materialized page of `other` into this store.
    ///
    /// # Panics
    ///
    /// Panics if the two stores have materialized overlapping pages —
    /// merging is for workloads built on disjoint heap bases.
    pub fn merge_from(&mut self, other: &BackingStore) {
        for (page, data) in &other.pages {
            assert!(
                self.pages.insert(*page, data.clone()).is_none(),
                "overlapping pages while merging backing stores"
            );
        }
        self.brk = self.brk.max(other.brk);
    }

    /// Allocates `bytes` of simulated memory aligned to `align` and returns
    /// its base address. Memory is zero-initialized on first touch.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.brk = (self.brk + align - 1) & !(align - 1);
        let base = self.brk;
        self.brk += bytes;
        Addr(base)
    }

    /// Allocates one cache block worth of memory, block-aligned.
    pub fn alloc_block(&mut self) -> Addr {
        self.alloc(BLOCK_BYTES as u64, BLOCK_BYTES as u64)
    }

    /// Current top of the simulated heap.
    pub fn heap_top(&self) -> Addr {
        Addr(self.brk)
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_BYTES] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_BYTES]))
    }

    /// Reads `buf.len()` bytes starting at `addr`. Untouched memory reads
    /// as zero.
    pub fn read_bytes(&self, addr: Addr, buf: &mut [u8]) {
        let mut a = addr.0;
        let mut done = 0;
        while done < buf.len() {
            let off = (a & (PAGE_BYTES as u64 - 1)) as usize;
            let n = (PAGE_BYTES - off).min(buf.len() - done);
            match self.pages.get(&(a >> PAGE_SHIFT)) {
                Some(p) => buf[done..done + n].copy_from_slice(&p[off..off + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
            a += n as u64;
        }
    }

    /// Writes `data` starting at `addr`.
    pub fn write_bytes(&mut self, addr: Addr, data: &[u8]) {
        let mut a = addr.0;
        let mut done = 0;
        while done < data.len() {
            let off = (a & (PAGE_BYTES as u64 - 1)) as usize;
            let n = (PAGE_BYTES - off).min(data.len() - done);
            self.page_mut(a)[off..off + n].copy_from_slice(&data[done..done + n]);
            done += n;
            a += n as u64;
        }
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: Addr, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads an `f64` at `addr`.
    pub fn read_f64(&self, addr: Addr) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64` at `addr`.
    pub fn write_f64(&mut self, addr: Addr, v: f64) {
        self.write_u64(addr, v.to_bits());
    }

    /// Reads a little-endian `u32` at `addr`.
    pub fn read_u32(&self, addr: Addr) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32` at `addr`.
    pub fn write_u32(&mut self, addr: Addr, v: u32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads an `f32` at `addr`.
    pub fn read_f32(&self, addr: Addr) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32` at `addr`.
    pub fn write_f32(&mut self, addr: Addr, v: f32) {
        self.write_u32(addr, v.to_bits());
    }

    /// Copies out one whole cache block.
    pub fn read_block(&self, block: BlockAddr) -> [u8; BLOCK_BYTES] {
        let mut b = [0u8; BLOCK_BYTES];
        self.read_bytes(block.base(), &mut b);
        b
    }

    /// Overwrites one whole cache block.
    pub fn write_block(&mut self, block: BlockAddr, data: &[u8; BLOCK_BYTES]) {
        self.write_bytes(block.base(), data);
    }

    /// Number of 4 KiB pages materialized so far (footprint statistics).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Serializes the store (heap top + materialized pages) to `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn save<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(b"PEISTOR1")?;
        w.write_all(&self.brk.to_le_bytes())?;
        w.write_all(&(self.pages.len() as u64).to_le_bytes())?;
        let mut pages: Vec<_> = self.pages.iter().collect();
        pages.sort_by_key(|(p, _)| **p);
        for (page, data) in pages {
            w.write_all(&page.to_le_bytes())?;
            w.write_all(&data[..])?;
        }
        Ok(())
    }

    /// Deserializes a store written by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` on a bad magic, or propagates I/O errors.
    pub fn load<R: std::io::Read>(r: &mut R) -> std::io::Result<BackingStore> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != b"PEISTOR1" {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "corrupt store: bad magic",
            ));
        }
        let mut b8 = [0u8; 8];
        r.read_exact(&mut b8)?;
        let brk = u64::from_le_bytes(b8);
        r.read_exact(&mut b8)?;
        let n = u64::from_le_bytes(b8);
        let mut pages = HashMap::new();
        for _ in 0..n {
            r.read_exact(&mut b8)?;
            let page = u64::from_le_bytes(b8);
            let mut data = Box::new([0u8; PAGE_BYTES]);
            r.read_exact(&mut data[..])?;
            pages.insert(page, data);
        }
        Ok(BackingStore { pages, brk })
    }

    /// Relocates every materialized page through `map` (virtual page
    /// number → physical frame number). Used when the machine runs with a
    /// non-identity page table: workloads build data at virtual addresses
    /// and the simulated physical memory holds it at the mapped frames.
    ///
    /// # Panics
    ///
    /// Panics if `map` sends two materialized pages to the same frame
    /// (it must be injective).
    pub fn remap_pages(&mut self, map: impl Fn(u64) -> u64) {
        let old = std::mem::take(&mut self.pages);
        for (vpn, data) in old {
            assert!(
                self.pages.insert(map(vpn), data).is_none(),
                "page map is not injective at vpn {vpn:#x}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_on_first_read() {
        let mem = BackingStore::new();
        assert_eq!(mem.read_u64(Addr(0x5000)), 0);
        let mut buf = [1u8; 100];
        mem.read_bytes(Addr(0x1234), &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn rw_round_trip_scalars() {
        let mut mem = BackingStore::new();
        mem.write_u64(Addr(8), 0xdead_beef_cafe_f00d);
        assert_eq!(mem.read_u64(Addr(8)), 0xdead_beef_cafe_f00d);
        mem.write_f64(Addr(16), -1.25e300);
        assert_eq!(mem.read_f64(Addr(16)), -1.25e300);
        mem.write_u32(Addr(24), 77);
        assert_eq!(mem.read_u32(Addr(24)), 77);
        mem.write_f32(Addr(28), 3.5);
        assert_eq!(mem.read_f32(Addr(28)), 3.5);
    }

    #[test]
    fn cross_page_write_read() {
        let mut mem = BackingStore::new();
        let addr = Addr(PAGE_BYTES as u64 - 3);
        let data: Vec<u8> = (0..10).collect();
        mem.write_bytes(addr, &data);
        let mut back = [0u8; 10];
        mem.read_bytes(addr, &mut back);
        assert_eq!(&back[..], &data[..]);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn with_base_and_merge() {
        let mut a = BackingStore::new();
        let pa = a.alloc(64, 64);
        a.write_u64(pa, 1);
        let mut b = BackingStore::with_base(0x4000_0000);
        let pb = b.alloc(64, 64);
        b.write_u64(pb, 2);
        assert!(pb.0 >= 0x4000_0000);
        a.merge_from(&b);
        assert_eq!(a.read_u64(pa), 1);
        assert_eq!(a.read_u64(pb), 2);
        assert!(a.heap_top().0 >= 0x4000_0000);
    }

    #[test]
    #[should_panic(expected = "overlapping pages")]
    fn merge_rejects_overlap() {
        let mut a = BackingStore::new();
        let p = a.alloc(64, 64);
        a.write_u64(p, 1);
        let mut b = BackingStore::new();
        let q = b.alloc(64, 64);
        b.write_u64(q, 2);
        a.merge_from(&b);
    }

    #[test]
    fn alloc_respects_alignment_and_disjointness() {
        let mut mem = BackingStore::new();
        let a = mem.alloc(100, 64);
        let b = mem.alloc(10, 8);
        let c = mem.alloc(1, 4096);
        assert_eq!(a.0 % 64, 0);
        assert_eq!(b.0 % 8, 0);
        assert_eq!(c.0 % 4096, 0);
        assert!(b.0 >= a.0 + 100);
        assert!(c.0 >= b.0 + 10);
    }

    #[test]
    fn block_round_trip() {
        let mut mem = BackingStore::new();
        let addr = mem.alloc_block();
        let mut blk = [0u8; BLOCK_BYTES];
        for (i, b) in blk.iter_mut().enumerate() {
            *b = i as u8;
        }
        mem.write_block(addr.block(), &blk);
        assert_eq!(mem.read_block(addr.block()), blk);
    }

    #[test]
    fn save_load_round_trips() {
        let mut a = BackingStore::new();
        let p = a.alloc(10_000, 64);
        for i in 0..1000u64 {
            a.write_u64(p.offset(i * 8), i * 31 + 7);
        }
        let mut buf = Vec::new();
        a.save(&mut buf).unwrap();
        let b = BackingStore::load(&mut buf.as_slice()).unwrap();
        assert_eq!(b.heap_top(), a.heap_top());
        assert_eq!(b.resident_pages(), a.resident_pages());
        for i in 0..1000u64 {
            assert_eq!(b.read_u64(p.offset(i * 8)), i * 31 + 7);
        }
        // Bad magic rejected.
        assert!(BackingStore::load(&mut b"XXXXXXXX".as_slice()).is_err());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_rejected() {
        BackingStore::new().alloc(8, 3);
    }
}
