//! Miss-status holding registers for the private caches.
//!
//! An MSHR entry exists per in-flight missing block; same-block requests
//! merge into the existing entry as waiters, and the file's capacity bounds
//! memory-level parallelism exactly as in Table 2 of the paper (16 MSHRs
//! per private cache).

use crate::msg::L3ReqKind;
use pei_types::{BlockAddr, ReqId};
use std::collections::HashMap;

/// A request merged into an MSHR entry, waiting for the fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Waiter {
    /// The original core request id to answer on fill.
    pub id: ReqId,
    /// Whether the waiter needs write permission.
    pub write: bool,
}

/// One in-flight miss.
#[derive(Debug, Clone)]
pub struct MshrEntry {
    /// The missing block.
    pub block: BlockAddr,
    /// The permission level requested from the L3.
    pub issued: L3ReqKind,
    /// Requests waiting on this fill.
    pub waiters: Vec<Waiter>,
}

impl MshrEntry {
    /// Whether any waiter needs write permission.
    pub fn wants_write(&self) -> bool {
        self.waiters.iter().any(|w| w.write)
    }
}

/// A capacity-bounded file of [`MshrEntry`]s keyed by block.
///
/// # Examples
///
/// ```
/// use pei_mem::MshrFile;
/// use pei_mem::msg::L3ReqKind;
/// use pei_types::{BlockAddr, ReqId};
///
/// let mut m = MshrFile::new(2);
/// assert!(m.alloc(BlockAddr(1), L3ReqKind::GetS, ReqId(1), false));
/// // Same-block request merges instead of allocating.
/// assert!(m.merge(BlockAddr(1), ReqId(2), true));
/// assert_eq!(m.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct MshrFile {
    entries: HashMap<BlockAddr, MshrEntry>,
    capacity: usize,
    peak: usize,
    merges: u64,
}

impl MshrFile {
    /// Creates a file with room for `capacity` distinct missing blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be nonzero");
        MshrFile {
            entries: HashMap::new(),
            capacity,
            peak: 0,
            merges: 0,
        }
    }

    /// Whether a new distinct block can be tracked.
    pub fn has_room(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Allocates an entry for `block`. Returns `false` (and does nothing)
    /// if the file is full or the block is already tracked — use
    /// [`merge`](Self::merge) for the latter.
    pub fn alloc(&mut self, block: BlockAddr, issued: L3ReqKind, id: ReqId, write: bool) -> bool {
        if !self.has_room() || self.entries.contains_key(&block) {
            return false;
        }
        self.entries.insert(
            block,
            MshrEntry {
                block,
                issued,
                waiters: vec![Waiter { id, write }],
            },
        );
        self.peak = self.peak.max(self.entries.len());
        true
    }

    /// Merges a same-block request into an existing entry. Returns `false`
    /// if the block is not tracked.
    pub fn merge(&mut self, block: BlockAddr, id: ReqId, write: bool) -> bool {
        match self.entries.get_mut(&block) {
            Some(e) => {
                e.waiters.push(Waiter { id, write });
                self.merges += 1;
                true
            }
            None => false,
        }
    }

    /// Whether `block` has an in-flight miss.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.entries.contains_key(&block)
    }

    /// Immutable access to an entry.
    pub fn get(&self, block: BlockAddr) -> Option<&MshrEntry> {
        self.entries.get(&block)
    }

    /// Mutable access to an entry.
    pub fn get_mut(&mut self, block: BlockAddr) -> Option<&mut MshrEntry> {
        self.entries.get_mut(&block)
    }

    /// Removes and returns the entry for `block` (on fill).
    pub fn retire(&mut self, block: BlockAddr) -> Option<MshrEntry> {
        self.entries.remove(&block)
    }

    /// Number of in-flight misses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no misses are in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// High-water mark of simultaneous misses (statistics).
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Total merged (secondary) misses (statistics).
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Blocks with an outstanding entry, in no particular order
    /// (invariant-checker access; see `pei-system`'s checked mode).
    pub fn blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.entries.keys().copied()
    }
}

impl pei_types::snap::SnapshotState for MshrFile {
    /// Entries travel sorted by block (the map itself is unordered, and
    /// identical machine states must serialize to identical bytes);
    /// waiter order within an entry is answer order and is preserved.
    fn save(&self, e: &mut pei_types::snap::Encoder) {
        let mut blocks: Vec<BlockAddr> = self.entries.keys().copied().collect();
        blocks.sort_unstable_by_key(|b| b.0);
        e.seq(blocks.len());
        for b in blocks {
            let entry = &self.entries[&b];
            e.u64(entry.block.0);
            entry.issued.encode(e);
            e.seq(entry.waiters.len());
            for w in &entry.waiters {
                e.u64(w.id.0);
                e.bool(w.write);
            }
        }
        e.usize(self.peak);
        e.u64(self.merges);
    }

    fn load(&mut self, d: &mut pei_types::snap::Decoder<'_>) -> pei_types::snap::SnapResult<()> {
        let n = d.seq(13)?;
        if n > self.capacity {
            return Err(d.bad(format!(
                "{n} MSHR entries but capacity is {}",
                self.capacity
            )));
        }
        self.entries.clear();
        for _ in 0..n {
            let block = BlockAddr(d.u64()?);
            let issued = L3ReqKind::decode(d)?;
            let waiters = d.seq(9)?;
            let mut entry = MshrEntry {
                block,
                issued,
                waiters: Vec::with_capacity(waiters),
            };
            for _ in 0..waiters {
                entry.waiters.push(Waiter {
                    id: ReqId(d.u64()?),
                    write: d.bool()?,
                });
            }
            self.entries.insert(block, entry);
        }
        self.peak = d.usize()?;
        self.merges = d.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(n: u64) -> BlockAddr {
        BlockAddr(n)
    }

    #[test]
    fn alloc_until_full_then_reject() {
        let mut m = MshrFile::new(2);
        assert!(m.alloc(blk(1), L3ReqKind::GetS, ReqId(1), false));
        assert!(m.alloc(blk(2), L3ReqKind::GetM, ReqId(2), true));
        assert!(!m.has_room());
        assert!(!m.alloc(blk(3), L3ReqKind::GetS, ReqId(3), false));
        assert_eq!(m.len(), 2);
        assert_eq!(m.peak(), 2);
    }

    #[test]
    fn double_alloc_same_block_rejected() {
        let mut m = MshrFile::new(4);
        assert!(m.alloc(blk(1), L3ReqKind::GetS, ReqId(1), false));
        assert!(!m.alloc(blk(1), L3ReqKind::GetS, ReqId(2), false));
    }

    #[test]
    fn merge_tracks_write_intent() {
        let mut m = MshrFile::new(4);
        m.alloc(blk(1), L3ReqKind::GetS, ReqId(1), false);
        assert!(!m.get(blk(1)).unwrap().wants_write());
        assert!(m.merge(blk(1), ReqId(2), true));
        assert!(m.get(blk(1)).unwrap().wants_write());
        assert_eq!(m.merges(), 1);
        assert!(!m.merge(blk(9), ReqId(3), false));
    }

    #[test]
    fn retire_frees_room() {
        let mut m = MshrFile::new(1);
        m.alloc(blk(1), L3ReqKind::GetS, ReqId(1), false);
        let e = m.retire(blk(1)).unwrap();
        assert_eq!(e.waiters.len(), 1);
        assert!(m.is_empty());
        assert!(m.has_room());
        assert!(m.retire(blk(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        MshrFile::new(0);
    }
}
