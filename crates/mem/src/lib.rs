//! Cache hierarchy and on-chip interconnect for the PEI simulator.
//!
//! This crate models the host memory hierarchy of the paper's baseline
//! machine (Table 2): private L1/L2 caches per core, a shared, banked,
//! *inclusive* L3 with MESI directory coherence and MSHRs, the on-chip
//! crossbar, and the functional backing store that holds the simulated
//! machine's actual bytes.
//!
//! # Timing vs. function
//!
//! The simulator is *functional-first*: data values live in the
//! [`BackingStore`] and are updated eagerly when instructions or PIM
//! operations execute, while the cache components model *timing and
//! coherence state only* (tags, MESI states, LRU, presence bits — no data
//! arrays). This is exact for the bandwidth/latency phenomena the paper
//! measures and keeps every component independently testable; see
//! DESIGN.md §2.
//!
//! # Component protocol
//!
//! Components communicate through the message types in [`msg`]; each
//! component exposes `handle_*` methods that consume an input message and
//! push timestamped output messages into a caller-provided sink. The
//! system crate owns the event queue and routes outputs (through the
//! [`xbar::Crossbar`] where appropriate).
//!
//! # Examples
//!
//! ```
//! use pei_mem::BackingStore;
//! use pei_types::Addr;
//!
//! let mut mem = BackingStore::new();
//! mem.write_u64(Addr(0x100), 42);
//! assert_eq!(mem.read_u64(Addr(0x100)), 42);
//! ```
//!
//! This crate's place in the workspace is mapped in DESIGN.md §5.

pub mod backing;
pub mod cache;
pub mod config;
pub mod l3;
pub mod msg;
pub mod mshr;
pub mod private;
pub mod xbar;

pub use backing::BackingStore;
pub use cache::{CacheArray, LineState, LookupResult};
pub use config::{CacheConfig, MemHierarchyConfig};
pub use l3::L3Bank;
pub use l3::{L3In, L3Out};
pub use msg::{Grant, L3Req, L3ReqKind, RecallOp};
pub use mshr::MshrFile;
pub use private::PrivOut;
pub use private::PrivateCache;
pub use xbar::Crossbar;
