//! One bank of the shared, inclusive L3 cache with its embedded MESI
//! directory.
//!
//! The L3 is the coherence ordering point: it serializes transactions per
//! block (later same-block inputs are deferred until the active transaction
//! completes), recalls private copies when granting conflicting permission,
//! back-invalidates on inclusive evictions, and implements the PMU's
//! back-invalidation / back-writeback requests used before memory-side PEI
//! execution (§4.3).

use crate::cache::{presence, CacheArray, Line};
use crate::config::MemHierarchyConfig;
use crate::msg::{
    Grant, L3Req, L3ReqKind, L3Resp, MemFetch, MemFetchDone, PimFlush, PimFlushDone, Recall,
    RecallAck, RecallOp,
};
use pei_engine::{CounterId, Counters, Occupancy, Outbox, StatsReport};
use pei_types::{BlockAddr, Cycle, L3BankId, ReqId};
use std::collections::{HashMap, VecDeque};

/// Inputs an L3 bank can receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L3In {
    /// Request from a private cache.
    Req(L3Req),
    /// Recall acknowledgement from a private cache.
    Ack(RecallAck),
    /// Back-invalidation / back-writeback request from the PMU.
    Flush(PimFlush),
    /// Completed memory fetch.
    FetchDone(MemFetchDone),
}

/// Outputs of an L3 bank, stamped with their departure cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L3Out {
    /// Grant to a private cache.
    Resp {
        /// The grant.
        resp: L3Resp,
        /// Departure cycle.
        at: Cycle,
    },
    /// Recall to a private cache.
    Recall {
        /// The recall.
        recall: Recall,
        /// Departure cycle.
        at: Cycle,
    },
    /// Fetch or writeback crossing to main memory.
    Fetch {
        /// The memory operation.
        fetch: MemFetch,
        /// Departure cycle.
        at: Cycle,
    },
    /// Completion of a PMU flush.
    FlushDone {
        /// The completion notice.
        done: PimFlushDone,
        /// Departure cycle.
        at: Cycle,
    },
}

impl L3In {
    /// Appends the input to a snapshot stream. Bank inputs sit in
    /// deferral and overflow queues (and the event queue itself), so
    /// they need a stable wire form.
    pub fn encode(&self, e: &mut pei_types::snap::Encoder) {
        match self {
            L3In::Req(req) => {
                e.u8(0);
                req.encode(e);
            }
            L3In::Ack(ack) => {
                e.u8(1);
                ack.encode(e);
            }
            L3In::Flush(flush) => {
                e.u8(2);
                flush.encode(e);
            }
            L3In::FetchDone(done) => {
                e.u8(3);
                done.encode(e);
            }
        }
    }

    /// Inverse of [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Fails on truncation or an unknown tag.
    pub fn decode(d: &mut pei_types::snap::Decoder<'_>) -> pei_types::snap::SnapResult<L3In> {
        let at = d.offset();
        Ok(match d.u8()? {
            0 => L3In::Req(L3Req::decode(d)?),
            1 => L3In::Ack(RecallAck::decode(d)?),
            2 => L3In::Flush(PimFlush::decode(d)?),
            3 => L3In::FetchDone(MemFetchDone::decode(d)?),
            t => {
                return Err(pei_types::snap::SnapError::BadTag {
                    offset: at,
                    found: t,
                    what: "L3 input",
                })
            }
        })
    }
}

#[derive(Debug)]
enum TxnKind {
    /// Hit path: waiting for recalls before granting `req`.
    Grant { req: L3Req },
    /// Miss path: possibly evicting a victim, then fetching from memory.
    Fill { req: L3Req, victim: Option<Line> },
    /// PMU back-invalidation / back-writeback.
    Flush { id: ReqId, invalidate: bool },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    VictimAcks,
    Mem,
    RecallAcks,
}

#[derive(Debug)]
struct Txn {
    kind: TxnKind,
    phase: Phase,
    pending_acks: u32,
    dirty_seen: bool,
    deferred: VecDeque<L3In>,
}

/// One bank of the shared inclusive L3.
#[derive(Debug)]
pub struct L3Bank {
    id: L3BankId,
    array: CacheArray,
    txns: HashMap<BlockAddr, Txn>,
    txn_cap: usize,
    overflow: VecDeque<L3In>,
    port: Occupancy,
    lat: Cycle,
    next_fetch: u64,
    retry_scratch: VecDeque<L3In>,
    counters: Counters,
    c: L3Counters,
}

/// Dense counter slots registered at construction (hot-path bumps are
/// indexed adds; names materialize only in [`L3Bank::report`]).
#[derive(Debug, Clone, Copy)]
struct L3Counters {
    hits: CounterId,
    misses: CounterId,
    evictions: CounterId,
    writebacks: CounterId,
    recalls: CounterId,
    flushes: CounterId,
    accesses: CounterId,
}

impl L3Counters {
    fn register(counters: &mut Counters) -> Self {
        L3Counters {
            hits: counters.register("hits"),
            misses: counters.register("misses"),
            evictions: counters.register("evictions"),
            writebacks: counters.register("writebacks"),
            recalls: counters.register("recalls"),
            flushes: counters.register("flushes"),
            accesses: counters.register("accesses"),
        }
    }
}

impl L3Bank {
    /// Creates bank `id` of the L3 described by `cfg`.
    pub fn new(id: L3BankId, cfg: &MemHierarchyConfig) -> Self {
        let mut counters = Counters::new();
        let c = L3Counters::register(&mut counters);
        L3Bank {
            id,
            array: CacheArray::with_shift(cfg.l3_sets_per_bank(), cfg.l3.ways, cfg.l3_bank_bits()),
            txns: HashMap::new(),
            txn_cap: cfg.l3_mshrs,
            overflow: VecDeque::new(),
            port: Occupancy::new(),
            lat: cfg.l3.latency,
            next_fetch: 0,
            retry_scratch: VecDeque::new(),
            counters,
            c,
        }
    }

    /// This bank's id.
    pub fn id(&self) -> L3BankId {
        self.id
    }

    fn fetch_id(&mut self) -> ReqId {
        self.next_fetch += 1;
        ReqId::tagged(pei_types::mem::ns::L3, self.id.0, self.next_fetch)
    }

    /// Processes one input message, pushing outputs into `out`.
    pub fn handle(&mut self, now: Cycle, input: L3In, out: &mut Outbox<L3Out>) {
        match input {
            L3In::Req(req) => self.on_req(now, req, out),
            L3In::Ack(ack) => self.on_ack(now, ack, out),
            L3In::Flush(flush) => self.on_flush(now, flush, out),
            L3In::FetchDone(done) => self.on_fetch_done(now, done, out),
        }
    }

    fn on_req(&mut self, now: Cycle, req: L3Req, out: &mut Outbox<L3Out>) {
        // Victim notices never block: they carry no response and must not
        // deadlock behind a transaction that is recalling their sender.
        if matches!(req.kind, L3ReqKind::PutS | L3ReqKind::PutM) {
            self.on_put(req);
            return;
        }
        if let Some(txn) = self.txns.get_mut(&req.block) {
            txn.deferred.push_back(L3In::Req(req));
            return;
        }
        let start = self.port.reserve(now, 1);
        self.counters.inc(self.c.accesses);
        match self.array.lookup(req.block) {
            Some(_) => self.on_hit(start, req, out),
            None => self.on_miss(start, req, out),
        }
    }

    fn on_put(&mut self, req: L3Req) {
        if let Some(line) = self.array.line_mut(req.block) {
            line.presence = presence::remove(line.presence, req.core);
            if line.owner == Some(req.core) {
                line.owner = None;
            }
            if req.kind == L3ReqKind::PutM {
                line.dirty = true;
            }
        }
        // A Put for an absent block means an inclusive eviction raced with
        // the victim notice; nothing to do (the recall already handled it).
    }

    fn on_hit(&mut self, start: Cycle, req: L3Req, out: &mut Outbox<L3Out>) {
        self.counters.inc(self.c.hits);
        let line = self.array.line(req.block).expect("hit");
        // The recall set is a presence mask plus an op: iterating the mask
        // directly emits the same cores in the same order the collected
        // `Vec<Recall>` used to, with no staging buffer.
        let (mask, op) = match req.kind {
            L3ReqKind::GetS => match line.owner {
                Some(owner) if owner != req.core => (presence::add(0, owner), RecallOp::Downgrade),
                _ => (0, RecallOp::Downgrade),
            },
            L3ReqKind::GetM => {
                let mut mask = line.presence;
                if let Some(owner) = line.owner {
                    mask = presence::add(mask, owner);
                }
                (presence::remove(mask, req.core), RecallOp::Invalidate)
            }
            L3ReqKind::PutS | L3ReqKind::PutM => unreachable!("puts handled separately"),
        };

        let n = presence::count(mask);
        if n == 0 {
            self.grant(start + self.lat, req, out);
        } else {
            self.counters.add(self.c.recalls, n as u64);
            let line = self.array.line_mut(req.block).expect("hit");
            line.locked = true;
            self.txns.insert(
                req.block,
                Txn {
                    kind: TxnKind::Grant { req },
                    phase: Phase::RecallAcks,
                    pending_acks: n,
                    dirty_seen: false,
                    deferred: VecDeque::new(),
                },
            );
            for core in presence::iter(mask) {
                out.push(L3Out::Recall {
                    recall: Recall {
                        core,
                        block: req.block,
                        op,
                    },
                    at: start + self.lat,
                });
            }
        }
    }

    /// Updates directory state and emits the grant for a request whose
    /// recalls (if any) are complete. The line must be present.
    fn grant(&mut self, at: Cycle, req: L3Req, out: &mut Outbox<L3Out>) {
        let line = self.array.line_mut(req.block).expect("grant needs line");
        let grant = match req.kind {
            L3ReqKind::GetS => {
                if let Some(owner) = line.owner {
                    // Downgraded owner keeps a shared copy.
                    line.presence = presence::add(line.presence, owner);
                    line.owner = None;
                }
                if presence::count(line.presence) == 0 {
                    line.owner = Some(req.core);
                    line.presence = presence::add(0, req.core);
                    Grant::Exclusive
                } else {
                    line.presence = presence::add(line.presence, req.core);
                    Grant::Shared
                }
            }
            L3ReqKind::GetM => {
                line.presence = presence::add(0, req.core);
                line.owner = Some(req.core);
                Grant::Modified
            }
            L3ReqKind::PutS | L3ReqKind::PutM => unreachable!(),
        };
        line.locked = false;
        self.array.touch(req.block);
        out.push(L3Out::Resp {
            resp: L3Resp {
                id: req.id,
                core: req.core,
                block: req.block,
                grant,
            },
            at,
        });
    }

    fn on_miss(&mut self, start: Cycle, req: L3Req, out: &mut Outbox<L3Out>) {
        if self.txns.len() >= self.txn_cap {
            self.overflow.push_back(L3In::Req(req));
            return;
        }
        self.counters.inc(self.c.misses);
        let Some((way, victim_ref)) = self.array.victim_way(req.block) else {
            // Every way locked by in-flight transactions: retry later.
            self.overflow.push_back(L3In::Req(req));
            return;
        };
        let victim = victim_ref.cloned();
        match victim {
            Some(v) => {
                self.counters.inc(self.c.evictions);
                // Take the victim out and install a locked placeholder for
                // the incoming block so the way cannot be double-booked.
                self.array.take_way(req.block, way);
                let placeholder =
                    self.array
                        .install(req.block, way, crate::cache::LineState::Shared);
                placeholder.locked = true;

                let mut mask = v.presence;
                if let Some(owner) = v.owner {
                    mask = presence::add(mask, owner);
                }
                let n = presence::count(mask);
                if n == 0 {
                    // No private copies: write back if dirty, fetch now.
                    if v.dirty {
                        self.writeback(start + self.lat, v.block, out);
                    }
                    self.start_fetch(start, req, out);
                } else {
                    self.counters.add(self.c.recalls, n as u64);
                    let victim_block = v.block;
                    self.txns.insert(
                        req.block,
                        Txn {
                            kind: TxnKind::Fill {
                                req,
                                victim: Some(v),
                            },
                            phase: Phase::VictimAcks,
                            pending_acks: n,
                            dirty_seen: false,
                            deferred: VecDeque::new(),
                        },
                    );
                    for core in presence::iter(mask) {
                        out.push(L3Out::Recall {
                            recall: Recall {
                                core,
                                block: victim_block,
                                op: RecallOp::Invalidate,
                            },
                            at: start + self.lat,
                        });
                    }
                }
            }
            None => {
                let placeholder =
                    self.array
                        .install(req.block, way, crate::cache::LineState::Shared);
                placeholder.locked = true;
                self.start_fetch(start, req, out);
            }
        }
    }

    fn start_fetch(&mut self, start: Cycle, req: L3Req, out: &mut Outbox<L3Out>) {
        let id = self.fetch_id();
        self.txns.insert(
            req.block,
            Txn {
                kind: TxnKind::Fill { req, victim: None },
                phase: Phase::Mem,
                pending_acks: 0,
                dirty_seen: false,
                deferred: VecDeque::new(),
            },
        );
        out.push(L3Out::Fetch {
            fetch: MemFetch {
                id,
                block: req.block,
                write: false,
            },
            at: start + self.lat,
        });
    }

    fn writeback(&mut self, at: Cycle, block: BlockAddr, out: &mut Outbox<L3Out>) {
        self.counters.inc(self.c.writebacks);
        let id = self.fetch_id();
        out.push(L3Out::Fetch {
            fetch: MemFetch {
                id,
                block,
                write: true,
            },
            at,
        });
    }

    fn on_flush(&mut self, now: Cycle, flush: PimFlush, out: &mut Outbox<L3Out>) {
        if let Some(txn) = self.txns.get_mut(&flush.block) {
            txn.deferred.push_back(L3In::Flush(flush));
            return;
        }
        let start = self.port.reserve(now, 1);
        self.counters.inc(self.c.flushes);
        let Some(line) = self.array.line(flush.block) else {
            // Inclusive hierarchy: absent from L3 means absent everywhere.
            out.push(L3Out::FlushDone {
                done: PimFlushDone {
                    id: flush.id,
                    block: flush.block,
                },
                at: start + self.lat,
            });
            return;
        };
        let mut mask = line.presence;
        if let Some(owner) = line.owner {
            mask = presence::add(mask, owner);
        }
        let n = presence::count(mask);
        let op = if flush.invalidate {
            RecallOp::Invalidate
        } else {
            RecallOp::Downgrade
        };
        if n == 0 {
            self.finish_flush(
                start + self.lat,
                flush.id,
                flush.block,
                flush.invalidate,
                false,
                out,
            );
        } else {
            self.counters.add(self.c.recalls, n as u64);
            let line = self.array.line_mut(flush.block).expect("present");
            line.locked = true;
            self.txns.insert(
                flush.block,
                Txn {
                    kind: TxnKind::Flush {
                        id: flush.id,
                        invalidate: flush.invalidate,
                    },
                    phase: Phase::RecallAcks,
                    pending_acks: n,
                    dirty_seen: false,
                    deferred: VecDeque::new(),
                },
            );
            for core in presence::iter(mask) {
                out.push(L3Out::Recall {
                    recall: Recall {
                        core,
                        block: flush.block,
                        op,
                    },
                    at: start + self.lat,
                });
            }
        }
    }

    fn finish_flush(
        &mut self,
        at: Cycle,
        id: ReqId,
        block: BlockAddr,
        invalidate: bool,
        dirty_seen: bool,
        out: &mut Outbox<L3Out>,
    ) {
        let dirty = {
            let line = self.array.line_mut(block).expect("flush line present");
            let d = line.dirty || dirty_seen;
            line.dirty = false;
            line.locked = false;
            if invalidate {
                line.presence = 0;
                line.owner = None;
            }
            d
        };
        if dirty {
            self.writeback(at, block, out);
        }
        if invalidate {
            self.array.invalidate(block);
        }
        out.push(L3Out::FlushDone {
            done: PimFlushDone { id, block },
            at,
        });
    }

    fn on_ack(&mut self, now: Cycle, ack: RecallAck, out: &mut Outbox<L3Out>) {
        // Fill-transaction recalls target the *victim* block, so look up by
        // either the transaction key (grant/flush) or the victim address.
        let key = if self.txns.contains_key(&ack.block) {
            ack.block
        } else {
            match self.txns.iter().find(|(_, t)| {
                matches!(&t.kind, TxnKind::Fill { victim: Some(v), .. } if v.block == ack.block)
            }) {
                Some((k, _)) => *k,
                None => return, // stale ack after a raced eviction
            }
        };
        let txn = self.txns.get_mut(&key).expect("just found");
        txn.dirty_seen |= ack.dirty;
        txn.pending_acks = txn.pending_acks.saturating_sub(1);
        if txn.pending_acks > 0 {
            return;
        }
        let txn = self.txns.remove(&key).expect("present");
        let at = now + self.lat;
        match txn.kind {
            TxnKind::Grant { req } => {
                {
                    let line = self.array.line_mut(req.block).expect("granting");
                    line.dirty |= txn.dirty_seen;
                    // Invalidated/downgraded copies no longer hold the line
                    // exclusively; directory updates happen in grant().
                    if req.kind == L3ReqKind::GetM {
                        line.presence = 0;
                        line.owner = None;
                    }
                }
                self.grant(at, req, out);
            }
            TxnKind::Fill { req, victim } => {
                let v = victim.expect("victim-phase fill has a victim");
                if v.dirty || txn.dirty_seen {
                    self.writeback(at, v.block, out);
                }
                self.start_fetch(now, req, out);
                // Preserve the deferred queue across the phase change.
                if let Some(new_txn) = self.txns.get_mut(&req.block) {
                    new_txn.deferred = txn.deferred;
                }
                return; // fill continues; don't drain deferred yet
            }
            TxnKind::Flush { id, invalidate } => {
                self.finish_flush(at, id, key, invalidate, txn.dirty_seen, out);
            }
        }
        self.drain_deferred(now, txn.deferred, out);
    }

    fn on_fetch_done(&mut self, now: Cycle, done: MemFetchDone, out: &mut Outbox<L3Out>) {
        let Some(txn) = self.txns.remove(&done.block) else {
            return; // writeback completions carry no transaction
        };
        debug_assert_eq!(txn.phase, Phase::Mem);
        let TxnKind::Fill { req, .. } = txn.kind else {
            panic!("fetch completion for non-fill transaction");
        };
        self.grant(now + self.lat, req, out);
        self.drain_deferred(now, txn.deferred, out);
    }

    fn drain_deferred(&mut self, now: Cycle, deferred: VecDeque<L3In>, out: &mut Outbox<L3Out>) {
        for item in deferred {
            self.handle(now, item, out);
        }
        // Transaction slots freed: retry overflowed requests once each.
        // The overflow queue is swapped with a reusable scratch so that
        // requests re-overflowing mid-retry land in a fresh `overflow`
        // without invalidating this iteration — and without allocating
        // (the two buffers' capacities just trade places each time).
        let mut retry = std::mem::take(&mut self.retry_scratch);
        std::mem::swap(&mut retry, &mut self.overflow);
        while let Some(item) = retry.pop_front() {
            self.handle(now, item, out);
        }
        self.retry_scratch = retry;
    }

    /// Whether the bank has no in-flight transactions (test helper).
    pub fn is_quiescent(&self) -> bool {
        self.txns.is_empty() && self.overflow.is_empty()
    }

    /// Directory view of a block (test helper): `(present, sharers, owner)`.
    pub fn dir_state(&self, block: BlockAddr) -> (bool, u32, Option<pei_types::CoreId>) {
        match self.array.line(block) {
            Some(l) => (true, presence::count(l.presence), l.owner),
            None => (false, 0, None),
        }
    }

    /// Total GetS/GetM accesses observed (locality-monitor shadowing and
    /// statistics).
    pub fn accesses(&self) -> u64 {
        self.counters.get(self.c.accesses)
    }

    /// Whether the bank holds `block` (no LRU side effects); locked
    /// fill placeholders count as held.
    pub fn holds(&self, block: BlockAddr) -> bool {
        self.array.line(block).is_some()
    }

    /// Number of in-flight transactions plus deferred overflow inputs
    /// (occupancy reporting for failure diagnostics).
    pub fn inflight(&self) -> usize {
        self.txns.len() + self.overflow.len()
    }

    /// Blocks with an active transaction, paired with the fill victim's
    /// block when one is mid-recall. Invariant sweeps use this to excuse
    /// lines that are legitimately in transition: a private copy of a
    /// fill victim may outlive the L3 line until its recall ack lands.
    pub fn txn_blocks(&self) -> impl Iterator<Item = (BlockAddr, Option<BlockAddr>)> + '_ {
        self.txns.iter().map(|(b, t)| {
            let victim = match &t.kind {
                TxnKind::Fill {
                    victim: Some(v), ..
                } => Some(v.block),
                _ => None,
            };
            (*b, victim)
        })
    }

    /// Fault hook: silently drops the bank's line for `block` — no
    /// recalls, no writeback — leaving any private copies orphaned (an
    /// inclusivity violation for checker validation). Returns whether a
    /// line was present to drop.
    pub fn fault_orphan_line(&mut self, block: BlockAddr) -> bool {
        self.array.invalidate(block).is_some()
    }

    /// Labels the current counter values as the end of phase `label`
    /// (see `Counters::snapshot`).
    pub fn snapshot_phase(&mut self, label: &'static str) {
        self.counters.snapshot(label);
    }

    /// Dumps statistics under `prefix`.
    pub fn report(&self, prefix: &str, stats: &mut StatsReport) {
        // `accesses` was historically not part of the report (it feeds
        // the energy model via `accesses()`), so flush the named subset.
        self.counters
            .flush_if(prefix, stats, |name| name != "accesses");
    }
}

impl pei_types::snap::SnapshotState for L3Bank {
    /// Transactions travel sorted by block; `retry_scratch` is a reusable
    /// buffer that is empty between events and does not travel.
    fn save(&self, e: &mut pei_types::snap::Encoder) {
        use pei_types::snap::Encoder;
        debug_assert!(self.retry_scratch.is_empty(), "snapshot mid-dispatch");
        self.array.save(e);
        let mut blocks: Vec<BlockAddr> = self.txns.keys().copied().collect();
        blocks.sort_unstable_by_key(|b| b.0);
        e.seq(blocks.len());
        let save_txn = |e: &mut Encoder, txn: &Txn| {
            match &txn.kind {
                TxnKind::Grant { req } => {
                    e.u8(0);
                    req.encode(e);
                }
                TxnKind::Fill { req, victim } => {
                    e.u8(1);
                    req.encode(e);
                    match victim {
                        None => e.bool(false),
                        Some(v) => {
                            e.bool(true);
                            v.encode(e);
                        }
                    }
                }
                TxnKind::Flush { id, invalidate } => {
                    e.u8(2);
                    e.u64(id.0);
                    e.bool(*invalidate);
                }
            }
            e.u8(match txn.phase {
                Phase::VictimAcks => 0,
                Phase::Mem => 1,
                Phase::RecallAcks => 2,
            });
            e.u32(txn.pending_acks);
            e.bool(txn.dirty_seen);
            e.seq(txn.deferred.len());
            for item in &txn.deferred {
                item.encode(e);
            }
        };
        for b in blocks {
            e.u64(b.0);
            save_txn(e, &self.txns[&b]);
        }
        e.seq(self.overflow.len());
        for item in &self.overflow {
            item.encode(e);
        }
        self.port.save(e);
        e.u64(self.next_fetch);
        self.counters.save(e);
    }

    fn load(&mut self, d: &mut pei_types::snap::Decoder<'_>) -> pei_types::snap::SnapResult<()> {
        self.array.load(d)?;
        let n = d.seq(20)?;
        if n > self.txn_cap {
            return Err(d.bad(format!(
                "{n} L3 transactions but capacity is {}",
                self.txn_cap
            )));
        }
        self.txns.clear();
        for _ in 0..n {
            let block = BlockAddr(d.u64()?);
            let at = d.offset();
            let kind = match d.u8()? {
                0 => TxnKind::Grant {
                    req: L3Req::decode(d)?,
                },
                1 => TxnKind::Fill {
                    req: L3Req::decode(d)?,
                    victim: if d.bool()? {
                        Some(Line::decode(d)?)
                    } else {
                        None
                    },
                },
                2 => TxnKind::Flush {
                    id: ReqId(d.u64()?),
                    invalidate: d.bool()?,
                },
                t => {
                    return Err(pei_types::snap::SnapError::BadTag {
                        offset: at,
                        found: t,
                        what: "L3 transaction kind",
                    })
                }
            };
            let at = d.offset();
            let phase = match d.u8()? {
                0 => Phase::VictimAcks,
                1 => Phase::Mem,
                2 => Phase::RecallAcks,
                t => {
                    return Err(pei_types::snap::SnapError::BadTag {
                        offset: at,
                        found: t,
                        what: "L3 transaction phase",
                    })
                }
            };
            let pending_acks = d.u32()?;
            let dirty_seen = d.bool()?;
            let deferred_n = d.seq(2)?;
            let mut deferred = VecDeque::with_capacity(deferred_n);
            for _ in 0..deferred_n {
                deferred.push_back(L3In::decode(d)?);
            }
            self.txns.insert(
                block,
                Txn {
                    kind,
                    phase,
                    pending_acks,
                    dirty_seen,
                    deferred,
                },
            );
        }
        let overflow_n = d.seq(2)?;
        self.overflow.clear();
        for _ in 0..overflow_n {
            self.overflow.push_back(L3In::decode(d)?);
        }
        self.port.load(d)?;
        self.next_fetch = d.u64()?;
        self.counters.load(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pei_types::CoreId;

    fn bank() -> L3Bank {
        L3Bank::new(L3BankId(0), &MemHierarchyConfig::scaled())
    }

    fn gets(id: u64, core: u16, block: u64) -> L3In {
        L3In::Req(L3Req {
            id: ReqId(id),
            core: CoreId(core),
            block: BlockAddr(block),
            kind: L3ReqKind::GetS,
        })
    }

    fn getm(id: u64, core: u16, block: u64) -> L3In {
        L3In::Req(L3Req {
            id: ReqId(id),
            core: CoreId(core),
            block: BlockAddr(block),
            kind: L3ReqKind::GetM,
        })
    }

    fn fetch_done_for(out: &[L3Out]) -> MemFetchDone {
        out.iter()
            .find_map(|o| match o {
                L3Out::Fetch { fetch, .. } if !fetch.write => Some(MemFetchDone {
                    id: fetch.id,
                    block: fetch.block,
                }),
                _ => None,
            })
            .expect("a read fetch was issued")
    }

    /// Runs a request through the miss path to a settled grant.
    fn warm(bank: &mut L3Bank, input: L3In) -> Outbox<L3Out> {
        let mut out = Outbox::new();
        bank.handle(0, input, &mut out);
        if out
            .iter()
            .any(|o| matches!(o, L3Out::Fetch { fetch, .. } if !fetch.write))
        {
            let done = fetch_done_for(&out);
            out.clear();
            bank.handle(100, L3In::FetchDone(done), &mut out);
        }
        out
    }

    #[test]
    fn cold_miss_fetches_then_grants_exclusive() {
        let mut b = bank();
        let mut out = Outbox::new();
        b.handle(0, gets(1, 0, 4), &mut out);
        assert!(matches!(out[0], L3Out::Fetch { .. }));
        let done = fetch_done_for(&out);
        out.clear();
        b.handle(50, L3In::FetchDone(done), &mut out);
        match out[0] {
            L3Out::Resp { resp, .. } => {
                assert_eq!(resp.grant, Grant::Exclusive);
                assert_eq!(resp.core, CoreId(0));
            }
            ref o => panic!("expected grant, got {o:?}"),
        }
        assert_eq!(b.dir_state(BlockAddr(4)), (true, 1, Some(CoreId(0))));
        assert!(b.is_quiescent());
    }

    #[test]
    fn second_reader_downgrades_owner() {
        let mut b = bank();
        warm(&mut b, gets(1, 0, 4));
        let mut out = Outbox::new();
        b.handle(200, gets(2, 1, 4), &mut out);
        // Owner (core 0) gets a downgrade recall.
        match out[0] {
            L3Out::Recall { recall, .. } => {
                assert_eq!(recall.core, CoreId(0));
                assert_eq!(recall.op, RecallOp::Downgrade);
            }
            ref o => panic!("expected recall, got {o:?}"),
        }
        out.clear();
        b.handle(
            220,
            L3In::Ack(RecallAck {
                core: CoreId(0),
                block: BlockAddr(4),
                dirty: true,
                was_present: true,
            }),
            &mut out,
        );
        match out[0] {
            L3Out::Resp { resp, .. } => assert_eq!(resp.grant, Grant::Shared),
            ref o => panic!("expected grant, got {o:?}"),
        }
        // Both cores now share; no owner.
        assert_eq!(b.dir_state(BlockAddr(4)), (true, 2, None));
    }

    #[test]
    fn writer_invalidates_all_sharers() {
        let mut b = bank();
        warm(&mut b, gets(1, 0, 4));
        // Second reader: downgrade owner, then grant.
        let mut out = Outbox::new();
        b.handle(200, gets(2, 1, 4), &mut out);
        b.handle(
            210,
            L3In::Ack(RecallAck {
                core: CoreId(0),
                block: BlockAddr(4),
                dirty: false,
                was_present: true,
            }),
            &mut out,
        );
        out.clear();
        // Core 2 writes: both sharers recalled.
        b.handle(300, getm(3, 2, 4), &mut out);
        let recalls: Vec<_> = out
            .iter()
            .filter_map(|o| match o {
                L3Out::Recall { recall, .. } => Some(recall.core),
                _ => None,
            })
            .collect();
        assert_eq!(recalls.len(), 2);
        out.clear();
        for core in [0u16, 1] {
            b.handle(
                320,
                L3In::Ack(RecallAck {
                    core: CoreId(core),
                    block: BlockAddr(4),
                    dirty: false,
                    was_present: true,
                }),
                &mut out,
            );
        }
        match out[0] {
            L3Out::Resp { resp, .. } => {
                assert_eq!(resp.grant, Grant::Modified);
                assert_eq!(resp.core, CoreId(2));
            }
            ref o => panic!("expected modified grant, got {o:?}"),
        }
        assert_eq!(b.dir_state(BlockAddr(4)), (true, 1, Some(CoreId(2))));
    }

    #[test]
    fn same_block_requests_serialize() {
        let mut b = bank();
        let mut out = Outbox::new();
        b.handle(0, gets(1, 0, 4), &mut out);
        let done = fetch_done_for(&out);
        // Second request arrives mid-fill: must be deferred, not re-fetched.
        let n_before = out.len();
        b.handle(10, gets(2, 1, 4), &mut out);
        assert_eq!(out.len(), n_before, "deferred request must emit nothing");
        out.clear();
        b.handle(100, L3In::FetchDone(done), &mut out);
        // First grant (Exclusive to core 0), then the deferred request runs:
        // it recalls core 0 with a downgrade.
        assert!(out
            .iter()
            .any(|o| matches!(o, L3Out::Resp { resp, .. } if resp.core == CoreId(0))));
        assert!(out
            .iter()
            .any(|o| matches!(o, L3Out::Recall { recall, .. } if recall.core == CoreId(0))));
    }

    #[test]
    fn put_m_marks_dirty_and_clears_presence() {
        let mut b = bank();
        warm(&mut b, getm(1, 0, 4));
        let mut out = Outbox::new();
        b.handle(
            200,
            L3In::Req(L3Req {
                id: ReqId(0),
                core: CoreId(0),
                block: BlockAddr(4),
                kind: L3ReqKind::PutM,
            }),
            &mut out,
        );
        assert!(out.is_empty(), "puts have no response");
        assert_eq!(b.dir_state(BlockAddr(4)), (true, 0, None));
    }

    #[test]
    fn flush_absent_block_completes_immediately() {
        let mut b = bank();
        let mut out = Outbox::new();
        b.handle(
            0,
            L3In::Flush(PimFlush {
                id: ReqId(9),
                block: BlockAddr(77),
                invalidate: true,
            }),
            &mut out,
        );
        assert!(matches!(
            out[0],
            L3Out::FlushDone {
                done: PimFlushDone { id: ReqId(9), .. },
                ..
            }
        ));
    }

    #[test]
    fn flush_invalidate_recalls_owner_and_writes_back() {
        let mut b = bank();
        warm(&mut b, getm(1, 0, 4));
        let mut out = Outbox::new();
        b.handle(
            200,
            L3In::Flush(PimFlush {
                id: ReqId(9),
                block: BlockAddr(4),
                invalidate: true,
            }),
            &mut out,
        );
        assert!(matches!(out[0], L3Out::Recall { recall, .. }
                if recall.op == RecallOp::Invalidate && recall.core == CoreId(0)));
        out.clear();
        b.handle(
            220,
            L3In::Ack(RecallAck {
                core: CoreId(0),
                block: BlockAddr(4),
                dirty: true,
                was_present: true,
            }),
            &mut out,
        );
        // Dirty data flushed to memory, line gone, flush complete.
        assert!(out
            .iter()
            .any(|o| matches!(o, L3Out::Fetch { fetch, .. } if fetch.write)));
        assert!(out.iter().any(|o| matches!(o, L3Out::FlushDone { .. })));
        assert!(!b.dir_state(BlockAddr(4)).0);
    }

    #[test]
    fn flush_writeback_keeps_clean_copies() {
        let mut b = bank();
        warm(&mut b, getm(1, 0, 4));
        let mut out = Outbox::new();
        b.handle(
            200,
            L3In::Flush(PimFlush {
                id: ReqId(9),
                block: BlockAddr(4),
                invalidate: false,
            }),
            &mut out,
        );
        assert!(matches!(out[0], L3Out::Recall { recall, .. }
                if recall.op == RecallOp::Downgrade));
        out.clear();
        b.handle(
            220,
            L3In::Ack(RecallAck {
                core: CoreId(0),
                block: BlockAddr(4),
                dirty: true,
                was_present: true,
            }),
            &mut out,
        );
        assert!(out
            .iter()
            .any(|o| matches!(o, L3Out::Fetch { fetch, .. } if fetch.write)));
        // Line stays, core keeps a (now shared, clean) copy.
        let (present, sharers, _) = b.dir_state(BlockAddr(4));
        assert!(present);
        assert_eq!(sharers, 1);
    }

    #[test]
    fn inclusive_eviction_back_invalidates() {
        // Single-set bank so two blocks conflict.
        let cfg = MemHierarchyConfig {
            l3: crate::CacheConfig::new(64 * 2, 2, 20), // 1 set x 2 ways... capacity 128B
            l3_banks: 1,
            ..MemHierarchyConfig::scaled()
        };
        let mut b = L3Bank::new(L3BankId(0), &cfg);
        warm(&mut b, gets(1, 0, 0));
        warm(&mut b, gets(2, 0, 1));
        // Third block forces eviction of LRU block 0, held by core 0.
        let mut out = Outbox::new();
        b.handle(500, gets(3, 1, 2), &mut out);
        assert!(
            out.iter().any(|o| matches!(o, L3Out::Recall { recall, .. }
                if recall.block == BlockAddr(0) && recall.op == RecallOp::Invalidate)),
            "inclusive eviction must back-invalidate: {out:?}"
        );
        out.clear();
        b.handle(
            520,
            L3In::Ack(RecallAck {
                core: CoreId(0),
                block: BlockAddr(0),
                dirty: true,
                was_present: true,
            }),
            &mut out,
        );
        // Victim written back dirty, then fetch for the new block proceeds.
        assert!(out
            .iter()
            .any(|o| matches!(o, L3Out::Fetch { fetch, .. } if fetch.write && fetch.block == BlockAddr(0))));
        let done = fetch_done_for(&out);
        out.clear();
        b.handle(600, L3In::FetchDone(done), &mut out);
        assert!(out
            .iter()
            .any(|o| matches!(o, L3Out::Resp { resp, .. } if resp.block == BlockAddr(2))));
        assert!(b.is_quiescent());
    }

    #[test]
    fn stats_reported() {
        let mut b = bank();
        warm(&mut b, gets(1, 0, 4));
        let mut s = StatsReport::new();
        b.report("l3.", &mut s);
        assert_eq!(s.get("l3.misses"), Some(1.0));
    }
}
