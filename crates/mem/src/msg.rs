//! Message vocabulary of the on-chip coherence protocol.
//!
//! The protocol is a directory MESI with the L3 as the ordering point:
//! private caches send [`L3Req`]s, the L3 answers with [`L3Resp`] grants and
//! may interpose [`Recall`]s (invalidations or downgrades) to other private
//! caches. The PMU uses [`PimFlush`] to implement the paper's
//! back-invalidation / back-writeback before offloading a PEI to memory
//! (§4.3, "Cache Coherence Management").

use pei_types::{Addr, BlockAddr, CoreId, ReqId};

/// Request kinds a private cache can send to the L3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L3ReqKind {
    /// Read with shared permission.
    GetS,
    /// Read with exclusive (write) permission.
    GetM,
    /// Clean-victim notice: remove requester from the sharer set.
    PutS,
    /// Dirty-victim writeback: remove requester, mark the L3 copy dirty.
    PutM,
}

impl L3ReqKind {
    /// Whether this request expects a response.
    pub fn expects_response(self) -> bool {
        matches!(self, L3ReqKind::GetS | L3ReqKind::GetM)
    }
}

/// A request from a private cache to an L3 bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L3Req {
    /// Transaction id, unique per requesting core.
    pub id: ReqId,
    /// The requesting core.
    pub core: CoreId,
    /// Target block.
    pub block: BlockAddr,
    /// What is being asked.
    pub kind: L3ReqKind,
}

/// Permission granted by an [`L3Resp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grant {
    /// Read-only copy; other sharers may exist.
    Shared,
    /// Sole clean copy; silently upgradable to Modified.
    Exclusive,
    /// Writable copy.
    Modified,
}

/// The L3's answer to a `GetS`/`GetM`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L3Resp {
    /// Echo of the request id.
    pub id: ReqId,
    /// The core being answered.
    pub core: CoreId,
    /// The block granted.
    pub block: BlockAddr,
    /// Permission level granted.
    pub grant: Grant,
}

/// What a [`Recall`] asks the private cache to do with its copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecallOp {
    /// Drop the copy entirely (used before exclusive grants, inclusive-L3
    /// evictions, and back-invalidation for writer PEIs).
    Invalidate,
    /// Keep a Shared copy but surrender exclusivity/dirtiness (used before
    /// shared grants and back-writeback for reader PEIs).
    Downgrade,
}

/// An L3-initiated coherence action against one private cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recall {
    /// The private cache being recalled.
    pub core: CoreId,
    /// The block concerned.
    pub block: BlockAddr,
    /// Invalidate or downgrade.
    pub op: RecallOp,
}

/// The private cache's answer to a [`Recall`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecallAck {
    /// The acknowledging core.
    pub core: CoreId,
    /// The block concerned.
    pub block: BlockAddr,
    /// Whether the surrendered copy was dirty (its data logically flows to
    /// the L3 / memory with this ack).
    pub dirty: bool,
    /// Whether the core actually still held the block (false if a victim
    /// eviction raced with the recall).
    pub was_present: bool,
}

/// A request from a core (or its host-side PCU) to its private cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreReq {
    /// Transaction id, unique per core.
    pub id: ReqId,
    /// Byte address accessed (the cache operates on its block).
    pub addr: Addr,
    /// Whether the access needs write permission.
    pub write: bool,
}

/// The PMU's cache-management request before offloading a PEI to memory:
/// back-invalidation (writer PEIs) or back-writeback (reader PEIs) of the
/// single target block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PimFlush {
    /// Transaction id, unique per PMU.
    pub id: ReqId,
    /// The PEI's target block.
    pub block: BlockAddr,
    /// `true` = back-invalidate (drop all copies, flush dirty data);
    /// `false` = back-writeback (flush dirty data, clean copies may stay).
    pub invalidate: bool,
}

/// Completion notice for a [`PimFlush`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PimFlushDone {
    /// Echo of the flush id.
    pub id: ReqId,
    /// The block flushed.
    pub block: BlockAddr,
}

/// A block fetch or writeback crossing the L3 ↔ main-memory boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFetch {
    /// Transaction id, unique per L3 bank.
    pub id: ReqId,
    /// The block to fetch or write back.
    pub block: BlockAddr,
    /// `true` for a writeback (no response expected).
    pub write: bool,
}

/// Response to a (read) [`MemFetch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFetchDone {
    /// Echo of the fetch id.
    pub id: ReqId,
    /// The block fetched.
    pub block: BlockAddr,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_gets_expect_responses() {
        assert!(L3ReqKind::GetS.expects_response());
        assert!(L3ReqKind::GetM.expects_response());
        assert!(!L3ReqKind::PutS.expects_response());
        assert!(!L3ReqKind::PutM.expects_response());
    }
}
