//! Message vocabulary of the on-chip coherence protocol.
//!
//! The protocol is a directory MESI with the L3 as the ordering point:
//! private caches send [`L3Req`]s, the L3 answers with [`L3Resp`] grants and
//! may interpose [`Recall`]s (invalidations or downgrades) to other private
//! caches. The PMU uses [`PimFlush`] to implement the paper's
//! back-invalidation / back-writeback before offloading a PEI to memory
//! (§4.3, "Cache Coherence Management").

use pei_types::{Addr, BlockAddr, CoreId, ReqId};

/// Request kinds a private cache can send to the L3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L3ReqKind {
    /// Read with shared permission.
    GetS,
    /// Read with exclusive (write) permission.
    GetM,
    /// Clean-victim notice: remove requester from the sharer set.
    PutS,
    /// Dirty-victim writeback: remove requester, mark the L3 copy dirty.
    PutM,
}

impl L3ReqKind {
    /// Whether this request expects a response.
    pub fn expects_response(self) -> bool {
        matches!(self, L3ReqKind::GetS | L3ReqKind::GetM)
    }
}

/// A request from a private cache to an L3 bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L3Req {
    /// Transaction id, unique per requesting core.
    pub id: ReqId,
    /// The requesting core.
    pub core: CoreId,
    /// Target block.
    pub block: BlockAddr,
    /// What is being asked.
    pub kind: L3ReqKind,
}

/// Permission granted by an [`L3Resp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grant {
    /// Read-only copy; other sharers may exist.
    Shared,
    /// Sole clean copy; silently upgradable to Modified.
    Exclusive,
    /// Writable copy.
    Modified,
}

/// The L3's answer to a `GetS`/`GetM`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L3Resp {
    /// Echo of the request id.
    pub id: ReqId,
    /// The core being answered.
    pub core: CoreId,
    /// The block granted.
    pub block: BlockAddr,
    /// Permission level granted.
    pub grant: Grant,
}

/// What a [`Recall`] asks the private cache to do with its copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecallOp {
    /// Drop the copy entirely (used before exclusive grants, inclusive-L3
    /// evictions, and back-invalidation for writer PEIs).
    Invalidate,
    /// Keep a Shared copy but surrender exclusivity/dirtiness (used before
    /// shared grants and back-writeback for reader PEIs).
    Downgrade,
}

/// An L3-initiated coherence action against one private cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recall {
    /// The private cache being recalled.
    pub core: CoreId,
    /// The block concerned.
    pub block: BlockAddr,
    /// Invalidate or downgrade.
    pub op: RecallOp,
}

/// The private cache's answer to a [`Recall`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecallAck {
    /// The acknowledging core.
    pub core: CoreId,
    /// The block concerned.
    pub block: BlockAddr,
    /// Whether the surrendered copy was dirty (its data logically flows to
    /// the L3 / memory with this ack).
    pub dirty: bool,
    /// Whether the core actually still held the block (false if a victim
    /// eviction raced with the recall).
    pub was_present: bool,
}

/// A request from a core (or its host-side PCU) to its private cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreReq {
    /// Transaction id, unique per core.
    pub id: ReqId,
    /// Byte address accessed (the cache operates on its block).
    pub addr: Addr,
    /// Whether the access needs write permission.
    pub write: bool,
}

/// The PMU's cache-management request before offloading a PEI to memory:
/// back-invalidation (writer PEIs) or back-writeback (reader PEIs) of the
/// single target block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PimFlush {
    /// Transaction id, unique per PMU.
    pub id: ReqId,
    /// The PEI's target block.
    pub block: BlockAddr,
    /// `true` = back-invalidate (drop all copies, flush dirty data);
    /// `false` = back-writeback (flush dirty data, clean copies may stay).
    pub invalidate: bool,
}

/// Completion notice for a [`PimFlush`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PimFlushDone {
    /// Echo of the flush id.
    pub id: ReqId,
    /// The block flushed.
    pub block: BlockAddr,
}

/// A block fetch or writeback crossing the L3 ↔ main-memory boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFetch {
    /// Transaction id, unique per L3 bank.
    pub id: ReqId,
    /// The block to fetch or write back.
    pub block: BlockAddr,
    /// `true` for a writeback (no response expected).
    pub write: bool,
}

/// Response to a (read) [`MemFetch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFetchDone {
    /// Echo of the fetch id.
    pub id: ReqId,
    /// The block fetched.
    pub block: BlockAddr,
}

mod snapio {
    //! Snapshot codecs for the protocol vocabulary: every message can sit
    //! in a queue (bank deferral, overflow, the event queue itself) when a
    //! snapshot is taken, so each gets a fixed-layout encode/decode pair.

    use super::*;
    use pei_types::snap::{Decoder, Encoder, SnapError, SnapResult};

    impl L3ReqKind {
        /// Appends the kind as a one-byte tag.
        pub fn encode(self, e: &mut Encoder) {
            e.u8(match self {
                L3ReqKind::GetS => 0,
                L3ReqKind::GetM => 1,
                L3ReqKind::PutS => 2,
                L3ReqKind::PutM => 3,
            });
        }

        /// Inverse of [`encode`](Self::encode).
        ///
        /// # Errors
        ///
        /// Fails on truncation or an unknown tag.
        pub fn decode(d: &mut Decoder<'_>) -> SnapResult<Self> {
            let at = d.offset();
            Ok(match d.u8()? {
                0 => L3ReqKind::GetS,
                1 => L3ReqKind::GetM,
                2 => L3ReqKind::PutS,
                3 => L3ReqKind::PutM,
                t => {
                    return Err(SnapError::BadTag {
                        offset: at,
                        found: t,
                        what: "L3 request kind",
                    })
                }
            })
        }
    }

    impl Grant {
        /// Appends the grant as a one-byte tag.
        pub fn encode(self, e: &mut Encoder) {
            e.u8(match self {
                Grant::Shared => 0,
                Grant::Exclusive => 1,
                Grant::Modified => 2,
            });
        }

        /// Inverse of [`encode`](Self::encode).
        ///
        /// # Errors
        ///
        /// Fails on truncation or an unknown tag.
        pub fn decode(d: &mut Decoder<'_>) -> SnapResult<Self> {
            let at = d.offset();
            Ok(match d.u8()? {
                0 => Grant::Shared,
                1 => Grant::Exclusive,
                2 => Grant::Modified,
                t => {
                    return Err(SnapError::BadTag {
                        offset: at,
                        found: t,
                        what: "grant",
                    })
                }
            })
        }
    }

    impl RecallOp {
        /// Appends the op as a one-byte tag.
        pub fn encode(self, e: &mut Encoder) {
            e.u8(match self {
                RecallOp::Invalidate => 0,
                RecallOp::Downgrade => 1,
            });
        }

        /// Inverse of [`encode`](Self::encode).
        ///
        /// # Errors
        ///
        /// Fails on truncation or an unknown tag.
        pub fn decode(d: &mut Decoder<'_>) -> SnapResult<Self> {
            let at = d.offset();
            Ok(match d.u8()? {
                0 => RecallOp::Invalidate,
                1 => RecallOp::Downgrade,
                t => {
                    return Err(SnapError::BadTag {
                        offset: at,
                        found: t,
                        what: "recall op",
                    })
                }
            })
        }
    }

    impl L3Req {
        /// Appends the request to a snapshot stream.
        pub fn encode(&self, e: &mut Encoder) {
            e.u64(self.id.0);
            e.u16(self.core.0);
            e.u64(self.block.0);
            self.kind.encode(e);
        }

        /// Inverse of [`encode`](Self::encode).
        ///
        /// # Errors
        ///
        /// Fails on truncation or an unknown kind tag.
        pub fn decode(d: &mut Decoder<'_>) -> SnapResult<Self> {
            Ok(L3Req {
                id: ReqId(d.u64()?),
                core: CoreId(d.u16()?),
                block: BlockAddr(d.u64()?),
                kind: L3ReqKind::decode(d)?,
            })
        }
    }

    impl L3Resp {
        /// Appends the response to a snapshot stream.
        pub fn encode(&self, e: &mut Encoder) {
            e.u64(self.id.0);
            e.u16(self.core.0);
            e.u64(self.block.0);
            self.grant.encode(e);
        }

        /// Inverse of [`encode`](Self::encode).
        ///
        /// # Errors
        ///
        /// Fails on truncation or an unknown grant tag.
        pub fn decode(d: &mut Decoder<'_>) -> SnapResult<Self> {
            Ok(L3Resp {
                id: ReqId(d.u64()?),
                core: CoreId(d.u16()?),
                block: BlockAddr(d.u64()?),
                grant: Grant::decode(d)?,
            })
        }
    }

    impl Recall {
        /// Appends the recall to a snapshot stream.
        pub fn encode(&self, e: &mut Encoder) {
            e.u16(self.core.0);
            e.u64(self.block.0);
            self.op.encode(e);
        }

        /// Inverse of [`encode`](Self::encode).
        ///
        /// # Errors
        ///
        /// Fails on truncation or an unknown op tag.
        pub fn decode(d: &mut Decoder<'_>) -> SnapResult<Self> {
            Ok(Recall {
                core: CoreId(d.u16()?),
                block: BlockAddr(d.u64()?),
                op: RecallOp::decode(d)?,
            })
        }
    }

    impl RecallAck {
        /// Appends the ack to a snapshot stream.
        pub fn encode(&self, e: &mut Encoder) {
            e.u16(self.core.0);
            e.u64(self.block.0);
            e.bool(self.dirty);
            e.bool(self.was_present);
        }

        /// Inverse of [`encode`](Self::encode).
        ///
        /// # Errors
        ///
        /// Fails on truncation or a malformed boolean.
        pub fn decode(d: &mut Decoder<'_>) -> SnapResult<Self> {
            Ok(RecallAck {
                core: CoreId(d.u16()?),
                block: BlockAddr(d.u64()?),
                dirty: d.bool()?,
                was_present: d.bool()?,
            })
        }
    }

    impl CoreReq {
        /// Appends the request to a snapshot stream.
        pub fn encode(&self, e: &mut Encoder) {
            e.u64(self.id.0);
            e.u64(self.addr.0);
            e.bool(self.write);
        }

        /// Inverse of [`encode`](Self::encode).
        ///
        /// # Errors
        ///
        /// Fails on truncation or a malformed boolean.
        pub fn decode(d: &mut Decoder<'_>) -> SnapResult<Self> {
            Ok(CoreReq {
                id: ReqId(d.u64()?),
                addr: Addr(d.u64()?),
                write: d.bool()?,
            })
        }
    }

    impl PimFlush {
        /// Appends the flush request to a snapshot stream.
        pub fn encode(&self, e: &mut Encoder) {
            e.u64(self.id.0);
            e.u64(self.block.0);
            e.bool(self.invalidate);
        }

        /// Inverse of [`encode`](Self::encode).
        ///
        /// # Errors
        ///
        /// Fails on truncation or a malformed boolean.
        pub fn decode(d: &mut Decoder<'_>) -> SnapResult<Self> {
            Ok(PimFlush {
                id: ReqId(d.u64()?),
                block: BlockAddr(d.u64()?),
                invalidate: d.bool()?,
            })
        }
    }

    impl PimFlushDone {
        /// Appends the completion notice to a snapshot stream.
        pub fn encode(&self, e: &mut Encoder) {
            e.u64(self.id.0);
            e.u64(self.block.0);
        }

        /// Inverse of [`encode`](Self::encode).
        ///
        /// # Errors
        ///
        /// Fails on truncation.
        pub fn decode(d: &mut Decoder<'_>) -> SnapResult<Self> {
            Ok(PimFlushDone {
                id: ReqId(d.u64()?),
                block: BlockAddr(d.u64()?),
            })
        }
    }

    impl MemFetch {
        /// Appends the fetch to a snapshot stream.
        pub fn encode(&self, e: &mut Encoder) {
            e.u64(self.id.0);
            e.u64(self.block.0);
            e.bool(self.write);
        }

        /// Inverse of [`encode`](Self::encode).
        ///
        /// # Errors
        ///
        /// Fails on truncation or a malformed boolean.
        pub fn decode(d: &mut Decoder<'_>) -> SnapResult<Self> {
            Ok(MemFetch {
                id: ReqId(d.u64()?),
                block: BlockAddr(d.u64()?),
                write: d.bool()?,
            })
        }
    }

    impl MemFetchDone {
        /// Appends the completion to a snapshot stream.
        pub fn encode(&self, e: &mut Encoder) {
            e.u64(self.id.0);
            e.u64(self.block.0);
        }

        /// Inverse of [`encode`](Self::encode).
        ///
        /// # Errors
        ///
        /// Fails on truncation.
        pub fn decode(d: &mut Decoder<'_>) -> SnapResult<Self> {
            Ok(MemFetchDone {
                id: ReqId(d.u64()?),
                block: BlockAddr(d.u64()?),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_gets_expect_responses() {
        assert!(L3ReqKind::GetS.expects_response());
        assert!(L3ReqKind::GetM.expects_response());
        assert!(!L3ReqKind::PutS.expects_response());
        assert!(!L3ReqKind::PutM.expects_response());
    }
}
