//! Configuration of the on-chip memory hierarchy.

use pei_types::Cycle;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes (for the L3 this is the whole cache, across
    /// banks).
    pub capacity: usize,
    /// Associativity.
    pub ways: usize,
    /// Hit latency in host cycles.
    pub latency: Cycle,
}

impl CacheConfig {
    /// Creates a config after validating the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a power-of-two number of sets of
    /// 64-byte blocks at the given associativity.
    pub fn new(capacity: usize, ways: usize, latency: Cycle) -> Self {
        let blocks = capacity / pei_types::BLOCK_BYTES;
        assert!(
            blocks >= ways && blocks.is_multiple_of(ways),
            "bad cache geometry"
        );
        assert!(
            (blocks / ways).is_power_of_two(),
            "set count must be a power of two"
        );
        CacheConfig {
            capacity,
            ways,
            latency,
        }
    }

    /// Number of sets at 64-byte blocks.
    pub fn sets(&self) -> usize {
        self.capacity / pei_types::BLOCK_BYTES / self.ways
    }
}

/// Configuration of the full on-chip hierarchy (Table 2 defaults via
/// [`MemHierarchyConfig::paper`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemHierarchyConfig {
    /// Private L1 data cache.
    pub l1: CacheConfig,
    /// Private unified L2.
    pub l2: CacheConfig,
    /// Shared inclusive L3 (total capacity across banks).
    pub l3: CacheConfig,
    /// Number of L3 banks (block-interleaved on low block-address bits).
    pub l3_banks: usize,
    /// MSHRs per private cache.
    pub priv_mshrs: usize,
    /// MSHRs per L3 bank.
    pub l3_mshrs: usize,
    /// Crossbar propagation latency in host cycles.
    pub xbar_latency: Cycle,
    /// Crossbar per-source-port bandwidth in bytes per host cycle
    /// (144-bit links at 2 GHz under a 4 GHz host clock = 9 B/cycle).
    pub xbar_bytes_per_cycle: f64,
}

impl MemHierarchyConfig {
    /// The paper's Table 2 configuration: 32 KB 8-way L1D, 256 KB 8-way L2,
    /// 16 MB 16-way shared L3, 16 MSHRs private / 64 per L3 bank.
    pub fn paper() -> Self {
        MemHierarchyConfig {
            l1: CacheConfig::new(32 * 1024, 8, 3),
            l2: CacheConfig::new(256 * 1024, 8, 12),
            l3: CacheConfig::new(16 * 1024 * 1024, 16, 20),
            l3_banks: 16,
            priv_mshrs: 16,
            l3_mshrs: 64,
            xbar_latency: 8,
            xbar_bytes_per_cycle: 9.0,
        }
    }

    /// A proportionally scaled-down hierarchy for fast experiments:
    /// 16 KB L1, 64 KB L2, 1 MB L3 in 4 banks. Ratios between levels (and
    /// to the scaled workload footprints) match the paper configuration.
    pub fn scaled() -> Self {
        MemHierarchyConfig {
            l1: CacheConfig::new(16 * 1024, 8, 3),
            l2: CacheConfig::new(64 * 1024, 8, 12),
            l3: CacheConfig::new(1024 * 1024, 16, 20),
            l3_banks: 4,
            priv_mshrs: 16,
            l3_mshrs: 64,
            xbar_latency: 8,
            xbar_bytes_per_cycle: 9.0,
        }
    }

    /// Sets per L3 bank.
    pub fn l3_sets_per_bank(&self) -> usize {
        self.l3.sets() / self.l3_banks
    }

    /// Number of low block-address bits consumed by L3 bank selection.
    pub fn l3_bank_bits(&self) -> u32 {
        self.l3_banks.trailing_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_matches_table2() {
        let c = MemHierarchyConfig::paper();
        assert_eq!(c.l1.sets(), 64); // 32 KB / 64 B / 8
        assert_eq!(c.l2.sets(), 512);
        assert_eq!(c.l3.sets(), 16384); // §6.1: locality monitor has 16384 sets
        assert_eq!(c.l3.ways, 16);
        assert_eq!(c.l3_sets_per_bank(), 1024);
        assert_eq!(c.l3_bank_bits(), 4);
    }

    #[test]
    fn scaled_keeps_l3_dominant() {
        let c = MemHierarchyConfig::scaled();
        assert!(c.l3.capacity > 4 * c.l2.capacity);
        assert!(c.l2.capacity > c.l1.capacity);
        assert_eq!(c.l3.sets() % c.l3_banks, 0);
    }

    #[test]
    #[should_panic(expected = "bad cache geometry")]
    fn invalid_geometry_rejected() {
        CacheConfig::new(100, 8, 1);
    }
}
