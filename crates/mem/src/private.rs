//! The per-core private cache: an L1D backed by a private L2, presented as
//! one component.
//!
//! L1 and L2 are both private to one core, so their interaction (fills,
//! victim dirty-folding, upgrades) is internal and synchronous; only the
//! L2 ↔ L3 boundary generates protocol traffic. Coherence state is
//! authoritative at L2 granularity (the L1 is a strict subset maintained by
//! the same component), which is exactly the "L1 inclusive in L2" design
//! the paper's host-side PCU relies on when it shares the L1 with its core.

use crate::cache::{CacheArray, LineState};
use crate::config::MemHierarchyConfig;
use crate::msg::{CoreReq, L3Req, L3ReqKind, L3Resp, Recall, RecallAck, RecallOp};
use crate::mshr::MshrFile;
use crate::mshr::Waiter;
use pei_engine::{CounterId, Counters, Occupancy, Outbox, StatsReport};
use pei_types::{BlockAddr, CoreId, Cycle};
use std::collections::{BTreeSet, VecDeque};

/// Output messages of the private cache, each stamped with the absolute
/// cycle it leaves the component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivOut {
    /// Answer a core (or host-PCU) request.
    CoreResp {
        /// The request being answered.
        id: pei_types::ReqId,
        /// Completion cycle.
        at: Cycle,
    },
    /// Send a request to the L3 (routed through the crossbar).
    ToL3 {
        /// The outgoing request.
        req: L3Req,
        /// Cycle it enters the crossbar.
        at: Cycle,
    },
    /// Acknowledge a recall back to the L3.
    Ack {
        /// The acknowledgement.
        ack: RecallAck,
        /// Cycle it enters the crossbar.
        at: Cycle,
    },
}

/// The private L1+L2 cache of one core.
///
/// # Examples
///
/// ```
/// use pei_mem::{PrivateCache, MemHierarchyConfig};
/// use pei_mem::msg::CoreReq;
/// use pei_types::{Addr, CoreId, ReqId};
///
/// let cfg = MemHierarchyConfig::scaled();
/// let mut cache = PrivateCache::new(CoreId(0), &cfg);
/// let mut out = pei_engine::Outbox::new();
/// cache.handle_core_req(0, CoreReq { id: ReqId(1), addr: Addr(0x40), write: false }, &mut out);
/// // Cold miss: the request goes to the L3.
/// assert!(matches!(out[0], pei_mem::private::PrivOut::ToL3 { .. }));
/// ```
#[derive(Debug)]
pub struct PrivateCache {
    core: CoreId,
    l1: CacheArray,
    l2: CacheArray,
    l1_lat: Cycle,
    l2_lat: Cycle,
    mshr: MshrFile,
    stall_q: VecDeque<CoreReq>,
    port: Occupancy,
    // Checker metadata only — never read on the simulation path. Two
    // benign races can desynchronize the L3's presence mask from this
    // cache: (a) a recall overtakes an in-flight grant (recalls ride
    // control flits, grants ride slower data flits) and no-ops here,
    // leaving the late grant to install a copy the L3 no longer tracks;
    // (b) a block is evicted while its own upgrade miss is pending, so
    // the Put notice reaches the L3 after the upgrade grant and erases
    // us from the mask. `overtaken` remembers blocks hit by either race
    // while their miss is pending; the install then moves the block to
    // `tainted`, which the MESI auditor excuses (see `pei_system::check`
    // and DESIGN.md §9).
    overtaken: BTreeSet<u64>,
    tainted: BTreeSet<u64>,
    counters: Counters,
    c: PrivCounters,
}

/// Dense counter slots registered at construction (hot-path bumps are
/// indexed adds; names materialize only in [`PrivateCache::report`]).
#[derive(Debug, Clone, Copy)]
struct PrivCounters {
    l1_hits: CounterId,
    l1_misses: CounterId,
    l2_hits: CounterId,
    l2_misses: CounterId,
    writebacks: CounterId,
    recalls_seen: CounterId,
    upgrades: CounterId,
}

impl PrivCounters {
    fn register(counters: &mut Counters) -> Self {
        PrivCounters {
            l1_hits: counters.register("l1.hits"),
            l1_misses: counters.register("l1.misses"),
            l2_hits: counters.register("l2.hits"),
            l2_misses: counters.register("l2.misses"),
            writebacks: counters.register("l2.writebacks"),
            recalls_seen: counters.register("l2.recalls"),
            upgrades: counters.register("l2.upgrades"),
        }
    }
}

impl PrivateCache {
    /// Creates the private hierarchy for `core` per `cfg`.
    pub fn new(core: CoreId, cfg: &MemHierarchyConfig) -> Self {
        let mut counters = Counters::new();
        let c = PrivCounters::register(&mut counters);
        PrivateCache {
            core,
            l1: CacheArray::with_capacity(cfg.l1.capacity, cfg.l1.ways),
            l2: CacheArray::with_capacity(cfg.l2.capacity, cfg.l2.ways),
            l1_lat: cfg.l1.latency,
            l2_lat: cfg.l2.latency,
            mshr: MshrFile::new(cfg.priv_mshrs),
            stall_q: VecDeque::new(),
            port: Occupancy::new(),
            overtaken: BTreeSet::new(),
            tainted: BTreeSet::new(),
            counters,
            c,
        }
    }

    /// The owning core.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Handles a memory request from the core or its host-side PCU.
    pub fn handle_core_req(&mut self, now: Cycle, req: CoreReq, out: &mut Outbox<PrivOut>) {
        let start = self.port.reserve(now, 1);
        self.access(start, req, out);
    }

    fn access(&mut self, start: Cycle, req: CoreReq, out: &mut Outbox<PrivOut>) {
        let block = req.addr.block();
        let in_l1 = self.l1.lookup(block).is_some();
        let l2_state = self.l2.line(block).map(|l| l.state);

        match l2_state {
            Some(state) if !req.write || state.writable() => {
                // Hit somewhere in the private hierarchy with permission.
                if req.write {
                    let line = self.l2.line_mut(block).expect("hit line");
                    line.state = LineState::Modified;
                    line.dirty = true;
                    if let Some(l1l) = self.l1.line_mut(block) {
                        l1l.state = LineState::Modified;
                    }
                }
                let lat = if in_l1 {
                    self.counters.inc(self.c.l1_hits);
                    self.l1_lat
                } else {
                    self.counters.inc(self.c.l1_misses);
                    self.counters.inc(self.c.l2_hits);
                    self.fill_l1(block);
                    self.l2_lat
                };
                self.l1.touch(block);
                self.l2.touch(block);
                out.push(PrivOut::CoreResp {
                    id: req.id,
                    at: start + lat,
                });
            }
            Some(_) => {
                // Present but Shared and a write was requested: upgrade.
                self.counters.inc(self.c.l1_misses);
                self.counters.inc(self.c.upgrades);
                self.miss(start, req, L3ReqKind::GetM, out);
            }
            None => {
                self.counters.inc(self.c.l1_misses);
                self.counters.inc(self.c.l2_misses);
                let kind = if req.write {
                    L3ReqKind::GetM
                } else {
                    L3ReqKind::GetS
                };
                self.miss(start, req, kind, out);
            }
        }
    }

    fn miss(&mut self, start: Cycle, req: CoreReq, kind: L3ReqKind, out: &mut Outbox<PrivOut>) {
        let block = req.addr.block();
        if self.mshr.contains(block) {
            self.mshr.merge(block, req.id, req.write);
        } else if self.mshr.alloc(block, kind, req.id, req.write) {
            out.push(PrivOut::ToL3 {
                req: L3Req {
                    id: req.id,
                    core: self.core,
                    block,
                    kind,
                },
                at: start + self.l2_lat,
            });
        } else {
            self.stall_q.push_back(req);
        }
    }

    /// Brings `block` (already valid in L2) into the L1, folding any dirty
    /// L1 victim back into its L2 line.
    fn fill_l1(&mut self, block: BlockAddr) {
        let state = self.l2.line(block).expect("L1 fill requires L2 line").state;
        if let Some(victim) = self.l1.insert(block, state) {
            if victim.dirty {
                if let Some(l2l) = self.l2.line_mut(victim.block) {
                    l2l.dirty = true;
                    l2l.state = LineState::Modified;
                }
            }
        }
    }

    /// Handles a fill/grant from the L3.
    pub fn handle_l3_resp(&mut self, now: Cycle, resp: L3Resp, out: &mut Outbox<PrivOut>) {
        let entry = self
            .mshr
            .retire(resp.block)
            .expect("L3 response without MSHR entry");
        let overtaken = self.overtaken.remove(&resp.block.0);
        let granted = match resp.grant {
            crate::msg::Grant::Shared => LineState::Shared,
            crate::msg::Grant::Exclusive => LineState::Exclusive,
            crate::msg::Grant::Modified => LineState::Modified,
        };

        // Install or update the L2 line (an upgrade finds it already there;
        // a concurrent invalidation may have removed it).
        if let Some(line) = self.l2.line_mut(resp.block) {
            line.state = granted;
            line.dirty = line.dirty || granted == LineState::Modified;
        } else if let Some(victim) = self.l2.insert(resp.block, granted) {
            self.l1.invalidate(victim.block);
            self.tainted.remove(&victim.block.0);
            // Evicting a block whose own miss (an upgrade) is still
            // pending: the Put notice below reaches the L3 after it has
            // granted that miss, erasing us from the presence mask while
            // we hold the granted copy. Mark it for the MESI auditor.
            if self.mshr.blocks().any(|b| b == victim.block) {
                self.overtaken.insert(victim.block.0);
            }
            self.counters
                .add(self.c.writebacks, u64::from(victim.dirty));
            out.push(PrivOut::ToL3 {
                req: L3Req {
                    id: pei_types::ReqId(0),
                    core: self.core,
                    block: victim.block,
                    kind: if victim.dirty {
                        L3ReqKind::PutM
                    } else {
                        L3ReqKind::PutS
                    },
                },
                at: now + 1,
            });
        }
        if overtaken {
            self.tainted.insert(resp.block.0);
        }
        self.l2.touch(resp.block);
        self.fill_l1(resp.block);
        self.l1.touch(resp.block);

        // Answer the merged waiters. If the grant was read-only but a
        // writer was merged after the GetS left, re-request exclusivity.
        // Single pass, no staging buffer: the first unsatisfied writer
        // re-allocates the MSHR entry, later ones merge into it.
        let mut first_reissue: Option<Waiter> = None;
        for w in &entry.waiters {
            if w.write && !granted.writable() {
                if first_reissue.is_none() {
                    self.counters.inc(self.c.upgrades);
                    self.mshr.alloc(resp.block, L3ReqKind::GetM, w.id, true);
                    first_reissue = Some(*w);
                } else {
                    self.mshr.merge(resp.block, w.id, w.write);
                }
            } else {
                if w.write {
                    let line = self.l2.line_mut(resp.block).expect("just installed");
                    line.state = LineState::Modified;
                    line.dirty = true;
                    if let Some(l1l) = self.l1.line_mut(resp.block) {
                        l1l.state = LineState::Modified;
                    }
                }
                out.push(PrivOut::CoreResp {
                    id: w.id,
                    at: now + self.l1_lat,
                });
            }
        }
        if let Some(first) = first_reissue {
            out.push(PrivOut::ToL3 {
                req: L3Req {
                    id: first.id,
                    core: self.core,
                    block: resp.block,
                    kind: L3ReqKind::GetM,
                },
                at: now + 1,
            });
        }

        // MSHR room freed: admit stalled requests.
        while self.mshr.has_room() {
            match self.stall_q.pop_front() {
                Some(req) => {
                    let start = self.port.reserve(now, 1);
                    self.access(start, req, out);
                }
                None => break,
            }
        }
    }

    /// Handles a coherence recall (invalidate/downgrade) from the L3.
    pub fn handle_recall(&mut self, now: Cycle, recall: Recall, out: &mut Outbox<PrivOut>) {
        self.counters.inc(self.c.recalls_seen);
        let start = self.port.reserve(now, 1);
        let (dirty, was_present) = match self.l2.line_mut(recall.block) {
            Some(line) => {
                let dirty = line.dirty;
                match recall.op {
                    RecallOp::Invalidate => {
                        self.l1.invalidate(recall.block);
                        self.l2.invalidate(recall.block);
                    }
                    RecallOp::Downgrade => {
                        line.state = LineState::Shared;
                        line.dirty = false;
                        if let Some(l1l) = self.l1.line_mut(recall.block) {
                            l1l.state = LineState::Shared;
                            // Clear the L1 dirty bit too: the ack above
                            // surrendered the dirty data. Leaving it set
                            // would let a later L1 eviction fold it back
                            // into the L2 line (`fill_l1`), silently
                            // re-promoting a downgraded Shared line to
                            // Modified behind the L3's back.
                            l1l.dirty = false;
                        }
                    }
                }
                // A recall that found the line means the L3 still tracks
                // this copy: it is consistent again.
                self.tainted.remove(&recall.block.0);
                (dirty, true)
            }
            None => {
                // The recall overtook a grant still in flight (control
                // flits outrun data flits): the install below will leave
                // a copy the L3 no longer tracks. Mark it for the MESI
                // auditor; the simulation itself is unaffected (values
                // live in the backing store).
                if self.mshr.blocks().any(|b| b == recall.block) {
                    self.overtaken.insert(recall.block.0);
                }
                (false, false)
            }
        };
        out.push(PrivOut::Ack {
            ack: RecallAck {
                core: self.core,
                block: recall.block,
                dirty,
                was_present,
            },
            at: start + self.l2_lat,
        });
    }

    /// Whether the block currently has a valid copy in this hierarchy
    /// (test/diagnostic helper).
    pub fn holds(&self, block: BlockAddr) -> bool {
        self.l2.lookup(block).is_some()
    }

    /// Current MESI state of the block at L2 granularity, if present.
    pub fn state_of(&self, block: BlockAddr) -> Option<LineState> {
        self.l2.line(block).map(|l| l.state)
    }

    /// Number of in-flight misses (test/diagnostic helper).
    pub fn inflight_misses(&self) -> usize {
        self.mshr.len()
    }

    /// Every valid line of the authoritative (L2) array as
    /// `(block, state)`, for cross-component invariant sweeps.
    pub fn lines(&self) -> impl Iterator<Item = (BlockAddr, LineState)> + '_ {
        self.l2.iter().map(|l| (l.block, l.state))
    }

    /// Whether this cache's copy of `block` went stale through the
    /// benign recall-overtakes-grant race (see the field docs): the MESI
    /// auditor excuses such copies instead of reporting corruption.
    pub fn is_tainted(&self, block: BlockAddr) -> bool {
        self.tainted.contains(&block.0)
    }

    /// Blocks with an outstanding MSHR entry (invariant-checker access).
    pub fn mshr_blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.mshr.blocks()
    }

    /// Fault hook: allocates an MSHR entry for `block` that no response
    /// will ever retire — a simulated leak for checker validation. The
    /// entry occupies real capacity, so downstream misses observe the
    /// reduced MSHR file exactly as a genuine leak would.
    pub fn fault_leak_mshr(&mut self, block: BlockAddr) {
        self.mshr
            .alloc(block, L3ReqKind::GetS, pei_types::ReqId(u64::MAX), false);
    }

    /// Fault hook: silently rewrites the held line for `block` to
    /// `Modified` without any coherence traffic, returning whether a
    /// line was present to corrupt.
    pub fn fault_corrupt_line(&mut self, block: BlockAddr) -> bool {
        match self.l2.line_mut(block) {
            Some(line) => {
                line.state = LineState::Modified;
                true
            }
            None => false,
        }
    }

    /// Labels the current counter values as the end of phase `label`
    /// (see `Counters::snapshot`).
    pub fn snapshot_phase(&mut self, label: &'static str) {
        self.counters.snapshot(label);
    }

    /// Dumps statistics under `prefix` (e.g. `core0.`).
    pub fn report(&self, prefix: &str, stats: &mut StatsReport) {
        self.counters.flush(prefix, stats);
        stats.bump(format!("{prefix}l2.mshr_merges"), self.mshr.merges() as f64);
    }
}

impl pei_types::snap::SnapshotState for PrivateCache {
    fn save(&self, e: &mut pei_types::snap::Encoder) {
        self.l1.save(e);
        self.l2.save(e);
        self.mshr.save(e);
        e.seq(self.stall_q.len());
        for req in &self.stall_q {
            req.encode(e);
        }
        self.port.save(e);
        e.seq(self.overtaken.len());
        for &b in &self.overtaken {
            e.u64(b);
        }
        e.seq(self.tainted.len());
        for &b in &self.tainted {
            e.u64(b);
        }
        self.counters.save(e);
    }

    fn load(&mut self, d: &mut pei_types::snap::Decoder<'_>) -> pei_types::snap::SnapResult<()> {
        self.l1.load(d)?;
        self.l2.load(d)?;
        self.mshr.load(d)?;
        let stalls = d.seq(17)?;
        self.stall_q.clear();
        for _ in 0..stalls {
            self.stall_q.push_back(CoreReq::decode(d)?);
        }
        self.port.load(d)?;
        let overtaken = d.seq(8)?;
        self.overtaken.clear();
        for _ in 0..overtaken {
            self.overtaken.insert(d.u64()?);
        }
        let tainted = d.seq(8)?;
        self.tainted.clear();
        for _ in 0..tainted {
            self.tainted.insert(d.u64()?);
        }
        self.counters.load(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Grant;
    use pei_types::{Addr, ReqId};

    fn cache() -> PrivateCache {
        PrivateCache::new(CoreId(0), &MemHierarchyConfig::scaled())
    }

    fn read(id: u64, addr: u64) -> CoreReq {
        CoreReq {
            id: ReqId(id),
            addr: Addr(addr),
            write: false,
        }
    }

    fn write(id: u64, addr: u64) -> CoreReq {
        CoreReq {
            id: ReqId(id),
            addr: Addr(addr),
            write: true,
        }
    }

    fn grant(c: &mut PrivateCache, id: u64, block: u64, g: Grant, out: &mut Outbox<PrivOut>) {
        c.handle_l3_resp(
            100,
            L3Resp {
                id: ReqId(id),
                core: CoreId(0),
                block: BlockAddr(block),
                grant: g,
            },
            out,
        );
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = cache();
        let mut out = Outbox::new();
        c.handle_core_req(0, read(1, 0x40), &mut out);
        assert!(matches!(
            out[0],
            PrivOut::ToL3 {
                req: L3Req {
                    kind: L3ReqKind::GetS,
                    ..
                },
                ..
            }
        ));
        out.clear();
        grant(&mut c, 1, 1, Grant::Exclusive, &mut out);
        assert!(matches!(out[0], PrivOut::CoreResp { id: ReqId(1), .. }));
        out.clear();
        // Second access hits in L1.
        c.handle_core_req(200, read(2, 0x44), &mut out);
        assert_eq!(out.len(), 1);
        match out[0] {
            PrivOut::CoreResp { at, .. } => assert_eq!(at, 200 + 3),
            ref other => panic!("expected hit response, got {other:?}"),
        }
    }

    #[test]
    fn same_block_misses_merge() {
        let mut c = cache();
        let mut out = Outbox::new();
        c.handle_core_req(0, read(1, 0x40), &mut out);
        c.handle_core_req(0, read(2, 0x48), &mut out);
        // Only one L3 request for the shared block.
        let to_l3 = out
            .iter()
            .filter(|o| matches!(o, PrivOut::ToL3 { .. }))
            .count();
        assert_eq!(to_l3, 1);
        out.clear();
        grant(&mut c, 1, 1, Grant::Shared, &mut out);
        let resps = out
            .iter()
            .filter(|o| matches!(o, PrivOut::CoreResp { .. }))
            .count();
        assert_eq!(resps, 2, "both merged waiters answered");
    }

    #[test]
    fn write_on_shared_upgrades() {
        let mut c = cache();
        let mut out = Outbox::new();
        c.handle_core_req(0, read(1, 0x40), &mut out);
        out.clear();
        grant(&mut c, 1, 1, Grant::Shared, &mut out);
        out.clear();
        c.handle_core_req(200, write(2, 0x40), &mut out);
        assert!(matches!(
            out[0],
            PrivOut::ToL3 {
                req: L3Req {
                    kind: L3ReqKind::GetM,
                    ..
                },
                ..
            }
        ));
        out.clear();
        grant(&mut c, 2, 1, Grant::Modified, &mut out);
        assert!(matches!(out[0], PrivOut::CoreResp { id: ReqId(2), .. }));
        assert_eq!(c.state_of(BlockAddr(1)), Some(LineState::Modified));
    }

    #[test]
    fn silent_e_to_m_upgrade_has_no_traffic() {
        let mut c = cache();
        let mut out = Outbox::new();
        c.handle_core_req(0, read(1, 0x40), &mut out);
        out.clear();
        grant(&mut c, 1, 1, Grant::Exclusive, &mut out);
        out.clear();
        c.handle_core_req(200, write(2, 0x40), &mut out);
        assert_eq!(out.len(), 1, "write on E must hit silently");
        assert!(matches!(out[0], PrivOut::CoreResp { .. }));
        assert_eq!(c.state_of(BlockAddr(1)), Some(LineState::Modified));
    }

    #[test]
    fn recall_invalidate_reports_dirty() {
        let mut c = cache();
        let mut out = Outbox::new();
        c.handle_core_req(0, write(1, 0x40), &mut out);
        out.clear();
        grant(&mut c, 1, 1, Grant::Modified, &mut out);
        out.clear();
        c.handle_recall(
            300,
            Recall {
                core: CoreId(0),
                block: BlockAddr(1),
                op: RecallOp::Invalidate,
            },
            &mut out,
        );
        match out[0] {
            PrivOut::Ack { ack, .. } => {
                assert!(ack.dirty);
                assert!(ack.was_present);
            }
            ref other => panic!("expected ack, got {other:?}"),
        }
        assert!(!c.holds(BlockAddr(1)));
    }

    #[test]
    fn recall_downgrade_keeps_shared_copy() {
        let mut c = cache();
        let mut out = Outbox::new();
        c.handle_core_req(0, write(1, 0x40), &mut out);
        out.clear();
        grant(&mut c, 1, 1, Grant::Modified, &mut out);
        out.clear();
        c.handle_recall(
            300,
            Recall {
                core: CoreId(0),
                block: BlockAddr(1),
                op: RecallOp::Downgrade,
            },
            &mut out,
        );
        match out[0] {
            PrivOut::Ack { ack, .. } => assert!(ack.dirty),
            ref other => panic!("expected ack, got {other:?}"),
        }
        assert_eq!(c.state_of(BlockAddr(1)), Some(LineState::Shared));
    }

    #[test]
    fn recall_for_absent_block_acks_not_present() {
        let mut c = cache();
        let mut out = Outbox::new();
        c.handle_recall(
            0,
            Recall {
                core: CoreId(0),
                block: BlockAddr(99),
                op: RecallOp::Invalidate,
            },
            &mut out,
        );
        match out[0] {
            PrivOut::Ack { ack, .. } => {
                assert!(!ack.was_present);
                assert!(!ack.dirty);
            }
            ref other => panic!("expected ack, got {other:?}"),
        }
    }

    #[test]
    fn dirty_eviction_emits_putm() {
        let cfg = MemHierarchyConfig {
            l1: crate::CacheConfig::new(64, 1, 3),
            l2: crate::CacheConfig::new(128, 1, 12), // 2 sets, direct-mapped
            l3: crate::CacheConfig::new(1024 * 1024, 16, 20),
            ..MemHierarchyConfig::scaled()
        };
        let mut c = PrivateCache::new(CoreId(0), &cfg);
        let mut out = Outbox::new();
        // Dirty block 0 (set 0), then fill block 2 (also set 0): must evict.
        c.handle_core_req(0, write(1, 0x00), &mut out);
        out.clear();
        grant(&mut c, 1, 0, Grant::Modified, &mut out);
        out.clear();
        c.handle_core_req(100, read(2, 0x80), &mut out);
        out.clear();
        grant(&mut c, 2, 2, Grant::Shared, &mut out);
        assert!(
            out.iter().any(|o| matches!(
                o,
                PrivOut::ToL3 {
                    req: L3Req {
                        kind: L3ReqKind::PutM,
                        block: BlockAddr(0),
                        ..
                    },
                    ..
                }
            )),
            "dirty victim must be written back: {out:?}"
        );
        assert!(!c.holds(BlockAddr(0)));
    }

    #[test]
    fn mshr_overflow_stalls_and_drains() {
        let cfg = MemHierarchyConfig {
            priv_mshrs: 1,
            ..MemHierarchyConfig::scaled()
        };
        let mut c = PrivateCache::new(CoreId(0), &cfg);
        let mut out = Outbox::new();
        c.handle_core_req(0, read(1, 0x40), &mut out);
        c.handle_core_req(0, read(2, 0x80), &mut out); // stalls: MSHR full
        let to_l3 = out
            .iter()
            .filter(|o| matches!(o, PrivOut::ToL3 { .. }))
            .count();
        assert_eq!(to_l3, 1);
        out.clear();
        grant(&mut c, 1, 1, Grant::Shared, &mut out);
        // The stalled request is admitted and issues its own GetS now.
        assert!(out.iter().any(|o| matches!(
            o,
            PrivOut::ToL3 {
                req: L3Req {
                    block: BlockAddr(2),
                    ..
                },
                ..
            }
        )));
    }

    #[test]
    fn late_write_waiter_triggers_reissue() {
        let mut c = cache();
        let mut out = Outbox::new();
        c.handle_core_req(0, read(1, 0x40), &mut out); // GetS leaves
        c.handle_core_req(0, write(2, 0x48), &mut out); // merges with write intent
        out.clear();
        grant(&mut c, 1, 1, Grant::Shared, &mut out);
        // Reader answered; writer causes a GetM reissue.
        assert!(out
            .iter()
            .any(|o| matches!(o, PrivOut::CoreResp { id: ReqId(1), .. })));
        assert!(out.iter().any(|o| matches!(
            o,
            PrivOut::ToL3 {
                req: L3Req {
                    kind: L3ReqKind::GetM,
                    ..
                },
                ..
            }
        )));
        out.clear();
        grant(&mut c, 2, 1, Grant::Modified, &mut out);
        assert!(out
            .iter()
            .any(|o| matches!(o, PrivOut::CoreResp { id: ReqId(2), .. })));
    }

    #[test]
    fn report_contains_hit_counters() {
        let mut c = cache();
        let mut out = Outbox::new();
        c.handle_core_req(0, read(1, 0x40), &mut out);
        let mut s = StatsReport::new();
        c.report("core0.", &mut s);
        assert_eq!(s.get("core0.l2.misses"), Some(1.0));
    }
}
