//! A generic set-associative cache array: tags, MESI state, LRU,
//! dirty bits, and (for the L3 directory) per-core presence bits.
//!
//! The array holds *state only* — no data — per the functional-first design
//! of this simulator (see crate docs). One implementation serves every
//! level: L1/L2 use [`LineState`] without presence bits, the L3 uses them
//! as its embedded coherence directory.

use pei_types::{BlockAddr, CoreId};

/// MESI coherence state of a line from the owning cache's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Modified: exclusive and dirty.
    Modified,
    /// Exclusive: sole copy, clean; may be silently upgraded to Modified.
    Exclusive,
    /// Shared: possibly other copies, clean, read-only.
    Shared,
}

impl LineState {
    /// Whether this state grants write permission without further traffic.
    pub fn writable(self) -> bool {
        matches!(self, LineState::Modified | LineState::Exclusive)
    }
}

/// One cache line's bookkeeping.
#[derive(Debug, Clone)]
pub struct Line {
    /// The block cached in this way.
    pub block: BlockAddr,
    /// MESI state of this copy.
    pub state: LineState,
    /// Whether the line differs from the next level (Modified implies
    /// dirty; the L3 also marks dirty on PutM from a private cache).
    pub dirty: bool,
    /// Which cores have copies (only maintained by the L3 directory).
    pub presence: u64,
    /// Core holding the line exclusively, if any (L3 directory).
    pub owner: Option<CoreId>,
    /// Transaction lock: set while an MSHR transaction (fetch/eviction/
    /// recall) is in flight for this line, making it ineligible as a
    /// victim.
    pub locked: bool,
    /// LRU rank within the set: 0 = most recently used.
    lru: u8,
}

/// Result of looking up a block in a [`CacheArray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// Present in the given way.
    Hit {
        /// Way index within the set.
        way: usize,
    },
    /// Absent.
    Miss,
}

/// A set-associative, LRU, state-only cache array.
///
/// # Examples
///
/// ```
/// use pei_mem::{CacheArray, LineState};
/// use pei_types::BlockAddr;
///
/// let mut c = CacheArray::new(4, 2);
/// assert!(c.lookup(BlockAddr(0)).is_none());
/// c.insert(BlockAddr(0), LineState::Exclusive);
/// assert!(c.lookup(BlockAddr(0)).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    sets: usize,
    ways: usize,
    set_shift: u32,
    lines: Vec<Option<Line>>,
}

impl CacheArray {
    /// Creates an empty array of `sets` × `ways`.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is 0 or > 64.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self::with_shift(sets, ways, 0)
    }

    /// Creates an array whose set index skips the low `set_shift` bits of
    /// the block number. Banked caches use this: when bank selection
    /// consumes the low bits, the per-bank array must index sets with the
    /// bits above them or every resident block would land in set 0.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is 0 or > 64.
    pub fn with_shift(sets: usize, ways: usize, set_shift: u32) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!((1..=64).contains(&ways), "way count must be in 1..=64");
        CacheArray {
            sets,
            ways,
            set_shift,
            lines: vec![None; sets * ways],
        }
    }

    /// Builds an array sized for `capacity_bytes` of 64-byte blocks at the
    /// given associativity.
    ///
    /// # Panics
    ///
    /// Panics if the resulting set count is not a power of two.
    pub fn with_capacity(capacity_bytes: usize, ways: usize) -> Self {
        let blocks = capacity_bytes / pei_types::BLOCK_BYTES;
        assert!(
            blocks.is_multiple_of(ways),
            "capacity must be a whole number of sets"
        );
        Self::new(blocks / ways, ways)
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of ways per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total line capacity.
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }

    #[inline]
    fn set_of(&self, block: BlockAddr) -> usize {
        ((block.0 >> self.set_shift) as usize) & (self.sets - 1)
    }

    #[inline]
    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Finds the way holding `block`, if present.
    pub fn lookup(&self, block: BlockAddr) -> Option<usize> {
        let set = self.set_of(block);
        (0..self.ways).find(|&w| {
            self.lines[self.slot(set, w)]
                .as_ref()
                .is_some_and(|l| l.block == block)
        })
    }

    /// Immutable access to the line holding `block`.
    pub fn line(&self, block: BlockAddr) -> Option<&Line> {
        self.lookup(block).map(|w| {
            self.lines[self.slot(self.set_of(block), w)]
                .as_ref()
                .unwrap()
        })
    }

    /// Mutable access to the line holding `block`.
    pub fn line_mut(&mut self, block: BlockAddr) -> Option<&mut Line> {
        let set = self.set_of(block);
        self.lookup(block)
            .map(move |w| self.lines[set * self.ways + w].as_mut().unwrap())
    }

    /// Marks `block` most-recently-used (call on every hit).
    pub fn touch(&mut self, block: BlockAddr) {
        if let Some(way) = self.lookup(block) {
            self.promote(self.set_of(block), way);
        }
    }

    fn promote(&mut self, set: usize, way: usize) {
        let old = self.lines[self.slot(set, way)]
            .as_ref()
            .map(|l| l.lru)
            .unwrap_or(u8::MAX);
        for w in 0..self.ways {
            let slot = self.slot(set, w);
            if let Some(l) = self.lines[slot].as_mut() {
                if l.lru < old {
                    l.lru += 1;
                }
            }
        }
        let slot = self.slot(set, way);
        if let Some(l) = self.lines[slot].as_mut() {
            l.lru = 0;
        }
    }

    /// Picks the eviction victim for the set of `incoming`: an invalid way
    /// if one exists, otherwise the least-recently-used *unlocked* line.
    /// Returns `None` if every way is locked by an in-flight transaction.
    pub fn victim_way(&self, incoming: BlockAddr) -> Option<(usize, Option<&Line>)> {
        let set = self.set_of(incoming);
        for w in 0..self.ways {
            if self.lines[self.slot(set, w)].is_none() {
                return Some((w, None));
            }
        }
        (0..self.ways)
            .filter_map(|w| {
                let l = self.lines[self.slot(set, w)].as_ref().unwrap();
                (!l.locked).then_some((w, l))
            })
            .max_by_key(|(_, l)| l.lru)
            .map(|(w, l)| (w, Some(l)))
    }

    /// Installs `block` into the given way of its set (the caller picked
    /// the way via [`victim_way`](Self::victim_way) and has dealt with the
    /// previous occupant). The new line starts unlocked, clean, and MRU.
    pub fn install(&mut self, block: BlockAddr, way: usize, state: LineState) -> &mut Line {
        let set = self.set_of(block);
        let slot = self.slot(set, way);
        self.lines[slot] = Some(Line {
            block,
            state,
            dirty: state == LineState::Modified,
            presence: 0,
            owner: None,
            locked: false,
            lru: u8::MAX,
        });
        self.promote(set, way);
        self.lines[slot].as_mut().unwrap()
    }

    /// Convenience: install into the best victim way, returning the evicted
    /// line (if a different block was displaced). Inserting a block that
    /// is already resident refreshes it in place (state, MRU) and evicts
    /// nothing. Use only when the caller does not need the two-phase
    /// eviction protocol (e.g. private caches whose victims are handled
    /// synchronously).
    ///
    /// # Panics
    ///
    /// Panics if the block is absent and every way in the set is locked.
    pub fn insert(&mut self, block: BlockAddr, state: LineState) -> Option<Line> {
        let set = self.set_of(block);
        let way = match self.lookup(block) {
            Some(way) => way,
            None => {
                self.victim_way(block)
                    .expect("all ways locked; use the two-phase eviction protocol")
                    .0
            }
        };
        let slot = self.slot(set, way);
        let old = self.lines[slot].take();
        self.install(block, way, state);
        old.filter(|l| l.block != block)
    }

    /// Removes `block` from the array, returning its line.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<Line> {
        let set = self.set_of(block);
        self.lookup(block)
            .and_then(|w| self.lines[set * self.ways + w].take())
    }

    /// Removes the line in `way` of the set that `block` maps to.
    pub fn take_way(&mut self, block: BlockAddr, way: usize) -> Option<Line> {
        let set = self.set_of(block);
        let slot = self.slot(set, way);
        self.lines[slot].take()
    }

    /// Iterates over all valid lines (diagnostics/tests).
    pub fn iter(&self) -> impl Iterator<Item = &Line> {
        self.lines.iter().filter_map(|l| l.as_ref())
    }

    /// Number of valid lines currently held.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.is_some()).count()
    }
}

impl Line {
    /// Appends the line's full bookkeeping (including its private LRU
    /// rank) to a snapshot stream. Also used for in-flight fill victims
    /// held inside L3 transactions.
    pub fn encode(&self, e: &mut pei_types::snap::Encoder) {
        e.u64(self.block.0);
        e.u8(match self.state {
            LineState::Modified => 0,
            LineState::Exclusive => 1,
            LineState::Shared => 2,
        });
        e.bool(self.dirty);
        e.u64(self.presence);
        match self.owner {
            None => e.bool(false),
            Some(c) => {
                e.bool(true);
                e.u16(c.0);
            }
        }
        e.bool(self.locked);
        e.u8(self.lru);
    }

    /// Inverse of [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Fails on truncation or an unknown state tag.
    pub fn decode(d: &mut pei_types::snap::Decoder<'_>) -> pei_types::snap::SnapResult<Line> {
        let block = BlockAddr(d.u64()?);
        let at = d.offset();
        let state = match d.u8()? {
            0 => LineState::Modified,
            1 => LineState::Exclusive,
            2 => LineState::Shared,
            t => {
                return Err(pei_types::snap::SnapError::BadTag {
                    offset: at,
                    found: t,
                    what: "line state",
                })
            }
        };
        let dirty = d.bool()?;
        let presence = d.u64()?;
        let owner = if d.bool()? {
            Some(CoreId(d.u16()?))
        } else {
            None
        };
        Ok(Line {
            block,
            state,
            dirty,
            presence,
            owner,
            locked: d.bool()?,
            lru: d.u8()?,
        })
    }
}

impl pei_types::snap::SnapshotState for CacheArray {
    /// Geometry (`sets`, `ways`, `set_shift`) is a construction parameter;
    /// the line slab travels positionally so way placement and LRU ranks
    /// restore exactly.
    fn save(&self, e: &mut pei_types::snap::Encoder) {
        e.seq(self.lines.len());
        for slot in &self.lines {
            match slot {
                None => e.bool(false),
                Some(l) => {
                    e.bool(true);
                    l.encode(e);
                }
            }
        }
    }

    fn load(&mut self, d: &mut pei_types::snap::Decoder<'_>) -> pei_types::snap::SnapResult<()> {
        let n = d.seq(1)?;
        pei_types::snap::check_len("cache line slots", n, self.lines.len())?;
        for slot in &mut self.lines {
            *slot = if d.bool()? {
                Some(Line::decode(d)?)
            } else {
                None
            };
        }
        Ok(())
    }
}

/// Presence-bitmask helpers for the L3 directory.
pub mod presence {
    use pei_types::CoreId;

    /// Adds `core` to the mask.
    #[inline]
    pub fn add(mask: u64, core: CoreId) -> u64 {
        mask | (1 << core.index())
    }

    /// Removes `core` from the mask.
    #[inline]
    pub fn remove(mask: u64, core: CoreId) -> u64 {
        mask & !(1 << core.index())
    }

    /// Whether `core` is in the mask.
    #[inline]
    pub fn contains(mask: u64, core: CoreId) -> bool {
        mask & (1 << core.index()) != 0
    }

    /// Iterates the cores in the mask.
    pub fn iter(mask: u64) -> impl Iterator<Item = CoreId> {
        (0..64).filter(move |i| mask & (1 << i) != 0).map(CoreId)
    }

    /// Number of cores in the mask.
    #[inline]
    pub fn count(mask: u64) -> u32 {
        mask.count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(n: u64) -> BlockAddr {
        BlockAddr(n)
    }

    #[test]
    fn hit_after_insert_miss_after_invalidate() {
        let mut c = CacheArray::new(8, 2);
        c.insert(blk(5), LineState::Shared);
        assert!(c.lookup(blk(5)).is_some());
        assert_eq!(c.line(blk(5)).unwrap().state, LineState::Shared);
        let old = c.invalidate(blk(5)).unwrap();
        assert_eq!(old.block, blk(5));
        assert!(c.lookup(blk(5)).is_none());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = CacheArray::new(1, 2);
        c.insert(blk(1), LineState::Shared);
        c.insert(blk(2), LineState::Shared);
        c.touch(blk(1)); // 2 is now LRU
        let evicted = c.insert(blk(3), LineState::Shared).unwrap();
        assert_eq!(evicted.block, blk(2));
        assert!(c.lookup(blk(1)).is_some());
        assert!(c.lookup(blk(3)).is_some());
    }

    #[test]
    fn set_mapping_separates_conflicts() {
        let mut c = CacheArray::new(4, 1);
        c.insert(blk(0), LineState::Shared);
        c.insert(blk(1), LineState::Shared);
        c.insert(blk(2), LineState::Shared);
        c.insert(blk(3), LineState::Shared);
        // All four live in distinct sets.
        assert_eq!(c.occupancy(), 4);
        // blk(4) conflicts with blk(0) only.
        let ev = c.insert(blk(4), LineState::Shared).unwrap();
        assert_eq!(ev.block, blk(0));
        assert_eq!(c.occupancy(), 4);
    }

    #[test]
    fn locked_lines_are_not_victims() {
        let mut c = CacheArray::new(1, 2);
        c.insert(blk(1), LineState::Shared);
        c.insert(blk(2), LineState::Shared);
        c.line_mut(blk(1)).unwrap().locked = true;
        // blk(1) is LRU but locked; victim must be blk(2).
        let (way, victim) = c.victim_way(blk(3)).unwrap();
        assert_eq!(victim.unwrap().block, blk(2));
        let _ = way;
        c.line_mut(blk(2)).unwrap().locked = true;
        assert!(c.victim_way(blk(3)).is_none());
    }

    #[test]
    fn insert_returns_displaced_line_state() {
        let mut c = CacheArray::new(1, 1);
        c.insert(blk(7), LineState::Modified);
        let old = c.insert(blk(8), LineState::Shared).unwrap();
        assert_eq!(old.state, LineState::Modified);
        assert!(old.dirty, "Modified lines start dirty");
    }

    #[test]
    fn with_capacity_matches_geometry() {
        let c = CacheArray::with_capacity(256 * 1024, 8);
        assert_eq!(c.capacity_lines() * 64, 256 * 1024);
        assert_eq!(c.ways(), 8);
        assert_eq!(c.sets(), 512);
    }

    #[test]
    fn presence_mask_ops() {
        use presence::*;
        let mut m = 0;
        m = add(m, CoreId(0));
        m = add(m, CoreId(5));
        assert!(contains(m, CoreId(5)));
        assert!(!contains(m, CoreId(4)));
        assert_eq!(count(m), 2);
        assert_eq!(iter(m).collect::<Vec<_>>(), vec![CoreId(0), CoreId(5)]);
        m = remove(m, CoreId(0));
        assert_eq!(count(m), 1);
    }

    #[test]
    fn writable_states() {
        assert!(LineState::Modified.writable());
        assert!(LineState::Exclusive.writable());
        assert!(!LineState::Shared.writable());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        CacheArray::new(3, 2);
    }
}
