//! The on-chip crossbar connecting private caches, L3 banks, the HMC
//! controller and the PMU (Table 2: crossbar, 2 GHz, 144-bit links).
//!
//! Each source port owns a serialized, bandwidth-limited channel; messages
//! from one source are therefore delivered FIFO, which the coherence
//! protocol relies on (a grant sent before a recall to the same core must
//! arrive first). Destination contention is folded into the per-source
//! serialization, a standard simplification for non-blocking crossbars.

use pei_engine::BwChannel;
use pei_types::Cycle;

/// A message's size class on the crossbar, in bytes: control-only or
/// carrying a 64-byte data payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XbarPayload {
    /// Address/command only (requests, recalls, acks): 8 bytes + routing.
    Control,
    /// Command plus one cache block (fills, writebacks): 72 bytes.
    Data,
    /// Command plus `n` bytes of PEI operands.
    Operands(u16),
}

impl XbarPayload {
    /// Bytes on the wire.
    pub fn bytes(self) -> u64 {
        match self {
            XbarPayload::Control => 8,
            XbarPayload::Data => 8 + pei_types::BLOCK_BYTES as u64,
            XbarPayload::Operands(n) => 8 + n as u64,
        }
    }
}

/// The crossbar switch.
///
/// # Examples
///
/// ```
/// use pei_mem::Crossbar;
/// use pei_mem::xbar::XbarPayload;
///
/// let mut x = Crossbar::new(4, 9.0, 8);
/// let t = x.send(0, 100, XbarPayload::Control);
/// assert!(t >= 108); // at least the propagation latency
/// ```
#[derive(Debug)]
pub struct Crossbar {
    ports: Vec<BwChannel>,
    latency: Cycle,
    messages: u64,
}

impl Crossbar {
    /// Creates a crossbar with `n_ports` source ports, each carrying
    /// `bytes_per_cycle`, with a fixed propagation `latency`.
    pub fn new(n_ports: usize, bytes_per_cycle: f64, latency: Cycle) -> Self {
        Crossbar {
            ports: (0..n_ports)
                .map(|_| BwChannel::new(bytes_per_cycle, latency))
                .collect(),
            latency,
            messages: 0,
        }
    }

    /// Sends a message from `src` at cycle `now`; returns the delivery
    /// cycle at the destination.
    ///
    /// # Panics
    ///
    /// Panics if `src` is not a valid port index.
    pub fn send(&mut self, src: usize, now: Cycle, payload: XbarPayload) -> Cycle {
        self.messages += 1;
        self.ports[src].transfer(now, payload.bytes())
    }

    /// Fixed propagation latency.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Number of source ports.
    pub fn ports(&self) -> usize {
        self.ports.len()
    }

    /// Total messages switched.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total bytes switched.
    pub fn bytes(&self) -> u64 {
        self.ports.iter().map(|p| p.bytes_carried()).sum()
    }
}

impl pei_types::snap::SnapshotState for Crossbar {
    fn save(&self, e: &mut pei_types::snap::Encoder) {
        e.seq(self.ports.len());
        for p in &self.ports {
            p.save(e);
        }
        e.u64(self.messages);
    }

    fn load(&mut self, d: &mut pei_types::snap::Decoder<'_>) -> pei_types::snap::SnapResult<()> {
        let n = d.seq(24)?;
        pei_types::snap::check_len("crossbar ports", n, self.ports.len())?;
        for p in &mut self.ports {
            p.load(d)?;
        }
        self.messages = d.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_source_fifo() {
        let mut x = Crossbar::new(2, 8.0, 4);
        let a = x.send(0, 0, XbarPayload::Data);
        let b = x.send(0, 0, XbarPayload::Control);
        assert!(b > a, "same-source messages deliver in order");
    }

    #[test]
    fn independent_sources_do_not_contend() {
        let mut x = Crossbar::new(2, 8.0, 4);
        let a = x.send(0, 0, XbarPayload::Data);
        let b = x.send(1, 0, XbarPayload::Data);
        assert_eq!(a, b);
    }

    #[test]
    fn payload_sizes() {
        assert_eq!(XbarPayload::Control.bytes(), 8);
        assert_eq!(XbarPayload::Data.bytes(), 72);
        assert_eq!(XbarPayload::Operands(16).bytes(), 24);
    }

    #[test]
    fn counters_accumulate() {
        let mut x = Crossbar::new(1, 8.0, 0);
        x.send(0, 0, XbarPayload::Control);
        x.send(0, 0, XbarPayload::Data);
        assert_eq!(x.messages(), 2);
        assert_eq!(x.bytes(), 80);
    }
}
