//! The central event queue: a bucketed calendar queue.
//!
//! Discrete-event simulation schedules almost every event a handful of
//! cycles ahead of the cycle being dispatched (cache latencies, crossbar
//! hops, DRAM timing), with a thin tail of far-future events (deep
//! channel backlogs, bank wakeups behind a refresh). A binary heap pays
//! O(log n) per push for that population; a calendar queue (Brown 1988,
//! the structure behind gem5-style schedulers) pays O(1) for the
//! near-future bulk and falls back to a heap only for the tail.
//!
//! The structure is a ring of per-cycle buckets covering a sliding
//! window `[base, base + window)`:
//!
//! - **In-window** schedules append to the singly-linked FIFO list of
//!   their cycle's bucket — O(1), FIFO by construction. Buckets are two
//!   flat `u32` arrays (list head/tail per bucket) indexing into one
//!   reusable slot slab, so the working set stays compact: the pending
//!   population lives in one contiguous allocation regardless of how
//!   many buckets it spreads across, and the pop-side scan for the next
//!   non-empty cycle walks a dense `u32` array.
//! - **Beyond-horizon** schedules go to an overflow `BinaryHeap`, keyed
//!   by `(cycle, seq)` so the global schedule order is preserved. As the
//!   window slides forward, overflow entries whose cycle enters the
//!   window are moved into their bucket (each cycle's bucket is
//!   provably empty at the moment the window first covers it, and the
//!   heap yields same-cycle entries in `seq` order, so the move cannot
//!   reorder same-cycle events).
//! - **Below-window** schedules (earlier than every event still pending
//!   — legal for a general priority queue, unused by the simulator) go
//!   to a `late` heap that always outranks the window.
//!
//! Same-cycle FIFO order is exact across all three regions: bucket
//! lists only ever receive entries in increasing schedule order, and
//! the heaps order by `(cycle, seq)` with `seq` assigned globally at
//! `schedule` time.

use pei_types::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Default window width in cycles (= buckets, at one cycle per bucket):
/// generously covers cache, crossbar, and DRAM-timing deltas.
const DEFAULT_WINDOW: u64 = 1024;
/// Window bounds for [`EventQueue::with_horizon`]: small enough to test
/// wraparound, large enough to keep the ring O(100 KB).
const MIN_WINDOW: u64 = 8;
const MAX_WINDOW: u64 = 1 << 16;

/// Sentinel for "no slot" in bucket lists and slot links.
const NIL: u32 = u32::MAX;

/// A time-ordered event queue with stable FIFO ordering among events
/// scheduled for the same cycle.
///
/// Stability matters for determinism: the whole simulator is reproducible
/// bit-for-bit given the same configuration and seeds, which the test suite
/// relies on.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Per-bucket FIFO list head, `NIL` when the bucket is empty;
    /// `heads[c & mask]` is the list for cycle `c` while `c` is inside
    /// the window.
    heads: Box<[u32]>,
    /// Per-bucket FIFO list tail; meaningful only when the matching
    /// head is not `NIL`.
    tails: Box<[u32]>,
    /// `heads.len() - 1`; the length is a power of two.
    mask: u64,
    /// First cycle the window covers. Never decreases.
    base: Cycle,
    /// `(base & mask) as usize`, kept in sync with `base`.
    cursor: usize,
    /// Events currently held in buckets.
    in_window: usize,
    /// Slot storage for bucket entries; freed slots are recycled via
    /// `free`, so steady-state scheduling allocates nothing.
    slab: Vec<Slot<E>>,
    free: Vec<u32>,
    /// Events at cycles `>= base + window`, ordered by `(at, seq)`.
    overflow: BinaryHeap<Reverse<Entry<E>>>,
    /// Cycle of the earliest overflow entry (`u64::MAX` when empty):
    /// lets the pop-side scan test "does the window need a refill?"
    /// with one integer compare instead of a heap peek per step.
    overflow_next: Cycle,
    /// Events scheduled below `base` after the window moved past their
    /// cycle; always popped before anything in the window.
    late: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    scheduled: u64,
}

/// A slab slot: one bucket-resident event and its FIFO successor. The
/// cycle is implied by the bucket; no per-slot `seq` is needed because
/// bucket lists are appended to in schedule order only.
#[derive(Debug)]
struct Slot<E> {
    next: u32,
    ev: Option<E>,
}

#[derive(Debug)]
struct Entry<E> {
    at: Cycle,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the default near-future window.
    pub fn new() -> Self {
        Self::with_window(DEFAULT_WINDOW)
    }

    /// Creates an empty queue sized for a caller-known event horizon:
    /// the window is the smallest power of two covering `horizon`
    /// cycles (clamped to `[8, 65536]`). Schedules beyond the window
    /// still work — they take the O(log n) overflow path instead of the
    /// O(1) bucket path — so the horizon is a performance hint, never a
    /// correctness bound.
    pub fn with_horizon(horizon: Cycle) -> Self {
        Self::with_window(horizon.clamp(MIN_WINDOW, MAX_WINDOW).next_power_of_two())
    }

    fn with_window(window: u64) -> Self {
        debug_assert!(window.is_power_of_two());
        EventQueue {
            heads: vec![NIL; window as usize].into_boxed_slice(),
            tails: vec![NIL; window as usize].into_boxed_slice(),
            mask: window - 1,
            base: 0,
            cursor: 0,
            in_window: 0,
            slab: Vec::new(),
            free: Vec::new(),
            overflow: BinaryHeap::new(),
            overflow_next: u64::MAX,
            late: BinaryHeap::new(),
            seq: 0,
            scheduled: 0,
        }
    }

    /// Window width in cycles.
    #[inline]
    fn window(&self) -> u64 {
        self.mask + 1
    }

    /// Appends `ev` to the FIFO list of the bucket for cycle `at`
    /// (which must be inside the window).
    #[inline]
    fn push_bucket(&mut self, at: Cycle, ev: E) {
        let idx = match self.free.pop() {
            Some(i) => {
                let s = &mut self.slab[i as usize];
                s.next = NIL;
                s.ev = Some(ev);
                i
            }
            None => {
                assert!(self.slab.len() < NIL as usize, "event population overflow");
                self.slab.push(Slot {
                    next: NIL,
                    ev: Some(ev),
                });
                (self.slab.len() - 1) as u32
            }
        };
        let b = (at & self.mask) as usize;
        if self.heads[b] == NIL {
            self.heads[b] = idx;
        } else {
            self.slab[self.tails[b] as usize].next = idx;
        }
        self.tails[b] = idx;
        self.in_window += 1;
    }

    /// Moves overflow entries whose cycle the window now covers into
    /// their buckets. Called at every point `base` advances, before
    /// control returns to the caller, so outside `pop` the overflow
    /// never holds an in-window cycle — which is what lets `schedule`
    /// push straight onto a bucket without an ordering check.
    #[cold]
    fn refill(&mut self) {
        let end = self.base.saturating_add(self.window());
        while self.overflow_next < end {
            let Reverse(e) = self.overflow.pop().expect("overflow_next says non-empty");
            self.push_bucket(e.at, e.ev);
            self.overflow_next = self.overflow.peek().map_or(u64::MAX, |Reverse(t)| t.at);
        }
    }

    /// Schedules `ev` to fire at absolute cycle `at`.
    pub fn schedule(&mut self, at: Cycle, ev: E) {
        self.seq += 1;
        self.scheduled += 1;
        if at >= self.base {
            if at - self.base < self.window() {
                self.push_bucket(at, ev);
            } else {
                self.overflow_next = self.overflow_next.min(at);
                self.overflow.push(Reverse(Entry {
                    at,
                    seq: self.seq,
                    ev,
                }));
            }
        } else {
            self.late.push(Reverse(Entry {
                at,
                seq: self.seq,
                ev,
            }));
        }
    }

    /// Removes and returns the earliest event together with its cycle.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        // Late entries are all below `base`, hence below every window
        // and overflow entry; among themselves the heap orders them.
        if !self.late.is_empty() {
            let Reverse(e) = self.late.pop().expect("checked non-empty");
            return Some((e.at, e.ev));
        }
        if self.in_window > 0 {
            // Slide the window to the first non-empty bucket. Each step
            // exposes exactly one new cycle at the far end, whose ring
            // slot is the bucket just verified empty — refill eagerly so
            // overflow entries land there ahead of any future schedule.
            while self.heads[self.cursor] == NIL {
                self.base += 1;
                self.cursor = (self.cursor + 1) & self.mask as usize;
                if self.overflow_next < self.base.saturating_add(self.window()) {
                    self.refill();
                }
            }
            let i = self.heads[self.cursor] as usize;
            let slot = &mut self.slab[i];
            self.heads[self.cursor] = slot.next;
            let ev = slot.ev.take().expect("bucket slot holds an event");
            self.free.push(i as u32);
            self.in_window -= 1;
            return Some((self.base, ev));
        }
        // Window empty: jump it to the earliest overflow entry.
        let Reverse(e) = self.overflow.pop()?;
        self.base = e.at;
        self.cursor = (e.at & self.mask) as usize;
        self.overflow_next = self.overflow.peek().map_or(u64::MAX, |Reverse(t)| t.at);
        if self.overflow_next < self.base.saturating_add(self.window()) {
            self.refill();
        }
        Some((e.at, e.ev))
    }

    /// Removes and returns the earliest event **strictly before**
    /// `limit`, or `None` if every pending event is at `limit` or
    /// later (or the queue is empty).
    ///
    /// This is the windowed-draining primitive of the sharded engine
    /// (DESIGN.md §10): each shard repeatedly calls
    /// `pop_before(window_end)` to exhaust its epoch window, including
    /// events other dispatches schedule *into* the window while it
    /// drains. Events at or past `limit` are left untouched — the
    /// window `base` advances at most to `limit`, so a later
    /// [`pop`](Self::pop) or `pop_before` with a larger limit observes
    /// exactly the schedule order an unwindowed drain would.
    pub fn pop_before(&mut self, limit: Cycle) -> Option<(Cycle, E)> {
        // Late entries sit below `base`; if the earliest of them is not
        // below `limit` then neither is anything in the window or the
        // overflow (both at `>= base > late.at >= limit`).
        if let Some(Reverse(e)) = self.late.peek() {
            if e.at >= limit {
                return None;
            }
            let Reverse(e) = self.late.pop().expect("peeked non-empty");
            return Some((e.at, e.ev));
        }
        if self.in_window > 0 {
            // Same scan as `pop`, but `base` stops at `limit`. Refill
            // keeps the "overflow never holds an in-window cycle"
            // invariant as the window slides, so any overflow entry
            // below `limit` is in a bucket by the time `base` reaches
            // its cycle.
            while self.base < limit {
                if self.heads[self.cursor] != NIL {
                    let i = self.heads[self.cursor] as usize;
                    let slot = &mut self.slab[i];
                    self.heads[self.cursor] = slot.next;
                    let ev = slot.ev.take().expect("bucket slot holds an event");
                    self.free.push(i as u32);
                    self.in_window -= 1;
                    return Some((self.base, ev));
                }
                self.base += 1;
                self.cursor = (self.cursor + 1) & self.mask as usize;
                if self.overflow_next < self.base.saturating_add(self.window()) {
                    self.refill();
                }
            }
            return None;
        }
        // Window empty: only an overflow jump can yield an event below
        // `limit`.
        if self.overflow_next < limit {
            let Reverse(e) = self.overflow.pop().expect("overflow_next says non-empty");
            self.base = e.at;
            self.cursor = (e.at & self.mask) as usize;
            self.overflow_next = self.overflow.peek().map_or(u64::MAX, |Reverse(t)| t.at);
            if self.overflow_next < self.base.saturating_add(self.window()) {
                self.refill();
            }
            return Some((e.at, e.ev));
        }
        None
    }

    /// Cycle of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        if let Some(Reverse(e)) = self.late.peek() {
            return Some(e.at);
        }
        if self.in_window > 0 {
            for d in 0..self.window() {
                if self.heads[((self.base + d) & self.mask) as usize] != NIL {
                    return Some(self.base + d);
                }
            }
            unreachable!("in_window > 0 but every bucket is empty");
        }
        self.overflow.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.in_window + self.overflow.len() + self.late.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever scheduled (a cheap progress/diagnostic metric).
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Drains every pending event in canonical pop order, returning
    /// `(cycle, event)` pairs. The queue is empty afterwards, but
    /// [`total_scheduled`](Self::total_scheduled) is preserved.
    ///
    /// This is the snapshot primitive: bucket slots carry no sequence
    /// numbers (FIFO order is positional), so the only faithful way to
    /// capture the queue is to pop it dry in order. Re-`schedule`-ing
    /// the drained pairs in the same order reconstructs an equivalent
    /// queue — absolute `seq` values differ, but only their *relative*
    /// order is observable, and scheduling in drain order preserves it.
    pub fn drain_ordered(&mut self) -> Vec<(Cycle, E)> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(pair) = self.pop() {
            out.push(pair);
        }
        out
    }

    /// Overwrites the `total_scheduled` tally — used after a snapshot
    /// restore, where events are re-`schedule`-d (which counts them
    /// again) and the tally must reflect the original run's history.
    pub fn restore_accounting(&mut self, scheduled: u64) {
        self.scheduled = scheduled;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule(3, 'c');
        q.schedule(1, 'a');
        q.schedule(3, 'd');
        q.schedule(2, 'b');
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![(1, 'a'), (2, 'b'), (3, 'c'), (3, 'd')]);
    }

    #[test]
    fn peek_and_len_track_state() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(9, ());
        q.schedule(4, ());
        assert_eq!(q.peek_time(), Some(4));
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_scheduled(), 2);
        q.pop();
        assert_eq!(q.peek_time(), Some(9));
    }

    #[test]
    fn large_volume_stays_sorted() {
        let mut q = EventQueue::new();
        // Deterministic pseudo-random schedule times.
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..10_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            q.schedule(x % 1000, i);
        }
        let mut last = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn overflow_events_come_back_in_order() {
        // Window of 8: everything past cycle 7 takes the overflow path.
        let mut q = EventQueue::<u32>::with_horizon(8);
        q.schedule(1_000_000, 3);
        q.schedule(2, 0);
        q.schedule(500, 2);
        q.schedule(20, 1);
        q.schedule(1_000_000, 4); // same far cycle: FIFO inside overflow
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            drained,
            vec![(2, 0), (20, 1), (500, 2), (1_000_000, 3), (1_000_000, 4)]
        );
    }

    #[test]
    fn refill_keeps_same_cycle_fifo_across_regions() {
        // An overflow entry for cycle 12 must still pop before a bucket
        // entry scheduled for cycle 12 after the window slid over it.
        let mut q = EventQueue::<&str>::with_horizon(8);
        q.schedule(12, "overflow-first"); // beyond window [0, 8)
        q.schedule(5, "warm");
        assert_eq!(q.pop(), Some((5, "warm"))); // window slides past 5
        q.schedule(12, "bucket-second"); // now in-window
        assert_eq!(q.pop(), Some((12, "overflow-first")));
        assert_eq!(q.pop(), Some((12, "bucket-second")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn window_wraparound_many_laps() {
        // Drive the ring through many laps with a mix of strides.
        let mut q = EventQueue::with_horizon(8);
        let mut now = 0u64;
        let mut popped = 0u64;
        q.schedule(0, 0u64);
        while let Some((t, i)) = q.pop() {
            assert!(t >= now, "time went backwards: {t} < {now}");
            now = t;
            popped += 1;
            if popped < 200 {
                q.schedule(now + 1 + (i % 5), popped); // near
                if popped.is_multiple_of(7) {
                    q.schedule(now + 100, popped + 1_000); // far
                }
            }
        }
        assert!(popped >= 200);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn schedule_below_window_still_pops_first() {
        // A general priority queue admits inserts below everything
        // pending; the calendar's late heap serves them first.
        let mut q = EventQueue::new();
        q.schedule(50, 'b');
        assert_eq!(q.pop(), Some((50, 'b'))); // base is now 50
        q.schedule(60, 'd');
        q.schedule(3, 'a'); // below base
        q.schedule(3, 'c'); // FIFO among late entries
        assert_eq!(q.peek_time(), Some(3));
        assert_eq!(q.pop(), Some((3, 'a')));
        assert_eq!(q.pop(), Some((3, 'c')));
        assert_eq!(q.pop(), Some((60, 'd')));
    }

    #[test]
    fn far_future_beyond_2_53_cycles() {
        let mut q = EventQueue::new();
        let far = 1u64 << 60;
        q.schedule(far + 1, 'b');
        q.schedule(far, 'a');
        q.schedule(far + 1, 'c');
        assert_eq!(q.pop(), Some((far, 'a')));
        // After the jump, near-future scheduling works at the new base.
        q.schedule(far + 1, 'd');
        assert_eq!(q.pop(), Some((far + 1, 'b')));
        assert_eq!(q.pop(), Some((far + 1, 'c')));
        assert_eq!(q.pop(), Some((far + 1, 'd')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn slots_are_recycled() {
        // Steady-state schedule/pop cycles must not grow the slab.
        let mut q = EventQueue::with_horizon(64);
        for round in 0..100u64 {
            for k in 0..8 {
                q.schedule(round + k % 3, (round, k));
            }
            for _ in 0..8 {
                q.pop().unwrap();
            }
        }
        assert!(q.is_empty());
        assert!(q.slab.len() <= 16, "slab grew to {}", q.slab.len());
    }

    #[test]
    fn pop_before_respects_the_limit() {
        let mut q = EventQueue::new();
        q.schedule(3, 'c');
        q.schedule(1, 'a');
        q.schedule(3, 'd');
        q.schedule(7, 'e');
        assert_eq!(q.pop_before(1), None); // 1 is not strictly before 1
        assert_eq!(q.pop_before(4), Some((1, 'a')));
        q.schedule(2, 'b'); // scheduled mid-drain, still inside the window
        assert_eq!(q.pop_before(4), Some((2, 'b')));
        assert_eq!(q.pop_before(4), Some((3, 'c')));
        assert_eq!(q.pop_before(4), Some((3, 'd')));
        assert_eq!(q.pop_before(4), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((7, 'e'))); // plain pop resumes cleanly
    }

    #[test]
    fn pop_before_crosses_overflow_and_late_regions() {
        // Overflow entries below the limit must surface; at/after it
        // they must not, even when the bucket window is empty.
        let mut q = EventQueue::<u32>::with_horizon(8);
        q.schedule(1_000, 1);
        q.schedule(2_000, 2);
        assert_eq!(q.pop_before(1_000), None);
        assert_eq!(q.pop_before(1_001), Some((1_000, 1)));
        // Base jumped to 1000; a below-base schedule lands in the late
        // heap and still honors the limit.
        q.schedule(5, 0);
        assert_eq!(q.pop_before(5), None);
        assert_eq!(q.pop_before(6), Some((5, 0)));
        assert_eq!(q.pop_before(u64::MAX), Some((2_000, 2)));
        assert_eq!(q.pop_before(u64::MAX), None);
    }

    #[test]
    fn windowed_drain_matches_unwindowed_order() {
        // Popping through epoch windows must reproduce the exact
        // sequence a plain pop-loop yields, including same-cycle FIFO
        // and overflow hand-back, for a small ring with wraparound.
        let build = || {
            let mut q = EventQueue::with_horizon(8);
            let mut x = 0x2545f4914f6cdd1du64;
            for i in 0..500u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                q.schedule(x % 97, i);
            }
            q
        };
        let mut a = build();
        let plain: Vec<_> = std::iter::from_fn(|| a.pop()).collect();
        let mut b = build();
        let mut windowed = Vec::new();
        for epoch in 0.. {
            let end = (epoch + 1) * 10;
            while let Some(e) = b.pop_before(end) {
                windowed.push(e);
            }
            if b.is_empty() {
                break;
            }
        }
        assert_eq!(plain, windowed);
    }

    #[test]
    fn horizon_is_clamped_and_rounded() {
        // Behavioural check only: tiny and huge horizons must both
        // yield working queues.
        for h in [0, 1, 7, 9, 1000, u64::MAX] {
            let mut q = EventQueue::with_horizon(h);
            q.schedule(5, 1);
            q.schedule(100_000, 2);
            q.schedule(5, 3);
            assert_eq!(q.pop(), Some((5, 1)));
            assert_eq!(q.pop(), Some((5, 3)));
            assert_eq!(q.pop(), Some((100_000, 2)));
        }
    }
}
