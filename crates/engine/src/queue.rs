//! The central event queue.

use pei_types::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue with stable FIFO ordering among events
/// scheduled for the same cycle.
///
/// Stability matters for determinism: the whole simulator is reproducible
/// bit-for-bit given the same configuration and seeds, which the test suite
/// relies on.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    scheduled: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: Cycle,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            scheduled: 0,
        }
    }

    /// Schedules `ev` to fire at absolute cycle `at`.
    pub fn schedule(&mut self, at: Cycle, ev: E) {
        self.seq += 1;
        self.scheduled += 1;
        self.heap.push(Reverse(Entry {
            at,
            seq: self.seq,
            ev,
        }));
    }

    /// Removes and returns the earliest event together with its cycle.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.ev))
    }

    /// Cycle of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (a cheap progress/diagnostic metric).
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule(3, 'c');
        q.schedule(1, 'a');
        q.schedule(3, 'd');
        q.schedule(2, 'b');
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![(1, 'a'), (2, 'b'), (3, 'c'), (3, 'd')]);
    }

    #[test]
    fn peek_and_len_track_state() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(9, ());
        q.schedule(4, ());
        assert_eq!(q.peek_time(), Some(4));
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_scheduled(), 2);
        q.pop();
        assert_eq!(q.peek_time(), Some(9));
    }

    #[test]
    fn large_volume_stays_sorted() {
        let mut q = EventQueue::new();
        // Deterministic pseudo-random schedule times.
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..10_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            q.schedule(x % 1000, i);
        }
        let mut last = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }
}
