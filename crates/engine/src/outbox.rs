//! Reusable output buffers for component handlers.
//!
//! Every component in the simulator communicates by pushing typed output
//! messages into a buffer owned by its caller (`pei-system`). Allocating
//! a fresh `Vec` per event puts ~one malloc/free pair on every hot-path
//! dispatch; an [`Outbox`] is instead owned long-term by the system,
//! handed to a handler by `&mut`, drained by the router, and reused —
//! its capacity is retained across events, so steady state allocates
//! nothing. See DESIGN.md §"Event kernel and outbox contract".

/// A reusable, capacity-retaining output buffer.
///
/// Semantically a `Vec<T>` restricted to the producer/consumer protocol
/// the event kernel needs: handlers [`push`](Outbox::push), the router
/// [`drain`](Outbox::drain)s, and the backing allocation survives for
/// the next event. Dereferences to `[T]` for inspection (tests index and
/// iterate outboxes like slices).
///
/// # Examples
///
/// ```
/// use pei_engine::Outbox;
///
/// let mut out: Outbox<u32> = Outbox::new();
/// out.push(7);
/// out.push(9);
/// assert_eq!(out[0], 7);
/// assert_eq!(out.drain().collect::<Vec<_>>(), vec![7, 9]);
/// assert!(out.is_empty()); // drained, but capacity is retained
/// ```
#[derive(Debug, Clone)]
pub struct Outbox<T> {
    items: Vec<T>,
}

impl<T> Outbox<T> {
    /// Creates an empty outbox (no allocation until the first push).
    pub fn new() -> Self {
        Outbox { items: Vec::new() }
    }

    /// Creates an empty outbox with room for `cap` items.
    pub fn with_capacity(cap: usize) -> Self {
        Outbox {
            items: Vec::with_capacity(cap),
        }
    }

    /// Appends an output message.
    pub fn push(&mut self, item: T) {
        self.items.push(item);
    }

    /// Consumes all buffered messages in FIFO order, leaving the
    /// allocation in place for reuse.
    pub fn drain(&mut self) -> std::vec::Drain<'_, T> {
        self.items.drain(..)
    }

    /// Discards all buffered messages, retaining capacity.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Current allocated capacity, in items.
    pub fn capacity(&self) -> usize {
        self.items.capacity()
    }
}

impl<T> Default for Outbox<T> {
    fn default() -> Self {
        Outbox::new()
    }
}

impl<T> std::ops::Deref for Outbox<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.items
    }
}

impl<'a, T> IntoIterator for &'a Outbox<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_preserves_fifo_and_capacity() {
        let mut out = Outbox::with_capacity(4);
        for i in 0..4 {
            out.push(i);
        }
        let cap = out.capacity();
        assert_eq!(out.drain().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert!(out.is_empty());
        assert_eq!(out.capacity(), cap, "drain must not shrink the buffer");
        out.push(9);
        assert_eq!(out[0], 9);
    }

    #[test]
    fn slice_access_via_deref() {
        let mut out = Outbox::new();
        out.push("a");
        out.push("b");
        assert_eq!(out.len(), 2);
        assert_eq!(out.iter().copied().collect::<Vec<_>>(), vec!["a", "b"]);
        assert!(out.contains(&"b"));
        out.clear();
        assert!(out.is_empty());
    }

    #[test]
    fn take_leaves_reusable_default() {
        let mut out: Outbox<u8> = Outbox::new();
        out.push(1);
        let taken = std::mem::take(&mut out);
        assert_eq!(taken.len(), 1);
        assert!(out.is_empty(), "take leaves an empty (allocation-free) box");
    }
}
