//! Discrete-event simulation kernel for the PEI simulator.
//!
//! This crate is deliberately ignorant of computer architecture: it provides
//! the event queue, clock-domain arithmetic, bandwidth-limited channel and
//! occupancy primitives, a statistics registry, and a deterministic RNG.
//! The architectural components in `pei-mem`, `pei-hmc`, `pei-cpu` and
//! `pei-core` are built on top of these and wired together by `pei-system`.
//!
//! # Examples
//!
//! ```
//! use pei_engine::EventQueue;
//!
//! let mut q = EventQueue::new();
//! q.schedule(10, "b");
//! q.schedule(5, "a");
//! q.schedule(10, "c"); // same-cycle events keep FIFO order
//! assert_eq!(q.pop(), Some((5, "a")));
//! assert_eq!(q.pop(), Some((10, "b")));
//! assert_eq!(q.pop(), Some((10, "c")));
//! assert_eq!(q.pop(), None);
//! ```
//!
//! This crate's place in the workspace is mapped in DESIGN.md §5.

#![warn(missing_docs)]

pub mod barrier;
pub mod channel;
pub mod clock;
pub mod counters;
pub mod intern;
pub mod outbox;
pub mod queue;
pub mod rng;
pub mod stats;

pub use barrier::EpochBarrier;
pub use channel::{BwChannel, Occupancy, OccupancyPool};
pub use clock::ClockDomain;
pub use counters::{CounterId, Counters};
pub use intern::intern_label;
pub use outbox::Outbox;
pub use queue::EventQueue;
pub use rng::SimRng;
pub use stats::StatsReport;
