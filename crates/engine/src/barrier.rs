//! Epoch barrier for the sharded (conservative parallel) engine.
//!
//! The sharded run loop (DESIGN.md §10) synchronizes the host shard and
//! the cube-shard workers a handful of times per epoch window. Epochs
//! are short — tens of simulated cycles, microseconds of wall time — so
//! the barrier must cost nanoseconds, not a futex round trip. This is
//! the classic central-counter *sense-reversing* barrier: arrivals
//! increment a shared counter and the last arrival flips a generation
//! word everyone else spins on. Waiters spin briefly and then fall back
//! to [`std::thread::yield_now`] so an oversubscribed machine (more
//! shards than cores) still makes progress.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Iterations of pure [`std::hint::spin_loop`] before a waiter starts
/// yielding its timeslice between polls.
const SPINS_BEFORE_YIELD: u32 = 128;

/// A reusable spin barrier for a fixed party count.
///
/// Every party calls [`wait`](EpochBarrier::wait); all calls return
/// once the last party arrives, and the barrier is immediately ready
/// for the next round — parties may re-enter `wait` before slower
/// parties have returned from the previous round.
///
/// # Examples
///
/// ```
/// use pei_engine::EpochBarrier;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let barrier = EpochBarrier::new(3);
/// let turns = AtomicUsize::new(0);
/// std::thread::scope(|s| {
///     for _ in 0..3 {
///         s.spawn(|| {
///             for _ in 0..10 {
///                 turns.fetch_add(1, Ordering::Relaxed);
///                 barrier.wait();
///             }
///         });
///     }
/// });
/// assert_eq!(turns.load(Ordering::Relaxed), 30);
/// ```
#[derive(Debug)]
pub struct EpochBarrier {
    /// Arrivals in the current round; reset by the last arrival.
    count: AtomicUsize,
    /// Round number; a waiter's round is over once this moves.
    generation: AtomicUsize,
    parties: usize,
}

impl EpochBarrier {
    /// Creates a barrier releasing once `parties` threads arrive.
    /// `parties` must be at least 1.
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1, "a barrier needs at least one party");
        EpochBarrier {
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            parties,
        }
    }

    /// Blocks until all parties have called `wait` for this round.
    ///
    /// The release ordering on the generation flip, paired with the
    /// acquire loads in the spin loop, makes every write performed
    /// before any party's `wait` visible to every party after it — the
    /// property the shard mailboxes rely on.
    pub fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Reset the counter *before* publishing the new generation:
            // a fast peer re-entering `wait` for the next round must
            // observe the reset.
            self.count.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            return;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == gen {
            if spins < SPINS_BEFORE_YIELD {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_party_never_blocks() {
        let b = EpochBarrier::new(1);
        for _ in 0..1000 {
            b.wait();
        }
    }

    #[test]
    fn rounds_are_lockstep() {
        // Each thread publishes its round number before the barrier and
        // checks everyone else's after it: no thread may be a full
        // round behind once the barrier releases.
        const THREADS: usize = 4;
        const ROUNDS: u64 = 200;
        let b = EpochBarrier::new(THREADS);
        let round: Vec<AtomicU64> = (0..THREADS).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            for me in 0..THREADS {
                let b = &b;
                let round = &round;
                s.spawn(move || {
                    for r in 1..=ROUNDS {
                        round[me].store(r, Ordering::Release);
                        b.wait();
                        for other in round {
                            assert!(other.load(Ordering::Acquire) >= r);
                        }
                        b.wait(); // keep checks and stores phase-separated
                    }
                });
            }
        });
    }

    #[test]
    fn writes_before_wait_are_visible_after() {
        let b = EpochBarrier::new(2);
        let mailbox = AtomicU64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                mailbox.store(42, Ordering::Relaxed);
                b.wait();
            });
            s.spawn(|| {
                b.wait();
                assert_eq!(mailbox.load(Ordering::Relaxed), 42);
            });
        });
    }
}
