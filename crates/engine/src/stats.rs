//! A lightweight statistics report: ordered name → value pairs gathered
//! from components at the end of a run, printable as aligned text and
//! queryable by experiment harnesses.

use std::collections::BTreeMap;

/// An ordered collection of named scalar statistics.
///
/// # Examples
///
/// ```
/// use pei_engine::StatsReport;
///
/// let mut s = StatsReport::new();
/// s.add("l3.hits", 10.0);
/// s.add("l3.misses", 2.0);
/// s.bump("l3.hits", 5.0);
/// assert_eq!(s.get("l3.hits"), Some(15.0));
/// assert_eq!(s.get("nope"), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsReport {
    values: BTreeMap<String, f64>,
}

impl StatsReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        StatsReport::default()
    }

    /// Sets `name` to `value`, replacing any previous value.
    pub fn add(&mut self, name: impl Into<String>, value: f64) {
        self.values.insert(name.into(), value);
    }

    /// Adds `delta` to `name`, starting from zero if absent.
    pub fn bump(&mut self, name: impl Into<String>, delta: f64) {
        *self.values.entry(name.into()).or_insert(0.0) += delta;
    }

    /// Looks up a statistic by exact name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Looks up a statistic, panicking with a helpful message if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` was never recorded.
    pub fn expect(&self, name: &str) -> f64 {
        self.get(name)
            .unwrap_or_else(|| panic!("statistic `{name}` was not recorded"))
    }

    /// Sum of all statistics under the dot-separated segment path
    /// `prefix`.
    ///
    /// Matching is segment-aware: a key matches if it equals `prefix`
    /// or extends it at a `.` boundary, so `sum_prefix("vault.1")` sums
    /// `vault.1` and `vault.1.*` but not `vault.10.*` — indexed
    /// component names never alias, however many instances exist. A
    /// prefix ending in `.` selects strict children only (raw prefix
    /// match; `sum_prefix("vault.1.")` excludes a bare `vault.1` key),
    /// and the empty prefix sums everything.
    pub fn sum_prefix(&self, prefix: &str) -> f64 {
        // Borrowed range bound: `BTreeMap<String, _>` ranges accept any
        // `Q: Ord` that `String` borrows to, so `&str` works without
        // allocating a `String` per query.
        self.values
            .range::<str, _>((
                std::ops::Bound::Included(prefix),
                std::ops::Bound::Unbounded,
            ))
            .take_while(|(k, _)| k.starts_with(prefix))
            .filter(|(k, _)| {
                prefix.is_empty()
                    || prefix.ends_with('.')
                    || k.len() == prefix.len()
                    || k.as_bytes()[prefix.len()] == b'.'
            })
            .map(|(_, v)| v)
            .sum()
    }

    /// Extracts one phase's interval counters as a report keyed by the
    /// plain counter names: every `X.phase.{label}.Y` entry becomes
    /// `X.Y`, directly comparable against the whole-run totals (see
    /// `Counters::snapshot` in this crate). Empty if no component
    /// recorded that phase.
    ///
    /// # Examples
    ///
    /// ```
    /// use pei_engine::StatsReport;
    ///
    /// let mut s = StatsReport::new();
    /// s.add("l1.hits", 13.0);
    /// s.add("l1.phase.warmup.hits", 3.0);
    /// s.add("l1.phase.steady.hits", 10.0);
    /// let warmup = s.phase_section("warmup");
    /// assert_eq!(warmup.get("l1.hits"), Some(3.0));
    /// assert_eq!(warmup.len(), 1);
    /// ```
    pub fn phase_section(&self, label: &str) -> StatsReport {
        let needle = format!("phase.{label}.");
        self.values
            .iter()
            .filter_map(|(k, v)| {
                k.find(&needle)
                    .map(|i| (format!("{}{}", &k[..i], &k[i + needle.len()..]), *v))
            })
            .collect()
    }

    /// Merges another report into this one, summing overlapping names.
    pub fn merge(&mut self, other: &StatsReport) {
        for (k, v) in &other.values {
            self.bump(k.clone(), *v);
        }
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of recorded statistics.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl std::fmt::Display for StatsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let width = self.values.keys().map(|k| k.len()).max().unwrap_or(0);
        for (k, v) in &self.values {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                writeln!(f, "{k:<width$}  {:>16}", *v as i64)?;
            } else {
                writeln!(f, "{k:<width$}  {v:>16.4}")?;
            }
        }
        Ok(())
    }
}

impl FromIterator<(String, f64)> for StatsReport {
    fn from_iter<T: IntoIterator<Item = (String, f64)>>(iter: T) -> Self {
        StatsReport {
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, f64)> for StatsReport {
    fn extend<T: IntoIterator<Item = (String, f64)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.add(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_bump_get() {
        let mut s = StatsReport::new();
        s.add("a", 1.0);
        s.bump("a", 2.0);
        s.bump("b", 3.0);
        assert_eq!(s.get("a"), Some(3.0));
        assert_eq!(s.get("b"), Some(3.0));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn prefix_sum_only_matches_prefix() {
        let mut s = StatsReport::new();
        s.add("dram.reads", 2.0);
        s.add("dram.writes", 3.0);
        s.add("link.req", 100.0);
        assert_eq!(s.sum_prefix("dram."), 5.0);
        assert_eq!(s.sum_prefix("link."), 100.0);
        assert_eq!(s.sum_prefix("zzz"), 0.0);
    }

    #[test]
    fn prefix_sum_boundaries() {
        // `l3.` selects strict children; `l3` additionally includes the
        // bare `l3` key; neither picks up `l3x.*`, which merely shares
        // the leading characters.
        let mut s = StatsReport::new();
        s.add("l3", 1.0);
        s.add("l3.hits", 2.0);
        s.add("l3.misses", 4.0);
        s.add("l3x.hits", 8.0);
        s.add("l4.hits", 16.0);
        assert_eq!(s.sum_prefix("l3."), 6.0);
        assert_eq!(s.sum_prefix("l3"), 7.0); // `l3` and `l3.*`, not `l3x.*`
        assert_eq!(s.sum_prefix(""), 31.0); // empty prefix sums everything
    }

    #[test]
    fn prefix_sum_does_not_alias_indexed_components() {
        // Regression: with ten or more instances, raw prefix matching
        // made `vault.1` also sum `vault.10.*` through `vault.19.*`.
        let mut s = StatsReport::new();
        s.add("vault.1.reads", 1.0);
        s.add("vault.1.writes", 2.0);
        s.add("vault.10.reads", 4.0);
        s.add("vault.19.reads", 8.0);
        s.add("vault.2.reads", 16.0);
        assert_eq!(s.sum_prefix("vault.1"), 3.0);
        assert_eq!(s.sum_prefix("vault.1."), 3.0);
        assert_eq!(s.sum_prefix("vault.10"), 4.0);
        assert_eq!(s.sum_prefix("vault"), 31.0);
        assert_eq!(s.sum_prefix("vault."), 31.0);
    }

    #[test]
    fn phase_section_strips_the_phase_segment() {
        let mut s = StatsReport::new();
        s.add("core.instructions", 100.0);
        s.add("core.phase.warmup.instructions", 30.0);
        s.add("core.phase.steady.instructions", 70.0);
        s.add("l3.phase.warmup.hits", 5.0);
        let w = s.phase_section("warmup");
        assert_eq!(w.get("core.instructions"), Some(30.0));
        assert_eq!(w.get("l3.hits"), Some(5.0));
        assert_eq!(w.len(), 2);
        assert!(s.phase_section("nope").is_empty());
    }

    #[test]
    fn merge_sums_overlaps() {
        let mut a = StatsReport::new();
        a.add("x", 1.0);
        let mut b = StatsReport::new();
        b.add("x", 2.0);
        b.add("y", 4.0);
        a.merge(&b);
        assert_eq!(a.get("x"), Some(3.0));
        assert_eq!(a.get("y"), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "was not recorded")]
    fn expect_panics_on_missing() {
        StatsReport::new().expect("ghost");
    }

    #[test]
    fn display_renders_every_entry() {
        let mut s = StatsReport::new();
        s.add("alpha", 1.0);
        s.add("beta", 2.5);
        let out = s.to_string();
        assert!(out.contains("alpha"));
        assert!(out.contains("2.5000"));
    }

    #[test]
    fn collect_and_extend() {
        let s: StatsReport = vec![("a".to_string(), 1.0)].into_iter().collect();
        assert_eq!(s.get("a"), Some(1.0));
        let mut t = StatsReport::new();
        t.extend(vec![("b".to_string(), 2.0)]);
        assert_eq!(t.get("b"), Some(2.0));
    }
}
