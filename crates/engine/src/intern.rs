//! Leak-cache interning of `&'static str` labels.
//!
//! Counter banks and phase marks hold `&'static str` labels so the hot
//! path never allocates. Snapshot restore, however, decodes labels from
//! bytes at runtime; this cache promotes them back to `'static`
//! references, deduplicated so repeated restores leak each distinct
//! label at most once (phase labels are a handful of short strings per
//! process, so the leak is bounded and deliberate).

use std::collections::BTreeSet;
use std::sync::Mutex;

static CACHE: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

/// Returns a `'static` string equal to `s`, leaking at most one copy of
/// each distinct value per process.
///
/// # Examples
///
/// ```
/// use pei_engine::intern_label;
///
/// let a = intern_label("warmup");
/// let b = intern_label(&String::from("warmup"));
/// assert!(std::ptr::eq(a, b));
/// ```
pub fn intern_label(s: &str) -> &'static str {
    let mut cache = CACHE.lock().expect("intern cache poisoned");
    if let Some(&hit) = cache.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    cache.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups() {
        let a = intern_label("phase-x");
        let b = intern_label("phase-x");
        assert!(std::ptr::eq(a, b));
        assert_ne!(intern_label("phase-y"), "phase-x");
    }
}
