//! A small, fast, deterministic RNG (SplitMix64 / xoshiro256**) used where
//! the simulator itself needs randomness (e.g. multiprogrammed workload
//! picking). Workload *input* generation uses the `rand` crate in
//! `pei-workloads`; this one exists so the core crates stay dependency-free
//! and bit-reproducible.

/// A deterministic xoshiro256** generator.
///
/// # Examples
///
/// ```
/// use pei_engine::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let r = a.gen_range(10);
/// assert!(r < 10);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SimRng { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniformly distributed value in `0..bound` (Lemire reduction).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be nonzero");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

impl pei_types::snap::SnapshotState for SimRng {
    fn save(&self, e: &mut pei_types::snap::Encoder) {
        for &w in &self.s {
            e.u64(w);
        }
    }

    fn load(&mut self, d: &mut pei_types::snap::Decoder<'_>) -> pei_types::snap::SnapResult<()> {
        for w in &mut self.s {
            *w = d.u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_respects_bound() {
        let mut r = SimRng::seed_from(99);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn f64_in_unit_interval_and_spread() {
        let mut r = SimRng::seed_from(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
