//! Typed event counters: dense `u64` slots bumped on the hot path,
//! flushed into a [`StatsReport`] only at end of run.
//!
//! Components register each counter once at construction and get back a
//! copyable [`CounterId`] index; per-event bumps are then a single array
//! add — no `String` formatting and no `BTreeMap` walk until the final
//! report. See DESIGN.md §"Event kernel and outbox contract".

use crate::StatsReport;
use pei_types::snap::{check_len, Decoder, Encoder, SnapResult, SnapshotState};

/// Index of a registered counter (a dense slot in a [`Counters`] bank).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// A bank of named `u64` counters.
///
/// # Examples
///
/// ```
/// use pei_engine::{Counters, StatsReport};
///
/// let mut c = Counters::new();
/// let hits = c.register("hits");
/// let misses = c.register("misses");
/// c.inc(hits);
/// c.add(misses, 2);
/// assert_eq!(c.get(hits), 1);
///
/// let mut stats = StatsReport::new();
/// c.flush("l1.", &mut stats);
/// assert_eq!(stats.expect("l1.misses"), 2.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Counters {
    names: Vec<&'static str>,
    slots: Vec<u64>,
    /// Labeled point-in-time copies of `slots` (see
    /// [`snapshot`](Counters::snapshot)); empty unless a caller marks
    /// phases, so the default flush output is unchanged.
    snapshots: Vec<(&'static str, Vec<u64>)>,
}

impl Counters {
    /// Creates an empty bank.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Registers a counter under `name`, returning its slot id.
    /// Construction-time only; names need not be unique (duplicates
    /// would sum in [`flush`](Counters::flush), so don't).
    pub fn register(&mut self, name: &'static str) -> CounterId {
        let id = CounterId(self.names.len() as u32);
        self.names.push(name);
        self.slots.push(0);
        id
    }

    /// Adds one to the counter. Hot path: one indexed add.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.slots[id.0 as usize] += 1;
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.slots[id.0 as usize] += n;
    }

    /// Current value.
    pub fn get(&self, id: CounterId) -> u64 {
        self.slots[id.0 as usize]
    }

    /// Labels the current counter values as the end of phase `label`.
    /// Off the hot path (one `Vec` clone); call at phase boundaries
    /// only. [`flush`](Counters::flush) then additionally emits each
    /// phase's *interval* (the per-counter delta since the previous
    /// snapshot) as `{prefix}phase.{label}.{name}`, with the tail after
    /// the last snapshot labeled `steady`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pei_engine::{Counters, StatsReport};
    ///
    /// let mut c = Counters::new();
    /// let hits = c.register("hits");
    /// c.add(hits, 3);
    /// c.snapshot("warmup");
    /// c.add(hits, 10);
    ///
    /// let mut stats = StatsReport::new();
    /// c.flush("l1.", &mut stats);
    /// assert_eq!(stats.expect("l1.hits"), 13.0);
    /// assert_eq!(stats.expect("l1.phase.warmup.hits"), 3.0);
    /// assert_eq!(stats.expect("l1.phase.steady.hits"), 10.0);
    /// ```
    pub fn snapshot(&mut self, label: &'static str) {
        self.snapshots.push((label, self.slots.clone()));
    }

    /// Writes every counter into `stats` as `{prefix}{name}`,
    /// accumulating into existing keys. End-of-run only.
    pub fn flush(&self, prefix: &str, stats: &mut StatsReport) {
        self.flush_if(prefix, stats, |_| true);
    }

    /// Like [`flush`](Counters::flush), but only for counters whose name
    /// passes `keep` — for banks holding internal tallies (fed to other
    /// models at end of run) that are not part of the published report.
    /// Phase intervals recorded via [`snapshot`](Counters::snapshot) are
    /// emitted under `{prefix}phase.{label}.{name}` and filtered by the
    /// same `keep` (on the bare counter name).
    pub fn flush_if(&self, prefix: &str, stats: &mut StatsReport, keep: impl Fn(&str) -> bool) {
        for (name, &v) in self.names.iter().zip(&self.slots) {
            if keep(name) {
                stats.bump(format!("{prefix}{name}"), v as f64);
            }
        }
        if self.snapshots.is_empty() {
            return;
        }
        let zeros = vec![0u64; self.slots.len()];
        let mut prev = &zeros;
        for (label, snap) in &self.snapshots {
            self.flush_interval(prefix, label, prev, snap, stats, &keep);
            prev = snap;
        }
        self.flush_interval(prefix, "steady", prev, &self.slots, stats, &keep);
    }

    /// Emits `end - start` for every kept counter as
    /// `{prefix}phase.{label}.{name}`.
    fn flush_interval(
        &self,
        prefix: &str,
        label: &str,
        start: &[u64],
        end: &[u64],
        stats: &mut StatsReport,
        keep: &impl Fn(&str) -> bool,
    ) {
        for ((name, &s), &e) in self.names.iter().zip(start).zip(end) {
            if keep(name) {
                stats.bump(format!("{prefix}phase.{label}.{name}"), (e - s) as f64);
            }
        }
    }
}

impl SnapshotState for Counters {
    /// Counter *names* are registered at construction and identical on
    /// any machine built the same way, so only the values and the
    /// labeled phase snapshots travel.
    fn save(&self, e: &mut Encoder) {
        e.seq(self.slots.len());
        for &v in &self.slots {
            e.u64(v);
        }
        e.seq(self.snapshots.len());
        for (label, vals) in &self.snapshots {
            e.str(label);
            for &v in vals {
                e.u64(v);
            }
        }
    }

    fn load(&mut self, d: &mut Decoder<'_>) -> SnapResult<()> {
        let n = d.seq(8)?;
        check_len("counter slots", n, self.slots.len())?;
        for slot in &mut self.slots {
            *slot = d.u64()?;
        }
        let snaps = d.seq(4)?;
        self.snapshots.clear();
        for _ in 0..snaps {
            let label = crate::intern_label(&d.str()?);
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                vals.push(d.u64()?);
            }
            self.snapshots.push((label, vals));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_inc_get() {
        let mut c = Counters::new();
        let a = c.register("a");
        let b = c.register("b");
        c.inc(a);
        c.inc(a);
        c.add(b, 10);
        assert_eq!(c.get(a), 2);
        assert_eq!(c.get(b), 10);
    }

    #[test]
    fn flush_prefixes_and_accumulates() {
        let mut c = Counters::new();
        let a = c.register("reads");
        c.add(a, 3);
        let mut stats = StatsReport::new();
        stats.add("dram.reads", 1.0);
        c.flush("dram.", &mut stats);
        assert_eq!(stats.expect("dram.reads"), 4.0);
    }

    #[test]
    fn flush_if_filters_by_name() {
        let mut c = Counters::new();
        let pub_ = c.register("hits");
        let internal = c.register("accesses");
        c.inc(pub_);
        c.inc(internal);
        let mut stats = StatsReport::new();
        c.flush_if("l3.", &mut stats, |n| n != "accesses");
        assert_eq!(stats.expect("l3.hits"), 1.0);
        assert_eq!(stats.get("l3.accesses"), None);
    }

    #[test]
    fn snapshots_emit_phase_intervals() {
        let mut c = Counters::new();
        let a = c.register("reads");
        let b = c.register("writes");
        c.add(a, 5);
        c.snapshot("warmup");
        c.add(a, 2);
        c.add(b, 7);
        c.snapshot("mid");
        c.inc(b);
        let mut stats = StatsReport::new();
        c.flush("v.", &mut stats);
        // Totals are unchanged by snapshotting.
        assert_eq!(stats.expect("v.reads"), 7.0);
        assert_eq!(stats.expect("v.writes"), 8.0);
        // Intervals are deltas between consecutive snapshots.
        assert_eq!(stats.expect("v.phase.warmup.reads"), 5.0);
        assert_eq!(stats.expect("v.phase.warmup.writes"), 0.0);
        assert_eq!(stats.expect("v.phase.mid.reads"), 2.0);
        assert_eq!(stats.expect("v.phase.mid.writes"), 7.0);
        // The tail after the last snapshot is the steady interval.
        assert_eq!(stats.expect("v.phase.steady.reads"), 0.0);
        assert_eq!(stats.expect("v.phase.steady.writes"), 1.0);
    }

    #[test]
    fn no_snapshots_means_no_phase_keys() {
        let mut c = Counters::new();
        let a = c.register("reads");
        c.inc(a);
        let mut stats = StatsReport::new();
        c.flush("v.", &mut stats);
        assert_eq!(stats.len(), 1, "only the total must be emitted");
    }

    #[test]
    fn phase_intervals_respect_flush_filter() {
        let mut c = Counters::new();
        let pub_ = c.register("hits");
        let internal = c.register("accesses");
        c.inc(pub_);
        c.inc(internal);
        c.snapshot("warmup");
        let mut stats = StatsReport::new();
        c.flush_if("l3.", &mut stats, |n| n != "accesses");
        assert_eq!(stats.expect("l3.phase.warmup.hits"), 1.0);
        assert_eq!(stats.get("l3.phase.warmup.accesses"), None);
    }

    #[test]
    fn snapshot_state_round_trips_slots_and_phases() {
        let mut a = Counters::new();
        let x = a.register("x");
        let y = a.register("y");
        a.add(x, 5);
        a.snapshot("warmup");
        a.add(y, 9);
        let mut e = Encoder::new();
        a.save(&mut e);
        let bytes = e.into_bytes();

        let mut b = Counters::new();
        b.register("x");
        b.register("y");
        b.load(&mut Decoder::new(&bytes)).unwrap();
        let mut sa = StatsReport::new();
        let mut sb = StatsReport::new();
        a.flush("c.", &mut sa);
        b.flush("c.", &mut sb);
        assert_eq!(format!("{sa:?}"), format!("{sb:?}"));
    }

    #[test]
    fn snapshot_state_rejects_wrong_geometry() {
        let mut a = Counters::new();
        a.register("only");
        let mut e = Encoder::new();
        a.save(&mut e);
        let bytes = e.into_bytes();
        let mut b = Counters::new(); // zero slots registered
        assert!(b.load(&mut Decoder::new(&bytes)).is_err());
    }

    #[test]
    fn zero_counters_still_flush() {
        let mut c = Counters::new();
        c.register("idle");
        let mut stats = StatsReport::new();
        c.flush("x.", &mut stats);
        assert_eq!(stats.expect("x.idle"), 0.0);
    }
}
