//! Typed event counters: dense `u64` slots bumped on the hot path,
//! flushed into a [`StatsReport`] only at end of run.
//!
//! Components register each counter once at construction and get back a
//! copyable [`CounterId`] index; per-event bumps are then a single array
//! add — no `String` formatting and no `BTreeMap` walk until the final
//! report. See DESIGN.md §"Event kernel and outbox contract".

use crate::StatsReport;

/// Index of a registered counter (a dense slot in a [`Counters`] bank).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// A bank of named `u64` counters.
///
/// # Examples
///
/// ```
/// use pei_engine::{Counters, StatsReport};
///
/// let mut c = Counters::new();
/// let hits = c.register("hits");
/// let misses = c.register("misses");
/// c.inc(hits);
/// c.add(misses, 2);
/// assert_eq!(c.get(hits), 1);
///
/// let mut stats = StatsReport::new();
/// c.flush("l1.", &mut stats);
/// assert_eq!(stats.expect("l1.misses"), 2.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Counters {
    names: Vec<&'static str>,
    slots: Vec<u64>,
}

impl Counters {
    /// Creates an empty bank.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Registers a counter under `name`, returning its slot id.
    /// Construction-time only; names need not be unique (duplicates
    /// would sum in [`flush`](Counters::flush), so don't).
    pub fn register(&mut self, name: &'static str) -> CounterId {
        let id = CounterId(self.names.len() as u32);
        self.names.push(name);
        self.slots.push(0);
        id
    }

    /// Adds one to the counter. Hot path: one indexed add.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.slots[id.0 as usize] += 1;
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.slots[id.0 as usize] += n;
    }

    /// Current value.
    pub fn get(&self, id: CounterId) -> u64 {
        self.slots[id.0 as usize]
    }

    /// Writes every counter into `stats` as `{prefix}{name}`,
    /// accumulating into existing keys. End-of-run only.
    pub fn flush(&self, prefix: &str, stats: &mut StatsReport) {
        self.flush_if(prefix, stats, |_| true);
    }

    /// Like [`flush`](Counters::flush), but only for counters whose name
    /// passes `keep` — for banks holding internal tallies (fed to other
    /// models at end of run) that are not part of the published report.
    pub fn flush_if(&self, prefix: &str, stats: &mut StatsReport, keep: impl Fn(&str) -> bool) {
        for (name, &v) in self.names.iter().zip(&self.slots) {
            if keep(name) {
                stats.bump(format!("{prefix}{name}"), v as f64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_inc_get() {
        let mut c = Counters::new();
        let a = c.register("a");
        let b = c.register("b");
        c.inc(a);
        c.inc(a);
        c.add(b, 10);
        assert_eq!(c.get(a), 2);
        assert_eq!(c.get(b), 10);
    }

    #[test]
    fn flush_prefixes_and_accumulates() {
        let mut c = Counters::new();
        let a = c.register("reads");
        c.add(a, 3);
        let mut stats = StatsReport::new();
        stats.add("dram.reads", 1.0);
        c.flush("dram.", &mut stats);
        assert_eq!(stats.expect("dram.reads"), 4.0);
    }

    #[test]
    fn flush_if_filters_by_name() {
        let mut c = Counters::new();
        let pub_ = c.register("hits");
        let internal = c.register("accesses");
        c.inc(pub_);
        c.inc(internal);
        let mut stats = StatsReport::new();
        c.flush_if("l3.", &mut stats, |n| n != "accesses");
        assert_eq!(stats.expect("l3.hits"), 1.0);
        assert_eq!(stats.get("l3.accesses"), None);
    }

    #[test]
    fn zero_counters_still_flush() {
        let mut c = Counters::new();
        c.register("idle");
        let mut stats = StatsReport::new();
        c.flush("x.", &mut stats);
        assert_eq!(stats.expect("x.idle"), 0.0);
    }
}
