//! Clock-domain arithmetic.
//!
//! All timestamps in the simulator are host-clock cycles (4 GHz in the paper
//! configuration). The memory side (HMC logic die, vault controllers,
//! memory-side PCUs) runs at 2 GHz, i.e. every `divider = 2` host cycles.

use pei_types::Cycle;

/// A derived clock domain described by its divider relative to the host
/// clock and the host clock's frequency in GHz.
///
/// # Examples
///
/// ```
/// use pei_engine::ClockDomain;
///
/// // 2 GHz memory domain under a 4 GHz host clock.
/// let mem = ClockDomain::new(2, 4.0);
/// assert_eq!(mem.align_up(5), 6);          // next 2 GHz edge
/// assert_eq!(mem.cycles(3), 6);            // 3 memory cycles = 6 host cycles
/// assert_eq!(mem.ns_to_cycles(13.75), 56); // tCL at 2 GHz, in host cycles
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockDomain {
    divider: u64,
    host_ghz: f64,
}

impl ClockDomain {
    /// Creates a domain ticking every `divider` host cycles under a host
    /// clock of `host_ghz` GHz.
    ///
    /// # Panics
    ///
    /// Panics if `divider` is zero or `host_ghz` is not positive.
    pub fn new(divider: u64, host_ghz: f64) -> Self {
        assert!(divider > 0, "clock divider must be nonzero");
        assert!(host_ghz > 0.0, "host frequency must be positive");
        ClockDomain { divider, host_ghz }
    }

    /// The host clock itself.
    pub fn host(host_ghz: f64) -> Self {
        Self::new(1, host_ghz)
    }

    /// Divider relative to the host clock.
    pub fn divider(&self) -> u64 {
        self.divider
    }

    /// Rounds `at` up to the next edge of this domain (identity if `at` is
    /// already on an edge).
    #[inline]
    pub fn align_up(&self, at: Cycle) -> Cycle {
        at.next_multiple_of(self.divider)
    }

    /// Converts `n` cycles of this domain into host cycles.
    #[inline]
    pub fn cycles(&self, n: u64) -> Cycle {
        n * self.divider
    }

    /// Converts a duration in nanoseconds into host cycles, rounded up to a
    /// whole number of this domain's cycles (DRAM timing parameters are
    /// specified in ns).
    ///
    /// Contract: a zero duration is zero cycles; any positive duration,
    /// however small, rounds up to at least one full domain cycle —
    /// sub-resolution timing parameters cost a whole edge, they are
    /// never silently dropped. (A previous version also inflated an
    /// exact 0.0 ns to a full cycle.)
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or NaN.
    pub fn ns_to_cycles(&self, ns: f64) -> Cycle {
        assert!(
            ns >= 0.0,
            "duration must be a non-negative number of ns, got {ns}"
        );
        if ns == 0.0 {
            return 0;
        }
        let host_cycles = ns * self.host_ghz;
        // ceil of a positive value is >= 1, so this never yields zero.
        let domain_cycles = (host_cycles / self.divider as f64).ceil() as u64;
        domain_cycles * self.divider
    }

    /// Converts a bandwidth in GB/s into bytes per host cycle.
    pub fn gbps_to_bytes_per_cycle(&self, gb_per_s: f64) -> f64 {
        gb_per_s / self.host_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_is_idempotent_and_monotone() {
        let d = ClockDomain::new(2, 4.0);
        for at in 0..20 {
            let a = d.align_up(at);
            assert!(a >= at);
            assert_eq!(a % 2, 0);
            assert_eq!(d.align_up(a), a);
        }
    }

    #[test]
    fn paper_dram_timings() {
        // tCL = tRCD = tRP = 13.75 ns at a 2 GHz memory clock under a 4 GHz
        // host clock: 13.75 ns * 4 GHz = 55 host cycles, rounded up to the
        // 2-cycle grid = 56.
        let mem = ClockDomain::new(2, 4.0);
        assert_eq!(mem.ns_to_cycles(13.75), 56);
    }

    #[test]
    fn sub_resolution_durations() {
        let mem = ClockDomain::new(2, 4.0);
        // Exactly zero is zero cycles, not a phantom full cycle.
        assert_eq!(mem.ns_to_cycles(0.0), 0);
        // 0.1 ns = 0.4 host cycles: rounds up to one 2-cycle domain edge.
        assert_eq!(mem.ns_to_cycles(0.1), 2);
        // Any positive duration costs at least one domain cycle.
        assert_eq!(mem.ns_to_cycles(1e-9), 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_rejected() {
        ClockDomain::new(2, 4.0).ns_to_cycles(-1.0);
    }

    #[test]
    fn bandwidth_conversion() {
        let host = ClockDomain::host(4.0);
        // 40 GB/s at 4 GHz = 10 bytes per host cycle.
        assert!((host.gbps_to_bytes_per_cycle(40.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "divider")]
    fn zero_divider_rejected() {
        ClockDomain::new(0, 4.0);
    }
}
