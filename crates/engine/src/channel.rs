//! Bandwidth and occupancy primitives shared by links, TSVs, crossbar ports
//! and DRAM banks.

use pei_types::snap::{check_len, Decoder, Encoder, SnapResult, SnapshotState};
use pei_types::Cycle;

/// A serialized, bandwidth-limited simplex channel.
///
/// Transfers are granted in arrival order; each transfer occupies the
/// channel for `bytes / bytes_per_cycle` cycles. Serialization time is
/// accounted in 1/4096ths of a cycle, so long-run bandwidth error is below
/// 0.025 % for any byte/rate combination. The model matches how the paper
/// accounts off-chip request / response bandwidth in flits.
///
/// # Examples
///
/// ```
/// use pei_engine::BwChannel;
///
/// let mut link = BwChannel::new(16.0, 4); // 16 B/cycle, 4-cycle latency
/// // A 64-byte packet arriving at cycle 0 finishes serializing at cycle 4
/// // and is delivered 4 cycles later.
/// assert_eq!(link.transfer(0, 64), 8);
/// // A back-to-back packet queues behind the first.
/// assert_eq!(link.transfer(0, 64), 12);
/// ```
#[derive(Debug, Clone)]
pub struct BwChannel {
    bytes_per_cycle: f64,
    latency: Cycle,
    /// Cycle at which the channel becomes free, in 1/4096ths of a cycle to
    /// keep fractional serialization near-exact without floats in state.
    /// Held as u128: the fixed-point product `now * 4096` would wrap a
    /// u64 once `now` exceeds ~2^52 host cycles, silently corrupting
    /// delivery times on very long runs.
    free_at_fx: u128,
    bytes_carried: u64,
}

const FX: u64 = 4096;

impl BwChannel {
    /// Creates a channel carrying `bytes_per_cycle` with a fixed
    /// propagation `latency` added to every transfer.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive.
    pub fn new(bytes_per_cycle: f64, latency: Cycle) -> Self {
        assert!(bytes_per_cycle > 0.0, "channel bandwidth must be positive");
        BwChannel {
            bytes_per_cycle,
            latency,
            free_at_fx: 0,
            bytes_carried: 0,
        }
    }

    /// Enqueues a transfer of `bytes` arriving at cycle `now` and returns
    /// the cycle at which it is fully delivered at the far end.
    pub fn transfer(&mut self, now: Cycle, bytes: u64) -> Cycle {
        let start = self.free_at_fx.max(now as u128 * FX as u128);
        let dur = ((bytes as f64 / self.bytes_per_cycle) * FX as f64).ceil() as u64;
        self.free_at_fx = start + dur as u128;
        self.bytes_carried += bytes;
        self.free_at_fx.div_ceil(FX as u128) as Cycle + self.latency
    }

    /// Total bytes ever carried (for bandwidth-consumption statistics).
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// The earliest cycle a new transfer could begin serializing.
    pub fn free_at(&self) -> Cycle {
        self.free_at_fx.div_ceil(FX as u128) as Cycle
    }
}

/// Tracks when a single-ported resource (DRAM bank, cache bank, PCU
/// compute logic) next becomes free.
///
/// # Examples
///
/// ```
/// use pei_engine::Occupancy;
///
/// let mut bank = Occupancy::new();
/// assert_eq!(bank.reserve(10, 5), 10); // starts immediately, busy to 15
/// assert_eq!(bank.reserve(12, 5), 15); // queued behind the first
/// assert_eq!(bank.free_at(), 20);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Occupancy {
    free_at: Cycle,
    busy_cycles: u64,
}

impl Occupancy {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Occupancy::default()
    }

    /// Reserves the resource for `duration` cycles starting no earlier than
    /// `now`; returns the actual start cycle.
    pub fn reserve(&mut self, now: Cycle, duration: Cycle) -> Cycle {
        let start = self.free_at.max(now);
        self.free_at = start + duration;
        self.busy_cycles += duration;
        start
    }

    /// Cycle at which the resource becomes free.
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Total busy cycles accumulated (utilization statistics).
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }
}

/// A pool of `n` identical resources (e.g. a PCU with issue width > 1):
/// a reservation takes whichever unit frees up first.
#[derive(Debug, Clone)]
pub struct OccupancyPool {
    units: Vec<Occupancy>,
}

impl OccupancyPool {
    /// Creates a pool of `n` idle units.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "pool must have at least one unit");
        OccupancyPool {
            units: vec![Occupancy::new(); n],
        }
    }

    /// Reserves the earliest-free unit for `duration` starting no earlier
    /// than `now`; returns the start cycle.
    pub fn reserve(&mut self, now: Cycle, duration: Cycle) -> Cycle {
        let unit = self
            .units
            .iter_mut()
            .min_by_key(|u| u.free_at())
            .expect("pool is nonempty");
        unit.reserve(now, duration)
    }

    /// Number of units in the pool.
    pub fn width(&self) -> usize {
        self.units.len()
    }
}

impl SnapshotState for BwChannel {
    /// Bandwidth and latency are construction parameters; only the
    /// occupancy accumulator and the byte tally travel.
    fn save(&self, e: &mut Encoder) {
        e.u128(self.free_at_fx);
        e.u64(self.bytes_carried);
    }

    fn load(&mut self, d: &mut Decoder<'_>) -> SnapResult<()> {
        self.free_at_fx = d.u128()?;
        self.bytes_carried = d.u64()?;
        Ok(())
    }
}

impl SnapshotState for Occupancy {
    fn save(&self, e: &mut Encoder) {
        e.u64(self.free_at);
        e.u64(self.busy_cycles);
    }

    fn load(&mut self, d: &mut Decoder<'_>) -> SnapResult<()> {
        self.free_at = d.u64()?;
        self.busy_cycles = d.u64()?;
        Ok(())
    }
}

impl SnapshotState for OccupancyPool {
    fn save(&self, e: &mut Encoder) {
        e.seq(self.units.len());
        for u in &self.units {
            u.save(e);
        }
    }

    fn load(&mut self, d: &mut Decoder<'_>) -> SnapResult<()> {
        let n = d.seq(16)?;
        check_len("occupancy pool units", n, self.units.len())?;
        for u in &mut self.units {
            u.load(d)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_serializes_back_to_back() {
        let mut c = BwChannel::new(8.0, 0);
        assert_eq!(c.transfer(0, 16), 2);
        assert_eq!(c.transfer(0, 16), 4);
        assert_eq!(c.transfer(100, 8), 101);
        assert_eq!(c.bytes_carried(), 40);
    }

    #[test]
    fn channel_fractional_bandwidth_is_exact_over_window() {
        // 10 B/cycle; 1000 transfers of 16 B must take exactly 1600 cycles
        // of serialization, not 1000 * ceil(1.6) = 2000.
        let mut c = BwChannel::new(10.0, 0);
        let mut last = 0;
        for _ in 0..1000 {
            last = c.transfer(0, 16);
        }
        // 16 kB at 10 B/cycle is 1600 cycles; allow <0.025% accounting skew.
        assert!((1600..=1601).contains(&last), "last = {last}");
    }

    #[test]
    fn channel_latency_added_after_serialization() {
        let mut c = BwChannel::new(16.0, 10);
        assert_eq!(c.transfer(0, 16), 11);
    }

    #[test]
    fn channel_exact_beyond_2_52_cycles() {
        // Regression: `now * 4096` wrapped u64 once `now` passed ~2^52,
        // which made late-run transfers start "in the past". The fixed-
        // point accumulator is u128 now; delivery times stay exact.
        let mut c = BwChannel::new(16.0, 4);
        let now = 1u64 << 53;
        assert_eq!(c.transfer(now, 64), now + 8); // 4 serialize + 4 latency
        assert_eq!(c.transfer(now, 64), now + 12); // queued behind the first
        assert_eq!(c.free_at(), now + 8);
        assert_eq!(c.bytes_carried(), 128);
    }

    #[test]
    fn occupancy_reserve_ordering() {
        let mut o = Occupancy::new();
        assert_eq!(o.reserve(0, 3), 0);
        assert_eq!(o.reserve(1, 3), 3);
        assert_eq!(o.reserve(100, 1), 100);
        assert_eq!(o.busy_cycles(), 7);
    }

    #[test]
    fn pool_uses_all_units() {
        let mut p = OccupancyPool::new(2);
        assert_eq!(p.reserve(0, 10), 0); // unit 0
        assert_eq!(p.reserve(0, 10), 0); // unit 1
        assert_eq!(p.reserve(0, 10), 10); // back to unit 0
        assert_eq!(p.width(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_pool_rejected() {
        OccupancyPool::new(0);
    }
}
