//! Property-based tests of the simulation kernel.

use pei_engine::{BwChannel, EventQueue, Occupancy, SimRng};
use proptest::prelude::*;

proptest! {
    /// The event queue is a stable priority queue: pops are sorted by
    /// time, and same-time events keep insertion order.
    #[test]
    fn event_queue_stable_sort(times in proptest::collection::vec(0u64..50, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "instability at {t}/{i}");
            }
            prop_assert_eq!(times[i], t);
            last = Some((t, i));
        }
    }

    /// Same-cycle FIFO order survives arbitrary interleavings of
    /// schedules and pops — including schedules issued *while popping*,
    /// which must land behind every event already queued for that cycle
    /// (the system relies on this when a handler re-schedules work for
    /// the cycle it is currently draining).
    #[test]
    fn event_queue_fifo_under_interleaving(
        ops in proptest::collection::vec((0u64..6, 0u32..4), 1..300),
    ) {
        use std::collections::{BTreeMap, VecDeque};
        // Reference model: per-cycle FIFO queues keyed by time; a pop
        // must return the front of the first non-empty cycle.
        let mut q = EventQueue::new();
        let mut model: BTreeMap<u64, VecDeque<usize>> = BTreeMap::new();
        let mut next_id = 0usize;
        for &(t, kind) in &ops {
            if kind == 1 || kind == 2 {
                q.schedule(t, next_id);
                model.entry(t).or_default().push_back(next_id);
                next_id += 1;
            } else if let Some((pt, id)) = q.pop() {
                let (&mt, fifo) = model
                    .iter_mut()
                    .find(|(_, f)| !f.is_empty())
                    .expect("queue produced an event the model does not have");
                prop_assert_eq!(pt, mt, "popped out of time order");
                prop_assert_eq!(id, fifo.pop_front().unwrap(), "same-cycle FIFO violated");
                if kind == 3 {
                    // Mid-drain schedule at the cycle being popped.
                    q.schedule(pt, next_id);
                    model.entry(pt).or_default().push_back(next_id);
                    next_id += 1;
                }
            } else {
                prop_assert!(model.values().all(|f| f.is_empty()), "queue empty, model not");
            }
        }
        while let Some((pt, id)) = q.pop() {
            let (&mt, fifo) = model
                .iter_mut()
                .find(|(_, f)| !f.is_empty())
                .expect("queue produced an event the model does not have");
            prop_assert_eq!(pt, mt, "drain popped out of time order");
            prop_assert_eq!(id, fifo.pop_front().unwrap(), "drain violated same-cycle FIFO");
        }
        prop_assert!(model.values().all(|f| f.is_empty()), "events lost in the queue");
    }

    /// Differential test: the calendar queue must agree, pop for pop,
    /// with a plainly-correct ordered-map model under arbitrary
    /// interleavings of schedules and pops. Times are drawn from three
    /// bands — inside the window, just around the horizon boundary, and
    /// far beyond it (including past 2^53) — so bucket wraparound, the
    /// overflow refill path, and the window-jump path all get exercised,
    /// as do schedules issued mid-drain and schedules below the window
    /// base after it has advanced.
    #[test]
    fn calendar_queue_matches_ordered_model(
        ops in proptest::collection::vec(
            (
                prop_oneof![
                    0u64..20,                          // in-window
                    6u64..11,                          // horizon boundary (window = 8)
                    100u64..140,                       // beyond horizon
                    (1u64 << 53)..(1u64 << 53) + 4,    // far beyond, past f64 precision
                ],
                0u32..5,
            ),
            1..400,
        ),
    ) {
        use std::collections::BTreeMap;
        // Window of 8 cycles so a 400-op sequence wraps it many times.
        let mut q = pei_engine::EventQueue::with_horizon(8);
        // Reference model: (time, seq) -> id in an ordered map; the
        // front entry is by definition the correct next pop.
        let mut model: BTreeMap<(u64, u64), usize> = BTreeMap::new();
        let mut next_id = 0usize;
        let mut seq = 0u64;
        for &(t, kind) in &ops {
            if kind <= 1 {
                seq += 1;
                q.schedule(t, next_id);
                model.insert((t, seq), next_id);
                next_id += 1;
            } else if let Some((pt, id)) = q.pop() {
                let (&(mt, mseq), &mid) = model.iter().next()
                    .expect("queue produced an event the model does not have");
                prop_assert_eq!((pt, id), (mt, mid), "pop diverged from model");
                model.remove(&(mt, mseq));
                if kind == 4 {
                    // Mid-drain schedule at the cycle just popped.
                    seq += 1;
                    q.schedule(pt, next_id);
                    model.insert((pt, seq), next_id);
                    next_id += 1;
                }
            } else {
                prop_assert!(model.is_empty(), "queue empty, model not");
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.peek_time(), model.keys().next().map(|&(t, _)| t));
        }
        while let Some((pt, id)) = q.pop() {
            let (&(mt, mseq), &mid) = model.iter().next()
                .expect("drain produced an event the model does not have");
            prop_assert_eq!((pt, id), (mt, mid), "drain diverged from model");
            model.remove(&(mt, mseq));
        }
        prop_assert!(model.is_empty(), "events lost in the queue");
    }

    /// Channel deliveries are monotone in submission order and never
    /// faster than serialization allows.
    #[test]
    fn channel_monotone_and_bandwidth_bounded(
        sizes in proptest::collection::vec(1u64..256, 1..100),
        bw in 1u32..64,
    ) {
        let bw = bw as f64;
        let mut c = BwChannel::new(bw, 0);
        let mut prev = 0;
        for &s in &sizes {
            let at = c.transfer(0, s);
            prop_assert!(at >= prev, "delivery order inverted");
            prev = at;
        }
        let total: u64 = sizes.iter().sum();
        let min_cycles = (total as f64 / bw).floor() as u64;
        prop_assert!(prev >= min_cycles, "faster than the wire: {prev} < {min_cycles}");
        // And within one cycle of accounting slack per transfer.
        prop_assert!(prev <= min_cycles + sizes.len() as u64 + 2);
        prop_assert_eq!(c.bytes_carried(), total);
    }

    /// Occupancy reservations never overlap and conserve busy time.
    #[test]
    fn occupancy_no_overlap(reqs in proptest::collection::vec((0u64..1000, 1u64..50), 1..100)) {
        let mut o = Occupancy::new();
        let mut intervals: Vec<(u64, u64)> = Vec::new();
        for &(now, dur) in &reqs {
            let start = o.reserve(now, dur);
            prop_assert!(start >= now);
            intervals.push((start, start + dur));
        }
        intervals.sort_unstable();
        for w in intervals.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlapping reservations");
        }
        let busy: u64 = reqs.iter().map(|&(_, d)| d).sum();
        prop_assert_eq!(o.busy_cycles(), busy);
    }

    /// The RNG's bounded generator is uniform enough and always in range.
    #[test]
    fn rng_range_respected(seed in any::<u64>(), bound in 1u64..10_000) {
        let mut r = SimRng::seed_from(seed);
        for _ in 0..100 {
            prop_assert!(r.gen_range(bound) < bound);
        }
    }

    /// Shuffle produces a permutation for any seed and length.
    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), n in 0usize..200) {
        let mut r = SimRng::seed_from(seed);
        let mut v: Vec<usize> = (0..n).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}
