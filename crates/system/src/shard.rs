//! Conservative parallel (sharded) execution of the system loop.
//!
//! [`System::run_sharded`] partitions the machine into a **host shard**
//! (cores, private caches, L3, crossbar, link controller, host PCUs,
//! PMU) and one **cube shard** per HMC cube (its vaults and memory-side
//! PCUs), each owning a private calendar [`EventQueue`]. Shards exchange
//! timestamped messages through per-cube mailboxes that are drained at
//! epoch barriers, in a fixed order — which is what makes the run
//! deterministic and byte-identical for *any* thread count, including
//! one. DESIGN.md §10 derives the epoch math and the ordering
//! guarantees; the short version:
//!
//! - The epoch window is `L = link_latency / 2` host cycles
//!   ([`crate::MachineConfig::shard_epoch`]).
//! - Super-step `s` runs the host over `W_s = [sL, (s+1)L)` while every
//!   cube shard concurrently runs `W_{s+1}` — a *skewed* pipeline. The
//!   host→cube edge always crosses the serialized off-chip link
//!   (`≥ link_latency = 2L` of lookahead), so a request issued in `W_s`
//!   lands at or after `(s+2)L`, which cubes only reach in step `s+1`,
//!   after barrier delivery. The cube→host edge has zero lookahead, but
//!   the skew means cubes finish `W_{s+1}` (in real time) before the
//!   host begins it.
//! - At each barrier the host merges cube outputs *in cube-index
//!   order*: completions are scheduled onto the host queue and trace
//!   records are appended to the sink in that fixed order, so no
//!   thread-interleaving nondeterminism can leak into results.
//!
//! The partition (host + one shard per cube) is fixed by the machine
//! configuration, not by the thread count: `--shards N` only chooses
//! how many OS threads execute the fixed set of shards (`N = 1` runs
//! them all inline on the calling thread). Checked-mode sweeps run at
//! epoch barriers with every shard quiesced and its components
//! temporarily re-installed into the `System`, so all auditors see the
//! whole machine exactly as the sequential engine's sweeps do.

use crate::check::{FailureKind, RunOutcome};
use crate::system::{deliver_mem_pcu_out, deliver_vault_out, Dest, Ev, RunResult, System};
use crate::tracer::Tracer;
use pei_core::{MemPcu, MemPcuOut};
use pei_engine::{EpochBarrier, EventQueue, Outbox};
use pei_hmc::{Vault, VaultOut};
use pei_mem::BackingStore;
use pei_trace::{CompId, KindId, Record};
use pei_types::Cycle;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// The simulated physical memory: owned directly in sequential runs,
/// shared behind a mutex while cube shards hold clones.
///
/// The two mutation sites (host PCU fallback writes, memory-PCU
/// read-modify-writes) can race only on *different* blocks: a block's
/// PIM-directory lock serializes its writers, and the release→relaunch
/// round trip crosses the off-chip link (≥ `2L`), so conflicting
/// accesses are always separated by more than one epoch — real-time
/// lock order matches simulated order. The mutex exists for the
/// `HashMap`'s structural integrity, not for event ordering.
pub(crate) enum StoreSlot {
    /// Sequential: the `System` owns the store outright.
    Owned(BackingStore),
    /// Sharded run in progress: shards hold `Arc` clones.
    Shared(Arc<Mutex<BackingStore>>),
}

impl StoreSlot {
    /// Moves the owned store behind a shared mutex and returns a handle
    /// for the cube shards.
    fn share(&mut self) -> Arc<Mutex<BackingStore>> {
        let prev = std::mem::replace(self, StoreSlot::Owned(BackingStore::new()));
        let StoreSlot::Owned(mem) = prev else {
            panic!("store is already shared (nested sharded run?)");
        };
        let arc = Arc::new(Mutex::new(mem));
        *self = StoreSlot::Shared(Arc::clone(&arc));
        arc
    }

    /// Reclaims sole ownership once every shard handle is dropped.
    fn unshare(&mut self) {
        let prev = std::mem::replace(self, StoreSlot::Owned(BackingStore::new()));
        let StoreSlot::Shared(arc) = prev else {
            panic!("store is not shared");
        };
        let mem = Arc::try_unwrap(arc)
            .unwrap_or_else(|_| panic!("all shard store handles must be dropped before unshare"))
            .into_inner()
            .expect("store mutex");
        *self = StoreSlot::Owned(mem);
    }
}

/// Pre-interned trace ids for one cube's components, copied out of the
/// attached [`Tracer`] at partition time (ids are plain `u16`s; the
/// sink itself stays host-side).
struct CubeTrace {
    vault: Vec<CompId>,
    mpcu: Vec<CompId>,
    vault_access: KindId,
    vault_wake: KindId,
    mpcu_cmd: KindId,
    mpcu_vault_done: KindId,
}

impl CubeTrace {
    fn new(t: &Tracer, vbase: usize, vpc: usize) -> CubeTrace {
        CubeTrace {
            vault: t.vault[vbase..vbase + vpc].to_vec(),
            mpcu: t.mpcu[vbase..vbase + vpc].to_vec(),
            vault_access: t.k.vault_access,
            vault_wake: t.k.vault_wake,
            mpcu_cmd: t.k.mpcu_cmd,
            mpcu_vault_done: t.k.mpcu_vault_done,
        }
    }
}

/// One cube's slice of the machine: its vaults and memory-side PCUs,
/// a private event queue, and the outboxes of the sharded topology.
/// Vault indices stay *global* (`Ev` payloads are unchanged); `vbase`
/// maps them onto the local component vectors.
struct CubeShard {
    vbase: usize,
    vpc: usize,
    queue: EventQueue<Ev>,
    vaults: Vec<Vault>,
    mem_pcus: Vec<MemPcu>,
    store: Arc<Mutex<BackingStore>>,
    /// Messages bound for the host shard, harvested at the barrier.
    to_host: Vec<(Cycle, Ev)>,
    /// Buffered trace records, merged at the barrier.
    trace_buf: Vec<Record>,
    trace: Option<CubeTrace>,
    dispatched: u64,
    ob_vault: Outbox<VaultOut>,
    ob_mpcu: Outbox<MemPcuOut>,
}

impl CubeShard {
    /// Schedules every delivered inter-shard message onto the local
    /// queue, in the order the host pushed them (deterministic).
    fn absorb(&mut self, inbox: &mut Vec<(Cycle, Ev)>) {
        for (at, ev) in inbox.drain(..) {
            self.queue.schedule(at, ev);
        }
    }

    fn snapshot_phase(&mut self, label: &'static str) {
        for v in &mut self.vaults {
            v.snapshot_phase(label);
        }
        for p in &mut self.mem_pcus {
            p.snapshot_phase(label);
        }
    }

    /// Drains every local event strictly before `end`, including events
    /// the drain itself schedules into the window.
    fn run_window(&mut self, end: Cycle) {
        while let Some((now, ev)) = self.queue.pop_before(end) {
            if self.trace.is_some() {
                self.trace_ev(now, &ev);
            }
            self.dispatch(now, ev);
            self.dispatched += 1;
        }
    }

    fn dispatch(&mut self, now: Cycle, ev: Ev) {
        match ev {
            Ev::VaultAcc(v, acc) => {
                let mut outs = std::mem::take(&mut self.ob_vault);
                self.vaults[v - self.vbase].handle_access(now, acc, &mut outs);
                self.route_vault(v, &mut outs);
                self.ob_vault = outs;
            }
            Ev::VaultWake(v) => {
                let mut outs = std::mem::take(&mut self.ob_vault);
                self.vaults[v - self.vbase].wake(now, &mut outs);
                self.route_vault(v, &mut outs);
                self.ob_vault = outs;
            }
            Ev::MemPcuCmd(v, cmd) => {
                let mut outs = std::mem::take(&mut self.ob_mpcu);
                self.mem_pcus[v - self.vbase].on_cmd(now, *cmd, &mut outs);
                self.route_mem_pcu(v, &mut outs);
                self.ob_mpcu = outs;
            }
            Ev::MemPcuVaultDone(v, id, write) => {
                let mut outs = std::mem::take(&mut self.ob_mpcu);
                {
                    let mut mem = self.store.lock().expect("store mutex");
                    self.mem_pcus[v - self.vbase]
                        .on_vault_done(now, id, write, &mut mem, &mut outs);
                }
                self.route_mem_pcu(v, &mut outs);
                self.ob_mpcu = outs;
            }
            other => unreachable!("host-owned event routed to a cube shard: {other:?}"),
        }
    }

    fn route_vault(&mut self, v: usize, outs: &mut Outbox<VaultOut>) {
        let vpc = self.vpc;
        let q = &mut self.queue;
        let th = &mut self.to_host;
        for out in outs.drain() {
            deliver_vault_out(vpc, v, out, &mut |dest, at, ev| match dest {
                Dest::Local => q.schedule(at, ev),
                Dest::Host => th.push((at, ev)),
            });
        }
    }

    fn route_mem_pcu(&mut self, v: usize, outs: &mut Outbox<MemPcuOut>) {
        let vpc = self.vpc;
        let q = &mut self.queue;
        let th = &mut self.to_host;
        for out in outs.drain() {
            deliver_mem_pcu_out(vpc, v, out, &mut |dest, at, ev| match dest {
                Dest::Local => q.schedule(at, ev),
                Dest::Host => th.push((at, ev)),
            });
        }
    }

    #[cold]
    fn trace_ev(&mut self, now: Cycle, ev: &Ev) {
        let t = self
            .trace
            .as_ref()
            .expect("trace_ev requires cube trace ids");
        let (comp, kind, payload) = match ev {
            Ev::VaultAcc(v, acc) => (t.vault[v - self.vbase], t.vault_access, acc.block.0),
            Ev::VaultWake(v) => (t.vault[v - self.vbase], t.vault_wake, 0),
            Ev::MemPcuCmd(v, cmd) => (t.mpcu[v - self.vbase], t.mpcu_cmd, cmd.target.0),
            Ev::MemPcuVaultDone(v, id, _) => (t.mpcu[v - self.vbase], t.mpcu_vault_done, id.0),
            other => unreachable!("host-owned event traced on a cube shard: {other:?}"),
        };
        self.trace_buf.push(Record {
            cycle: now,
            comp,
            kind,
            payload,
        });
    }
}

/// How a super-step's host window ended.
enum HostStop {
    /// Every workload group completed during the window.
    AllDone,
    /// An event popped past the cycle budget.
    Limit(Cycle),
}

/// How the whole sharded run ended (before report assembly).
enum StepOutcome {
    Done,
    Fail(FailureKind, Cycle),
    /// A `pause_at` bound was reached at an epoch barrier with work
    /// outstanding. Carries the super-step seed the resumed driver
    /// starts from and the undelivered host→cube mailboxes
    /// (`drive_threaded` fills `inboxes` in after the workers park).
    Paused {
        at: Cycle,
        step: u64,
        last: Cycle,
        inboxes: Vec<Vec<(Cycle, Ev)>>,
    },
}

/// Step commands the host publishes to worker threads.
const CMD_RUN: u8 = 0;
const CMD_SWEEP: u8 = 1;
const CMD_DONE: u8 = 2;

/// Control word shared by the host and all workers for one run.
struct StepCtl {
    cmd: AtomicU8,
    /// Cube window end `(s+2)·L` for a `CMD_RUN` step.
    c_end: AtomicU64,
    /// Phase label every shard snapshots at the start of this step.
    mark: Mutex<Option<&'static str>>,
}

/// Per-cube mailbox trio. `inbox` carries host→cube messages across the
/// barrier; `report` carries the cube's per-step output back; `parked`
/// hands the whole shard over for checked-mode sweeps and shutdown.
struct CubeCell {
    inbox: Mutex<Vec<(Cycle, Ev)>>,
    report: Mutex<StepReport>,
    parked: Mutex<Option<CubeShard>>,
}

#[derive(Default)]
struct StepReport {
    to_host: Vec<(Cycle, Ev)>,
    trace: Vec<Record>,
    next_time: Option<Cycle>,
}

/// Earliest super-step the machine can jump to after completing `step`,
/// given the earliest pending host event and the earliest pending
/// cube-side event (including just-delivered inbox messages). Skipping
/// idle windows is safe because the bounds re-derive the two skew
/// invariants: host events at `t` need `t ≥ s'L`, cube events at `t`
/// need `t ≥ (s'+1)L`.
fn next_step(step: u64, epoch: Cycle, h_next: Option<Cycle>, c_next: Option<Cycle>) -> u64 {
    let bound_h = h_next.map_or(u64::MAX, |t| t / epoch);
    let bound_c = c_next.map_or(u64::MAX, |t| (t / epoch).saturating_sub(1));
    (step + 1).max(bound_h.min(bound_c))
}

fn min_opt(a: Option<Cycle>, b: Option<Cycle>) -> Option<Cycle> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Worker thread body: executes the host's step commands over a
/// contiguous chunk of cube shards (`cells[first..first + chunk]`).
fn worker_loop(
    mut shards: Vec<CubeShard>,
    first: usize,
    cells: &[CubeCell],
    ctl: &StepCtl,
    barrier: &EpochBarrier,
) {
    let chunk = shards.len();
    loop {
        barrier.wait(); // A: command published
        match ctl.cmd.load(Ordering::Acquire) {
            CMD_RUN => {
                let c_end = ctl.c_end.load(Ordering::Acquire);
                let mark = *ctl.mark.lock().expect("mark mutex");
                for (i, sh) in shards.iter_mut().enumerate() {
                    let cell = &cells[first + i];
                    if let Some(label) = mark {
                        sh.snapshot_phase(label);
                    }
                    {
                        let mut inbox = cell.inbox.lock().expect("inbox mutex");
                        sh.absorb(&mut inbox);
                    }
                    sh.run_window(c_end);
                    let mut rep = cell.report.lock().expect("report mutex");
                    std::mem::swap(&mut rep.to_host, &mut sh.to_host);
                    std::mem::swap(&mut rep.trace, &mut sh.trace_buf);
                    rep.next_time = sh.queue.peek_time();
                }
                barrier.wait(); // B: step complete
            }
            CMD_SWEEP => {
                for (i, sh) in shards.drain(..).enumerate() {
                    *cells[first + i].parked.lock().expect("parked mutex") = Some(sh);
                }
                barrier.wait(); // B: all shards parked
                barrier.wait(); // C: host finished sweeping
                for i in 0..chunk {
                    let sh = cells[first + i]
                        .parked
                        .lock()
                        .expect("parked mutex")
                        .take()
                        .expect("host re-parks every shard after a sweep");
                    shards.push(sh);
                }
            }
            _ => {
                for (i, sh) in shards.drain(..).enumerate() {
                    *cells[first + i].parked.lock().expect("parked mutex") = Some(sh);
                }
                barrier.wait(); // B: shutdown acknowledged
                return;
            }
        }
    }
}

impl System {
    /// Runs the machine to completion like [`run`](System::run), but
    /// partitioned into a host shard plus one shard per HMC cube,
    /// executed by `threads` OS threads (`1` = all shards inline on the
    /// calling thread; more threads than `1 + cubes` is clamped).
    ///
    /// The partition — and therefore the result — is a function of the
    /// machine configuration only: any two `run_sharded` calls on
    /// identical machines produce byte-identical [`RunResult`]s and
    /// trace captures regardless of `threads`. The sharded schedule
    /// may legally differ from [`run`](System::run) in same-cycle
    /// cross-shard tie-breaking (see DESIGN.md §10), which is why
    /// harnesses select it explicitly (`--shards`).
    ///
    /// Checked mode works as in sequential runs (sweeps execute at
    /// epoch barriers with all shards quiesced); event-triggered fault
    /// injection applies to host-shard events only.
    ///
    /// # Examples
    ///
    /// ```
    /// use pei_system::{MachineConfig, System};
    /// use pei_core::DispatchPolicy;
    /// use pei_cpu::trace::{Op, VecPhases};
    /// use pei_mem::BackingStore;
    ///
    /// let mut store = BackingStore::new();
    /// let a = store.alloc_block();
    /// let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
    /// let mut sys = System::new(cfg, store);
    /// sys.add_workload(
    ///     Box::new(VecPhases::single(vec![Op::load(a), Op::Compute(4)])),
    ///     vec![0],
    /// );
    /// let r = sys.run_sharded(1_000_000, 2);
    /// assert!(r.ok());
    /// assert_eq!(r.instructions, 5);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics on harness misuse: no workload assigned, `threads == 0`,
    /// a machine whose `link_latency < 2` (no lookahead to shard
    /// on), or a machine paused mid-run by the *sequential* engine
    /// (its host queue still holds cube-owned events; resume it with
    /// [`run`](System::run)).
    pub fn run_sharded(&mut self, max_cycles: Cycle, threads: usize) -> RunResult {
        match self.run_sharded_paused(max_cycles, threads, None) {
            crate::system::RunStatus::Completed(r) => r,
            crate::system::RunStatus::Paused { .. } => {
                unreachable!("run_sharded_paused without a pause bound never pauses")
            }
        }
    }

    /// [`run_sharded`](System::run_sharded), but optionally pausing at
    /// the first epoch barrier at or after `pause_at` with all machine
    /// state intact (the sharded counterpart of
    /// [`run_paused`](System::run_paused); `PauseAt::FirstPei` warm
    /// runs use the sequential engine).
    ///
    /// Both drivers follow the identical super-step schedule, so the
    /// pause cut — and the snapshot taken at it — is byte-identical
    /// under any `threads` count, and a paused machine may resume under
    /// a *different* thread count. While paused, the cube shards'
    /// queues are held on the machine ([`System::snapshot`] serializes
    /// them); calling this again resumes, and a `pause_at` in the past
    /// pauses again at the very next barrier.
    pub fn run_sharded_paused(
        &mut self,
        max_cycles: Cycle,
        threads: usize,
        pause_at: Option<Cycle>,
    ) -> crate::system::RunStatus {
        use crate::system::RunStatus;
        assert!(threads >= 1, "run_sharded needs at least one thread");
        assert!(!self.groups.is_empty(), "no workload assigned");
        let resume = self.shard_pause.take();
        assert!(
            resume.is_some() || self.dispatched == 0 || self.queue.is_empty(),
            "machine was paused by the sequential engine; resume it with run()"
        );
        let epoch = self.cfg.shard_epoch();
        let mut shards = self.partition();
        let seed = match resume {
            Some(pause) => {
                let p = *pause;
                assert_eq!(p.cubes.len(), shards.len(), "pause/config cube count");
                for (sh, cp) in shards.iter_mut().zip(p.cubes) {
                    for (at, ev) in cp.events {
                        sh.queue.schedule(at, ev);
                    }
                    sh.queue.restore_accounting(cp.scheduled);
                    sh.dispatched = cp.dispatched;
                }
                (p.step, p.last, p.inboxes)
            }
            None => (0, 0, shards.iter().map(|_| Vec::new()).collect()),
        };
        for g in 0..self.groups.len() {
            // Fresh machines seed phase 1 here; resumed/restored ones
            // already carry their phase progress.
            if self.groups[g].phases == 0 && !self.groups[g].done {
                self.pull_phase(g, 0);
            }
        }
        let workers = threads.saturating_sub(1).min(shards.len());
        let outcome = if workers == 0 {
            self.drive_inline(&mut shards, epoch, max_cycles, seed, pause_at)
        } else {
            let (back, outcome) =
                self.drive_threaded(shards, epoch, max_cycles, workers, seed, pause_at);
            shards = back;
            outcome
        };
        match outcome {
            StepOutcome::Done => {
                self.reassemble(shards);
                RunStatus::Completed(self.result(RunOutcome::Completed))
            }
            StepOutcome::Fail(kind, at) => {
                self.reassemble(shards);
                RunStatus::Completed(self.fail(kind, at))
            }
            StepOutcome::Paused {
                at,
                step,
                last,
                inboxes,
            } => {
                self.pause_shards(shards, step, last, inboxes);
                RunStatus::Paused { at }
            }
        }
    }

    /// Parks a sharded run at an epoch barrier: drains every cube queue
    /// in canonical order into a `ShardPause`
    /// held on the machine, returns the cube components to their
    /// sequential slots, and restores sequential-mode store/trace
    /// routing. The inverse of the resume path in
    /// [`run_sharded_paused`](System::run_sharded_paused).
    fn pause_shards(
        &mut self,
        shards: Vec<CubeShard>,
        step: u64,
        last: Cycle,
        inboxes: Vec<Vec<(Cycle, Ev)>>,
    ) {
        let mut cubes = Vec::with_capacity(shards.len());
        for mut sh in shards {
            let scheduled = sh.queue.total_scheduled();
            let events = sh.queue.drain_ordered();
            cubes.push(crate::snapshot::CubePause {
                events,
                scheduled,
                dispatched: sh.dispatched,
            });
            self.vaults.extend(sh.vaults);
            self.mem_pcus.extend(sh.mem_pcus);
        }
        self.cube_out = None;
        self.flush_host_trace();
        self.shard_trace = None;
        self.store.unshare();
        self.shard_pause = Some(Box::new(crate::snapshot::ShardPause {
            step,
            last,
            cubes,
            inboxes,
        }));
    }

    /// Splits the cube-side components out of the `System` into one
    /// shard per cube and switches the store, trace, and routing layers
    /// into sharded mode.
    fn partition(&mut self) -> Vec<CubeShard> {
        let vpc = self.cfg.hmc.vaults_per_cube;
        let cubes = self.cfg.hmc.cubes;
        let horizon = self.cfg.event_horizon();
        let store = self.store.share();
        self.cube_out = Some((0..cubes).map(|_| Vec::new()).collect());
        self.foreign_events = (0, 0, 0);
        if self.tracer.is_some() {
            self.shard_trace = Some(Vec::new());
        }
        let mut vaults = std::mem::take(&mut self.vaults);
        let mut mem_pcus = std::mem::take(&mut self.mem_pcus);
        (0..cubes)
            .map(|c| CubeShard {
                vbase: c * vpc,
                vpc,
                queue: EventQueue::with_horizon(horizon),
                vaults: vaults.drain(..vpc).collect(),
                mem_pcus: mem_pcus.drain(..vpc).collect(),
                store: Arc::clone(&store),
                to_host: Vec::new(),
                trace_buf: Vec::new(),
                trace: self
                    .tracer
                    .as_ref()
                    .map(|t| CubeTrace::new(t, c * vpc, vpc)),
                dispatched: 0,
                ob_vault: Outbox::new(),
                ob_mpcu: Outbox::new(),
            })
            .collect()
    }

    /// Moves every cube shard's components back into the `System` (in
    /// cube order, restoring the original component layout), folds the
    /// shard queues' accounting into `foreign_events`, and restores
    /// sequential-mode store/trace/routing.
    fn reassemble(&mut self, shards: Vec<CubeShard>) {
        for sh in shards {
            self.foreign_events.0 += sh.queue.total_scheduled();
            self.foreign_events.1 += sh.dispatched;
            self.foreign_events.2 += sh.queue.len() as u64;
            self.vaults.extend(sh.vaults);
            self.mem_pcus.extend(sh.mem_pcus);
        }
        self.cube_out = None;
        self.flush_host_trace();
        self.shard_trace = None;
        self.store.unshare();
    }

    /// Drains the host-side trace buffer into the attached sink.
    fn flush_host_trace(&mut self) {
        let Some(buf) = &mut self.shard_trace else {
            return;
        };
        if buf.is_empty() {
            return;
        }
        let records = std::mem::take(buf);
        let t = self.tracer.as_mut().expect("shard_trace implies a tracer");
        for r in &records {
            t.sink.record(r.cycle, r.comp, r.kind, r.payload);
        }
        // Hand the allocation back for the next window.
        let mut records = records;
        records.clear();
        *self.shard_trace.as_mut().expect("still sharded") = records;
    }

    /// Appends one cube's buffered records to the sink, clearing the
    /// buffer in place (the allocation travels back to the shard).
    fn flush_cube_trace(&mut self, records: &mut Vec<Record>) {
        if records.is_empty() {
            return;
        }
        let t = self.tracer.as_mut().expect("cube trace implies a tracer");
        for r in records.drain(..) {
            t.sink.record(r.cycle, r.comp, r.kind, r.payload);
        }
    }

    /// Drains the host queue strictly below `end` — the host half of
    /// one super-step. Mirrors one window's worth of the sequential
    /// loop: fault hooks, dispatch accounting, and completion/limit
    /// detection per event.
    fn host_window(&mut self, end: Cycle, max_cycles: Cycle, last: &mut Cycle) -> Option<HostStop> {
        while let Some((now, ev)) = self.queue.pop_before(end) {
            if now > max_cycles {
                return Some(HostStop::Limit(now));
            }
            *last = now;
            let ev = if self.faults.is_some() {
                match self.apply_event_faults(now, ev) {
                    Some(ev) => ev,
                    None => continue, // dropped or delayed by a fault
                }
            } else {
                ev
            };
            self.dispatch(now, ev);
            self.dispatched += 1;
            if self.all_done() {
                return Some(HostStop::AllDone);
            }
        }
        None
    }

    /// Runs a checked-mode sweep at an epoch barrier: the cube shards'
    /// components are re-installed into the `System` (every auditor
    /// sees the whole machine), their queue accounting is exposed via
    /// `foreign_events` for the conservation check, and everything is
    /// handed back afterwards.
    fn sweep_sharded(&mut self, shards: &mut [CubeShard], now: Cycle) {
        debug_assert!(self.vaults.is_empty() && self.mem_pcus.is_empty());
        for sh in shards.iter_mut() {
            self.vaults.append(&mut sh.vaults);
            self.mem_pcus.append(&mut sh.mem_pcus);
        }
        self.foreign_events = shards.iter().fold((0, 0, 0), |acc, sh| {
            (
                acc.0 + sh.queue.total_scheduled(),
                acc.1 + sh.dispatched,
                acc.2 + sh.queue.len() as u64,
            )
        });
        self.sweep(now);
        self.foreign_events = (0, 0, 0);
        let vpc = self.cfg.hmc.vaults_per_cube;
        for sh in shards.iter_mut() {
            sh.vaults.extend(self.vaults.drain(..vpc));
            sh.mem_pcus.extend(self.mem_pcus.drain(..vpc));
        }
    }

    /// Whether the completed host window at `h_end` crossed the next
    /// sweep deadline (the sequential loop's `now >= next_sweep`, lifted
    /// to window granularity).
    fn sweep_due(&self, h_end: Cycle) -> bool {
        self.checks.as_ref().is_some_and(|c| h_end > c.next_sweep)
    }

    /// Single-threaded driver: executes the exact super-step schedule
    /// of the threaded driver — same partition, same barrier points,
    /// same merge order — on the calling thread. `run_sharded(_, 1)`
    /// and `run_sharded(_, n)` are byte-identical because both drivers
    /// follow this schedule.
    fn drive_inline(
        &mut self,
        shards: &mut [CubeShard],
        epoch: Cycle,
        max_cycles: Cycle,
        seed: (u64, Cycle, Vec<Vec<(Cycle, Ev)>>),
        pause_at: Option<Cycle>,
    ) -> StepOutcome {
        let (mut step, mut last, mut inboxes) = seed;
        debug_assert_eq!(inboxes.len(), shards.len());
        loop {
            // Taking the phase mark at the top of the body (instead of
            // carrying it across the bottom of the previous iteration)
            // is equivalent — `pending_mark` is only set by dispatches
            // inside the loop — and leaves it on the machine when the
            // loop exits through a pause, so it serializes.
            let mark = self.pending_mark.take();
            let h_end = (step + 1) * epoch;
            let c_end = h_end + epoch;
            // "Parallel" phase: host window W_s, cube windows W_{s+1}.
            // Within a step the two halves are independent (messages
            // only cross at barriers), so sequencing them is legal.
            let hstop = self.host_window(h_end, max_cycles, &mut last);
            for (c, sh) in shards.iter_mut().enumerate() {
                if let Some(label) = mark {
                    sh.snapshot_phase(label);
                }
                sh.absorb(&mut inboxes[c]);
                sh.run_window(c_end);
            }
            // Barrier: merge in deterministic order — host records
            // first, then each cube in index order.
            self.flush_host_trace();
            let mut c_next = None;
            for sh in shards.iter_mut() {
                if self.tracer.is_some() {
                    let mut buf = std::mem::take(&mut sh.trace_buf);
                    self.flush_cube_trace(&mut buf);
                    sh.trace_buf = buf;
                }
                for (at, ev) in sh.to_host.drain(..) {
                    self.queue.schedule(at, ev);
                }
                c_next = min_opt(c_next, sh.queue.peek_time());
            }
            match hstop {
                Some(HostStop::AllDone) => return StepOutcome::Done,
                Some(HostStop::Limit(at)) => return StepOutcome::Fail(FailureKind::CycleLimit, at),
                None => {}
            }
            if !self.violations.is_empty() {
                return StepOutcome::Fail(FailureKind::CheckFailed, last);
            }
            if self.sweep_due(h_end) {
                self.sweep_sharded(shards, h_end);
                if !self.violations.is_empty() {
                    return StepOutcome::Fail(FailureKind::CheckFailed, h_end);
                }
            }
            // Deliver host→cube messages for absorption next step.
            let boxes = self.cube_out.as_mut().expect("sharded mode");
            for (c, b) in boxes.iter_mut().enumerate() {
                for (at, ev) in b.drain(..) {
                    c_next = min_opt(c_next, Some(at));
                    inboxes[c].push((at, ev));
                }
            }
            let h_next = self.queue.peek_time();
            if h_next.is_none() && c_next.is_none() {
                return if self.all_done() {
                    StepOutcome::Done
                } else {
                    StepOutcome::Fail(FailureKind::Stalled, last)
                };
            }
            if pause_at.is_some_and(|t| h_end >= t) {
                // At this barrier the cube buffers are drained and the
                // inboxes hold exactly this step's host→cube deliveries:
                // the machine is fully described by (shards, inboxes,
                // next step) — precisely what ShardPause serializes.
                return StepOutcome::Paused {
                    at: h_end,
                    step: next_step(step, epoch, h_next, c_next),
                    last,
                    inboxes: std::mem::take(&mut inboxes),
                };
            }
            step = next_step(step, epoch, h_next, c_next);
        }
    }

    /// Multi-threaded driver: `workers` threads execute the cube shards
    /// while the calling thread runs the host shard and orchestrates
    /// the barriers. Follows the same super-step schedule as
    /// [`drive_inline`](Self::drive_inline).
    fn drive_threaded(
        &mut self,
        mut shards: Vec<CubeShard>,
        epoch: Cycle,
        max_cycles: Cycle,
        workers: usize,
        seed: (u64, Cycle, Vec<Vec<(Cycle, Ev)>>),
        pause_at: Option<Cycle>,
    ) -> (Vec<CubeShard>, StepOutcome) {
        let cubes = shards.len();
        let (start_step, start_last, seed_inboxes) = seed;
        debug_assert_eq!(seed_inboxes.len(), cubes);
        let cells: Vec<CubeCell> = seed_inboxes
            .into_iter()
            .map(|inbox| CubeCell {
                inbox: Mutex::new(inbox),
                report: Mutex::new(StepReport::default()),
                parked: Mutex::new(None),
            })
            .collect();
        let ctl = StepCtl {
            cmd: AtomicU8::new(CMD_RUN),
            c_end: AtomicU64::new(0),
            mark: Mutex::new(None),
        };
        let barrier = EpochBarrier::new(workers + 1);
        // Contiguous chunks: worker w owns cubes [starts[w], starts[w+1]).
        let base = cubes / workers;
        let extra = cubes % workers;
        let mut chunks: Vec<(usize, Vec<CubeShard>)> = Vec::with_capacity(workers);
        let mut first = 0;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            chunks.push((first, shards.drain(..len).collect()));
            first += len;
        }
        let mut outcome = std::thread::scope(|scope| {
            let cells = &cells;
            let ctl = &ctl;
            let barrier = &barrier;
            for (first, chunk) in chunks.drain(..) {
                scope.spawn(move || worker_loop(chunk, first, cells, ctl, barrier));
            }
            self.host_loop(
                cells, ctl, barrier, epoch, max_cycles, start_step, start_last, pause_at,
            )
        });
        let shards = cells
            .iter()
            .map(|c| {
                c.parked
                    .lock()
                    .expect("parked mutex")
                    .take()
                    .expect("every shard is parked at shutdown")
            })
            .collect();
        if let StepOutcome::Paused { inboxes, .. } = &mut outcome {
            // The workers have parked; reclaim the undelivered inboxes
            // so the pause record matches the inline driver's.
            *inboxes = cells
                .iter()
                .map(|c| std::mem::take(&mut *c.inbox.lock().expect("inbox mutex")))
                .collect();
        }
        (shards, outcome)
    }

    /// The host side of the threaded super-step schedule.
    #[allow(clippy::too_many_arguments)]
    fn host_loop(
        &mut self,
        cells: &[CubeCell],
        ctl: &StepCtl,
        barrier: &EpochBarrier,
        epoch: Cycle,
        max_cycles: Cycle,
        start_step: u64,
        start_last: Cycle,
        pause_at: Option<Cycle>,
    ) -> StepOutcome {
        let shutdown = |outcome: StepOutcome| {
            ctl.cmd.store(CMD_DONE, Ordering::Release);
            barrier.wait(); // A
            barrier.wait(); // B: every shard parked
            outcome
        };
        let mut step = start_step;
        let mut last = start_last;
        loop {
            // Top-of-body take, as in drive_inline: a pause exit leaves
            // any just-set mark on the machine for serialization.
            let mark = self.pending_mark.take();
            let h_end = (step + 1) * epoch;
            ctl.cmd.store(CMD_RUN, Ordering::Release);
            ctl.c_end.store(h_end + epoch, Ordering::Release);
            *ctl.mark.lock().expect("mark mutex") = mark;
            barrier.wait(); // A: workers start W_{s+1}
            let hstop = self.host_window(h_end, max_cycles, &mut last);
            barrier.wait(); // B: workers done
            self.flush_host_trace();
            let mut c_next = None;
            for cell in cells {
                let mut rep = cell.report.lock().expect("report mutex");
                if self.tracer.is_some() {
                    let mut buf = std::mem::take(&mut rep.trace);
                    self.flush_cube_trace(&mut buf);
                    rep.trace = buf;
                }
                for (at, ev) in rep.to_host.drain(..) {
                    self.queue.schedule(at, ev);
                }
                c_next = min_opt(c_next, rep.next_time);
            }
            match hstop {
                Some(HostStop::AllDone) => return shutdown(StepOutcome::Done),
                Some(HostStop::Limit(at)) => {
                    return shutdown(StepOutcome::Fail(FailureKind::CycleLimit, at))
                }
                None => {}
            }
            if !self.violations.is_empty() {
                return shutdown(StepOutcome::Fail(FailureKind::CheckFailed, last));
            }
            if self.sweep_due(h_end) {
                ctl.cmd.store(CMD_SWEEP, Ordering::Release);
                barrier.wait(); // A
                barrier.wait(); // B: every shard parked
                let mut borrowed: Vec<CubeShard> = cells
                    .iter()
                    .map(|c| {
                        c.parked
                            .lock()
                            .expect("parked mutex")
                            .take()
                            .expect("workers park every shard for a sweep")
                    })
                    .collect();
                self.sweep_sharded(&mut borrowed, h_end);
                for (cell, sh) in cells.iter().zip(borrowed) {
                    *cell.parked.lock().expect("parked mutex") = Some(sh);
                }
                barrier.wait(); // C: workers take their shards back
                if !self.violations.is_empty() {
                    return shutdown(StepOutcome::Fail(FailureKind::CheckFailed, h_end));
                }
            }
            let boxes = self.cube_out.as_mut().expect("sharded mode");
            for (c, b) in boxes.iter_mut().enumerate() {
                if b.is_empty() {
                    continue;
                }
                let mut inbox = cells[c].inbox.lock().expect("inbox mutex");
                for (at, ev) in b.drain(..) {
                    c_next = min_opt(c_next, Some(at));
                    inbox.push((at, ev));
                }
            }
            let h_next = self.queue.peek_time();
            if h_next.is_none() && c_next.is_none() {
                return if self.all_done() {
                    shutdown(StepOutcome::Done)
                } else {
                    shutdown(StepOutcome::Fail(FailureKind::Stalled, last))
                };
            }
            if pause_at.is_some_and(|t| h_end >= t) {
                // `drive_threaded` reclaims the cell inboxes once the
                // workers have parked (after the shutdown barriers).
                return shutdown(StepOutcome::Paused {
                    at: h_end,
                    step: next_step(step, epoch, h_next, c_next),
                    last,
                    inboxes: Vec::new(),
                });
            }
            step = next_step(step, epoch, h_next, c_next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{CheckConfig, RunOutcome};
    use crate::config::MachineConfig;
    use pei_core::DispatchPolicy;
    use pei_cpu::trace::{Op, PhasedTrace, VecPhases};
    use pei_types::{Addr, OperandValue, PimOpKind};

    /// A mixed workload exercising loads, stores, PEIs, and multiple
    /// phases across several cores — enough traffic to cross every
    /// shard edge repeatedly.
    fn workload(store: &mut BackingStore, threads: usize, blocks: usize) -> Box<dyn PhasedTrace> {
        let addrs: Vec<Addr> = (0..blocks).map(|_| store.alloc_block()).collect();
        let mut phase1 = vec![Vec::new(); threads];
        let mut phase2 = vec![Vec::new(); threads];
        for (i, &a) in addrs.iter().enumerate() {
            let t = i % threads;
            phase1[t].push(Op::load(a));
            phase1[t].push(Op::pei(PimOpKind::IncU64, a, OperandValue::None));
            phase2[t].push(Op::store(a));
            if i % 3 == 0 {
                phase2[t].push(Op::pei(PimOpKind::MinU64, a, OperandValue::U64(1)));
            }
        }
        Box::new(VecPhases::new(threads, vec![phase1, phase2]))
    }

    fn build(cfg: MachineConfig, blocks: usize) -> System {
        let mut store = BackingStore::new();
        let trace = workload(&mut store, cfg.cores, blocks);
        let mut sys = System::new(cfg, store);
        sys.add_workload(trace, (0..cfg.cores).collect());
        sys
    }

    fn two_cube_cfg() -> MachineConfig {
        let mut cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
        cfg.hmc.cubes = 2;
        cfg
    }

    fn fingerprint(r: &RunResult) -> String {
        format!(
            "{} {} {} {:?} {} {:?}\n{:?}",
            r.cycles, r.instructions, r.peis, r.offchip_flits, r.dram_accesses, r.outcome, r.stats
        )
    }

    #[test]
    fn sharded_thread_counts_agree_one_cube() {
        let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
        let a = build(cfg, 64).run_sharded(50_000_000, 1);
        let b = build(cfg, 64).run_sharded(50_000_000, 2);
        assert!(a.ok(), "sharded run must complete: {:?}", a.outcome);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn sharded_thread_counts_agree_two_cubes() {
        let cfg = two_cube_cfg();
        let a = build(cfg, 64).run_sharded(50_000_000, 1);
        let b = build(cfg, 64).run_sharded(50_000_000, 3);
        let c = build(cfg, 64).run_sharded(50_000_000, 16); // clamped to 1+cubes
        assert!(a.ok(), "sharded run must complete: {:?}", a.outcome);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn sharded_traces_are_byte_identical_across_thread_counts() {
        let cfg = two_cube_cfg();
        let capture = |threads: usize| {
            let mut sys = build(cfg, 48);
            sys.attach_tracer(Box::new(pei_trace::Recorder::new()));
            let r = sys.run_sharded(50_000_000, threads);
            assert!(r.ok(), "traced sharded run must complete: {:?}", r.outcome);
            let sink = sys.detach_tracer().expect("tracer attached");
            sink.to_petr().expect("recorder serializes")
        };
        let one = capture(1);
        let many = capture(3);
        assert_eq!(one, many, "trace bytes must not depend on thread count");
    }

    #[test]
    fn sharded_checked_run_is_clean_and_identical_to_unchecked() {
        let cfg = two_cube_cfg();
        let plain = build(cfg, 48).run_sharded(50_000_000, 3);
        let mut sys = build(cfg, 48);
        sys.enable_checks(CheckConfig {
            interval: 256, // sweep at many epoch barriers
            ..CheckConfig::default()
        });
        let checked = sys.run_sharded(50_000_000, 3);
        assert!(
            checked.ok(),
            "clean sharded checked run must complete: {:?}",
            checked.outcome
        );
        assert_eq!(fingerprint(&plain), fingerprint(&checked));
    }

    #[test]
    fn sharded_stall_is_reported_with_a_culprit() {
        let cfg = two_cube_cfg();
        let mut sys = build(cfg, 16);
        for v in &mut sys.vaults {
            v.fault_wedge();
        }
        let r = sys.run_sharded(50_000_000, 3);
        let report = match &r.outcome {
            RunOutcome::Stalled { report } => report,
            other => panic!("wedged sharded run must stall, got {other:?}"),
        };
        let culprit = report.culprit().expect("stall must name a culprit");
        assert!(
            culprit.starts_with("vault"),
            "deepest stuck component is the vault, got {culprit}"
        );
    }

    #[test]
    fn sharded_cycle_limit_is_reported() {
        let cfg = two_cube_cfg();
        let r = build(cfg, 16).run_sharded(2, 3);
        assert!(
            matches!(r.outcome, RunOutcome::CycleLimit { .. }),
            "two cycles cannot fit a DRAM round trip: {:?}",
            r.outcome
        );
    }

    #[test]
    fn store_is_owned_again_after_a_sharded_run() {
        let cfg = two_cube_cfg();
        let mut sys = build(cfg, 16);
        let r = sys.run_sharded(50_000_000, 3);
        assert!(r.ok());
        // `store()` panics while shards hold the memory; reassembly must
        // have returned it to exclusive ownership.
        let _ = sys.store();
    }

    #[test]
    fn next_step_jumps_only_when_safe() {
        // Normal progress.
        assert_eq!(next_step(3, 20, Some(80), Some(100)), 4);
        // Host idle until cycle 400 and cubes until 500: jump to the
        // window containing the host event.
        assert_eq!(next_step(3, 20, Some(400), Some(500)), 20);
        // Cube event is the earlier constraint: its window (minus the
        // one-ahead skew) bounds the jump.
        assert_eq!(next_step(3, 20, Some(900), Some(400)), 19);
        // No host events at all: cubes bound the jump alone.
        assert_eq!(next_step(3, 20, None, Some(400)), 19);
        // Never move backwards.
        assert_eq!(next_step(7, 20, Some(10), Some(10)), 8);
    }
}
