//! Energy model of the memory hierarchy (Fig. 12).
//!
//! Per-event energy constants in nanojoules, in the spirit of the paper's
//! CACTI 6.5 / CACTI-3DD / McPAT-derived numbers. Absolute joules are not
//! calibrated against the authors' models; what Fig. 12 claims — the
//! *relative* breakdown across configurations and the small share of the
//! memory-side PCUs — is what these constants are chosen to reproduce:
//! off-chip link transfers are an order of magnitude costlier per bit than
//! TSV hops, DRAM array accesses dominate everything else per byte, and
//! cache access energy grows with capacity.

use pei_engine::StatsReport;

/// Per-event energy constants (nanojoules).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One L1 access.
    pub l1_access: f64,
    /// One L2 access.
    pub l2_access: f64,
    /// One L3 access.
    pub l3_access: f64,
    /// One DRAM row activation.
    pub dram_activate: f64,
    /// One DRAM column read/write of a 64-byte block.
    pub dram_rw: f64,
    /// One byte over an off-chip link (SerDes dominated, ~2 pJ/bit).
    pub link_byte: f64,
    /// One byte over a TSV bundle (~0.2 pJ/bit).
    pub tsv_byte: f64,
    /// One PEI executed on a host-side PCU.
    pub pcu_host_op: f64,
    /// One PEI executed on a memory-side PCU.
    pub pcu_mem_op: f64,
    /// One PIM-directory access.
    pub dir_access: f64,
    /// One locality-monitor access.
    pub mon_access: f64,
    /// Static (leakage + background) power of the memory hierarchy in
    /// nJ per host cycle — caches, DRAM refresh/standby, SerDes idle.
    /// This is what makes energy runtime-dependent (the paper's McPAT /
    /// CACTI models include leakage), so faster configurations also save
    /// energy.
    pub static_per_cycle: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            l1_access: 0.02,
            l2_access: 0.06,
            l3_access: 0.35,
            dram_activate: 1.2,
            dram_rw: 2.4,
            link_byte: 0.016, // 2 pJ/bit
            tsv_byte: 0.0016, // 0.2 pJ/bit
            pcu_host_op: 0.05,
            pcu_mem_op: 0.03,
            dir_access: 0.01,
            mon_access: 0.03,
            static_per_cycle: 0.05,
        }
    }
}

/// Energy consumption of the memory hierarchy, by component class (the
/// stacked categories of Fig. 12), in nanojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// On-chip caches (L1 + L2 + L3).
    pub caches: f64,
    /// DRAM arrays (activates + column accesses).
    pub dram: f64,
    /// Off-chip links.
    pub links: f64,
    /// TSV vertical links.
    pub tsv: f64,
    /// PCUs (host + memory side).
    pub pcu: f64,
    /// PMU structures (PIM directory + locality monitor).
    pub pmu: f64,
    /// Memory-side PCU energy (a subset of `pcu`, tracked separately for
    /// the §7.7 "1.4 % of HMC energy" claim).
    pub pcu_mem_share: f64,
    /// Static (leakage/background) energy over the run.
    pub static_energy: f64,
}

impl EnergyBreakdown {
    /// Total energy (dynamic + static).
    pub fn total(&self) -> f64 {
        self.caches + self.dram + self.links + self.tsv + self.pcu + self.pmu + self.static_energy
    }

    /// Energy consumed inside the HMCs (DRAM + TSV + memory-side PCU
    /// share); used for the paper's "memory-side PCUs contribute only
    /// 1.4 % of HMC energy" check.
    pub fn hmc_total(&self) -> f64 {
        self.dram + self.tsv + self.pcu_mem_share
    }

    /// Memory-side PCU share (tracked separately for the §7.7 claim).
    pub fn pcu_mem_share(&self) -> f64 {
        self.pcu_mem_share
    }
}

/// Aggregate event counts needed by the energy model, gathered by the
/// system from its components after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyInputs {
    /// L1 accesses (hits + misses).
    pub l1_accesses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L3 accesses.
    pub l3_accesses: u64,
    /// DRAM activations.
    pub dram_activates: u64,
    /// DRAM reads + writes.
    pub dram_rw: u64,
    /// Bytes over off-chip links (both directions).
    pub link_bytes: u64,
    /// Bytes over TSVs.
    pub tsv_bytes: u64,
    /// PEIs executed host-side.
    pub host_pcu_ops: u64,
    /// PEIs executed memory-side.
    pub mem_pcu_ops: u64,
    /// PIM-directory accesses (acquire + release).
    pub dir_accesses: u64,
    /// Locality-monitor accesses (queries + updates).
    pub mon_accesses: u64,
    /// Host cycles the run took (drives static energy).
    pub cycles: u64,
}

/// Computes the Fig. 12 breakdown from aggregate counts.
pub fn compute(model: &EnergyModel, inputs: &EnergyInputs) -> EnergyBreakdown {
    let mem_share = inputs.mem_pcu_ops as f64 * model.pcu_mem_op;
    EnergyBreakdown {
        caches: inputs.l1_accesses as f64 * model.l1_access
            + inputs.l2_accesses as f64 * model.l2_access
            + inputs.l3_accesses as f64 * model.l3_access,
        dram: inputs.dram_activates as f64 * model.dram_activate
            + inputs.dram_rw as f64 * model.dram_rw,
        links: inputs.link_bytes as f64 * model.link_byte,
        tsv: inputs.tsv_bytes as f64 * model.tsv_byte,
        pcu: inputs.host_pcu_ops as f64 * model.pcu_host_op + mem_share,
        pmu: inputs.dir_accesses as f64 * model.dir_access
            + inputs.mon_accesses as f64 * model.mon_access,
        pcu_mem_share: mem_share,
        static_energy: inputs.cycles as f64 * model.static_per_cycle,
    }
}

/// Writes the breakdown into a [`StatsReport`] under `energy.`.
pub fn report(breakdown: &EnergyBreakdown, stats: &mut StatsReport) {
    stats.add("energy.caches_nj", breakdown.caches);
    stats.add("energy.dram_nj", breakdown.dram);
    stats.add("energy.links_nj", breakdown.links);
    stats.add("energy.tsv_nj", breakdown.tsv);
    stats.add("energy.pcu_nj", breakdown.pcu);
    stats.add("energy.pmu_nj", breakdown.pmu);
    stats.add("energy.static_nj", breakdown.static_energy);
    stats.add("energy.total_nj", breakdown.total());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_dominates_for_memory_heavy_runs() {
        let inputs = EnergyInputs {
            l1_accesses: 1000,
            dram_activates: 1000,
            dram_rw: 2000,
            link_bytes: 100_000,
            ..Default::default()
        };
        let e = compute(&EnergyModel::default(), &inputs);
        assert!(e.dram > e.caches);
        assert!(e.total() > 0.0);
    }

    #[test]
    fn link_byte_costs_10x_tsv_byte() {
        let m = EnergyModel::default();
        assert!((m.link_byte / m.tsv_byte - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mem_pcu_share_is_small_fraction_of_hmc() {
        // Per §7.7: memory-side PCUs ≈ 1.4 % of HMC energy. With one PEI
        // per DRAM read-modify-write, the model should keep the share in
        // the low single-digit percent range.
        let inputs = EnergyInputs {
            dram_activates: 1000,
            dram_rw: 2000,
            tsv_bytes: 128_000,
            mem_pcu_ops: 1000,
            ..Default::default()
        };
        let e = compute(&EnergyModel::default(), &inputs);
        let share = e.pcu_mem_share() / e.hmc_total();
        assert!(share < 0.05, "share = {share}");
        assert!(share > 0.001);
    }

    #[test]
    fn report_writes_all_categories() {
        let mut s = StatsReport::new();
        report(
            &compute(&EnergyModel::default(), &EnergyInputs::default()),
            &mut s,
        );
        assert_eq!(s.get("energy.total_nj"), Some(0.0));
        assert!(s.get("energy.dram_nj").is_some());
    }
}
