//! Checked mode: cross-component invariant auditors, the
//! forward-progress watchdog's structured failure reports, and the
//! deterministic fault-injection harness (DESIGN.md §9).
//!
//! The simulator's figures rest on coherence, queuing, and flit
//! accounting being silently correct. Checked mode makes those
//! assumptions *sweepable*: every [`CheckConfig::interval`] cycles the
//! run loop calls `CheckState::sweep`, which audits the whole machine
//! between events — when no event is mid-dispatch, every cross-component
//! invariant below must hold exactly:
//!
//! * **MESI consistency** — at most one writable (M/E) copy of a block
//!   across private caches, and the inclusive L3 is a superset of every
//!   private line (lines mid-transaction are excused via
//!   `L3Bank::txn_blocks`).
//! * **PIM-directory accounting** — PEIs holding or awaiting a
//!   reader-writer lock equal the PMU's registered transactions.
//! * **MSHR leaks** — no private-cache miss outstanding longer than
//!   [`CheckConfig::mshr_age_bound`] cycles.
//! * **Link conservation** — reads issued over the off-chip link equal
//!   responses returned plus the in-flight window.
//! * **Crossbar conservation** — messages switched equal messages the
//!   router injected (nothing enters the fabric unaccounted).
//! * **PCU operand buffers** — no PCU holds more in-service PEIs than
//!   its operand-buffer capacity.
//! * **Event population** — the queue's population reconciles with
//!   scheduled/dispatched totals (a lost event is an invariant
//!   violation, not a mystery hang) and stays under
//!   [`CheckConfig::max_events`].
//!
//! Sweeps read component state and never schedule events, so checked
//! runs produce byte-identical results to unchecked runs unless a
//! checker fires — the same observe-don't-steer contract as tracing
//! (DESIGN.md §8).
//!
//! A [`FaultPlan`] deterministically breaks one of these invariants (or
//! forward progress itself) from a seed, which is how the test suite
//! proves each checker actually fires and the watchdog names the
//! culprit component.

use pei_engine::SimRng;
use pei_trace::{StreamSink, Trace, TraceSink};
use pei_types::{BlockAddr, Cycle};
use std::collections::HashMap;

use crate::system::System;

/// Checked-mode knobs. `Copy`, so experiment sweeps can embed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Sweep the invariant auditors every this many cycles.
    pub interval: Cycle,
    /// A private-cache miss outstanding longer than this is a leak.
    pub mshr_age_bound: Cycle,
    /// Upper bound on the event-queue population (an event storm this
    /// size means runaway scheduling, not a big workload).
    pub max_events: usize,
    /// Capacity of the last-K-events ring attached when no tracer is
    /// present; failed runs carry this window in their report.
    pub window: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            interval: 8_192,
            mshr_age_bound: 1_000_000,
            max_events: 8_000_000,
            window: 256,
        }
    }
}

/// One invariant violation found by a sweep (or by the router, which
/// reports protocol-corruption it observes through the same path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which auditor fired (`"mesi"`, `"mshr"`, `"pim-dir"`, `"link"`,
    /// `"xbar"`, `"pcu"`, `"events"`, `"router"`).
    pub checker: &'static str,
    /// The component at fault (`"cache2"`, `"vault7"`, `"pmu"`, ...).
    pub component: String,
    /// Human-readable specifics: addresses, counts, cycle numbers.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.checker, self.component, self.detail)
    }
}

/// Why a run ended without completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The event queue drained while workload groups still had work.
    Stalled,
    /// The cycle limit elapsed with events still flowing.
    CycleLimit,
    /// An invariant auditor (or the router) reported a violation.
    CheckFailed,
}

impl FailureKind {
    /// Short lowercase label (`stalled`, `cycle-limit`, `check-failed`).
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::Stalled => "stalled",
            FailureKind::CycleLimit => "cycle-limit",
            FailureKind::CheckFailed => "check-failed",
        }
    }
}

/// Structured description of a failed run: what kind of failure, where
/// the machine was stuck, and the last captured events before it.
///
/// Replaces the old `panic!` in `System::run` — batch runners record
/// the report and keep sibling jobs running (graceful degradation).
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// What ended the run.
    pub kind: FailureKind,
    /// Cycle of the last dispatched event.
    pub cycle: Cycle,
    /// The classic `diagnose()` text: every component with work stuck.
    pub diagnosis: String,
    /// Invariant violations collected before the run ended.
    pub violations: Vec<Violation>,
    /// Nonzero queue/buffer occupancies per component, as
    /// `(component.metric, value)` pairs.
    pub occupancies: Vec<(String, u64)>,
    /// The last-K captured events (from the checked-mode ring recorder,
    /// or whatever tracer was attached), if the sink retains records.
    pub recent_events: Option<Trace>,
}

impl FailureReport {
    /// The most likely culprit component: the first violation's
    /// component if a checker fired, else the first stuck component
    /// from the occupancy scan.
    pub fn culprit(&self) -> Option<&str> {
        if let Some(v) = self.violations.first() {
            return Some(&v.component);
        }
        self.occupancies
            .first()
            .map(|(name, _)| name.split('.').next().unwrap_or(name))
    }

    /// One-line summary for logs and batch-runner output.
    pub fn summary(&self) -> String {
        let culprit = self.culprit().unwrap_or("unknown");
        let extra = match self.violations.first() {
            Some(v) => format!("; {v}"),
            None => String::new(),
        };
        format!(
            "{} at cycle {} (culprit: {culprit}{extra})",
            self.kind.label(),
            self.cycle
        )
    }

    /// Persists the captured failure window as a `.petr` file via the
    /// streaming sink, returning the number of records written (0 if
    /// the run carried no retained events).
    ///
    /// # Sharded runs
    ///
    /// On a run that stalled under the sharded engine
    /// (`System::run_sharded`, DESIGN.md §10), the window holds the
    /// *barrier-merged* record stream: each cube shard's records are
    /// swapped to the host at every epoch barrier and merged in
    /// deterministic order before the watchdog's stall check runs, so
    /// nothing dispatched before the stall is lost and the saved bytes
    /// are identical for every `--shards N`. The window ends at the
    /// epoch barrier where the stall was declared, which may be later
    /// than [`cycle`](FailureReport::cycle) (the last *dispatched*
    /// event); no partial-epoch records exist past it. As in
    /// sequential runs, the checked-mode ring still truncates to the
    /// last `CheckConfig::window` records.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from [`StreamSink`].
    pub fn save_window(&self, path: &std::path::Path) -> std::io::Result<u64> {
        let Some(t) = &self.recent_events else {
            return Ok(0);
        };
        let mut sink = StreamSink::create(path)?;
        let comps: Vec<_> = t.comps.iter().map(|n| sink.comp(n)).collect();
        let kinds: Vec<_> = t.kinds.iter().map(|n| sink.kind(n)).collect();
        for (k, v) in &t.meta {
            sink.meta(k, v);
        }
        sink.meta("failure.kind", self.kind.label());
        sink.meta("failure.cycle", &self.cycle.to_string());
        for r in &t.records {
            sink.record(
                r.cycle,
                comps[r.comp.0 as usize],
                kinds[r.kind.0 as usize],
                r.payload,
            );
        }
        sink.finish()
    }
}

/// How a run ended. Carried by `RunResult::outcome`; failed runs keep
/// their partial metrics so batch tables still have every cell.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// Every workload group finished.
    Completed,
    /// The watchdog declared a stall (queue empty, work remaining).
    Stalled {
        /// What was stuck, and where.
        report: Box<FailureReport>,
    },
    /// The watchdog hit the cycle limit.
    CycleLimit {
        /// What was still in flight when the limit elapsed.
        report: Box<FailureReport>,
    },
    /// An invariant auditor fired mid-run.
    CheckFailed {
        /// The violations, plus machine state at the failing sweep.
        report: Box<FailureReport>,
    },
}

impl RunOutcome {
    /// Whether the run completed normally.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed)
    }

    /// The failure report, if the run did not complete.
    pub fn report(&self) -> Option<&FailureReport> {
        match self {
            RunOutcome::Completed => None,
            RunOutcome::Stalled { report }
            | RunOutcome::CycleLimit { report }
            | RunOutcome::CheckFailed { report } => Some(report),
        }
    }
}

/// One injectable fault. Each variant is paired with the checker (or
/// watchdog outcome) that must catch it — the contract the
/// fault-injection tests enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Wedge one vault: accesses queue forever. Caught by the
    /// forward-progress watchdog (`Stalled` naming the vault).
    WedgeVault,
    /// Allocate a private-cache MSHR entry that never retires. Caught
    /// by the MSHR-leak auditor.
    LeakMshr,
    /// Mid-run, silently corrupt cache-line coherence state (force a
    /// shared copy writable, or orphan an L3 line). Caught by the MESI
    /// auditor.
    CorruptLine,
    /// Acquire a PIM-directory lock under a PEI id the PMU never
    /// registered. Caught by the directory-accounting auditor.
    LeakDirLock,
    /// Grow the off-chip read window without a matching request. Caught
    /// by the link-conservation auditor.
    LeakLinkCredit,
    /// Overfill one memory-side PCU's operand buffer past capacity.
    /// Caught by the operand-accounting auditor.
    OverfillPcu,
    /// Inject a crossbar message behind the router's back. Caught by
    /// the crossbar-conservation auditor.
    RogueXbarMessage,
    /// Mid-run, pop one event and discard it. Caught by the
    /// event-population auditor (the queue no longer reconciles).
    DropEvent,
    /// Mid-run, re-schedule one event later instead of dispatching it.
    /// Perturbs timing but violates nothing — checked runs complete
    /// (the harness's negative control).
    DelayEvent,
}

/// A deterministic, seeded set of faults to inject into one run.
///
/// All randomness (which vault, which event ordinal, which block) is
/// drawn from [`SimRng`] seeded with [`FaultPlan::new`]'s seed at
/// injection time, so a plan reproduces the same failure on every run —
/// the property that makes failure reports actionable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<FaultKind>,
}

impl FaultPlan {
    /// An empty plan drawing its choices from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault to the plan (builder style).
    #[must_use]
    pub fn with(mut self, kind: FaultKind) -> Self {
        self.faults.push(kind);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The queued faults, in injection order.
    pub fn kinds(&self) -> &[FaultKind] {
        &self.faults
    }
}

/// Event-ordinal-triggered faults armed on the run loop (the immediate
/// faults of a [`FaultPlan`] are applied directly at injection time).
#[derive(Debug, Default)]
pub(crate) struct ArmedFaults {
    /// Dispatch ordinal at which to corrupt a cache line (re-armed each
    /// event until a corruptible line exists).
    pub(crate) corrupt_at: Option<u64>,
    /// Dispatch ordinal at which to drop the popped event.
    pub(crate) drop_at: Option<u64>,
    /// `(ordinal, delay)`: re-schedule the popped event `delay` cycles
    /// later instead of dispatching it.
    pub(crate) delay_at: Option<(u64, Cycle)>,
    /// Dispatch ordinal at which to inject a rogue crossbar message.
    pub(crate) rogue_at: Option<u64>,
}

impl ArmedFaults {
    /// Whether any trigger is still pending.
    pub(crate) fn any_armed(&self) -> bool {
        self.corrupt_at.is_some()
            || self.drop_at.is_some()
            || self.delay_at.is_some()
            || self.rogue_at.is_some()
    }
}

/// Per-run checker state: the sweep schedule plus the little memory
/// some auditors need across sweeps (MSHR entry ages).
#[derive(Debug)]
pub(crate) struct CheckState {
    pub(crate) cfg: CheckConfig,
    pub(crate) next_sweep: Cycle,
    /// `(cache index, block)` → cycle first observed outstanding.
    /// `pub(crate)` so snapshot/restore can carry it across a pause
    /// (a resumed checked run must age MSHR entries identically).
    pub(crate) mshr_seen: HashMap<(usize, u64), Cycle>,
    /// Scratch for the MESI sweep, keyed by block.
    mesi_scratch: HashMap<u64, MesiEntry>,
}

/// Per-block scratch for the MESI single-writer pass.
#[derive(Debug, Default)]
pub(crate) struct MesiEntry {
    holders: u32,
    writer: Option<usize>,
    tainted: bool,
}

impl CheckState {
    pub(crate) fn new(cfg: CheckConfig) -> Self {
        CheckState {
            cfg,
            next_sweep: cfg.interval,
            mshr_seen: HashMap::new(),
            mesi_scratch: HashMap::new(),
        }
    }

    /// Runs every auditor against the machine, appending violations.
    /// Read-only over `sys` (never schedules events): checked mode's
    /// cycle-neutrality rests on this signature.
    pub(crate) fn sweep(&mut self, sys: &System, now: Cycle, out: &mut Vec<Violation>) {
        self.check_mesi(sys, out);
        self.check_mshr(sys, now, out);
        self.check_pim_dir(sys, out);
        self.check_link(sys, out);
        self.check_xbar(sys, out);
        self.check_pcu(sys, out);
        self.check_events(sys, out);
    }

    fn check_mesi(&mut self, sys: &System, out: &mut Vec<Violation>) {
        // Pass 1: single-writer. Collect every private holder per block;
        // a writable copy coexisting with any other copy is corruption —
        // unless some copy of the block is tainted: recalls (control
        // flits) can legitimately overtake in-flight grants (data
        // flits), leaving a stale copy the L3 no longer tracks. The
        // private cache marks exactly those copies (see
        // `PrivateCache::is_tainted`), and the auditor excuses the whole
        // block: once the L3 has lost track of one copy, any state pair
        // involving it is reachable without corruption.
        let seen = &mut self.mesi_scratch;
        seen.clear();
        for (i, p) in sys.privs.iter().enumerate() {
            for (block, state) in p.lines() {
                let e = seen.entry(block.0).or_default();
                e.holders += 1;
                if state.writable() {
                    e.writer = Some(i);
                }
                e.tainted |= p.is_tainted(block);
            }
        }
        for (&block, e) in seen.iter() {
            if let Some(i) = e.writer {
                if e.holders > 1 && !e.tainted {
                    out.push(Violation {
                        checker: "mesi",
                        component: format!("cache{i}"),
                        detail: format!(
                            "block {block:#x} writable here but held by {} private caches",
                            e.holders
                        ),
                    });
                }
            }
        }
        // Pass 2: inclusivity. Every private line must be backed by an
        // L3 line, unless an in-flight L3 transaction explains the
        // window (fill victims mid-recall, locked placeholders).
        for (i, p) in sys.privs.iter().enumerate() {
            for (block, _) in p.lines() {
                let bank = &sys.l3banks[sys.bank_of(block)];
                if bank.holds(block) {
                    continue;
                }
                let in_transition = bank
                    .txn_blocks()
                    .any(|(key, victim)| key == block || victim == Some(block));
                if !in_transition && !p.is_tainted(block) {
                    out.push(Violation {
                        checker: "mesi",
                        component: format!("cache{i}"),
                        detail: format!(
                            "block {:#x} held privately but absent from the inclusive L3",
                            block.0
                        ),
                    });
                }
            }
        }
    }

    fn check_mshr(&mut self, sys: &System, now: Cycle, out: &mut Vec<Violation>) {
        // Age tracking without touching component signatures: an entry
        // is born the first sweep that observes it; entries that vanish
        // are forgotten.
        let seen = &mut self.mshr_seen;
        seen.retain(|&(i, block), _| {
            sys.privs[i].mshr_blocks().any(|b| b.0 == block) // keep live entries only
        });
        for (i, p) in sys.privs.iter().enumerate() {
            for block in p.mshr_blocks() {
                let born = *seen.entry((i, block.0)).or_insert(now);
                let age = now - born;
                if age > self.cfg.mshr_age_bound {
                    out.push(Violation {
                        checker: "mshr",
                        component: format!("cache{i}"),
                        detail: format!(
                            "miss on block {:#x} outstanding {age} cycles (bound {})",
                            block.0, self.cfg.mshr_age_bound
                        ),
                    });
                }
            }
        }
    }

    fn check_pim_dir(&mut self, sys: &System, out: &mut Vec<Violation>) {
        let locks = sys.pmu.dir_in_flight();
        let txns = sys.pmu.in_flight();
        if locks != txns {
            out.push(Violation {
                checker: "pim-dir",
                component: "pmu".to_string(),
                detail: format!(
                    "directory holds {locks} reader-writer locks but {txns} PEIs are registered"
                ),
            });
        }
    }

    fn check_link(&mut self, sys: &System, out: &mut Vec<Violation>) {
        let (issued, returned, pending) = sys.ctrl.read_credit_state();
        if issued != returned + pending {
            out.push(Violation {
                checker: "link",
                component: "link".to_string(),
                detail: format!(
                    "read credits do not conserve: {issued} issued != {returned} returned + {pending} in flight"
                ),
            });
        }
    }

    fn check_xbar(&mut self, sys: &System, out: &mut Vec<Violation>) {
        let switched = sys.xbar.messages();
        let injected = sys.xsends;
        if switched != injected {
            out.push(Violation {
                checker: "xbar",
                component: "xbar".to_string(),
                detail: format!(
                    "messages do not conserve: {switched} switched != {injected} injected by the router"
                ),
            });
        }
    }

    fn check_pcu(&mut self, sys: &System, out: &mut Vec<Violation>) {
        for (v, pcu) in sys.mem_pcus.iter().enumerate() {
            let (used, cap) = (pcu.in_service(), pcu.operand_capacity());
            if used > cap {
                out.push(Violation {
                    checker: "pcu",
                    component: format!("mpcu{v}"),
                    detail: format!("{used} in-service PEIs exceed the {cap}-entry operand buffer"),
                });
            }
        }
        let cap = sys.cfg.pcu.operand_entries;
        for (c, pcu) in sys.host_pcus.iter().enumerate() {
            // `occupied()`, not `in_flight()`: memory-dispatched PEIs hand
            // their operand entry off but stay tracked until the result
            // returns, so the task count legitimately exceeds the buffer.
            let used = pcu.occupied();
            if used > cap {
                out.push(Violation {
                    checker: "pcu",
                    component: format!("hpcu{c}"),
                    detail: format!(
                        "{used} occupied operand entries exceed the {cap}-entry buffer"
                    ),
                });
            }
        }
    }

    fn check_events(&mut self, sys: &System, out: &mut Vec<Violation>) {
        // In a sharded run the sweep happens at an epoch barrier with
        // the cube shards quiesced; their queues' (scheduled,
        // dispatched, pending) counts are aggregated into
        // `foreign_events` by the driver, so conservation is checked
        // across the whole partitioned machine. Messages sitting in an
        // inter-shard mailbox are counted on neither side — they are
        // only `scheduled` once absorbed by the receiving queue — so
        // the equation balances at any barrier.
        let scheduled = sys.queue.total_scheduled() + sys.foreign_events.0;
        let pending = sys.queue.len() as u64 + sys.foreign_events.2;
        let dispatched = sys.dispatched + sys.foreign_events.1;
        if scheduled != dispatched + pending {
            out.push(Violation {
                checker: "events",
                component: "queue".to_string(),
                detail: format!(
                    "population does not reconcile: {scheduled} scheduled != {dispatched} dispatched + {pending} pending ({} lost)",
                    (scheduled as i64) - (dispatched + pending) as i64
                ),
            });
        }
        if pending as usize > self.cfg.max_events {
            out.push(Violation {
                checker: "events",
                component: "queue".to_string(),
                detail: format!(
                    "{pending} pending events exceed the {}-event population bound",
                    self.cfg.max_events
                ),
            });
        }
    }
}

/// Resolves a [`FaultPlan`] against a machine: immediate faults are
/// applied to components now; event-triggered faults come back armed.
/// Called by `System::inject_faults`.
pub(crate) fn resolve_plan(sys: &mut System, plan: &FaultPlan) -> ArmedFaults {
    let mut rng = SimRng::seed_from(plan.seed());
    let mut armed = ArmedFaults::default();
    // Synthetic blocks live far above any workload heap so a leaked
    // entry can never collide with real traffic.
    let far_block = |rng: &mut SimRng| BlockAddr(0x0040_0000_0000 + rng.gen_range(1 << 20));
    for &kind in plan.kinds() {
        match kind {
            FaultKind::WedgeVault => {
                let v = rng.gen_range(sys.vaults.len() as u64) as usize;
                sys.vaults[v].fault_wedge();
            }
            FaultKind::LeakMshr => {
                let c = rng.gen_range(sys.privs.len() as u64) as usize;
                let block = far_block(&mut rng);
                sys.privs[c].fault_leak_mshr(block);
            }
            FaultKind::LeakDirLock => {
                let block = far_block(&mut rng);
                sys.pmu.fault_leak_dir_lock(block);
            }
            FaultKind::LeakLinkCredit => {
                sys.ctrl.fault_leak_read_credit();
            }
            FaultKind::OverfillPcu => {
                let v = rng.gen_range(sys.mem_pcus.len() as u64) as usize;
                let cap = sys.mem_pcus[v].operand_capacity();
                for _ in 0..=cap {
                    sys.mem_pcus[v].fault_overfill();
                }
            }
            FaultKind::CorruptLine => {
                armed.corrupt_at = Some(1_000 + rng.gen_range(4_000));
            }
            FaultKind::DropEvent => {
                armed.drop_at = Some(1_000 + rng.gen_range(4_000));
            }
            FaultKind::DelayEvent => {
                armed.delay_at = Some((1_000 + rng.gen_range(4_000), 64 + rng.gen_range(192)));
            }
            FaultKind::RogueXbarMessage => {
                armed.rogue_at = Some(1_000 + rng.gen_range(4_000));
            }
        }
    }
    armed
}
