//! Full-machine assembly and the discrete-event run loop.
//!
//! The [`System`] owns every component (cores, private caches, L3 banks,
//! crossbar, HMC controller, vaults, PCUs, PMU, the functional backing
//! store) plus the global event queue, and routes each component's output
//! messages to their destinations — through the crossbar where the
//! physical topology says so. All the latencies of Figs. 4 and 5 arise
//! from this wiring rather than being hard-coded per flow.

use crate::config::MachineConfig;
use crate::energy::{self, EnergyBreakdown, EnergyInputs, EnergyModel};
use crate::tracer::Tracer;
use pei_core::{HostPcu, HostPcuOut, MemPcu, MemPcuOut, Pmu, PmuIn, PmuOut};
use pei_cpu::core::{Core, CoreEvent, CoreStatus};
use pei_cpu::trace::PhasedTrace;
use pei_cpu::CoreOut;
use pei_engine::{EventQueue, Outbox, StatsReport};
use pei_hmc::ctrl::MemSideIn;
use pei_hmc::{CtrlIn, CtrlOut, HmcController, Vault, VaultIn, VaultOut};
use pei_mem::l3::{L3In, L3Out};
use pei_mem::msg::{CoreReq, L3Resp, Recall};
use pei_mem::xbar::XbarPayload;
use pei_mem::{BackingStore, Crossbar, L3Bank, PrivOut, PrivateCache};
use pei_trace::TraceSink;
use pei_types::mem::ns;
use pei_types::{BlockAddr, CoreId, Cycle, L3BankId, OperandValue, PimCmd, ReqId};

/// Internal event type of the system loop.
///
/// The queue holds millions of these, so size matters: the per-PEI
/// carriers of [`PimCmd`] / [`pei_types::PimOut`] / operand values are
/// boxed (PEIs are orders of magnitude rarer than plain memory events),
/// while the plain-memory-path variants stay inline. The
/// `ev_stays_compact` test pins the resulting size.
#[derive(Debug)]
enum Ev {
    CoreTick(usize),
    CoreMemDone(usize, ReqId),
    CorePeiDone(usize, u64),
    CorePeiCredit(usize),
    CorePfenceDone(usize),
    PrivCoreReq(usize, CoreReq),
    PrivL3Resp(usize, L3Resp),
    PrivRecall(usize, Recall),
    L3(usize, L3In),
    CtrlHostRead(ReqId, BlockAddr),
    CtrlHostWrite(BlockAddr),
    CtrlHostPim(Box<PimCmd>),
    CtrlMemReadDone(ReqId, BlockAddr, u16),
    CtrlMemPimDone(u16, Box<pei_types::PimOut>),
    VaultAcc(usize, VaultIn),
    VaultWake(usize),
    MemPcuCmd(usize, Box<PimCmd>),
    MemPcuVaultDone(usize, ReqId, bool),
    Pmu(Box<PmuIn>),
    HostPcuDecision(usize, ReqId),
    HostPcuDispatchedMem(usize, ReqId),
    HostPcuL1Resp(usize, ReqId),
    HostPcuMemResult(usize, ReqId, Box<OperandValue>),
}

struct Group {
    trace: Box<dyn PhasedTrace>,
    cores: Vec<usize>,
    drained: Vec<bool>,
    drained_count: usize,
    done: bool,
    instructions_at_done: u64,
    phases: u64,
}

/// Result of a full-system run: the headline metrics every experiment
/// harness consumes, plus the complete statistics report.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Host cycles until the last workload group completed.
    pub cycles: Cycle,
    /// Total instructions issued by all cores.
    pub instructions: u64,
    /// Total PEIs issued.
    pub peis: u64,
    /// Fraction of PEIs dispatched to memory-side PCUs (Fig. 8's "PIM %").
    pub pim_fraction: f64,
    /// Off-chip traffic in bytes, both directions (Fig. 7).
    pub offchip_bytes: u64,
    /// Request/response link flits.
    pub offchip_flits: (u64, u64),
    /// DRAM accesses served (reads + writes).
    pub dram_accesses: u64,
    /// Energy breakdown (Fig. 12).
    pub energy: EnergyBreakdown,
    /// Full per-component statistics.
    pub stats: StatsReport,
}

impl RunResult {
    /// Instructions per cycle across the whole machine (the sum-of-IPCs
    /// throughput metric of §7.3 equals this for multiprogrammed runs).
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles.max(1) as f64
    }
}

/// The simulated machine.
pub struct System {
    cfg: MachineConfig,
    queue: EventQueue<Ev>,
    cores: Vec<Core>,
    privs: Vec<PrivateCache>,
    l3banks: Vec<L3Bank>,
    xbar: Crossbar,
    ctrl: HmcController,
    vaults: Vec<Vault>,
    mem_pcus: Vec<MemPcu>,
    host_pcus: Vec<HostPcu>,
    pmu: Pmu,
    store: BackingStore,
    groups: Vec<Group>,
    core_group: Vec<Option<usize>>,
    finish_time: Cycle,
    // Reusable per-component outboxes: taken (std::mem::take) around each
    // handler call and put back after routing, so the steady-state event
    // loop allocates nothing. route_* methods only schedule events and
    // never re-enter handlers, which makes the take/put pattern safe.
    ob_core: Outbox<CoreOut>,
    ob_priv: Outbox<PrivOut>,
    ob_l3: Outbox<L3Out>,
    ob_ctrl: Outbox<CtrlOut>,
    ob_vault: Outbox<VaultOut>,
    ob_mpcu: Outbox<MemPcuOut>,
    ob_pmu: Outbox<PmuOut>,
    ob_hpcu: Outbox<HostPcuOut>,
    // Event capture (None in normal runs). The hot path pays one
    // `is_some()` branch per dispatched event when tracing is off; all
    // name interning happens at attach time (see crate::tracer).
    tracer: Option<Tracer>,
}

// Parallel experiment runners move whole `System`s (including their
// boxed traces) onto worker threads; keep that property explicit so a
// non-Send field is caught here, not in a downstream crate.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<System>();
};

impl System {
    /// Builds an idle machine per `cfg`, with `store` as the simulated
    /// physical memory contents (typically a clone of the store the
    /// workload generator initialized).
    pub fn new(cfg: MachineConfig, mut store: BackingStore) -> Self {
        let n = cfg.cores;
        let banks = cfg.mem.l3_banks;
        let vaults_total = cfg.total_vaults();
        // Virtual memory: workload data was built at virtual addresses;
        // place it at the mapped physical frames (§4.4).
        if cfg.page_map != pei_cpu::PageMap::Identity {
            store.remap_pages(|vpn| cfg.page_map.translate_page(vpn));
        }
        System {
            // Size the calendar queue's near-future window for this
            // machine's dominant scheduling deltas; far-tail events
            // (congested-channel deliveries) take the overflow path.
            queue: EventQueue::with_horizon(cfg.event_horizon()),
            cores: (0..n)
                .map(|i| {
                    let mut c = Core::new(CoreId(i as u16), cfg.core_config());
                    if let Some(tlb_cfg) = cfg.tlb {
                        c.enable_virtual_memory(tlb_cfg, cfg.page_map);
                    }
                    c
                })
                .collect(),
            privs: (0..n)
                .map(|i| PrivateCache::new(CoreId(i as u16), &cfg.mem))
                .collect(),
            l3banks: (0..banks)
                .map(|b| L3Bank::new(L3BankId(b as u16), &cfg.mem))
                .collect(),
            // Source ports: one per private cache, one per L3 bank, one
            // for the PMU.
            xbar: Crossbar::new(
                n + banks + 1,
                cfg.mem.xbar_bytes_per_cycle,
                cfg.mem.xbar_latency,
            ),
            ctrl: HmcController::new(&cfg.hmc),
            vaults: (0..vaults_total).map(|_| Vault::new(&cfg.hmc)).collect(),
            mem_pcus: (0..vaults_total)
                .map(|v| MemPcu::new(v as u16, cfg.pcu, cfg.hmc.mem_clk))
                .collect(),
            host_pcus: (0..n)
                .map(|i| HostPcu::new(CoreId(i as u16), cfg.pcu))
                .collect(),
            pmu: Pmu::new(cfg.pmu_config()),
            store,
            groups: Vec::new(),
            core_group: vec![None; n],
            finish_time: 0,
            ob_core: Outbox::new(),
            ob_priv: Outbox::new(),
            ob_l3: Outbox::new(),
            ob_ctrl: Outbox::new(),
            ob_vault: Outbox::new(),
            ob_mpcu: Outbox::new(),
            ob_pmu: Outbox::new(),
            ob_hpcu: Outbox::new(),
            tracer: None,
            cfg,
        }
    }

    /// Attaches an event-capture sink. Component and kind names are
    /// interned into the sink immediately (so the event loop never
    /// hashes a string), and the machine shape is written to the sink's
    /// metadata. Replaces any previously attached sink.
    pub fn attach_tracer(&mut self, sink: Box<dyn TraceSink>) {
        self.tracer = Some(Tracer::new(sink, &self.cfg));
    }

    /// Detaches and returns the capture sink, if one is attached.
    pub fn detach_tracer(&mut self) -> Option<Box<dyn TraceSink>> {
        self.tracer.take().map(|t| t.sink)
    }

    /// Labels every component's current counter values as the end of
    /// phase `label`. The final [`RunResult`] stats then carry interval
    /// sections `*.phase.{label}.*` (with the tail after the last mark
    /// labeled `steady`), extractable with `StatsReport::phase_section`.
    /// The run loop calls this automatically with `"warmup"` when
    /// workload group 0 finishes its first phase; experiment harnesses
    /// may add marks of their own between `run` calls.
    pub fn mark_phase(&mut self, label: &'static str) {
        for c in &mut self.cores {
            c.snapshot_phase(label);
        }
        for p in &mut self.privs {
            p.snapshot_phase(label);
        }
        for b in &mut self.l3banks {
            b.snapshot_phase(label);
        }
        for v in &mut self.vaults {
            v.snapshot_phase(label);
        }
        for p in &mut self.host_pcus {
            p.snapshot_phase(label);
        }
        for p in &mut self.mem_pcus {
            p.snapshot_phase(label);
        }
        self.ctrl.snapshot_phase(label);
        self.pmu.snapshot_phase(label);
    }

    /// Spec-driven one-call entry: builds a machine per `cfg`, assigns
    /// `trace` to all of its cores, and runs to completion (or
    /// `max_cycles`). This is the whole lifecycle of one experiment
    /// cell, packaged so batch runners (`pei-bench`'s `runner` module)
    /// can ship it to a worker thread as a single pure function of its
    /// arguments.
    ///
    /// # Examples
    ///
    /// ```
    /// use pei_system::{MachineConfig, System};
    /// use pei_core::DispatchPolicy;
    /// use pei_cpu::trace::{Op, VecPhases};
    /// use pei_mem::BackingStore;
    ///
    /// let mut store = BackingStore::new();
    /// let a = store.alloc_block();
    /// let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
    /// let r = System::run_workload(
    ///     cfg,
    ///     store,
    ///     Box::new(VecPhases::single(vec![Op::load(a)])),
    ///     1_000_000,
    /// );
    /// assert_eq!(r.instructions, 1);
    /// ```
    pub fn run_workload(
        cfg: MachineConfig,
        store: BackingStore,
        trace: Box<dyn PhasedTrace>,
        max_cycles: Cycle,
    ) -> RunResult {
        let mut sys = System::new(cfg, store);
        sys.add_workload(trace, (0..cfg.cores).collect());
        sys.run(max_cycles)
    }

    /// Assigns a workload to a set of cores (threads map to `cores` in
    /// order). Multiple groups may coexist (multiprogramming, §7.3); each
    /// group synchronizes its phases independently.
    ///
    /// # Panics
    ///
    /// Panics if the trace has more threads than `cores`, or any core is
    /// already assigned.
    pub fn add_workload(&mut self, trace: Box<dyn PhasedTrace>, cores: Vec<usize>) {
        assert!(
            trace.threads() <= cores.len(),
            "workload {} needs {} cores, got {}",
            trace.name(),
            trace.threads(),
            cores.len()
        );
        for &c in &cores {
            assert!(self.core_group[c].is_none(), "core {c} already assigned");
            self.core_group[c] = Some(self.groups.len());
        }
        let n = cores.len();
        self.groups.push(Group {
            trace,
            cores,
            drained: vec![false; n],
            drained_count: 0,
            done: false,
            instructions_at_done: 0,
            phases: 0,
        });
    }

    fn port_priv(&self, core: usize) -> usize {
        core
    }
    fn port_l3(&self, bank: usize) -> usize {
        self.cfg.cores + bank
    }
    fn port_pmu(&self) -> usize {
        self.cfg.cores + self.cfg.mem.l3_banks
    }
    fn bank_of(&self, block: BlockAddr) -> usize {
        (block.0 as usize) & (self.cfg.mem.l3_banks - 1)
    }

    fn pull_phase(&mut self, g: usize, now: Cycle) {
        let group = &mut self.groups[g];
        match group.trace.next_phase() {
            Some(phase) => {
                group.phases += 1;
                group.drained.iter_mut().for_each(|d| *d = false);
                group.drained_count = 0;
                let assignments: Vec<(usize, Vec<pei_cpu::trace::Op>)> = phase
                    .into_iter()
                    .enumerate()
                    .map(|(t, ops)| (group.cores[t], ops))
                    .collect();
                // Threads beyond the phase's vector count are immediately
                // drained; mark them.
                let active: std::collections::HashSet<usize> =
                    assignments.iter().map(|(c, _)| *c).collect();
                let spare: Vec<usize> = group
                    .cores
                    .iter()
                    .copied()
                    .filter(|c| !active.contains(c))
                    .collect();
                for c in spare {
                    let idx = self.groups[g].cores.iter().position(|&x| x == c).unwrap();
                    self.groups[g].drained[idx] = true;
                    self.groups[g].drained_count += 1;
                }
                for (c, ops) in assignments {
                    self.cores[c].push_ops(ops);
                    self.queue.schedule(now, Ev::CoreTick(c));
                }
                // Group 0 finishing its first phase marks the warmup /
                // steady-state boundary of the whole run.
                if g == 0 && self.groups[g].phases == 2 {
                    self.mark_phase("warmup");
                }
                if self.tracer.is_some() {
                    let phase_no = self.groups[g].phases;
                    self.trace_mark(now, true, g, phase_no);
                }
                // A phase where every thread is empty completes instantly;
                // the per-core Drained path handles it because empty cores
                // report Drained on their scheduled tick.
            }
            None => {
                let group = &mut self.groups[g];
                group.done = true;
                group.instructions_at_done = group
                    .cores
                    .iter()
                    .map(|&c| self.cores[c].instructions())
                    .sum();
                self.finish_time = self.finish_time.max(now);
                if self.tracer.is_some() {
                    self.trace_mark(now, false, g, 0);
                }
            }
        }
    }

    fn all_done(&self) -> bool {
        self.groups.iter().all(|g| g.done)
    }

    /// Runs until every workload group completes (or `max_cycles` elapse).
    ///
    /// # Panics
    ///
    /// Panics on deadlock (the event queue empties while work remains) or
    /// when `max_cycles` is exceeded — both indicate a bug or a grossly
    /// undersized limit, and the message carries per-core diagnostics.
    pub fn run(&mut self, max_cycles: Cycle) -> RunResult {
        assert!(!self.groups.is_empty(), "no workload assigned");
        for g in 0..self.groups.len() {
            self.pull_phase(g, 0);
        }
        while let Some((now, ev)) = self.queue.pop() {
            assert!(
                now <= max_cycles,
                "cycle limit {max_cycles} exceeded; {} events pending",
                self.queue.len()
            );
            self.dispatch(now, ev);
            if self.all_done() {
                break;
            }
        }
        assert!(
            self.all_done(),
            "deadlock: event queue empty but work remains: {}",
            self.diagnose()
        );
        self.result()
    }

    fn diagnose(&self) -> String {
        let mut s = String::new();
        for (i, c) in self.cores.iter().enumerate() {
            if !c.drained() {
                s.push_str(&format!("core{i} not drained; "));
            }
        }
        for (i, p) in self.privs.iter().enumerate() {
            if p.inflight_misses() > 0 {
                s.push_str(&format!("priv{i} has {} misses; ", p.inflight_misses()));
            }
        }
        for (b, bank) in self.l3banks.iter().enumerate() {
            if !bank.is_quiescent() {
                s.push_str(&format!("l3 bank{b} has in-flight state; "));
            }
        }
        for (v, vault) in self.vaults.iter().enumerate() {
            if vault.backlog() > 0 {
                s.push_str(&format!(
                    "vault{v} has {} queued accesses; ",
                    vault.backlog()
                ));
            }
        }
        for (v, pcu) in self.mem_pcus.iter().enumerate() {
            if pcu.backlog() > 0 {
                s.push_str(&format!("mem-pcu{v} has {} commands; ", pcu.backlog()));
            }
        }
        if self.ctrl.pending_reads() > 0 {
            s.push_str(&format!(
                "link controller has {} reads in flight; ",
                self.ctrl.pending_reads()
            ));
        }
        if self.pmu.in_flight() > 0 {
            s.push_str(&format!("pmu has {} PEIs; ", self.pmu.in_flight()));
        }
        s
    }

    /// Captures one dispatched event. Out-of-line and only reached with
    /// a tracer attached, so the untraced loop pays nothing beyond the
    /// `is_some()` branch in [`dispatch`](Self::dispatch).
    #[cold]
    fn trace_ev(&mut self, now: Cycle, ev: &Ev) {
        let t = self.tracer.as_mut().expect("trace_ev requires a tracer");
        let (comp, kind, payload) = match ev {
            Ev::CoreTick(i) => (t.core[*i], t.k.core_tick, 0),
            Ev::CoreMemDone(i, id) => (t.core[*i], t.k.core_mem_done, id.0),
            Ev::CorePeiDone(i, seq) => (t.core[*i], t.k.core_pei_done, *seq),
            Ev::CorePeiCredit(i) => (t.core[*i], t.k.core_pei_credit, 0),
            Ev::CorePfenceDone(i) => (t.core[*i], t.k.core_pfence_done, 0),
            Ev::PrivCoreReq(i, req) => (t.cache[*i], t.k.priv_req, req.addr.0),
            Ev::PrivL3Resp(i, resp) => (t.cache[*i], t.k.priv_resp, resp.id.0),
            Ev::PrivRecall(i, recall) => (t.cache[*i], t.k.priv_recall, recall.block.0),
            Ev::L3(b, input) => {
                let (kind, payload) = match input {
                    L3In::Req(req) => (t.k.l3_req, req.block.0),
                    L3In::Ack(ack) => (t.k.l3_ack, ack.block.0),
                    L3In::Flush(flush) => (t.k.l3_flush, flush.block.0),
                    L3In::FetchDone(done) => (t.k.l3_fetch_done, done.block.0),
                };
                (t.l3[*b], kind, payload)
            }
            Ev::CtrlHostRead(_, block) => (t.ctrl, t.k.ctrl_read, block.0),
            Ev::CtrlHostWrite(block) => (t.ctrl, t.k.ctrl_write, block.0),
            Ev::CtrlHostPim(cmd) => (t.ctrl, t.k.ctrl_pim, cmd.target.0),
            Ev::CtrlMemReadDone(_, block, _) => (t.ctrl, t.k.ctrl_read_done, block.0),
            Ev::CtrlMemPimDone(_, out) => (t.ctrl, t.k.ctrl_pim_done, out.block.0),
            Ev::VaultAcc(v, acc) => (t.vault[*v], t.k.vault_access, acc.block.0),
            Ev::VaultWake(v) => (t.vault[*v], t.k.vault_wake, 0),
            Ev::MemPcuCmd(v, cmd) => (t.mpcu[*v], t.k.mpcu_cmd, cmd.target.0),
            Ev::MemPcuVaultDone(v, id, _) => (t.mpcu[*v], t.k.mpcu_vault_done, id.0),
            Ev::Pmu(input) => {
                let (kind, payload) = match input.as_ref() {
                    PmuIn::Request { id, .. } => (t.k.pmu_request, id.0),
                    PmuIn::HostRelease { id } => (t.k.pmu_host_release, id.0),
                    PmuIn::FlushDone { id } => (t.k.pmu_flush_done, id.0),
                    PmuIn::MemResult { out } => (t.k.pmu_mem_result, out.id.0),
                    PmuIn::Pfence { core } => (t.k.pmu_pfence, core.0 as u64),
                };
                (t.pmu, kind, payload)
            }
            Ev::HostPcuDecision(c, id) => (t.hpcu[*c], t.k.hpcu_decide_host, id.0),
            Ev::HostPcuDispatchedMem(c, id) => (t.hpcu[*c], t.k.hpcu_dispatched_mem, id.0),
            Ev::HostPcuL1Resp(c, id) => (t.hpcu[*c], t.k.hpcu_l1_resp, id.0),
            Ev::HostPcuMemResult(c, id, _) => (t.hpcu[*c], t.k.hpcu_mem_result, id.0),
        };
        t.sink.record(now, comp, kind, payload);
    }

    /// Records a phase boundary (`start`) or group completion; payload
    /// packs the group index in the high half and the phase ordinal in
    /// the low half.
    #[cold]
    fn trace_mark(&mut self, now: Cycle, start: bool, g: usize, phase_no: u64) {
        let t = self.tracer.as_mut().expect("trace_mark requires a tracer");
        let kind = if start {
            t.k.phase_start
        } else {
            t.k.group_done
        };
        let payload = ((g as u64) << 32) | (phase_no & 0xffff_ffff);
        t.sink.record(now, t.system, kind, payload);
    }

    /// Sends over the crossbar, capturing the message when tracing; the
    /// payload packs the source port in the high half and the delivery
    /// latency in the low half.
    fn xsend(&mut self, port: usize, at: Cycle, payload: XbarPayload) -> Cycle {
        let delivered = self.xbar.send(port, at, payload);
        if let Some(t) = &mut self.tracer {
            let packed = ((port as u64) << 32) | ((delivered - at) & 0xffff_ffff);
            t.sink.record(at, t.xbar, t.k.xbar_msg, packed);
        }
        delivered
    }

    fn dispatch(&mut self, now: Cycle, ev: Ev) {
        if self.tracer.is_some() {
            self.trace_ev(now, &ev);
        }
        match ev {
            Ev::CoreTick(i) => self.core_tick(i, now),
            Ev::CoreMemDone(i, id) => {
                if self.cores[i].on_event(CoreEvent::MemDone(id)) {
                    self.queue.schedule(now, Ev::CoreTick(i));
                }
            }
            Ev::CorePeiDone(i, seq) => {
                if self.cores[i].on_event(CoreEvent::PeiDone(seq)) {
                    self.queue.schedule(now, Ev::CoreTick(i));
                }
            }
            Ev::CorePeiCredit(i) => {
                if self.cores[i].on_event(CoreEvent::PeiCredit) {
                    self.queue.schedule(now, Ev::CoreTick(i));
                }
            }
            Ev::CorePfenceDone(i) => {
                if self.cores[i].on_event(CoreEvent::PfenceDone) {
                    self.queue.schedule(now, Ev::CoreTick(i));
                }
            }
            Ev::PrivCoreReq(i, req) => {
                let mut outs = std::mem::take(&mut self.ob_priv);
                self.privs[i].handle_core_req(now, req, &mut outs);
                self.route_priv(i, &mut outs);
                self.ob_priv = outs;
            }
            Ev::PrivL3Resp(i, resp) => {
                let mut outs = std::mem::take(&mut self.ob_priv);
                self.privs[i].handle_l3_resp(now, resp, &mut outs);
                self.route_priv(i, &mut outs);
                self.ob_priv = outs;
            }
            Ev::PrivRecall(i, recall) => {
                let mut outs = std::mem::take(&mut self.ob_priv);
                self.privs[i].handle_recall(now, recall, &mut outs);
                self.route_priv(i, &mut outs);
                self.ob_priv = outs;
            }
            Ev::L3(b, input) => {
                if let L3In::Req(req) = &input {
                    if req.kind.expects_response() {
                        self.pmu.on_l3_access(req.block);
                    }
                }
                let mut outs = std::mem::take(&mut self.ob_l3);
                self.l3banks[b].handle(now, input, &mut outs);
                self.route_l3(b, &mut outs);
                self.ob_l3 = outs;
            }
            Ev::CtrlHostRead(id, block) => self.ctrl_host(now, CtrlIn::Read { id, block }),
            Ev::CtrlHostWrite(block) => self.ctrl_host(now, CtrlIn::Write { block }),
            Ev::CtrlHostPim(cmd) => self.ctrl_host(now, CtrlIn::Pim { cmd: *cmd }),
            Ev::CtrlMemReadDone(id, block, cube) => {
                self.ctrl_mem(now, MemSideIn::ReadDone { id, block, cube });
            }
            Ev::CtrlMemPimDone(cube, out) => {
                self.ctrl_mem(now, MemSideIn::PimDone { out: *out, cube });
            }
            Ev::VaultAcc(v, acc) => {
                let mut outs = std::mem::take(&mut self.ob_vault);
                self.vaults[v].handle_access(now, acc, &mut outs);
                self.route_vault(v, &mut outs);
                self.ob_vault = outs;
            }
            Ev::VaultWake(v) => {
                let mut outs = std::mem::take(&mut self.ob_vault);
                self.vaults[v].wake(now, &mut outs);
                self.route_vault(v, &mut outs);
                self.ob_vault = outs;
            }
            Ev::MemPcuCmd(v, cmd) => {
                let mut outs = std::mem::take(&mut self.ob_mpcu);
                self.mem_pcus[v].on_cmd(now, *cmd, &mut outs);
                self.route_mem_pcu(v, &mut outs);
                self.ob_mpcu = outs;
            }
            Ev::MemPcuVaultDone(v, id, write) => {
                let mut outs = std::mem::take(&mut self.ob_mpcu);
                self.mem_pcus[v].on_vault_done(now, id, write, &mut self.store, &mut outs);
                self.route_mem_pcu(v, &mut outs);
                self.ob_mpcu = outs;
            }
            Ev::Pmu(input) => {
                let balance = self.ctrl.balance(now);
                let mut outs = std::mem::take(&mut self.ob_pmu);
                self.pmu.handle(now, *input, balance, &mut outs);
                self.route_pmu(&mut outs);
                self.ob_pmu = outs;
            }
            Ev::HostPcuDecision(c, id) => {
                let mut outs = std::mem::take(&mut self.ob_hpcu);
                self.host_pcus[c].on_decision_host(now, id, &mut outs);
                self.route_host_pcu(c, &mut outs);
                self.ob_hpcu = outs;
            }
            Ev::HostPcuDispatchedMem(c, id) => {
                let mut outs = std::mem::take(&mut self.ob_hpcu);
                self.host_pcus[c].on_dispatched_mem(now, id, &mut outs);
                self.route_host_pcu(c, &mut outs);
                self.ob_hpcu = outs;
            }
            Ev::HostPcuL1Resp(c, id) => {
                let mut outs = std::mem::take(&mut self.ob_hpcu);
                self.host_pcus[c].on_l1_resp(now, id, &mut self.store, &mut outs);
                self.route_host_pcu(c, &mut outs);
                self.ob_hpcu = outs;
            }
            Ev::HostPcuMemResult(c, id, output) => {
                let mut outs = std::mem::take(&mut self.ob_hpcu);
                self.host_pcus[c].on_mem_result(now, id, *output, &mut outs);
                self.route_host_pcu(c, &mut outs);
                self.ob_hpcu = outs;
            }
        }
    }

    fn ctrl_host(&mut self, now: Cycle, input: CtrlIn) {
        let mut outs = std::mem::take(&mut self.ob_ctrl);
        self.ctrl.handle_host(now, input, &mut outs);
        self.route_ctrl(&mut outs);
        self.ob_ctrl = outs;
    }

    fn ctrl_mem(&mut self, now: Cycle, input: MemSideIn) {
        let mut outs = std::mem::take(&mut self.ob_ctrl);
        self.ctrl.handle_mem_side(now, input, &mut outs);
        self.route_ctrl(&mut outs);
        self.ob_ctrl = outs;
    }

    fn core_tick(&mut self, i: usize, now: Cycle) {
        let mut core_outs = std::mem::take(&mut self.ob_core);
        let outcome = self.cores[i].tick(now, &mut core_outs);
        for out in core_outs.drain() {
            match out {
                CoreOut::Mem { id, addr, write } => {
                    self.queue
                        .schedule(now + 1, Ev::PrivCoreReq(i, CoreReq { id, addr, write }));
                }
                CoreOut::Pei {
                    seq,
                    op,
                    target,
                    input,
                } => {
                    let mut outs = std::mem::take(&mut self.ob_hpcu);
                    self.host_pcus[i].begin(now, seq, op, target, input, &mut outs);
                    self.route_host_pcu(i, &mut outs);
                    self.ob_hpcu = outs;
                }
                CoreOut::PfenceReq => {
                    let at = self.xsend(self.port_priv(i), now, XbarPayload::Control);
                    self.queue.schedule(
                        at,
                        Ev::Pmu(Box::new(PmuIn::Pfence {
                            core: CoreId(i as u16),
                        })),
                    );
                }
            }
        }
        self.ob_core = core_outs;
        match outcome.status {
            CoreStatus::Running => {
                let next = outcome.next.expect("running core has a next tick");
                self.queue.schedule(next, Ev::CoreTick(i));
            }
            CoreStatus::Blocked => {}
            CoreStatus::Drained => {
                if let Some(g) = self.core_group[i] {
                    let idx = self.groups[g].cores.iter().position(|&c| c == i).unwrap();
                    if !self.groups[g].done && !self.groups[g].drained[idx] {
                        self.groups[g].drained[idx] = true;
                        self.groups[g].drained_count += 1;
                        if self.groups[g].drained_count == self.groups[g].cores.len() {
                            self.pull_phase(g, now);
                        }
                    }
                }
            }
        }
    }

    fn route_priv(&mut self, i: usize, outs: &mut Outbox<PrivOut>) {
        for out in outs.drain() {
            match out {
                PrivOut::CoreResp { id, at } => match id.namespace() {
                    ns::CORE => self.queue.schedule(at, Ev::CoreMemDone(i, id)),
                    ns::HOST_PCU => self.queue.schedule(at, Ev::HostPcuL1Resp(i, id)),
                    other => panic!("unexpected namespace {other} at private cache"),
                },
                PrivOut::ToL3 { req, at } => {
                    let payload = if req.kind == pei_mem::L3ReqKind::PutM {
                        XbarPayload::Data
                    } else {
                        XbarPayload::Control
                    };
                    let delivered = self.xsend(self.port_priv(i), at, payload);
                    let bank = self.bank_of(req.block);
                    self.queue.schedule(delivered, Ev::L3(bank, L3In::Req(req)));
                }
                PrivOut::Ack { ack, at } => {
                    let payload = if ack.dirty {
                        XbarPayload::Data
                    } else {
                        XbarPayload::Control
                    };
                    let delivered = self.xsend(self.port_priv(i), at, payload);
                    let bank = self.bank_of(ack.block);
                    self.queue.schedule(delivered, Ev::L3(bank, L3In::Ack(ack)));
                }
            }
        }
    }

    fn route_l3(&mut self, b: usize, outs: &mut Outbox<L3Out>) {
        for out in outs.drain() {
            match out {
                L3Out::Resp { resp, at } => {
                    let delivered = self.xsend(self.port_l3(b), at, XbarPayload::Data);
                    self.queue
                        .schedule(delivered, Ev::PrivL3Resp(resp.core.index(), resp));
                }
                L3Out::Recall { recall, at } => {
                    let delivered = self.xsend(self.port_l3(b), at, XbarPayload::Control);
                    self.queue
                        .schedule(delivered, Ev::PrivRecall(recall.core.index(), recall));
                }
                L3Out::Fetch { fetch, at } => {
                    let ev = if fetch.write {
                        Ev::CtrlHostWrite(fetch.block)
                    } else {
                        Ev::CtrlHostRead(fetch.id, fetch.block)
                    };
                    self.queue.schedule(at + self.cfg.ctrl_latency, ev);
                }
                L3Out::FlushDone { done, at } => {
                    self.queue
                        .schedule(at, Ev::Pmu(Box::new(PmuIn::FlushDone { id: done.id })));
                }
            }
        }
    }

    fn route_ctrl(&mut self, outs: &mut Outbox<CtrlOut>) {
        let vpc = self.cfg.hmc.vaults_per_cube;
        for out in outs.drain() {
            match out {
                CtrlOut::ToVault { loc, access, at } => {
                    self.queue
                        .schedule(at, Ev::VaultAcc(loc.flat_index(vpc), access));
                }
                CtrlOut::PimToVault { loc, cmd, at } => {
                    self.queue
                        .schedule(at, Ev::MemPcuCmd(loc.flat_index(vpc), Box::new(cmd)));
                }
                CtrlOut::ReadResp { id, block, at } => {
                    let bank = self.bank_of(block);
                    self.queue.schedule(
                        at + self.cfg.ctrl_latency,
                        Ev::L3(
                            bank,
                            L3In::FetchDone(pei_mem::msg::MemFetchDone { id, block }),
                        ),
                    );
                }
                CtrlOut::PimResp { out, at } => {
                    self.queue.schedule(
                        at + self.cfg.ctrl_latency,
                        Ev::Pmu(Box::new(PmuIn::MemResult { out })),
                    );
                }
            }
        }
    }

    fn route_vault(&mut self, v: usize, outs: &mut Outbox<VaultOut>) {
        let vpc = self.cfg.hmc.vaults_per_cube;
        for out in outs.drain() {
            match out {
                VaultOut::Done {
                    id,
                    block,
                    write,
                    at,
                } => match id.namespace() {
                    ns::L3 if !write => {
                        self.queue
                            .schedule(at, Ev::CtrlMemReadDone(id, block, (v / vpc) as u16));
                    }
                    // Writebacks complete silently.
                    ns::MEM_PCU => {
                        self.queue.schedule(at, Ev::MemPcuVaultDone(v, id, write));
                    }
                    _ => {} // writeback with a null id: no response
                },
                VaultOut::Wake { at } => self.queue.schedule(at, Ev::VaultWake(v)),
            }
        }
    }

    fn route_mem_pcu(&mut self, v: usize, outs: &mut Outbox<MemPcuOut>) {
        let vpc = self.cfg.hmc.vaults_per_cube;
        for out in outs.drain() {
            match out {
                MemPcuOut::VaultAccess {
                    id,
                    block,
                    write,
                    at,
                } => {
                    self.queue
                        .schedule(at, Ev::VaultAcc(v, VaultIn { id, block, write }));
                }
                MemPcuOut::Complete { resp, at } => {
                    self.queue
                        .schedule(at, Ev::CtrlMemPimDone((v / vpc) as u16, Box::new(resp)));
                }
            }
        }
    }

    fn route_pmu(&mut self, outs: &mut Outbox<PmuOut>) {
        for out in outs.drain() {
            match out {
                PmuOut::DecideHost { id, core, at } => {
                    let delivered = self.xsend(self.port_pmu(), at, XbarPayload::Control);
                    let _ = delivered;
                    self.queue
                        .schedule(delivered, Ev::HostPcuDecision(core.index(), id));
                }
                PmuOut::Flush { flush, at } => {
                    let bank = self.bank_of(flush.block);
                    self.queue.schedule(at, Ev::L3(bank, L3In::Flush(flush)));
                }
                PmuOut::Launch { cmd, at } => {
                    self.queue
                        .schedule(at + self.cfg.ctrl_latency, Ev::CtrlHostPim(Box::new(cmd)));
                }
                PmuOut::MemResultToPcu {
                    id,
                    core,
                    output,
                    at,
                } => {
                    let delivered = self.xsend(
                        self.port_pmu(),
                        at,
                        XbarPayload::Operands(output.byte_len() as u16),
                    );
                    self.queue.schedule(
                        delivered,
                        Ev::HostPcuMemResult(core.index(), id, Box::new(output)),
                    );
                }
                PmuOut::PfenceDone { core, at } => {
                    let delivered = self.xsend(self.port_pmu(), at, XbarPayload::Control);
                    self.queue
                        .schedule(delivered, Ev::CorePfenceDone(core.index()));
                }
                PmuOut::DispatchedMem { id, core, at } => {
                    let delivered = self.xsend(self.port_pmu(), at, XbarPayload::Control);
                    self.queue
                        .schedule(delivered, Ev::HostPcuDispatchedMem(core.index(), id));
                }
            }
        }
    }

    fn route_host_pcu(&mut self, c: usize, outs: &mut Outbox<HostPcuOut>) {
        for out in outs.drain() {
            match out {
                HostPcuOut::ToPmu {
                    id,
                    op,
                    target,
                    input,
                    at,
                } => {
                    let delivered = self.xsend(
                        self.port_priv(c),
                        at,
                        XbarPayload::Operands(input.byte_len() as u16),
                    );
                    self.queue.schedule(
                        delivered,
                        Ev::Pmu(Box::new(PmuIn::Request {
                            id,
                            core: CoreId(c as u16),
                            op,
                            target,
                            input,
                        })),
                    );
                }
                HostPcuOut::L1Access { req, at } => {
                    self.queue.schedule(at, Ev::PrivCoreReq(c, req));
                }
                HostPcuOut::DoneToCore { seq, at, .. } => {
                    self.queue.schedule(at, Ev::CorePeiDone(c, seq));
                }
                HostPcuOut::CreditToCore { at, .. } => {
                    self.queue.schedule(at, Ev::CorePeiCredit(c));
                }
                HostPcuOut::ReleaseToPmu { id, at } => {
                    let delivered = self.xsend(self.port_priv(c), at, XbarPayload::Control);
                    self.queue
                        .schedule(delivered, Ev::Pmu(Box::new(PmuIn::HostRelease { id })));
                }
            }
        }
    }

    /// Read access to the simulated memory (for result validation).
    pub fn store(&self) -> &BackingStore {
        &self.store
    }

    fn result(&mut self) -> RunResult {
        let mut stats = StatsReport::new();
        for c in &self.cores {
            c.report("core.", &mut stats);
        }
        for p in &self.privs {
            p.report("cache.", &mut stats);
        }
        for b in &self.l3banks {
            b.report("l3.", &mut stats);
        }
        for v in &self.vaults {
            v.report("dram.", &mut stats);
        }
        for p in &self.host_pcus {
            p.report("hpcu.", &mut stats);
        }
        for p in &self.mem_pcus {
            p.report("mpcu.", &mut stats);
        }
        self.ctrl.report("link.", &mut stats);
        self.pmu.report("pmu.", &mut stats);
        stats.add("xbar.messages", self.xbar.messages() as f64);
        stats.add("xbar.bytes", self.xbar.bytes() as f64);

        let (host_d, mem_d) = self.pmu.dispatch_counts();
        let instructions = self.cores.iter().map(|c| c.instructions()).sum();
        let peis: u64 = self.cores.iter().map(|c| c.issued_peis()).sum();
        let (req_flits, res_flits) = self.ctrl.total_flits();
        let dram_accesses: u64 = self.vaults.iter().map(|v| v.accesses()).sum();

        let l3_accesses: u64 = self.l3banks.iter().map(|b| b.accesses()).sum();
        let inputs = EnergyInputs {
            l1_accesses: (stats.expect("cache.l1.hits") + stats.expect("cache.l1.misses")) as u64,
            l2_accesses: (stats.expect("cache.l2.hits") + stats.expect("cache.l2.misses")) as u64,
            l3_accesses,
            dram_activates: stats.expect("dram.activates") as u64,
            dram_rw: dram_accesses,
            link_bytes: self.ctrl.total_bytes(),
            tsv_bytes: stats.expect("dram.tsv_bytes") as u64,
            host_pcu_ops: host_d,
            mem_pcu_ops: mem_d,
            dir_accesses: 2 * (host_d + mem_d),
            mon_accesses: stats.get("pmu.mon.queries").unwrap_or(0.0) as u64 + l3_accesses,
            cycles: self.finish_time.max(1),
        };
        let energy = energy::compute(&EnergyModel::default(), &inputs);
        energy::report(&energy, &mut stats);

        let cycles = self.finish_time.max(1);
        stats.add("sim.cycles", cycles as f64);
        stats.add("sim.instructions", instructions as f64);
        stats.add("sim.events", self.queue.total_scheduled() as f64);

        RunResult {
            cycles,
            instructions,
            peis,
            pim_fraction: if host_d + mem_d > 0 {
                mem_d as f64 / (host_d + mem_d) as f64
            } else {
                0.0
            },
            offchip_bytes: self.ctrl.total_bytes(),
            offchip_flits: (req_flits, res_flits),
            dram_accesses,
            energy,
            stats,
        }
    }
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("cores", &self.cores.len())
            .field("l3_banks", &self.l3banks.len())
            .field("vaults", &self.vaults.len())
            .field("policy", &self.cfg.policy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pei_core::DispatchPolicy;

    #[test]
    fn ev_stays_compact() {
        // The event queue holds millions of `Ev`s; the per-PEI payload
        // carriers are boxed so the plain memory path sets the size.
        // PrivL3Resp / L3 / VaultAcc bound it at 40 bytes — growing past
        // that means a fat payload leaked inline into a hot variant.
        assert!(
            std::mem::size_of::<Ev>() <= 40,
            "Ev grew to {} bytes; box the new payload instead",
            std::mem::size_of::<Ev>()
        );
    }

    #[test]
    fn diagnose_names_a_stuck_vault() {
        let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
        let mut sys = System::new(cfg, BackingStore::new());
        // Two same-bank accesses in the same cycle: the first occupies the
        // bank, the second stays queued — a synthetic stall as seen at
        // deadlock time.
        let mut out = Outbox::new();
        for i in 0..2 {
            sys.vaults[0].handle_access(
                0,
                VaultIn {
                    id: ReqId(i),
                    block: BlockAddr(0),
                    write: false,
                },
                &mut out,
            );
        }
        let diag = sys.diagnose();
        assert!(
            diag.contains("vault0"),
            "diagnose must name the stuck vault: {diag}"
        );
        assert!(
            !diag.contains("vault1"),
            "idle vaults must stay out of the report: {diag}"
        );
    }

    #[test]
    fn diagnose_names_the_link_controller() {
        let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
        let mut sys = System::new(cfg, BackingStore::new());
        let mut out = Outbox::new();
        sys.ctrl.handle_host(
            0,
            CtrlIn::Read {
                id: ReqId(1),
                block: BlockAddr(0),
            },
            &mut out,
        );
        let diag = sys.diagnose();
        assert!(
            diag.contains("link controller has 1 reads in flight"),
            "diagnose must expose the off-chip read window: {diag}"
        );
    }
}
