//! Full-machine assembly and the discrete-event run loop.
//!
//! The [`System`] owns every component (cores, private caches, L3 banks,
//! crossbar, HMC controller, vaults, PCUs, PMU, the functional backing
//! store) plus the global event queue, and routes each component's output
//! messages to their destinations — through the crossbar where the
//! physical topology says so. All the latencies of Figs. 4 and 5 arise
//! from this wiring rather than being hard-coded per flow.

use crate::check::{
    self, ArmedFaults, CheckConfig, CheckState, FailureKind, FailureReport, FaultPlan, RunOutcome,
    Violation,
};
use crate::config::MachineConfig;
use crate::energy::{self, EnergyBreakdown, EnergyInputs, EnergyModel};
use crate::shard::StoreSlot;
use crate::tracer::Tracer;
use pei_core::{HostPcu, HostPcuOut, MemPcu, MemPcuOut, Pmu, PmuIn, PmuOut};
use pei_cpu::core::{Core, CoreEvent, CoreStatus};
use pei_cpu::trace::PhasedTrace;
use pei_cpu::CoreOut;
use pei_engine::{EventQueue, Outbox, StatsReport};
use pei_hmc::ctrl::MemSideIn;
use pei_hmc::{CtrlIn, CtrlOut, HmcController, Vault, VaultIn, VaultOut};
use pei_mem::l3::{L3In, L3Out};
use pei_mem::msg::{CoreReq, L3Resp, Recall};
use pei_mem::xbar::XbarPayload;
use pei_mem::{BackingStore, Crossbar, L3Bank, PrivOut, PrivateCache};
use pei_trace::TraceSink;
use pei_types::mem::ns;
use pei_types::{BlockAddr, CoreId, Cycle, L3BankId, OperandValue, PimCmd, ReqId};

/// Internal event type of the system loop.
///
/// The queue holds millions of these, so size matters: the per-PEI
/// carriers of [`PimCmd`] / [`pei_types::PimOut`] / operand values are
/// boxed (PEIs are orders of magnitude rarer than plain memory events),
/// while the plain-memory-path variants stay inline. The
/// `ev_stays_compact` test pins the resulting size.
#[derive(Debug)]
pub(crate) enum Ev {
    CoreTick(usize),
    CoreMemDone(usize, ReqId),
    CorePeiDone(usize, u64),
    CorePeiCredit(usize),
    CorePfenceDone(usize),
    PrivCoreReq(usize, CoreReq),
    PrivL3Resp(usize, L3Resp),
    PrivRecall(usize, Recall),
    L3(usize, L3In),
    CtrlHostRead(ReqId, BlockAddr),
    CtrlHostWrite(BlockAddr),
    CtrlHostPim(Box<PimCmd>),
    CtrlMemReadDone(ReqId, BlockAddr, u16),
    CtrlMemPimDone(u16, Box<pei_types::PimOut>),
    VaultAcc(usize, VaultIn),
    VaultWake(usize),
    MemPcuCmd(usize, Box<PimCmd>),
    MemPcuVaultDone(usize, ReqId, bool),
    Pmu(Box<PmuIn>),
    HostPcuDecision(usize, ReqId),
    HostPcuDispatchedMem(usize, ReqId),
    HostPcuL1Resp(usize, ReqId),
    HostPcuMemResult(usize, ReqId, Box<OperandValue>),
}

pub(crate) struct Group {
    pub(crate) trace: Box<dyn PhasedTrace>,
    pub(crate) cores: Vec<usize>,
    pub(crate) drained: Vec<bool>,
    pub(crate) drained_count: usize,
    pub(crate) done: bool,
    pub(crate) instructions_at_done: u64,
    pub(crate) phases: u64,
}

/// Result of a full-system run: the headline metrics every experiment
/// harness consumes, plus the complete statistics report.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Host cycles until the last workload group completed.
    pub cycles: Cycle,
    /// Total instructions issued by all cores.
    pub instructions: u64,
    /// Total PEIs issued.
    pub peis: u64,
    /// Fraction of PEIs dispatched to memory-side PCUs (Fig. 8's "PIM %").
    pub pim_fraction: f64,
    /// Off-chip traffic in bytes, both directions (Fig. 7).
    pub offchip_bytes: u64,
    /// Request/response link flits.
    pub offchip_flits: (u64, u64),
    /// DRAM accesses served (reads + writes).
    pub dram_accesses: u64,
    /// Energy breakdown (Fig. 12).
    pub energy: EnergyBreakdown,
    /// Full per-component statistics.
    pub stats: StatsReport,
    /// How the run ended. Failed runs ([`RunOutcome::Stalled`],
    /// [`RunOutcome::CycleLimit`], [`RunOutcome::CheckFailed`]) still
    /// carry their partial metrics above, plus a structured
    /// [`FailureReport`] inside the outcome.
    pub outcome: RunOutcome,
}

impl RunResult {
    /// Instructions per cycle across the whole machine (the sum-of-IPCs
    /// throughput metric of §7.3 equals this for multiprogrammed runs).
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles.max(1) as f64
    }

    /// Whether the run completed normally (every workload group
    /// finished, no invariant violation).
    pub fn ok(&self) -> bool {
        self.outcome.is_completed()
    }
}

/// Where [`System::run_paused`] / [`System::run_sharded_paused`] should
/// stop with all machine state intact (DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PauseAt {
    /// Pause once every event strictly before this cycle has been
    /// dispatched. The sharded engine rounds the cut up to its next
    /// epoch barrier (both drivers follow the same barrier schedule, so
    /// the cut is identical under any thread count).
    Cycle(Cycle),
    /// Pause just before the first PMU event would be dispatched — the
    /// latest cut that precedes every dispatch-policy decision, used to
    /// fork one warmed machine across policy sweep cells
    /// (sequential engine only).
    FirstPei,
}

/// Outcome of a pausable run.
#[derive(Debug)]
pub enum RunStatus {
    /// The run ended (completed or failed) before the pause point.
    Completed(RunResult),
    /// The pause point was reached with work outstanding; the machine
    /// is quiescent and ready for [`System::snapshot`] or resumption.
    Paused {
        /// The pause bound: every event strictly before this cycle has
        /// been dispatched.
        at: Cycle,
    },
}

impl RunStatus {
    /// Unwraps the completed result.
    ///
    /// # Panics
    ///
    /// Panics if the run paused instead of completing.
    pub fn expect_completed(self) -> RunResult {
        match self {
            RunStatus::Completed(r) => r,
            RunStatus::Paused { at } => panic!("run paused at cycle {at}, expected completion"),
        }
    }

    /// Unwraps the pause cycle.
    ///
    /// # Panics
    ///
    /// Panics if the run completed instead of pausing.
    pub fn expect_paused(self) -> Cycle {
        match self {
            RunStatus::Paused { at } => at,
            RunStatus::Completed(r) => {
                panic!("run completed ({:?}) before the pause point", r.outcome)
            }
        }
    }
}

/// The simulated machine.
///
/// Fields are `pub(crate)` so the invariant auditors in
/// [`crate::check`] can sweep component state read-only; the public
/// surface stays methods-only.
pub struct System {
    pub(crate) cfg: MachineConfig,
    pub(crate) queue: EventQueue<Ev>,
    pub(crate) cores: Vec<Core>,
    pub(crate) privs: Vec<PrivateCache>,
    pub(crate) l3banks: Vec<L3Bank>,
    pub(crate) xbar: Crossbar,
    pub(crate) ctrl: HmcController,
    pub(crate) vaults: Vec<Vault>,
    pub(crate) mem_pcus: Vec<MemPcu>,
    pub(crate) host_pcus: Vec<HostPcu>,
    pub(crate) pmu: Pmu,
    // Owned in sequential runs; shared behind a mutex while cube shards
    // hold clones during a sharded run (crate::shard).
    pub(crate) store: StoreSlot,
    pub(crate) groups: Vec<Group>,
    core_group: Vec<Option<usize>>,
    pub(crate) finish_time: Cycle,
    // Run-loop accounting for the event-conservation and crossbar
    // auditors: events dispatched (popped and handled) and messages the
    // router injected into the crossbar.
    pub(crate) dispatched: u64,
    pub(crate) xsends: u64,
    // Aggregated (scheduled, dispatched, pending) counts of the cube
    // shards' own queues — zero in sequential runs; filled in by the
    // sharded driver so the event-conservation auditor and the final
    // `sim.events` statistic see the whole machine (DESIGN.md §10).
    pub(crate) foreign_events: (u64, u64, u64),
    // Per-cube outboxes of the sharded engine. `None` in sequential
    // runs: `sched_cube` then schedules straight onto the global queue,
    // so the default path is byte-identical to the pre-shard loop.
    pub(crate) cube_out: Option<Vec<Vec<(Cycle, Ev)>>>,
    // Phase label waiting to be applied to shard-owned components at
    // the next epoch barrier (mark_phase during a sharded run cannot
    // reach the vaults and memory PCUs directly; they are on workers).
    pub(crate) pending_mark: Option<&'static str>,
    // Checked mode (None in normal runs; one `is_some()` branch each).
    pub(crate) checks: Option<Box<CheckState>>,
    pub(crate) faults: Option<Box<ArmedFaults>>,
    // Violations found by sweeps or flagged by the router; non-empty
    // ends the run with a `CheckFailed` outcome.
    pub(crate) violations: Vec<Violation>,
    // Reusable per-component outboxes: taken (std::mem::take) around each
    // handler call and put back after routing, so the steady-state event
    // loop allocates nothing. route_* methods only schedule events and
    // never re-enter handlers, which makes the take/put pattern safe.
    ob_core: Outbox<CoreOut>,
    ob_priv: Outbox<PrivOut>,
    ob_l3: Outbox<L3Out>,
    ob_ctrl: Outbox<CtrlOut>,
    ob_vault: Outbox<VaultOut>,
    ob_mpcu: Outbox<MemPcuOut>,
    ob_pmu: Outbox<PmuOut>,
    ob_hpcu: Outbox<HostPcuOut>,
    // Event capture (None in normal runs). The hot path pays one
    // `is_some()` branch per dispatched event when tracing is off; all
    // name interning happens at attach time (see crate::tracer).
    pub(crate) tracer: Option<Tracer>,
    // When `Some`, host-side trace records are buffered here instead of
    // going straight to the sink: the sharded driver merges them with
    // the cube shards' buffers in deterministic order at each epoch
    // barrier (DESIGN.md §10). `None` in sequential runs.
    pub(crate) shard_trace: Option<Vec<pei_trace::Record>>,
    // While armed (run_paused with PauseAt::FirstPei), every scheduled
    // PMU event lowers `warm_stop` to its delivery cycle; the run loop
    // re-reads the bound each pop, so no event at or past the first PMU
    // delivery is dispatched before the pause (DESIGN.md §11).
    pub(crate) warm_armed: bool,
    pub(crate) warm_stop: Option<Cycle>,
    // A sharded run paused at an epoch barrier (run_sharded_paused):
    // cube queues in canonical order plus the super-step seed. `Some`
    // only between a sharded pause and its resume/snapshot.
    pub(crate) shard_pause: Option<Box<crate::snapshot::ShardPause>>,
}

// Parallel experiment runners move whole `System`s (including their
// boxed traces) onto worker threads; keep that property explicit so a
// non-Send field is caught here, not in a downstream crate.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<System>();
};

impl System {
    /// Builds an idle machine per `cfg`, with `store` as the simulated
    /// physical memory contents (typically a clone of the store the
    /// workload generator initialized).
    pub fn new(cfg: MachineConfig, mut store: BackingStore) -> Self {
        let n = cfg.cores;
        let banks = cfg.mem.l3_banks;
        let vaults_total = cfg.total_vaults();
        // Virtual memory: workload data was built at virtual addresses;
        // place it at the mapped physical frames (§4.4).
        if cfg.page_map != pei_cpu::PageMap::Identity {
            store.remap_pages(|vpn| cfg.page_map.translate_page(vpn));
        }
        System {
            // Size the calendar queue's near-future window for this
            // machine's dominant scheduling deltas; far-tail events
            // (congested-channel deliveries) take the overflow path.
            queue: EventQueue::with_horizon(cfg.event_horizon()),
            cores: (0..n)
                .map(|i| {
                    let mut c = Core::new(CoreId(i as u16), cfg.core_config());
                    if let Some(tlb_cfg) = cfg.tlb {
                        c.enable_virtual_memory(tlb_cfg, cfg.page_map);
                    }
                    c
                })
                .collect(),
            privs: (0..n)
                .map(|i| PrivateCache::new(CoreId(i as u16), &cfg.mem))
                .collect(),
            l3banks: (0..banks)
                .map(|b| L3Bank::new(L3BankId(b as u16), &cfg.mem))
                .collect(),
            // Source ports: one per private cache, one per L3 bank, one
            // for the PMU.
            xbar: Crossbar::new(
                n + banks + 1,
                cfg.mem.xbar_bytes_per_cycle,
                cfg.mem.xbar_latency,
            ),
            ctrl: HmcController::new(&cfg.hmc),
            vaults: (0..vaults_total).map(|_| Vault::new(&cfg.hmc)).collect(),
            mem_pcus: (0..vaults_total)
                .map(|v| MemPcu::new(v as u16, cfg.pcu, cfg.hmc.mem_clk))
                .collect(),
            host_pcus: (0..n)
                .map(|i| HostPcu::new(CoreId(i as u16), cfg.pcu))
                .collect(),
            pmu: Pmu::new(cfg.pmu_config()),
            store: StoreSlot::Owned(store),
            groups: Vec::new(),
            core_group: vec![None; n],
            finish_time: 0,
            dispatched: 0,
            xsends: 0,
            foreign_events: (0, 0, 0),
            cube_out: None,
            pending_mark: None,
            checks: None,
            faults: None,
            violations: Vec::new(),
            ob_core: Outbox::new(),
            ob_priv: Outbox::new(),
            ob_l3: Outbox::new(),
            ob_ctrl: Outbox::new(),
            ob_vault: Outbox::new(),
            ob_mpcu: Outbox::new(),
            ob_pmu: Outbox::new(),
            ob_hpcu: Outbox::new(),
            tracer: None,
            shard_trace: None,
            warm_armed: false,
            warm_stop: None,
            shard_pause: None,
            cfg,
        }
    }

    /// Attaches an event-capture sink. Component and kind names are
    /// interned into the sink immediately (so the event loop never
    /// hashes a string), and the machine shape is written to the sink's
    /// metadata. Replaces any previously attached sink.
    pub fn attach_tracer(&mut self, sink: Box<dyn TraceSink>) {
        self.tracer = Some(Tracer::new(sink, &self.cfg));
    }

    /// Detaches and returns the capture sink, if one is attached.
    pub fn detach_tracer(&mut self) -> Option<Box<dyn TraceSink>> {
        self.tracer.take().map(|t| t.sink)
    }

    /// Turns on checked mode: the run loop sweeps the cross-component
    /// invariant auditors every [`CheckConfig::interval`] cycles and
    /// ends the run with a [`RunOutcome::CheckFailed`] report when one
    /// fires. If no tracer is attached, a last-`window`-events ring
    /// recorder is attached so failure reports carry the events leading
    /// up to the violation.
    ///
    /// Sweeps observe and never schedule, so a checked run that
    /// completes is byte-identical to the unchecked run (the same
    /// contract as tracing; see DESIGN.md §9).
    pub fn enable_checks(&mut self, cfg: CheckConfig) {
        if self.tracer.is_none() {
            self.attach_tracer(Box::new(pei_trace::Recorder::with_capacity(cfg.window)));
        }
        self.checks = Some(Box::new(CheckState::new(cfg)));
    }

    /// Injects a deterministic [`FaultPlan`]: immediate faults (wedged
    /// vault, leaked MSHR/lock/credit, overfilled PCU) are applied to
    /// components now; event-triggered faults (corrupt, drop, delay,
    /// rogue message) arm on the run loop. Test-harness use only.
    pub fn inject_faults(&mut self, plan: &FaultPlan) {
        let armed = check::resolve_plan(self, plan);
        if armed.any_armed() {
            self.faults = Some(Box::new(armed));
        }
    }

    /// Labels every component's current counter values as the end of
    /// phase `label`. The final [`RunResult`] stats then carry interval
    /// sections `*.phase.{label}.*` (with the tail after the last mark
    /// labeled `steady`), extractable with `StatsReport::phase_section`.
    /// The run loop calls this automatically with `"warmup"` when
    /// workload group 0 finishes its first phase; experiment harnesses
    /// may add marks of their own between `run` calls.
    pub fn mark_phase(&mut self, label: &'static str) {
        if self.cube_out.is_some() {
            // Sharded run in progress: vaults and memory PCUs live on
            // cube shards. The driver forwards the label at the next
            // epoch barrier; everything host-side snapshots below.
            self.pending_mark = Some(label);
        }
        for c in &mut self.cores {
            c.snapshot_phase(label);
        }
        for p in &mut self.privs {
            p.snapshot_phase(label);
        }
        for b in &mut self.l3banks {
            b.snapshot_phase(label);
        }
        for v in &mut self.vaults {
            v.snapshot_phase(label);
        }
        for p in &mut self.host_pcus {
            p.snapshot_phase(label);
        }
        for p in &mut self.mem_pcus {
            p.snapshot_phase(label);
        }
        self.ctrl.snapshot_phase(label);
        self.pmu.snapshot_phase(label);
    }

    /// Spec-driven one-call entry: builds a machine per `cfg`, assigns
    /// `trace` to all of its cores, and runs to completion (or
    /// `max_cycles`). This is the whole lifecycle of one experiment
    /// cell, packaged so batch runners (`pei-bench`'s `runner` module)
    /// can ship it to a worker thread as a single pure function of its
    /// arguments.
    ///
    /// # Examples
    ///
    /// ```
    /// use pei_system::{MachineConfig, System};
    /// use pei_core::DispatchPolicy;
    /// use pei_cpu::trace::{Op, VecPhases};
    /// use pei_mem::BackingStore;
    ///
    /// let mut store = BackingStore::new();
    /// let a = store.alloc_block();
    /// let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
    /// let r = System::run_workload(
    ///     cfg,
    ///     store,
    ///     Box::new(VecPhases::single(vec![Op::load(a)])),
    ///     1_000_000,
    /// );
    /// assert_eq!(r.instructions, 1);
    /// ```
    pub fn run_workload(
        cfg: MachineConfig,
        store: BackingStore,
        trace: Box<dyn PhasedTrace>,
        max_cycles: Cycle,
    ) -> RunResult {
        let mut sys = System::new(cfg, store);
        sys.add_workload(trace, (0..cfg.cores).collect());
        sys.run(max_cycles)
    }

    /// Assigns a workload to a set of cores (threads map to `cores` in
    /// order). Multiple groups may coexist (multiprogramming, §7.3); each
    /// group synchronizes its phases independently.
    ///
    /// # Panics
    ///
    /// Panics if the trace has more threads than `cores`, or any core is
    /// already assigned.
    pub fn add_workload(&mut self, trace: Box<dyn PhasedTrace>, cores: Vec<usize>) {
        assert!(
            trace.threads() <= cores.len(),
            "workload {} needs {} cores, got {}",
            trace.name(),
            trace.threads(),
            cores.len()
        );
        for &c in &cores {
            assert!(self.core_group[c].is_none(), "core {c} already assigned");
            self.core_group[c] = Some(self.groups.len());
        }
        let n = cores.len();
        self.groups.push(Group {
            trace,
            cores,
            drained: vec![false; n],
            drained_count: 0,
            done: false,
            instructions_at_done: 0,
            phases: 0,
        });
    }

    fn port_priv(&self, core: usize) -> usize {
        core
    }
    fn port_l3(&self, bank: usize) -> usize {
        self.cfg.cores + bank
    }
    fn port_pmu(&self) -> usize {
        self.cfg.cores + self.cfg.mem.l3_banks
    }
    pub(crate) fn bank_of(&self, block: BlockAddr) -> usize {
        (block.0 as usize) & (self.cfg.mem.l3_banks - 1)
    }

    pub(crate) fn pull_phase(&mut self, g: usize, now: Cycle) {
        let group = &mut self.groups[g];
        match group.trace.next_phase() {
            Some(phase) => {
                group.phases += 1;
                group.drained.iter_mut().for_each(|d| *d = false);
                group.drained_count = 0;
                let assignments: Vec<(usize, Vec<pei_cpu::trace::Op>)> = phase
                    .into_iter()
                    .enumerate()
                    .map(|(t, ops)| (group.cores[t], ops))
                    .collect();
                // Threads beyond the phase's vector count are immediately
                // drained; mark them.
                let active: std::collections::HashSet<usize> =
                    assignments.iter().map(|(c, _)| *c).collect();
                let spare: Vec<usize> = group
                    .cores
                    .iter()
                    .copied()
                    .filter(|c| !active.contains(c))
                    .collect();
                for c in spare {
                    let idx = self.groups[g].cores.iter().position(|&x| x == c).unwrap();
                    self.groups[g].drained[idx] = true;
                    self.groups[g].drained_count += 1;
                }
                for (c, ops) in assignments {
                    self.cores[c].push_ops(ops);
                    self.queue.schedule(now, Ev::CoreTick(c));
                }
                // Group 0 finishing its first phase marks the warmup /
                // steady-state boundary of the whole run.
                if g == 0 && self.groups[g].phases == 2 {
                    self.mark_phase("warmup");
                }
                if self.tracer.is_some() {
                    let phase_no = self.groups[g].phases;
                    self.trace_mark(now, true, g, phase_no);
                }
                // A phase where every thread is empty completes instantly;
                // the per-core Drained path handles it because empty cores
                // report Drained on their scheduled tick.
            }
            None => {
                let group = &mut self.groups[g];
                group.done = true;
                group.instructions_at_done = group
                    .cores
                    .iter()
                    .map(|&c| self.cores[c].instructions())
                    .sum();
                self.finish_time = self.finish_time.max(now);
                if self.tracer.is_some() {
                    self.trace_mark(now, false, g, 0);
                }
            }
        }
    }

    pub(crate) fn all_done(&self) -> bool {
        self.groups.iter().all(|g| g.done)
    }

    /// Runs until every workload group completes, the cycle limit
    /// elapses, or forward progress is lost.
    ///
    /// This never panics on a sick machine: deadlock (the event queue
    /// empties while work remains) and cycle-limit overrun end the run
    /// with a [`RunOutcome::Stalled`] / [`RunOutcome::CycleLimit`]
    /// outcome carrying a structured [`FailureReport`] — diagnosis
    /// text, per-component queue occupancies, and the last captured
    /// events — so batch runners can record the failure and keep their
    /// sibling jobs running.
    ///
    /// # Panics
    ///
    /// Panics only on harness misuse (no workload assigned, or the
    /// machine holds a sharded pause that must resume via
    /// [`run_sharded`](System::run_sharded)).
    pub fn run(&mut self, max_cycles: Cycle) -> RunResult {
        match self.run_paused(max_cycles, None) {
            RunStatus::Completed(r) => r,
            RunStatus::Paused { .. } => {
                unreachable!("run_paused without a pause spec never pauses")
            }
        }
    }

    /// [`run`](System::run), but optionally stopping at a deterministic
    /// cut point with all machine state intact — the entry point for
    /// [`snapshot`](System::snapshot)-based warm forking, crash-resume,
    /// and bisection.
    ///
    /// - [`PauseAt::Cycle(t)`](PauseAt) dispatches every event strictly
    ///   before cycle `t`, then pauses (events *at* `t` stay queued).
    /// - [`PauseAt::FirstPei`] pauses just before the first PMU event
    ///   (PEI request, pfence, flush completion, or memory-side result)
    ///   would be dispatched — i.e. before any dispatch-policy decision
    ///   is taken, the cut the warm-fork runner shares across policies.
    ///
    /// Returns [`RunStatus::Paused`] only when the pause point was
    /// reached with work still outstanding; a run that completes (or
    /// fails) first returns [`RunStatus::Completed`]. Calling this again
    /// (or [`run`](System::run)) on a paused machine resumes it;
    /// resuming with `None` runs to completion.
    pub fn run_paused(&mut self, max_cycles: Cycle, pause: Option<PauseAt>) -> RunStatus {
        assert!(!self.groups.is_empty(), "no workload assigned");
        assert!(
            self.shard_pause.is_none(),
            "machine holds a sharded pause; resume it with run_sharded"
        );
        if let Some(PauseAt::FirstPei) = pause {
            self.warm_armed = true;
            self.warm_stop = None;
        }
        for g in 0..self.groups.len() {
            // On a fresh machine this seeds phase 1; on a resumed one the
            // groups already progressed (their phase state was restored).
            if self.groups[g].phases == 0 && !self.groups[g].done {
                self.pull_phase(g, 0);
            }
        }
        let mut last = 0;
        loop {
            // Re-read the bound every pop: PauseAt::FirstPei lowers it
            // the moment a PMU event is scheduled.
            let limit = match pause {
                None => None,
                Some(PauseAt::Cycle(t)) => Some(t),
                Some(PauseAt::FirstPei) => self.warm_stop,
            };
            let popped = match limit {
                Some(t) => self.queue.pop_before(t),
                None => self.queue.pop(),
            };
            let Some((now, ev)) = popped else { break };
            if now > max_cycles {
                self.warm_armed = false;
                return RunStatus::Completed(self.fail(FailureKind::CycleLimit, now));
            }
            last = now;
            let ev = if self.faults.is_some() {
                match self.apply_event_faults(now, ev) {
                    Some(ev) => ev,
                    None => continue, // dropped or delayed by a fault
                }
            } else {
                ev
            };
            self.dispatch(now, ev);
            self.dispatched += 1;
            if let Some(checks) = &self.checks {
                if now >= checks.next_sweep {
                    self.sweep(now);
                }
            }
            if !self.violations.is_empty() {
                self.warm_armed = false;
                return RunStatus::Completed(self.fail(FailureKind::CheckFailed, now));
            }
            if self.all_done() {
                break;
            }
        }
        self.warm_armed = false;
        if !self.all_done() && !self.queue.is_empty() {
            // Only a pause bound stops the loop with events still queued.
            let at = match pause {
                Some(PauseAt::Cycle(t)) => t,
                Some(PauseAt::FirstPei) => self
                    .warm_stop
                    .expect("paused implies a PMU event was scheduled"),
                None => unreachable!("pop() returns None only on an empty queue"),
            };
            return RunStatus::Paused { at };
        }
        if !self.all_done() {
            return RunStatus::Completed(self.fail(FailureKind::Stalled, last));
        }
        RunStatus::Completed(self.result(RunOutcome::Completed))
    }

    /// [`run`](System::run), but cooperatively cancellable: the run is
    /// sliced into [`PauseAt::Cycle`] windows of `slice` cycles, and the
    /// cancel flag is checked between slices — the entry point for
    /// long-lived hosts (`pei-serve`) that must abandon an in-flight job
    /// without killing the process.
    ///
    /// `progress` is called with the cycle bound reached after each
    /// slice that paused (a completed run may finish without any call).
    /// Returns `None` if the flag was observed set; the machine is then
    /// mid-run but quiescent (paused at a slice boundary) and should be
    /// discarded. A slice bound only changes *where* the loop pauses,
    /// never the event order inside it, so the final [`RunResult`] is
    /// identical to an unsliced [`run`](System::run) — pinned by test
    /// and relied on by the daemon's byte-identity contract.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is zero, plus the harness-misuse panics of
    /// [`run_paused`](System::run_paused).
    pub fn run_cancellable(
        &mut self,
        max_cycles: Cycle,
        slice: Cycle,
        cancel: &std::sync::atomic::AtomicBool,
        mut progress: impl FnMut(Cycle),
    ) -> Option<RunResult> {
        use std::sync::atomic::Ordering;
        assert!(slice > 0, "slice must be at least one cycle");
        let mut at = slice;
        loop {
            if cancel.load(Ordering::Relaxed) {
                return None;
            }
            match self.run_paused(max_cycles, Some(PauseAt::Cycle(at))) {
                RunStatus::Completed(r) => return Some(r),
                RunStatus::Paused { at: reached } => {
                    progress(reached);
                    at = reached.saturating_add(slice);
                }
            }
        }
    }

    /// Runs one sweep of the invariant auditors. Out-of-line and only
    /// reached in checked mode; the `CheckState` is taken and put back
    /// (the outbox pattern) so it can borrow the rest of the machine
    /// immutably.
    #[cold]
    pub(crate) fn sweep(&mut self, now: Cycle) {
        let mut checks = self.checks.take().expect("sweep requires checked mode");
        let mut found = std::mem::take(&mut self.violations);
        checks.sweep(self, now, &mut found);
        checks.next_sweep = now + checks.cfg.interval;
        self.violations = found;
        self.checks = Some(checks);
    }

    /// Applies any armed event-triggered faults to the event just
    /// popped. Returns `None` when the fault consumed the event (drop
    /// or delay); the caller skips dispatch. Disarms itself once every
    /// trigger has fired.
    #[cold]
    pub(crate) fn apply_event_faults(&mut self, now: Cycle, ev: Ev) -> Option<Ev> {
        let n = self.dispatched;
        let mut f = self.faults.take().expect("no faults armed");
        let mut out = Some(ev);
        if f.corrupt_at.is_some_and(|at| n >= at) && self.try_corrupt_line() {
            f.corrupt_at = None;
        }
        if f.rogue_at.is_some_and(|at| n >= at) {
            // Behind the router's back: the crossbar switches a message
            // `xsend` never injected.
            self.xbar.send(0, now, XbarPayload::Control);
            f.rogue_at = None;
        }
        if f.drop_at.is_some_and(|at| n >= at) {
            f.drop_at = None;
            out = None; // the event vanishes; conservation now fails by one
        } else if f.delay_at.is_some_and(|(at, _)| n >= at) {
            let (_, delay) = f.delay_at.take().expect("checked above");
            let ev = out.take().expect("delay consumes the event");
            self.queue.schedule(now + delay, ev);
            // The pop is accounted as dispatched; the reschedule re-adds
            // it to `total_scheduled`, so conservation still balances —
            // a delay perturbs timing without violating any invariant.
            self.dispatched += 1;
        }
        if f.any_armed() {
            self.faults = Some(f);
        }
        out
    }

    /// Corrupts coherence state for the `CorruptLine` fault: flips one
    /// copy of a multiply-held block writable (a single-writer
    /// violation), falling back to orphaning the L3 copy under a
    /// private line (an inclusivity violation). Deterministic: scans in
    /// block order. Returns false if no line is corruptible yet.
    fn try_corrupt_line(&mut self) -> bool {
        let mut holders: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
        for (i, p) in self.privs.iter().enumerate() {
            for (b, _) in p.lines() {
                holders.entry(b.0).or_default().push(i);
            }
        }
        for (&b, who) in holders.iter() {
            if who.len() >= 2 && self.privs[who[0]].fault_corrupt_line(BlockAddr(b)) {
                return true;
            }
        }
        for &b in holders.keys() {
            let block = BlockAddr(b);
            let bank = self.bank_of(block);
            if self.l3banks[bank].fault_orphan_line(block) {
                return true;
            }
        }
        false
    }

    /// Ends a run that did not complete: assembles the structured
    /// [`FailureReport`] (diagnosis, occupancies, violations, recent
    /// events) and returns the partial result carrying it.
    #[cold]
    pub(crate) fn fail(&mut self, kind: FailureKind, now: Cycle) -> RunResult {
        let report = Box::new(FailureReport {
            kind,
            cycle: now,
            diagnosis: self.diagnose(),
            violations: std::mem::take(&mut self.violations),
            occupancies: self.occupancies(),
            recent_events: self
                .tracer
                .as_ref()
                .and_then(|t| t.sink.to_petr())
                .and_then(|bytes| pei_trace::Trace::from_bytes(&bytes).ok()),
        });
        self.finish_time = self.finish_time.max(now);
        let outcome = match kind {
            FailureKind::Stalled => RunOutcome::Stalled { report },
            FailureKind::CycleLimit => RunOutcome::CycleLimit { report },
            FailureKind::CheckFailed => RunOutcome::CheckFailed { report },
        };
        self.result(outcome)
    }

    /// Nonzero queue/buffer occupancies per component, deepest
    /// component first — upstream components wait on downstream ones,
    /// so the first entry is the watchdog's best guess at the culprit
    /// (`FailureReport::culprit`).
    fn occupancies(&self) -> Vec<(String, u64)> {
        let mut v = Vec::new();
        for (i, vault) in self.vaults.iter().enumerate() {
            if vault.backlog() > 0 {
                v.push((format!("vault{i}.backlog"), vault.backlog() as u64));
            }
        }
        for (i, pcu) in self.mem_pcus.iter().enumerate() {
            if pcu.backlog() > 0 {
                v.push((format!("mpcu{i}.backlog"), pcu.backlog() as u64));
            }
        }
        if self.ctrl.pending_reads() > 0 {
            v.push(("link.pending_reads".to_string(), self.ctrl.pending_reads()));
        }
        for (b, bank) in self.l3banks.iter().enumerate() {
            if bank.inflight() > 0 {
                v.push((format!("l3bank{b}.txns"), bank.inflight() as u64));
            }
        }
        for (i, p) in self.privs.iter().enumerate() {
            if p.inflight_misses() > 0 {
                v.push((format!("cache{i}.mshr"), p.inflight_misses() as u64));
            }
        }
        if self.pmu.in_flight() > 0 {
            v.push(("pmu.in_flight".to_string(), self.pmu.in_flight() as u64));
        }
        for (i, c) in self.cores.iter().enumerate() {
            if !c.drained() {
                v.push((format!("core{i}.undrained"), 1));
            }
        }
        if !self.queue.is_empty() {
            v.push(("queue.pending".to_string(), self.queue.len() as u64));
        }
        v
    }

    fn diagnose(&self) -> String {
        let mut s = String::new();
        for (i, c) in self.cores.iter().enumerate() {
            if !c.drained() {
                s.push_str(&format!("core{i} not drained; "));
            }
        }
        for (i, p) in self.privs.iter().enumerate() {
            if p.inflight_misses() > 0 {
                s.push_str(&format!("priv{i} has {} misses; ", p.inflight_misses()));
            }
        }
        for (b, bank) in self.l3banks.iter().enumerate() {
            if !bank.is_quiescent() {
                s.push_str(&format!("l3 bank{b} has in-flight state; "));
            }
        }
        for (v, vault) in self.vaults.iter().enumerate() {
            if vault.backlog() > 0 {
                s.push_str(&format!(
                    "vault{v} has {} queued accesses; ",
                    vault.backlog()
                ));
            }
        }
        for (v, pcu) in self.mem_pcus.iter().enumerate() {
            if pcu.backlog() > 0 {
                s.push_str(&format!("mem-pcu{v} has {} commands; ", pcu.backlog()));
            }
        }
        if self.ctrl.pending_reads() > 0 {
            s.push_str(&format!(
                "link controller has {} reads in flight; ",
                self.ctrl.pending_reads()
            ));
        }
        if self.pmu.in_flight() > 0 {
            s.push_str(&format!("pmu has {} PEIs; ", self.pmu.in_flight()));
        }
        s
    }

    /// Captures one dispatched event. Out-of-line and only reached with
    /// a tracer attached, so the untraced loop pays nothing beyond the
    /// `is_some()` branch in [`dispatch`](Self::dispatch).
    #[cold]
    fn trace_ev(&mut self, now: Cycle, ev: &Ev) {
        let t = self.tracer.as_ref().expect("trace_ev requires a tracer");
        let (comp, kind, payload) = match ev {
            Ev::CoreTick(i) => (t.core[*i], t.k.core_tick, 0),
            Ev::CoreMemDone(i, id) => (t.core[*i], t.k.core_mem_done, id.0),
            Ev::CorePeiDone(i, seq) => (t.core[*i], t.k.core_pei_done, *seq),
            Ev::CorePeiCredit(i) => (t.core[*i], t.k.core_pei_credit, 0),
            Ev::CorePfenceDone(i) => (t.core[*i], t.k.core_pfence_done, 0),
            Ev::PrivCoreReq(i, req) => (t.cache[*i], t.k.priv_req, req.addr.0),
            Ev::PrivL3Resp(i, resp) => (t.cache[*i], t.k.priv_resp, resp.id.0),
            Ev::PrivRecall(i, recall) => (t.cache[*i], t.k.priv_recall, recall.block.0),
            Ev::L3(b, input) => {
                let (kind, payload) = match input {
                    L3In::Req(req) => (t.k.l3_req, req.block.0),
                    L3In::Ack(ack) => (t.k.l3_ack, ack.block.0),
                    L3In::Flush(flush) => (t.k.l3_flush, flush.block.0),
                    L3In::FetchDone(done) => (t.k.l3_fetch_done, done.block.0),
                };
                (t.l3[*b], kind, payload)
            }
            Ev::CtrlHostRead(_, block) => (t.ctrl, t.k.ctrl_read, block.0),
            Ev::CtrlHostWrite(block) => (t.ctrl, t.k.ctrl_write, block.0),
            Ev::CtrlHostPim(cmd) => (t.ctrl, t.k.ctrl_pim, cmd.target.0),
            Ev::CtrlMemReadDone(_, block, _) => (t.ctrl, t.k.ctrl_read_done, block.0),
            Ev::CtrlMemPimDone(_, out) => (t.ctrl, t.k.ctrl_pim_done, out.block.0),
            Ev::VaultAcc(v, acc) => (t.vault[*v], t.k.vault_access, acc.block.0),
            Ev::VaultWake(v) => (t.vault[*v], t.k.vault_wake, 0),
            Ev::MemPcuCmd(v, cmd) => (t.mpcu[*v], t.k.mpcu_cmd, cmd.target.0),
            Ev::MemPcuVaultDone(v, id, _) => (t.mpcu[*v], t.k.mpcu_vault_done, id.0),
            Ev::Pmu(input) => {
                let (kind, payload) = match input.as_ref() {
                    PmuIn::Request { id, .. } => (t.k.pmu_request, id.0),
                    PmuIn::HostRelease { id } => (t.k.pmu_host_release, id.0),
                    PmuIn::FlushDone { id } => (t.k.pmu_flush_done, id.0),
                    PmuIn::MemResult { out } => (t.k.pmu_mem_result, out.id.0),
                    PmuIn::Pfence { core } => (t.k.pmu_pfence, core.0 as u64),
                };
                (t.pmu, kind, payload)
            }
            Ev::HostPcuDecision(c, id) => (t.hpcu[*c], t.k.hpcu_decide_host, id.0),
            Ev::HostPcuDispatchedMem(c, id) => (t.hpcu[*c], t.k.hpcu_dispatched_mem, id.0),
            Ev::HostPcuL1Resp(c, id) => (t.hpcu[*c], t.k.hpcu_l1_resp, id.0),
            Ev::HostPcuMemResult(c, id, _) => (t.hpcu[*c], t.k.hpcu_mem_result, id.0),
        };
        self.emit_record(now, comp, kind, payload);
    }

    /// Delivers one trace record: straight to the sink in sequential
    /// runs, into the host-side buffer during sharded runs (merged at
    /// the next epoch barrier in deterministic order).
    #[cold]
    fn emit_record(
        &mut self,
        cycle: Cycle,
        comp: pei_trace::CompId,
        kind: pei_trace::KindId,
        payload: u64,
    ) {
        match &mut self.shard_trace {
            Some(buf) => buf.push(pei_trace::Record {
                cycle,
                comp,
                kind,
                payload,
            }),
            None => {
                let t = self.tracer.as_mut().expect("record requires a tracer");
                t.sink.record(cycle, comp, kind, payload);
            }
        }
    }

    /// Records a phase boundary (`start`) or group completion; payload
    /// packs the group index in the high half and the phase ordinal in
    /// the low half.
    #[cold]
    fn trace_mark(&mut self, now: Cycle, start: bool, g: usize, phase_no: u64) {
        let t = self.tracer.as_ref().expect("trace_mark requires a tracer");
        let kind = if start {
            t.k.phase_start
        } else {
            t.k.group_done
        };
        let comp = t.system;
        let payload = ((g as u64) << 32) | (phase_no & 0xffff_ffff);
        self.emit_record(now, comp, kind, payload);
    }

    /// Sends over the crossbar, capturing the message when tracing; the
    /// payload packs the source port in the high half and the delivery
    /// latency in the low half.
    fn xsend(&mut self, port: usize, at: Cycle, payload: XbarPayload) -> Cycle {
        self.xsends += 1;
        let delivered = self.xbar.send(port, at, payload);
        if self.tracer.is_some() {
            let t = self.tracer.as_ref().expect("checked is_some");
            let (comp, kind) = (t.xbar, t.k.xbar_msg);
            let packed = ((port as u64) << 32) | ((delivered - at) & 0xffff_ffff);
            self.emit_record(at, comp, kind, packed);
        }
        delivered
    }

    pub(crate) fn dispatch(&mut self, now: Cycle, ev: Ev) {
        if self.tracer.is_some() {
            self.trace_ev(now, &ev);
        }
        match ev {
            Ev::CoreTick(i) => self.core_tick(i, now),
            Ev::CoreMemDone(i, id) => {
                if self.cores[i].on_event(CoreEvent::MemDone(id)) {
                    self.queue.schedule(now, Ev::CoreTick(i));
                }
            }
            Ev::CorePeiDone(i, seq) => {
                if self.cores[i].on_event(CoreEvent::PeiDone(seq)) {
                    self.queue.schedule(now, Ev::CoreTick(i));
                }
            }
            Ev::CorePeiCredit(i) => {
                if self.cores[i].on_event(CoreEvent::PeiCredit) {
                    self.queue.schedule(now, Ev::CoreTick(i));
                }
            }
            Ev::CorePfenceDone(i) => {
                if self.cores[i].on_event(CoreEvent::PfenceDone) {
                    self.queue.schedule(now, Ev::CoreTick(i));
                }
            }
            Ev::PrivCoreReq(i, req) => {
                let mut outs = std::mem::take(&mut self.ob_priv);
                self.privs[i].handle_core_req(now, req, &mut outs);
                self.route_priv(i, &mut outs);
                self.ob_priv = outs;
            }
            Ev::PrivL3Resp(i, resp) => {
                let mut outs = std::mem::take(&mut self.ob_priv);
                self.privs[i].handle_l3_resp(now, resp, &mut outs);
                self.route_priv(i, &mut outs);
                self.ob_priv = outs;
            }
            Ev::PrivRecall(i, recall) => {
                let mut outs = std::mem::take(&mut self.ob_priv);
                self.privs[i].handle_recall(now, recall, &mut outs);
                self.route_priv(i, &mut outs);
                self.ob_priv = outs;
            }
            Ev::L3(b, input) => {
                if let L3In::Req(req) = &input {
                    if req.kind.expects_response() {
                        self.pmu.on_l3_access(req.block);
                    }
                }
                let mut outs = std::mem::take(&mut self.ob_l3);
                self.l3banks[b].handle(now, input, &mut outs);
                self.route_l3(b, &mut outs);
                self.ob_l3 = outs;
            }
            Ev::CtrlHostRead(id, block) => self.ctrl_host(now, CtrlIn::Read { id, block }),
            Ev::CtrlHostWrite(block) => self.ctrl_host(now, CtrlIn::Write { block }),
            Ev::CtrlHostPim(cmd) => self.ctrl_host(now, CtrlIn::Pim { cmd: *cmd }),
            Ev::CtrlMemReadDone(id, block, cube) => {
                self.ctrl_mem(now, MemSideIn::ReadDone { id, block, cube });
            }
            Ev::CtrlMemPimDone(cube, out) => {
                self.ctrl_mem(now, MemSideIn::PimDone { out: *out, cube });
            }
            Ev::VaultAcc(v, acc) => {
                let mut outs = std::mem::take(&mut self.ob_vault);
                self.vaults[v].handle_access(now, acc, &mut outs);
                self.route_vault(v, &mut outs);
                self.ob_vault = outs;
            }
            Ev::VaultWake(v) => {
                let mut outs = std::mem::take(&mut self.ob_vault);
                self.vaults[v].wake(now, &mut outs);
                self.route_vault(v, &mut outs);
                self.ob_vault = outs;
            }
            Ev::MemPcuCmd(v, cmd) => {
                let mut outs = std::mem::take(&mut self.ob_mpcu);
                self.mem_pcus[v].on_cmd(now, *cmd, &mut outs);
                self.route_mem_pcu(v, &mut outs);
                self.ob_mpcu = outs;
            }
            Ev::MemPcuVaultDone(v, id, write) => {
                let mut outs = std::mem::take(&mut self.ob_mpcu);
                match &mut self.store {
                    StoreSlot::Owned(mem) => {
                        self.mem_pcus[v].on_vault_done(now, id, write, mem, &mut outs);
                    }
                    StoreSlot::Shared(mem) => {
                        let mut mem = mem.lock().expect("store mutex");
                        self.mem_pcus[v].on_vault_done(now, id, write, &mut mem, &mut outs);
                    }
                }
                self.route_mem_pcu(v, &mut outs);
                self.ob_mpcu = outs;
            }
            Ev::Pmu(input) => {
                let balance = self.ctrl.balance(now);
                let mut outs = std::mem::take(&mut self.ob_pmu);
                self.pmu.handle(now, *input, balance, &mut outs);
                self.route_pmu(&mut outs);
                self.ob_pmu = outs;
            }
            Ev::HostPcuDecision(c, id) => {
                let mut outs = std::mem::take(&mut self.ob_hpcu);
                self.host_pcus[c].on_decision_host(now, id, &mut outs);
                self.route_host_pcu(c, &mut outs);
                self.ob_hpcu = outs;
            }
            Ev::HostPcuDispatchedMem(c, id) => {
                let mut outs = std::mem::take(&mut self.ob_hpcu);
                self.host_pcus[c].on_dispatched_mem(now, id, &mut outs);
                self.route_host_pcu(c, &mut outs);
                self.ob_hpcu = outs;
            }
            Ev::HostPcuL1Resp(c, id) => {
                let mut outs = std::mem::take(&mut self.ob_hpcu);
                match &mut self.store {
                    StoreSlot::Owned(mem) => {
                        self.host_pcus[c].on_l1_resp(now, id, mem, &mut outs);
                    }
                    StoreSlot::Shared(mem) => {
                        let mut mem = mem.lock().expect("store mutex");
                        self.host_pcus[c].on_l1_resp(now, id, &mut mem, &mut outs);
                    }
                }
                self.route_host_pcu(c, &mut outs);
                self.ob_hpcu = outs;
            }
            Ev::HostPcuMemResult(c, id, output) => {
                let mut outs = std::mem::take(&mut self.ob_hpcu);
                self.host_pcus[c].on_mem_result(now, id, *output, &mut outs);
                self.route_host_pcu(c, &mut outs);
                self.ob_hpcu = outs;
            }
        }
    }

    fn ctrl_host(&mut self, now: Cycle, input: CtrlIn) {
        let mut outs = std::mem::take(&mut self.ob_ctrl);
        self.ctrl.handle_host(now, input, &mut outs);
        self.route_ctrl(&mut outs);
        self.ob_ctrl = outs;
    }

    fn ctrl_mem(&mut self, now: Cycle, input: MemSideIn) {
        let mut outs = std::mem::take(&mut self.ob_ctrl);
        self.ctrl.handle_mem_side(now, input, &mut outs);
        self.route_ctrl(&mut outs);
        self.ob_ctrl = outs;
    }

    fn core_tick(&mut self, i: usize, now: Cycle) {
        let mut core_outs = std::mem::take(&mut self.ob_core);
        let outcome = self.cores[i].tick(now, &mut core_outs);
        for out in core_outs.drain() {
            match out {
                CoreOut::Mem { id, addr, write } => {
                    self.queue
                        .schedule(now + 1, Ev::PrivCoreReq(i, CoreReq { id, addr, write }));
                }
                CoreOut::Pei {
                    seq,
                    op,
                    target,
                    input,
                } => {
                    let mut outs = std::mem::take(&mut self.ob_hpcu);
                    self.host_pcus[i].begin(now, seq, op, target, input, &mut outs);
                    self.route_host_pcu(i, &mut outs);
                    self.ob_hpcu = outs;
                }
                CoreOut::PfenceReq => {
                    let at = self.xsend(self.port_priv(i), now, XbarPayload::Control);
                    self.sched_pmu(
                        at,
                        PmuIn::Pfence {
                            core: CoreId(i as u16),
                        },
                    );
                }
            }
        }
        self.ob_core = core_outs;
        match outcome.status {
            CoreStatus::Running => {
                let next = outcome.next.expect("running core has a next tick");
                self.queue.schedule(next, Ev::CoreTick(i));
            }
            CoreStatus::Blocked => {}
            CoreStatus::Drained => {
                if let Some(g) = self.core_group[i] {
                    let idx = self.groups[g].cores.iter().position(|&c| c == i).unwrap();
                    if !self.groups[g].done && !self.groups[g].drained[idx] {
                        self.groups[g].drained[idx] = true;
                        self.groups[g].drained_count += 1;
                        if self.groups[g].drained_count == self.groups[g].cores.len() {
                            self.pull_phase(g, now);
                        }
                    }
                }
            }
        }
    }

    fn route_priv(&mut self, i: usize, outs: &mut Outbox<PrivOut>) {
        for out in outs.drain() {
            match out {
                PrivOut::CoreResp { id, at } => match id.namespace() {
                    ns::CORE => self.queue.schedule(at, Ev::CoreMemDone(i, id)),
                    ns::HOST_PCU => self.queue.schedule(at, Ev::HostPcuL1Resp(i, id)),
                    other => {
                        // Protocol corruption: a response id no consumer
                        // claims. Flag it through the failure-report path
                        // (run ends with `CheckFailed` naming this cache)
                        // instead of tearing the process down.
                        self.flag_violation(Violation {
                            checker: "router",
                            component: format!("cache{i}"),
                            detail: format!(
                                "response id {:#x} carries unroutable namespace {other} at cycle {at}",
                                id.0
                            ),
                        });
                    }
                },
                PrivOut::ToL3 { req, at } => {
                    let payload = if req.kind == pei_mem::L3ReqKind::PutM {
                        XbarPayload::Data
                    } else {
                        XbarPayload::Control
                    };
                    let delivered = self.xsend(self.port_priv(i), at, payload);
                    let bank = self.bank_of(req.block);
                    self.queue.schedule(delivered, Ev::L3(bank, L3In::Req(req)));
                }
                PrivOut::Ack { ack, at } => {
                    let payload = if ack.dirty {
                        XbarPayload::Data
                    } else {
                        XbarPayload::Control
                    };
                    let delivered = self.xsend(self.port_priv(i), at, payload);
                    let bank = self.bank_of(ack.block);
                    self.queue.schedule(delivered, Ev::L3(bank, L3In::Ack(ack)));
                }
            }
        }
    }

    fn route_l3(&mut self, b: usize, outs: &mut Outbox<L3Out>) {
        for out in outs.drain() {
            match out {
                L3Out::Resp { resp, at } => {
                    let delivered = self.xsend(self.port_l3(b), at, XbarPayload::Data);
                    self.queue
                        .schedule(delivered, Ev::PrivL3Resp(resp.core.index(), resp));
                }
                L3Out::Recall { recall, at } => {
                    let delivered = self.xsend(self.port_l3(b), at, XbarPayload::Control);
                    self.queue
                        .schedule(delivered, Ev::PrivRecall(recall.core.index(), recall));
                }
                L3Out::Fetch { fetch, at } => {
                    let ev = if fetch.write {
                        Ev::CtrlHostWrite(fetch.block)
                    } else {
                        Ev::CtrlHostRead(fetch.id, fetch.block)
                    };
                    self.queue.schedule(at + self.cfg.ctrl_latency, ev);
                }
                L3Out::FlushDone { done, at } => {
                    self.sched_pmu(at, PmuIn::FlushDone { id: done.id });
                }
            }
        }
    }

    /// Schedules a cube-owned event: straight onto the global queue in
    /// sequential runs, into the cube's outbox in sharded runs (where
    /// the driver delivers it across the epoch barrier).
    #[inline]
    fn sched_cube(&mut self, cube: usize, at: Cycle, ev: Ev) {
        match &mut self.cube_out {
            None => self.queue.schedule(at, ev),
            Some(boxes) => boxes[cube].push((at, ev)),
        }
    }

    /// Schedules a PMU event. While a `PauseAt::FirstPei` warm run is
    /// armed, lowers the warm-stop bound to the earliest PMU delivery:
    /// the run loop re-reads the bound each pop, and pops are monotone
    /// in time, so nothing at or past that delivery is dispatched before
    /// the pause — the machine stops just short of its first dispatch
    /// decision.
    #[inline]
    fn sched_pmu(&mut self, at: Cycle, input: PmuIn) {
        if self.warm_armed {
            self.warm_stop = Some(self.warm_stop.map_or(at, |t| t.min(at)));
        }
        self.queue.schedule(at, Ev::Pmu(Box::new(input)));
    }

    fn route_ctrl(&mut self, outs: &mut Outbox<CtrlOut>) {
        let vpc = self.cfg.hmc.vaults_per_cube;
        for out in outs.drain() {
            match out {
                // The two host→cube edges of the shard topology: every
                // other controller output stays host-side.
                CtrlOut::ToVault { loc, access, at } => {
                    let ev = Ev::VaultAcc(loc.flat_index(vpc), access);
                    self.sched_cube(loc.cube.index(), at, ev);
                }
                CtrlOut::PimToVault { loc, cmd, at } => {
                    let ev = Ev::MemPcuCmd(loc.flat_index(vpc), Box::new(cmd));
                    self.sched_cube(loc.cube.index(), at, ev);
                }
                CtrlOut::ReadResp { id, block, at } => {
                    let bank = self.bank_of(block);
                    self.queue.schedule(
                        at + self.cfg.ctrl_latency,
                        Ev::L3(
                            bank,
                            L3In::FetchDone(pei_mem::msg::MemFetchDone { id, block }),
                        ),
                    );
                }
                CtrlOut::PimResp { out, at } => {
                    self.sched_pmu(at + self.cfg.ctrl_latency, PmuIn::MemResult { out });
                }
            }
        }
    }

    fn route_vault(&mut self, v: usize, outs: &mut Outbox<VaultOut>) {
        let vpc = self.cfg.hmc.vaults_per_cube;
        let q = &mut self.queue;
        for out in outs.drain() {
            // Sequentially, cube-local and cube→host messages land on
            // the same global queue.
            deliver_vault_out(vpc, v, out, &mut |_, at, ev| q.schedule(at, ev));
        }
    }

    fn route_mem_pcu(&mut self, v: usize, outs: &mut Outbox<MemPcuOut>) {
        let vpc = self.cfg.hmc.vaults_per_cube;
        let q = &mut self.queue;
        for out in outs.drain() {
            deliver_mem_pcu_out(vpc, v, out, &mut |_, at, ev| q.schedule(at, ev));
        }
    }

    fn route_pmu(&mut self, outs: &mut Outbox<PmuOut>) {
        for out in outs.drain() {
            match out {
                PmuOut::DecideHost { id, core, at } => {
                    let delivered = self.xsend(self.port_pmu(), at, XbarPayload::Control);
                    let _ = delivered;
                    self.queue
                        .schedule(delivered, Ev::HostPcuDecision(core.index(), id));
                }
                PmuOut::Flush { flush, at } => {
                    let bank = self.bank_of(flush.block);
                    self.queue.schedule(at, Ev::L3(bank, L3In::Flush(flush)));
                }
                PmuOut::Launch { cmd, at } => {
                    self.queue
                        .schedule(at + self.cfg.ctrl_latency, Ev::CtrlHostPim(Box::new(cmd)));
                }
                PmuOut::MemResultToPcu {
                    id,
                    core,
                    output,
                    at,
                } => {
                    let delivered = self.xsend(
                        self.port_pmu(),
                        at,
                        XbarPayload::Operands(output.byte_len() as u16),
                    );
                    self.queue.schedule(
                        delivered,
                        Ev::HostPcuMemResult(core.index(), id, Box::new(output)),
                    );
                }
                PmuOut::PfenceDone { core, at } => {
                    let delivered = self.xsend(self.port_pmu(), at, XbarPayload::Control);
                    self.queue
                        .schedule(delivered, Ev::CorePfenceDone(core.index()));
                }
                PmuOut::DispatchedMem { id, core, at } => {
                    let delivered = self.xsend(self.port_pmu(), at, XbarPayload::Control);
                    self.queue
                        .schedule(delivered, Ev::HostPcuDispatchedMem(core.index(), id));
                }
            }
        }
    }

    fn route_host_pcu(&mut self, c: usize, outs: &mut Outbox<HostPcuOut>) {
        for out in outs.drain() {
            match out {
                HostPcuOut::ToPmu {
                    id,
                    op,
                    target,
                    input,
                    at,
                } => {
                    let delivered = self.xsend(
                        self.port_priv(c),
                        at,
                        XbarPayload::Operands(input.byte_len() as u16),
                    );
                    self.sched_pmu(
                        delivered,
                        PmuIn::Request {
                            id,
                            core: CoreId(c as u16),
                            op,
                            target,
                            input,
                        },
                    );
                }
                HostPcuOut::L1Access { req, at } => {
                    self.queue.schedule(at, Ev::PrivCoreReq(c, req));
                }
                HostPcuOut::DoneToCore { seq, at, .. } => {
                    self.queue.schedule(at, Ev::CorePeiDone(c, seq));
                }
                HostPcuOut::CreditToCore { at, .. } => {
                    self.queue.schedule(at, Ev::CorePeiCredit(c));
                }
                HostPcuOut::ReleaseToPmu { id, at } => {
                    let delivered = self.xsend(self.port_priv(c), at, XbarPayload::Control);
                    self.sched_pmu(delivered, PmuIn::HostRelease { id });
                }
            }
        }
    }

    /// Read access to the simulated memory (for result validation).
    ///
    /// # Panics
    ///
    /// Panics if called while a sharded run is in progress (the store
    /// is then shared with the cube shards); it is owned again the
    /// moment `run`/`run_sharded` returns.
    pub fn store(&self) -> &BackingStore {
        match &self.store {
            StoreSlot::Owned(mem) => mem,
            StoreSlot::Shared(_) => panic!("store is shared during a sharded run"),
        }
    }

    /// Records a violation observed by the routing layer itself (as
    /// opposed to a sweep); the run loop ends the run at the next
    /// event boundary.
    #[cold]
    fn flag_violation(&mut self, v: Violation) {
        self.violations.push(v);
    }

    pub(crate) fn result(&mut self, outcome: RunOutcome) -> RunResult {
        let mut stats = StatsReport::new();
        for c in &self.cores {
            c.report("core.", &mut stats);
        }
        for p in &self.privs {
            p.report("cache.", &mut stats);
        }
        for b in &self.l3banks {
            b.report("l3.", &mut stats);
        }
        for v in &self.vaults {
            v.report("dram.", &mut stats);
        }
        for p in &self.host_pcus {
            p.report("hpcu.", &mut stats);
        }
        for p in &self.mem_pcus {
            p.report("mpcu.", &mut stats);
        }
        self.ctrl.report("link.", &mut stats);
        self.pmu.report("pmu.", &mut stats);
        stats.add("xbar.messages", self.xbar.messages() as f64);
        stats.add("xbar.bytes", self.xbar.bytes() as f64);

        let (host_d, mem_d) = self.pmu.dispatch_counts();
        let instructions = self.cores.iter().map(|c| c.instructions()).sum();
        let peis: u64 = self.cores.iter().map(|c| c.issued_peis()).sum();
        let (req_flits, res_flits) = self.ctrl.total_flits();
        let dram_accesses: u64 = self.vaults.iter().map(|v| v.accesses()).sum();

        let l3_accesses: u64 = self.l3banks.iter().map(|b| b.accesses()).sum();
        let inputs = EnergyInputs {
            l1_accesses: (stats.expect("cache.l1.hits") + stats.expect("cache.l1.misses")) as u64,
            l2_accesses: (stats.expect("cache.l2.hits") + stats.expect("cache.l2.misses")) as u64,
            l3_accesses,
            dram_activates: stats.expect("dram.activates") as u64,
            dram_rw: dram_accesses,
            link_bytes: self.ctrl.total_bytes(),
            tsv_bytes: stats.expect("dram.tsv_bytes") as u64,
            host_pcu_ops: host_d,
            mem_pcu_ops: mem_d,
            dir_accesses: 2 * (host_d + mem_d),
            mon_accesses: stats.get("pmu.mon.queries").unwrap_or(0.0) as u64 + l3_accesses,
            cycles: self.finish_time.max(1),
        };
        let energy = energy::compute(&EnergyModel::default(), &inputs);
        energy::report(&energy, &mut stats);

        let cycles = self.finish_time.max(1);
        stats.add("sim.cycles", cycles as f64);
        stats.add("sim.instructions", instructions as f64);
        stats.add(
            "sim.events",
            (self.queue.total_scheduled() + self.foreign_events.0) as f64,
        );

        RunResult {
            cycles,
            instructions,
            peis,
            pim_fraction: if host_d + mem_d > 0 {
                mem_d as f64 / (host_d + mem_d) as f64
            } else {
                0.0
            },
            offchip_bytes: self.ctrl.total_bytes(),
            offchip_flits: (req_flits, res_flits),
            dram_accesses,
            energy,
            stats,
            outcome,
        }
    }
}

/// Where a cube-side component's output event must be delivered: back
/// onto the cube's own queue, or across the shard boundary to the host
/// (the controller's memory side). Sequential runs collapse both onto
/// the global queue.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Dest {
    /// Stays on the queue owning vault `v` (cube-local).
    Local,
    /// Crosses to the host shard (link controller completions).
    Host,
}

/// Routes one vault output message, shared verbatim between the
/// sequential loop ([`System::route_vault`]) and the cube shards
/// (`crate::shard`): the policy of *what* each message becomes lives
/// here once; only the delivery mechanism differs via `sched`.
pub(crate) fn deliver_vault_out(
    vpc: usize,
    v: usize,
    out: VaultOut,
    sched: &mut impl FnMut(Dest, Cycle, Ev),
) {
    match out {
        VaultOut::Done {
            id,
            block,
            write,
            at,
        } => match id.namespace() {
            ns::L3 if !write => {
                sched(
                    Dest::Host,
                    at,
                    Ev::CtrlMemReadDone(id, block, (v / vpc) as u16),
                );
            }
            // Writebacks complete silently.
            ns::MEM_PCU => {
                sched(Dest::Local, at, Ev::MemPcuVaultDone(v, id, write));
            }
            _ => {} // writeback with a null id: no response
        },
        VaultOut::Wake { at } => sched(Dest::Local, at, Ev::VaultWake(v)),
    }
}

/// Routes one memory-side PCU output; see [`deliver_vault_out`].
pub(crate) fn deliver_mem_pcu_out(
    vpc: usize,
    v: usize,
    out: MemPcuOut,
    sched: &mut impl FnMut(Dest, Cycle, Ev),
) {
    match out {
        MemPcuOut::VaultAccess {
            id,
            block,
            write,
            at,
        } => {
            sched(
                Dest::Local,
                at,
                Ev::VaultAcc(v, VaultIn { id, block, write }),
            );
        }
        MemPcuOut::Complete { resp, at } => {
            sched(
                Dest::Host,
                at,
                Ev::CtrlMemPimDone((v / vpc) as u16, Box::new(resp)),
            );
        }
    }
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("cores", &self.cores.len())
            .field("l3_banks", &self.l3banks.len())
            .field("vaults", &self.vaults.len())
            .field("policy", &self.cfg.policy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pei_core::DispatchPolicy;

    #[test]
    fn ev_stays_compact() {
        // The event queue holds millions of `Ev`s; the per-PEI payload
        // carriers are boxed so the plain memory path sets the size.
        // PrivL3Resp / L3 / VaultAcc bound it at 40 bytes — growing past
        // that means a fat payload leaked inline into a hot variant.
        assert!(
            std::mem::size_of::<Ev>() <= 40,
            "Ev grew to {} bytes; box the new payload instead",
            std::mem::size_of::<Ev>()
        );
    }

    #[test]
    fn diagnose_names_a_stuck_vault() {
        let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
        let mut sys = System::new(cfg, BackingStore::new());
        // Two same-bank accesses in the same cycle: the first occupies the
        // bank, the second stays queued — a synthetic stall as seen at
        // deadlock time.
        let mut out = Outbox::new();
        for i in 0..2 {
            sys.vaults[0].handle_access(
                0,
                VaultIn {
                    id: ReqId(i),
                    block: BlockAddr(0),
                    write: false,
                },
                &mut out,
            );
        }
        let diag = sys.diagnose();
        assert!(
            diag.contains("vault0"),
            "diagnose must name the stuck vault: {diag}"
        );
        assert!(
            !diag.contains("vault1"),
            "idle vaults must stay out of the report: {diag}"
        );
    }

    fn tiny_workload(store: &mut BackingStore) -> Box<dyn PhasedTrace> {
        use pei_cpu::trace::{Op, VecPhases};
        let a = store.alloc_block();
        let b = store.alloc_block();
        Box::new(VecPhases::single(vec![
            Op::load(a),
            Op::store(b),
            Op::load(a),
        ]))
    }

    #[test]
    fn checked_clean_run_completes() {
        let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
        let mut store = BackingStore::new();
        let trace = tiny_workload(&mut store);
        let mut sys = System::new(cfg, store);
        sys.add_workload(trace, vec![0]);
        sys.enable_checks(CheckConfig {
            interval: 64, // sweep aggressively; a healthy machine stays silent
            ..CheckConfig::default()
        });
        let r = sys.run(1_000_000);
        assert!(r.ok(), "clean checked run must complete: {:?}", r.outcome);
        assert_eq!(r.instructions, 3);
    }

    #[test]
    fn watchdog_reports_a_stall_instead_of_panicking() {
        let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
        let mut store = BackingStore::new();
        let trace = tiny_workload(&mut store);
        let mut sys = System::new(cfg, store);
        sys.add_workload(trace, vec![0]);
        // Wedge every vault: the L3 fill never returns and the event
        // queue drains with the core still blocked.
        for v in &mut sys.vaults {
            v.fault_wedge();
        }
        let r = sys.run(1_000_000);
        let report = match &r.outcome {
            RunOutcome::Stalled { report } => report,
            other => panic!("expected a stall, got {other:?}"),
        };
        let culprit = report.culprit().expect("stall must name a culprit");
        assert!(
            culprit.starts_with("vault"),
            "deepest stuck component is the vault, got {culprit}: {}",
            report.summary()
        );
        assert!(
            report.diagnosis.contains("core0 not drained"),
            "diagnosis keeps the classic text: {}",
            report.diagnosis
        );
    }

    #[test]
    fn cycle_limit_reports_instead_of_panicking() {
        let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
        let mut store = BackingStore::new();
        let trace = tiny_workload(&mut store);
        let mut sys = System::new(cfg, store);
        sys.add_workload(trace, vec![0]);
        let r = sys.run(2); // a DRAM round trip cannot fit in two cycles
        match &r.outcome {
            RunOutcome::CycleLimit { report } => {
                assert_eq!(report.kind, FailureKind::CycleLimit);
                assert!(!report.occupancies.is_empty(), "work was left in flight");
            }
            other => panic!("expected a cycle-limit outcome, got {other:?}"),
        }
    }

    #[test]
    fn unroutable_namespace_is_reported_not_fatal() {
        let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
        let mut sys = System::new(cfg, BackingStore::new());
        let mut outs = Outbox::new();
        outs.push(PrivOut::CoreResp {
            id: ReqId::tagged(ns::PMU, 0, 9),
            at: 41,
        });
        sys.route_priv(2, &mut outs);
        assert_eq!(sys.violations.len(), 1);
        let v = &sys.violations[0];
        assert_eq!(v.checker, "router");
        assert_eq!(v.component, "cache2");
        assert!(
            v.detail.contains("namespace 4") && v.detail.contains("cycle 41"),
            "detail must carry the namespace and cycle: {}",
            v.detail
        );
    }

    #[test]
    fn failure_report_window_persists_via_stream_sink() {
        let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
        let mut store = BackingStore::new();
        let trace = tiny_workload(&mut store);
        let mut sys = System::new(cfg, store);
        sys.add_workload(trace, vec![0]);
        sys.enable_checks(CheckConfig::default());
        for v in &mut sys.vaults {
            v.fault_wedge();
        }
        let r = sys.run(1_000_000);
        let report = r.outcome.report().expect("wedged run must fail");
        let events = report.recent_events.as_ref().expect("ring attached");
        assert!(!events.records.is_empty(), "window must capture events");
        let mut path = std::env::temp_dir();
        path.push(format!("pei_failwin_{}.petr", std::process::id()));
        let written = report.save_window(&path).unwrap();
        assert_eq!(written, events.records.len() as u64);
        let loaded = pei_trace::Trace::load(&path).unwrap();
        assert_eq!(loaded.records, events.records);
        assert_eq!(loaded.meta_get("failure.kind"), Some("stalled"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn diagnose_names_the_link_controller() {
        let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
        let mut sys = System::new(cfg, BackingStore::new());
        let mut out = Outbox::new();
        sys.ctrl.handle_host(
            0,
            CtrlIn::Read {
                id: ReqId(1),
                block: BlockAddr(0),
            },
            &mut out,
        );
        let diag = sys.diagnose();
        assert!(
            diag.contains("link controller has 1 reads in flight"),
            "diagnose must expose the off-chip read window: {diag}"
        );
    }
}
