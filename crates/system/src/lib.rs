//! Full-system assembly of the PEI machine.
//!
//! This crate wires the substrate crates into the paper's evaluated
//! machine (Table 2): out-of-order cores replaying workload traces, a
//! three-level MESI cache hierarchy over a crossbar, HMC main memory, and
//! the PEI architecture (host/memory PCUs + PMU) on top. It also carries
//! the energy model of Fig. 12 and configuration presets for both the
//! paper-scale and the proportionally scaled-down default machine.
//!
//! # Examples
//!
//! ```
//! use pei_system::{MachineConfig, System};
//! use pei_core::DispatchPolicy;
//! use pei_cpu::trace::{Op, VecPhases};
//! use pei_mem::BackingStore;
//! use pei_types::Addr;
//!
//! let mut store = BackingStore::new();
//! let a = store.alloc_block();
//! let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
//! let mut sys = System::new(cfg, store);
//! sys.add_workload(
//!     Box::new(VecPhases::single(vec![Op::load(a), Op::Compute(16)])),
//!     vec![0],
//! );
//! let result = sys.run(1_000_000);
//! assert!(result.cycles > 0);
//! assert_eq!(result.instructions, 17);
//! ```
//!
//! This crate's place in the workspace is mapped in DESIGN.md §5.

#![warn(missing_docs)]

pub mod check;
pub mod config;
pub mod energy;
mod shard;
pub mod snapshot;
pub mod system;
mod tracer;

pub use check::{
    CheckConfig, FailureKind, FailureReport, FaultKind, FaultPlan, RunOutcome, Violation,
};
pub use config::MachineConfig;
pub use energy::{EnergyBreakdown, EnergyInputs, EnergyModel};
pub use snapshot::Snapshot;
pub use system::{PauseAt, RunResult, RunStatus, System};
