//! Whole-machine snapshot and restore (DESIGN.md §11).
//!
//! [`System::snapshot`] serializes the *complete* architectural state of
//! the machine — every core, private cache, L3 bank, crossbar port, MSHR
//! file, PMU directory and locality monitor, PCU operand buffer, vault
//! queue, link-controller credit, the functional backing store, the
//! calendar event queue (in canonical pop order, so same-cycle FIFO
//! ordering survives), counter registries, and phase marks — into a
//! dependency-free little-endian byte format. [`System::restore`] loads
//! that state into a freshly constructed, identically shaped machine;
//! the continued run is byte-identical to one that never stopped.
//!
//! Three consumers build on this:
//!
//! - **Warm-state forking**: the batch runner warms one machine per
//!   (workload, scale, seed, monitor-class) prefix with
//!   [`PauseAt::FirstPei`](crate::PauseAt), snapshots it, and restores
//!   the snapshot into every policy cell that shares the prefix. The
//!   pause fires *before* the first PMU event is dispatched, so no
//!   policy decision has been taken yet; the only policy-dependent state
//!   accumulated so far is the locality monitor shadowing L3 accesses,
//!   which is why a snapshot is only restorable within the same monitor
//!   class (see [`Snapshot::class_fingerprint`]).
//! - **Crash-resumable runs**: `pei-sim --save-at N` pauses at a
//!   deterministic cycle cut and writes the snapshot; `--resume FILE`
//!   rebuilds the machine and continues.
//! - **Divergence bisection**: the `trace_bisect` tool restores midpoint
//!   snapshots to binary-search a figure regression down to the first
//!   divergent cycle without re-simulating the prefix each probe.
//!
//! A snapshot taken at a sharded epoch barrier additionally carries the
//! `ShardPause` record (super-step counter, per-cube event lists in
//! canonical order, undelivered barrier mailboxes); both the inline and
//! the threaded driver follow the identical super-step schedule, so a
//! sharded snapshot resumes byte-identically under any `--shards` count.

use crate::check::CheckConfig;
use crate::config::MachineConfig;
use crate::shard::StoreSlot;
use crate::system::{Ev, System};
use pei_core::{DispatchPolicy, PmuIn};
use pei_engine::EventQueue;
use pei_hmc::VaultIn;
use pei_mem::l3::L3In;
use pei_mem::msg::{CoreReq, L3Resp, Recall};
use pei_mem::BackingStore;
use pei_types::snap::{check_len, Decoder, Encoder, SnapError, SnapResult, SnapshotState};
use pei_types::{BlockAddr, Cycle, OperandValue, PimCmd, PimOut, ReqId};
use std::io;
use std::path::Path;

/// File magic: "PEI snapshot, format 1".
const MAGIC: &[u8; 8] = b"PEISNAP1";
/// Format version; bumped on any incompatible layout change.
const VERSION: u16 = 1;

// Section tags, in stream order. `expect_tag` turns a misaligned decode
// into an offset-reporting error instead of garbage state.
const TAG_QUEUE: u8 = 1;
const TAG_CORES: u8 = 2;
const TAG_PRIVS: u8 = 3;
const TAG_L3: u8 = 4;
const TAG_XBAR: u8 = 5;
const TAG_CTRL: u8 = 6;
const TAG_VAULTS: u8 = 7;
const TAG_MEM_PCUS: u8 = 8;
const TAG_HOST_PCUS: u8 = 9;
const TAG_PMU: u8 = 10;
const TAG_STORE: u8 = 11;
const TAG_GROUPS: u8 = 12;
const TAG_RUN: u8 = 13;
const TAG_CHECKS: u8 = 14;
const TAG_SHARD: u8 = 15;
const TAG_END: u8 = 16;

/// A serialized machine state, restorable onto an identically
/// constructed [`System`] (same [`MachineConfig`] up to dispatch policy
/// within the same monitor class, same `add_workload` calls).
///
/// The byte format is self-contained and versioned; [`Snapshot::read`] /
/// [`Snapshot::from_bytes`] validate the header before accepting the
/// payload, and every decode error reports the byte offset it occurred
/// at (see [`SnapError`]).
#[derive(Debug, Clone)]
pub struct Snapshot {
    bytes: Vec<u8>,
    header: Header,
}

#[derive(Debug, Clone)]
struct Header {
    fp_class: u64,
    fp_exact: u64,
    cycle: Cycle,
    sharded: bool,
    meta: Vec<(String, String)>,
}

impl Snapshot {
    /// Validates and wraps raw snapshot bytes. Only the header is parsed
    /// here; the body is decoded (and further validated) by
    /// [`System::restore`].
    pub fn from_bytes(bytes: &[u8]) -> SnapResult<Snapshot> {
        let mut d = Decoder::new(bytes);
        let header = decode_header(&mut d)?;
        Ok(Snapshot {
            bytes: bytes.to_vec(),
            header,
        })
    }

    /// The raw serialized bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the snapshot, returning the serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Earliest pending event cycle at capture time — the lower bound of
    /// where a restored run resumes.
    pub fn cycle(&self) -> Cycle {
        self.header.cycle
    }

    /// Whether this snapshot was taken at a sharded epoch barrier (must
    /// resume with `run_sharded`) rather than a sequential cut (must
    /// resume with `run`).
    pub fn is_sharded(&self) -> bool {
        self.header.sharded
    }

    /// Fingerprint of the machine configuration with the dispatch policy
    /// normalized to its monitor class ([`DispatchPolicy::uses_monitor`]).
    /// Restore requires this to match the target machine: machines in
    /// the same class accumulate identical pre-PEI state, so a warm
    /// snapshot forks soundly across policies *within* a class only.
    pub fn class_fingerprint(&self) -> u64 {
        self.header.fp_class
    }

    /// Fingerprint of the exact machine configuration, dispatch policy
    /// included. Equal fingerprints mean the snapshot came from an
    /// identically configured machine.
    pub fn exact_fingerprint(&self) -> u64 {
        self.header.fp_exact
    }

    /// Caller-provided metadata pairs recorded at capture time (e.g. the
    /// batch runner's workload/scale/seed recipe).
    pub fn meta(&self) -> &[(String, String)] {
        &self.header.meta
    }

    /// Looks up one metadata value by key.
    pub fn meta_get(&self, key: &str) -> Option<&str> {
        self.header
            .meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Writes the snapshot to `path`.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, &self.bytes)
    }

    /// Reads and header-validates a snapshot from `path`.
    pub fn read(path: &Path) -> io::Result<Snapshot> {
        let bytes = std::fs::read(path)?;
        Snapshot::from_bytes(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// FNV-1a over the `Debug` rendering of a config — stable across runs
/// within one build of the simulator, which is the scope snapshots live
/// in (the format carries full state, not code).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of the exact machine configuration.
pub(crate) fn config_fingerprint(cfg: &MachineConfig) -> u64 {
    fnv1a(format!("{cfg:?}").as_bytes())
}

/// Fingerprint with the dispatch policy collapsed to its monitor class:
/// `{LocalityAware, LocalityAwareBalanced}` → `LocalityAware`,
/// `{HostOnly, PimOnly}` → `HostOnly`. Machines whose class fingerprints
/// match shadow the locality monitor identically on every L3 access, so
/// any state captured before the first PMU dispatch is shared verbatim.
pub(crate) fn class_fingerprint(cfg: &MachineConfig) -> u64 {
    let mut c = *cfg;
    c.policy = if c.policy.uses_monitor() {
        DispatchPolicy::LocalityAware
    } else {
        DispatchPolicy::HostOnly
    };
    fnv1a(format!("{c:?}").as_bytes())
}

fn decode_header(d: &mut Decoder<'_>) -> SnapResult<Header> {
    let magic = d.take(MAGIC.len())?;
    if magic != MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = d.u16()?;
    if version != VERSION {
        return Err(SnapError::BadVersion { found: version });
    }
    let fp_class = d.u64()?;
    let fp_exact = d.u64()?;
    let cycle = d.u64()?;
    let sharded = match d.u8()? {
        0 => false,
        1 => true,
        other => {
            return Err(SnapError::BadValue {
                offset: d.offset().saturating_sub(1),
                what: format!("engine flag must be 0 or 1, found {other}"),
            })
        }
    };
    let n = d.seq(2)?;
    let mut meta = Vec::with_capacity(n);
    for _ in 0..n {
        let k = d.str()?;
        let v = d.str()?;
        meta.push((k, v));
    }
    Ok(Header {
        fp_class,
        fp_exact,
        cycle,
        sharded,
        meta,
    })
}

/// State of a sharded run paused at an epoch barrier: enough to re-seed
/// the super-step drivers so the resumed schedule is the one an
/// uninterrupted run would have followed (under any thread count — both
/// drivers execute the identical barrier schedule).
pub(crate) struct ShardPause {
    /// The super-step the resumed drivers start at (already advanced
    /// past the barrier the pause cut).
    pub(crate) step: u64,
    /// Cycle of the last host event dispatched (stall diagnostics).
    pub(crate) last: Cycle,
    /// Per-cube queue contents (canonical pop order) and accounting.
    pub(crate) cubes: Vec<CubePause>,
    /// Per-cube barrier mailboxes delivered but not yet absorbed.
    pub(crate) inboxes: Vec<Vec<(Cycle, Ev)>>,
}

/// One cube shard's paused queue.
pub(crate) struct CubePause {
    pub(crate) events: Vec<(Cycle, Ev)>,
    pub(crate) scheduled: u64,
    pub(crate) dispatched: u64,
}

/// Serializes one system event. Boxed payloads reuse the component
/// crates' message codecs so the wire format lives next to each type.
pub(crate) fn encode_ev(ev: &Ev, e: &mut Encoder) {
    match ev {
        Ev::CoreTick(i) => {
            e.tag(0);
            e.usize(*i);
        }
        Ev::CoreMemDone(i, id) => {
            e.tag(1);
            e.usize(*i);
            e.u64(id.0);
        }
        Ev::CorePeiDone(i, seq) => {
            e.tag(2);
            e.usize(*i);
            e.u64(*seq);
        }
        Ev::CorePeiCredit(i) => {
            e.tag(3);
            e.usize(*i);
        }
        Ev::CorePfenceDone(i) => {
            e.tag(4);
            e.usize(*i);
        }
        Ev::PrivCoreReq(i, req) => {
            e.tag(5);
            e.usize(*i);
            req.encode(e);
        }
        Ev::PrivL3Resp(i, resp) => {
            e.tag(6);
            e.usize(*i);
            resp.encode(e);
        }
        Ev::PrivRecall(i, recall) => {
            e.tag(7);
            e.usize(*i);
            recall.encode(e);
        }
        Ev::L3(b, input) => {
            e.tag(8);
            e.usize(*b);
            input.encode(e);
        }
        Ev::CtrlHostRead(id, block) => {
            e.tag(9);
            e.u64(id.0);
            e.u64(block.0);
        }
        Ev::CtrlHostWrite(block) => {
            e.tag(10);
            e.u64(block.0);
        }
        Ev::CtrlHostPim(cmd) => {
            e.tag(11);
            cmd.save(e);
        }
        Ev::CtrlMemReadDone(id, block, cube) => {
            e.tag(12);
            e.u64(id.0);
            e.u64(block.0);
            e.u16(*cube);
        }
        Ev::CtrlMemPimDone(cube, out) => {
            e.tag(13);
            e.u16(*cube);
            out.save(e);
        }
        Ev::VaultAcc(v, acc) => {
            e.tag(14);
            e.usize(*v);
            acc.encode(e);
        }
        Ev::VaultWake(v) => {
            e.tag(15);
            e.usize(*v);
        }
        Ev::MemPcuCmd(v, cmd) => {
            e.tag(16);
            e.usize(*v);
            cmd.save(e);
        }
        Ev::MemPcuVaultDone(v, id, write) => {
            e.tag(17);
            e.usize(*v);
            e.u64(id.0);
            e.bool(*write);
        }
        Ev::Pmu(input) => {
            e.tag(18);
            input.encode(e);
        }
        Ev::HostPcuDecision(c, id) => {
            e.tag(19);
            e.usize(*c);
            e.u64(id.0);
        }
        Ev::HostPcuDispatchedMem(c, id) => {
            e.tag(20);
            e.usize(*c);
            e.u64(id.0);
        }
        Ev::HostPcuL1Resp(c, id) => {
            e.tag(21);
            e.usize(*c);
            e.u64(id.0);
        }
        Ev::HostPcuMemResult(c, id, output) => {
            e.tag(22);
            e.usize(*c);
            e.u64(id.0);
            output.save(e);
        }
    }
}

/// Decodes one system event; unknown tags report their offset.
pub(crate) fn decode_ev(d: &mut Decoder<'_>) -> SnapResult<Ev> {
    let offset = d.offset();
    Ok(match d.u8()? {
        0 => Ev::CoreTick(d.usize()?),
        1 => Ev::CoreMemDone(d.usize()?, ReqId(d.u64()?)),
        2 => Ev::CorePeiDone(d.usize()?, d.u64()?),
        3 => Ev::CorePeiCredit(d.usize()?),
        4 => Ev::CorePfenceDone(d.usize()?),
        5 => Ev::PrivCoreReq(d.usize()?, CoreReq::decode(d)?),
        6 => Ev::PrivL3Resp(d.usize()?, L3Resp::decode(d)?),
        7 => Ev::PrivRecall(d.usize()?, Recall::decode(d)?),
        8 => Ev::L3(d.usize()?, L3In::decode(d)?),
        9 => Ev::CtrlHostRead(ReqId(d.u64()?), BlockAddr(d.u64()?)),
        10 => Ev::CtrlHostWrite(BlockAddr(d.u64()?)),
        11 => Ev::CtrlHostPim(Box::new(PimCmd::load(d)?)),
        12 => Ev::CtrlMemReadDone(ReqId(d.u64()?), BlockAddr(d.u64()?), d.u16()?),
        13 => Ev::CtrlMemPimDone(d.u16()?, Box::new(PimOut::load(d)?)),
        14 => Ev::VaultAcc(d.usize()?, VaultIn::decode(d)?),
        15 => Ev::VaultWake(d.usize()?),
        16 => Ev::MemPcuCmd(d.usize()?, Box::new(PimCmd::load(d)?)),
        17 => Ev::MemPcuVaultDone(d.usize()?, ReqId(d.u64()?), d.bool()?),
        18 => Ev::Pmu(Box::new(PmuIn::decode(d)?)),
        19 => Ev::HostPcuDecision(d.usize()?, ReqId(d.u64()?)),
        20 => Ev::HostPcuDispatchedMem(d.usize()?, ReqId(d.u64()?)),
        21 => Ev::HostPcuL1Resp(d.usize()?, ReqId(d.u64()?)),
        22 => Ev::HostPcuMemResult(
            d.usize()?,
            ReqId(d.u64()?),
            Box::new(OperandValue::load(d)?),
        ),
        found => {
            return Err(SnapError::BadTag {
                offset,
                found,
                what: "system event variant",
            })
        }
    })
}

fn encode_events(e: &mut Encoder, events: &[(Cycle, Ev)]) {
    e.seq(events.len());
    for (at, ev) in events {
        e.u64(*at);
        encode_ev(ev, e);
    }
}

fn decode_events(d: &mut Decoder<'_>) -> SnapResult<Vec<(Cycle, Ev)>> {
    let n = d.seq(9)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let at = d.u64()?;
        out.push((at, decode_ev(d)?));
    }
    Ok(out)
}

fn mismatch(what: impl Into<String>) -> SnapError {
    SnapError::Mismatch { what: what.into() }
}

impl System {
    /// Serializes the complete machine state. The machine must be
    /// quiescent between events (before a run, between `run` calls, or
    /// paused via [`run_paused`](System::run_paused) /
    /// [`run_sharded_paused`](System::run_sharded_paused)).
    ///
    /// Capture is non-perturbing: continuing this machine afterwards is
    /// byte-identical to never having snapshotted (the event queue is
    /// drained in canonical pop order and rebuilt, which preserves all
    /// observable ordering).
    ///
    /// # Errors
    ///
    /// Refuses machines with armed fault injection or recorded invariant
    /// violations (their state is intentionally sick), and machines in
    /// the middle of a sharded run.
    pub fn snapshot(&mut self) -> SnapResult<Snapshot> {
        self.snapshot_with_meta(&[])
    }

    /// [`snapshot`](System::snapshot) with caller metadata (string
    /// pairs) embedded in the header — the batch runner records its
    /// (workload, scale, seed) recipe here so `--resume` and
    /// `trace_bisect` can name what they are looking at.
    pub fn snapshot_with_meta(&mut self, meta: &[(String, String)]) -> SnapResult<Snapshot> {
        if self.faults.is_some() {
            return Err(mismatch(
                "cannot snapshot a machine with armed fault injection",
            ));
        }
        if !self.violations.is_empty() {
            return Err(mismatch(
                "cannot snapshot a machine with recorded invariant violations",
            ));
        }
        if !matches!(self.store, StoreSlot::Owned(_)) || self.cube_out.is_some() {
            return Err(mismatch("cannot snapshot in the middle of a sharded run"));
        }

        let cycle = self.resume_cycle();
        let mut e = Encoder::new();
        e.raw(MAGIC);
        e.u16(VERSION);
        e.u64(class_fingerprint(&self.cfg));
        e.u64(config_fingerprint(&self.cfg));
        e.u64(cycle);
        e.u8(u8::from(self.shard_pause.is_some()));
        e.seq(meta.len());
        for (k, v) in meta {
            e.str(k);
            e.str(v);
        }

        // Host event queue, drained in canonical order and rebuilt.
        e.tag(TAG_QUEUE);
        let scheduled = self.queue.total_scheduled();
        e.u64(scheduled);
        let events = self.queue.drain_ordered();
        encode_events(&mut e, &events);
        self.rebuild_queue(events, scheduled);

        e.tag(TAG_CORES);
        e.seq(self.cores.len());
        for c in &self.cores {
            c.save(&mut e);
        }
        e.tag(TAG_PRIVS);
        e.seq(self.privs.len());
        for p in &self.privs {
            p.save(&mut e);
        }
        e.tag(TAG_L3);
        e.seq(self.l3banks.len());
        for b in &self.l3banks {
            b.save(&mut e);
        }
        e.tag(TAG_XBAR);
        self.xbar.save(&mut e);
        e.tag(TAG_CTRL);
        self.ctrl.save(&mut e);
        e.tag(TAG_VAULTS);
        e.seq(self.vaults.len());
        for v in &self.vaults {
            v.save(&mut e);
        }
        e.tag(TAG_MEM_PCUS);
        e.seq(self.mem_pcus.len());
        for p in &self.mem_pcus {
            p.save(&mut e);
        }
        e.tag(TAG_HOST_PCUS);
        e.seq(self.host_pcus.len());
        for p in &self.host_pcus {
            p.save(&mut e);
        }
        e.tag(TAG_PMU);
        self.pmu.save(&mut e);

        // Functional memory, embedded in its own (already versioned)
        // container format.
        e.tag(TAG_STORE);
        let mut raw = Vec::new();
        match &self.store {
            StoreSlot::Owned(mem) => mem.save(&mut raw).expect("in-memory write cannot fail"),
            StoreSlot::Shared(_) => unreachable!("checked above"),
        }
        e.bytes(&raw);

        // Workload groups: phase progress and drain flags. The trace
        // generator itself is not serialized — restore fast-forwards the
        // target's freshly constructed generator by `phases` calls.
        e.tag(TAG_GROUPS);
        e.seq(self.groups.len());
        for g in &self.groups {
            e.u64(g.phases);
            e.bool(g.done);
            e.u64(g.instructions_at_done);
            e.usize(g.drained_count);
            e.seq(g.cores.len());
            for (&c, &dr) in g.cores.iter().zip(&g.drained) {
                e.usize(c);
                e.bool(dr);
            }
        }

        e.tag(TAG_RUN);
        e.u64(self.finish_time);
        e.u64(self.dispatched);
        e.u64(self.xsends);
        e.opt(self.pending_mark.is_some());
        if let Some(m) = self.pending_mark {
            e.str(m);
        }

        e.tag(TAG_CHECKS);
        e.opt(self.checks.is_some());
        if let Some(ch) = &self.checks {
            e.u64(ch.cfg.interval);
            e.u64(ch.cfg.mshr_age_bound);
            e.usize(ch.cfg.max_events);
            e.usize(ch.cfg.window);
            e.u64(ch.next_sweep);
            let mut seen: Vec<(usize, u64, Cycle)> = ch
                .mshr_seen
                .iter()
                .map(|(&(c, b), &at)| (c, b, at))
                .collect();
            seen.sort_unstable();
            e.seq(seen.len());
            for (c, b, at) in seen {
                e.usize(c);
                e.u64(b);
                e.u64(at);
            }
        }

        e.tag(TAG_SHARD);
        e.opt(self.shard_pause.is_some());
        if let Some(p) = &self.shard_pause {
            e.u64(p.step);
            e.u64(p.last);
            e.seq(p.cubes.len());
            for cp in &p.cubes {
                e.u64(cp.scheduled);
                e.u64(cp.dispatched);
                encode_events(&mut e, &cp.events);
            }
            e.seq(p.inboxes.len());
            for ib in &p.inboxes {
                encode_events(&mut e, ib);
            }
        }
        e.tag(TAG_END);

        let bytes = e.into_bytes();
        let header = {
            let mut d = Decoder::new(&bytes);
            decode_header(&mut d).expect("freshly encoded header")
        };
        Ok(Snapshot { bytes, header })
    }

    /// Loads a snapshot into this machine. The target must be freshly
    /// constructed and identically shaped: same [`MachineConfig`] up to
    /// dispatch policy within the same monitor class, the same
    /// `add_workload` calls (the workload generators are re-created, not
    /// serialized), and the same checked-mode setting.
    ///
    /// After a successful restore, continue with `run`/`run_sharded`
    /// matching [`Snapshot::is_sharded`]; the continued run is
    /// byte-identical to the uninterrupted original.
    ///
    /// # Errors
    ///
    /// Reports configuration/class mismatches, shape mismatches, and any
    /// malformed input with the byte offset of the failure. On error the
    /// target machine may hold partially loaded state and must be
    /// discarded.
    pub fn restore(&mut self, snap: &Snapshot) -> SnapResult<()> {
        let mut d = Decoder::new(&snap.bytes);
        let hdr = decode_header(&mut d)?;
        let my_class = class_fingerprint(&self.cfg);
        if hdr.fp_class != my_class {
            return Err(mismatch(format!(
                "snapshot is from an incompatible machine (class fingerprint \
                 {:#018x}, this machine {:#018x}); a snapshot restores only onto \
                 a machine whose configuration differs at most in dispatch \
                 policy within the same monitor class",
                hdr.fp_class, my_class
            )));
        }
        if self.dispatched != 0 || self.queue.total_scheduled() != 0 {
            return Err(mismatch(
                "restore target must be a freshly constructed System (System::new \
                 + add_workload, not yet run)",
            ));
        }
        if self.faults.is_some() {
            return Err(mismatch("restore target must not have armed faults"));
        }

        d.expect_tag(TAG_QUEUE, "event-queue section")?;
        let scheduled = d.u64()?;
        let events = decode_events(&mut d)?;

        d.expect_tag(TAG_CORES, "core section")?;
        check_len("cores", d.seq(1)?, self.cores.len())?;
        for c in &mut self.cores {
            c.load(&mut d)?;
        }
        d.expect_tag(TAG_PRIVS, "private-cache section")?;
        check_len("private caches", d.seq(1)?, self.privs.len())?;
        for p in &mut self.privs {
            p.load(&mut d)?;
        }
        d.expect_tag(TAG_L3, "L3 section")?;
        check_len("L3 banks", d.seq(1)?, self.l3banks.len())?;
        for b in &mut self.l3banks {
            b.load(&mut d)?;
        }
        d.expect_tag(TAG_XBAR, "crossbar section")?;
        self.xbar.load(&mut d)?;
        d.expect_tag(TAG_CTRL, "link-controller section")?;
        self.ctrl.load(&mut d)?;
        d.expect_tag(TAG_VAULTS, "vault section")?;
        check_len("vaults", d.seq(1)?, self.vaults.len())?;
        for v in &mut self.vaults {
            v.load(&mut d)?;
        }
        d.expect_tag(TAG_MEM_PCUS, "memory-PCU section")?;
        check_len("memory PCUs", d.seq(1)?, self.mem_pcus.len())?;
        for p in &mut self.mem_pcus {
            p.load(&mut d)?;
        }
        d.expect_tag(TAG_HOST_PCUS, "host-PCU section")?;
        check_len("host PCUs", d.seq(1)?, self.host_pcus.len())?;
        for p in &mut self.host_pcus {
            p.load(&mut d)?;
        }
        d.expect_tag(TAG_PMU, "PMU section")?;
        self.pmu.load(&mut d)?;

        d.expect_tag(TAG_STORE, "backing-store section")?;
        let raw = d.bytes()?;
        let mem = BackingStore::load(&mut &raw[..])
            .map_err(|err| d.bad(format!("backing store payload: {err}")))?;
        self.store = StoreSlot::Owned(mem);

        d.expect_tag(TAG_GROUPS, "workload-group section")?;
        check_len("workload groups", d.seq(1)?, self.groups.len())?;
        for g in &mut self.groups {
            let phases = d.u64()?;
            g.done = d.bool()?;
            g.instructions_at_done = d.u64()?;
            g.drained_count = d.usize()?;
            let nc = d.seq(9)?;
            check_len("group cores", nc, g.cores.len())?;
            for i in 0..nc {
                let c = d.usize()?;
                let dr = d.bool()?;
                if c != g.cores[i] {
                    return Err(d.bad(format!(
                        "group core list mismatch: snapshot assigned core {c} \
                         where this machine assigned core {}",
                        g.cores[i]
                    )));
                }
                g.drained[i] = dr;
            }
            // Phases already delivered live inside the serialized core
            // state; advance the fresh generator past them, discarding.
            for _ in 0..phases {
                let _ = g.trace.next_phase();
            }
            g.phases = phases;
        }

        d.expect_tag(TAG_RUN, "run-accounting section")?;
        self.finish_time = d.u64()?;
        self.dispatched = d.u64()?;
        self.xsends = d.u64()?;
        self.pending_mark = if d.opt()? {
            Some(pei_engine::intern_label(&d.str()?))
        } else {
            None
        };

        d.expect_tag(TAG_CHECKS, "checked-mode section")?;
        let snap_checks = d.opt()?;
        match (self.checks.as_deref_mut(), snap_checks) {
            (Some(ch), true) => {
                let cfg = CheckConfig {
                    interval: d.u64()?,
                    mshr_age_bound: d.u64()?,
                    max_events: d.usize()?,
                    window: d.usize()?,
                };
                if cfg != ch.cfg {
                    return Err(mismatch(format!(
                        "checked-mode configuration differs: snapshot ran with \
                         {:?}, this machine has {:?}",
                        cfg, ch.cfg
                    )));
                }
                ch.next_sweep = d.u64()?;
                let n = d.seq(17)?;
                ch.mshr_seen.clear();
                for _ in 0..n {
                    let c = d.usize()?;
                    let b = d.u64()?;
                    let at = d.u64()?;
                    ch.mshr_seen.insert((c, b), at);
                }
            }
            (None, false) => {}
            (Some(_), false) => {
                return Err(mismatch(
                    "snapshot was taken without checked mode but this machine has \
                     checks enabled; match the --check setting to resume \
                     byte-identically",
                ))
            }
            (None, true) => {
                return Err(mismatch(
                    "snapshot was taken in checked mode but this machine has \
                     checks disabled; match the --check setting to resume \
                     byte-identically",
                ))
            }
        }

        d.expect_tag(TAG_SHARD, "sharded-pause section")?;
        self.shard_pause = if d.opt()? {
            let step = d.u64()?;
            let last = d.u64()?;
            let nc = d.seq(13)?;
            check_len("cube shards", nc, self.cfg.hmc.cubes)?;
            let mut cubes = Vec::with_capacity(nc);
            for _ in 0..nc {
                let scheduled = d.u64()?;
                let dispatched = d.u64()?;
                let events = decode_events(&mut d)?;
                cubes.push(CubePause {
                    events,
                    scheduled,
                    dispatched,
                });
            }
            let ni = d.seq(4)?;
            check_len("cube inboxes", ni, self.cfg.hmc.cubes)?;
            let mut inboxes = Vec::with_capacity(ni);
            for _ in 0..ni {
                inboxes.push(decode_events(&mut d)?);
            }
            Some(Box::new(ShardPause {
                step,
                last,
                cubes,
                inboxes,
            }))
        } else {
            None
        };
        d.expect_tag(TAG_END, "end-of-snapshot marker")?;
        d.finish()?;

        // Install the queue only after the whole stream validated.
        self.rebuild_queue(events, scheduled);
        self.foreign_events = (0, 0, 0);
        self.violations.clear();
        self.warm_armed = false;
        self.warm_stop = None;
        Ok(())
    }

    /// Rebuilds the host queue from `(cycle, event)` pairs in canonical
    /// order, restoring the lifetime-scheduled tally.
    pub(crate) fn rebuild_queue(&mut self, events: Vec<(Cycle, Ev)>, scheduled: u64) {
        let mut q = EventQueue::with_horizon(self.cfg.event_horizon());
        for (at, ev) in events {
            q.schedule(at, ev);
        }
        q.restore_accounting(scheduled);
        self.queue = q;
    }

    /// Lower bound of the cycle a restored run resumes at: the earliest
    /// pending event anywhere in the machine (host queue, paused cube
    /// queues, undelivered barrier mailboxes), or the finish time when
    /// nothing is pending.
    fn resume_cycle(&self) -> Cycle {
        let mut lo = self.queue.peek_time();
        if let Some(p) = &self.shard_pause {
            for cp in &p.cubes {
                if let Some(&(at, _)) = cp.events.first() {
                    lo = Some(lo.map_or(at, |t| t.min(at)));
                }
            }
            for ib in &p.inboxes {
                for &(at, _) in ib {
                    lo = Some(lo.map_or(at, |t| t.min(at)));
                }
            }
        }
        lo.unwrap_or(self.finish_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ev: Ev) -> Ev {
        let mut e = Encoder::new();
        encode_ev(&ev, &mut e);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back = decode_ev(&mut d).expect("decode");
        d.finish().expect("fully consumed");
        back
    }

    #[test]
    fn event_codec_roundtrips_inline_variants() {
        for ev in [
            Ev::CoreTick(3),
            Ev::CoreMemDone(1, ReqId(0xdead)),
            Ev::CorePeiDone(2, 77),
            Ev::CorePeiCredit(0),
            Ev::CorePfenceDone(5),
            Ev::CtrlHostRead(ReqId(9), BlockAddr(0x40)),
            Ev::CtrlHostWrite(BlockAddr(0x80)),
            Ev::CtrlMemReadDone(ReqId(11), BlockAddr(0xc0), 1),
            Ev::VaultWake(6),
            Ev::MemPcuVaultDone(4, ReqId(13), true),
            Ev::HostPcuDecision(1, ReqId(21)),
            Ev::HostPcuDispatchedMem(2, ReqId(22)),
            Ev::HostPcuL1Resp(3, ReqId(23)),
        ] {
            let want = format!("{ev:?}");
            let got = format!("{:?}", roundtrip(ev));
            assert_eq!(want, got);
        }
    }

    #[test]
    fn event_codec_roundtrips_boxed_variants() {
        use pei_types::{Addr, PimOpKind};
        let cmd = PimCmd {
            id: ReqId(42),
            target: Addr(0x1000),
            op: PimOpKind::IncU64,
            input: OperandValue::None,
        };
        let ev = Ev::CtrlHostPim(Box::new(cmd));
        assert_eq!(format!("{ev:?}"), format!("{:?}", roundtrip(ev)));
        let ev = Ev::HostPcuMemResult(2, ReqId(7), Box::new(OperandValue::U64(5)));
        assert_eq!(format!("{ev:?}"), format!("{:?}", roundtrip(ev)));
    }

    #[test]
    fn unknown_event_tag_reports_offset() {
        let mut e = Encoder::new();
        e.tag(0xee);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        match decode_ev(&mut d) {
            Err(SnapError::BadTag { offset, found, .. }) => {
                assert_eq!(offset, 0);
                assert_eq!(found, 0xee);
            }
            other => panic!("expected BadTag, got {other:?}"),
        }
    }

    #[test]
    fn header_rejects_bad_magic_and_version() {
        let mut e = Encoder::new();
        e.raw(b"NOTASNAP");
        let bytes = e.into_bytes();
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapError::BadMagic)
        ));
        let mut e = Encoder::new();
        e.raw(MAGIC);
        e.u16(999);
        let bytes = e.into_bytes();
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapError::BadVersion { found: 999 })
        ));
    }

    #[test]
    fn class_fingerprint_merges_policies_within_a_class() {
        let la = MachineConfig::scaled(DispatchPolicy::LocalityAware);
        let lab = MachineConfig::scaled(DispatchPolicy::LocalityAwareBalanced);
        let host = MachineConfig::scaled(DispatchPolicy::HostOnly);
        let pim = MachineConfig::scaled(DispatchPolicy::PimOnly);
        assert_eq!(class_fingerprint(&la), class_fingerprint(&lab));
        assert_eq!(class_fingerprint(&host), class_fingerprint(&pim));
        assert_ne!(class_fingerprint(&la), class_fingerprint(&host));
        // Exact fingerprints stay distinct.
        assert_ne!(config_fingerprint(&la), config_fingerprint(&lab));
        // Non-policy differences break both fingerprints.
        let mut big = la;
        big.cores = la.cores * 2;
        assert_ne!(class_fingerprint(&la), class_fingerprint(&big));
    }
}
