//! Capture glue between the system loop and `pei-trace`.
//!
//! A [`Tracer`] wraps the user-supplied [`TraceSink`] together with
//! every component and kind id the loop will ever emit, interned once
//! at attach time — the dispatch hot path only copies `u16` ids and
//! never touches a string (DESIGN.md §8). All fields are crate-private:
//! the public surface is `System::attach_tracer` / `detach_tracer`.

use crate::config::MachineConfig;
use pei_trace::{CompId, KindId, TraceSink};

/// Every event-kind id the system loop emits, pre-interned.
pub(crate) struct Kinds {
    pub(crate) core_tick: KindId,
    pub(crate) core_mem_done: KindId,
    pub(crate) core_pei_done: KindId,
    pub(crate) core_pei_credit: KindId,
    pub(crate) core_pfence_done: KindId,
    pub(crate) priv_req: KindId,
    pub(crate) priv_resp: KindId,
    pub(crate) priv_recall: KindId,
    pub(crate) l3_req: KindId,
    pub(crate) l3_ack: KindId,
    pub(crate) l3_flush: KindId,
    pub(crate) l3_fetch_done: KindId,
    pub(crate) ctrl_read: KindId,
    pub(crate) ctrl_write: KindId,
    pub(crate) ctrl_pim: KindId,
    pub(crate) ctrl_read_done: KindId,
    pub(crate) ctrl_pim_done: KindId,
    pub(crate) vault_access: KindId,
    pub(crate) vault_wake: KindId,
    pub(crate) mpcu_cmd: KindId,
    pub(crate) mpcu_vault_done: KindId,
    pub(crate) pmu_request: KindId,
    pub(crate) pmu_host_release: KindId,
    pub(crate) pmu_flush_done: KindId,
    pub(crate) pmu_mem_result: KindId,
    pub(crate) pmu_pfence: KindId,
    pub(crate) hpcu_decide_host: KindId,
    pub(crate) hpcu_dispatched_mem: KindId,
    pub(crate) hpcu_l1_resp: KindId,
    pub(crate) hpcu_mem_result: KindId,
    pub(crate) xbar_msg: KindId,
    pub(crate) phase_start: KindId,
    pub(crate) group_done: KindId,
}

/// The attached sink plus its pre-interned id tables.
pub(crate) struct Tracer {
    pub(crate) sink: Box<dyn TraceSink>,
    pub(crate) core: Vec<CompId>,
    pub(crate) cache: Vec<CompId>,
    pub(crate) l3: Vec<CompId>,
    pub(crate) vault: Vec<CompId>,
    pub(crate) mpcu: Vec<CompId>,
    pub(crate) hpcu: Vec<CompId>,
    pub(crate) ctrl: CompId,
    pub(crate) pmu: CompId,
    pub(crate) xbar: CompId,
    pub(crate) system: CompId,
    pub(crate) k: Kinds,
}

fn intern_indexed(sink: &mut dyn TraceSink, prefix: &str, n: usize) -> Vec<CompId> {
    (0..n).map(|i| sink.comp(&format!("{prefix}{i}"))).collect()
}

impl Tracer {
    /// Interns every name the loop can emit and records the machine
    /// shape in the sink's metadata.
    pub(crate) fn new(mut sink: Box<dyn TraceSink>, cfg: &MachineConfig) -> Tracer {
        let s = sink.as_mut();
        s.meta("machine.cores", &cfg.cores.to_string());
        s.meta("machine.l3_banks", &cfg.mem.l3_banks.to_string());
        s.meta("machine.vaults", &cfg.total_vaults().to_string());
        s.meta("machine.policy", &format!("{:?}", cfg.policy));
        let core = intern_indexed(s, "core", cfg.cores);
        let cache = intern_indexed(s, "cache", cfg.cores);
        let l3 = intern_indexed(s, "l3bank", cfg.mem.l3_banks);
        let vault = intern_indexed(s, "vault", cfg.total_vaults());
        let mpcu = intern_indexed(s, "mpcu", cfg.total_vaults());
        let hpcu = intern_indexed(s, "hpcu", cfg.cores);
        let ctrl = s.comp("ctrl");
        let pmu = s.comp("pmu");
        let xbar = s.comp("xbar");
        let system = s.comp("system");
        let k = Kinds {
            core_tick: s.kind("core.tick"),
            core_mem_done: s.kind("core.mem_done"),
            core_pei_done: s.kind("core.pei_done"),
            core_pei_credit: s.kind("core.pei_credit"),
            core_pfence_done: s.kind("core.pfence_done"),
            priv_req: s.kind("priv.req"),
            priv_resp: s.kind("priv.resp"),
            priv_recall: s.kind("priv.recall"),
            l3_req: s.kind("l3.req"),
            l3_ack: s.kind("l3.ack"),
            l3_flush: s.kind("l3.flush"),
            l3_fetch_done: s.kind("l3.fetch_done"),
            ctrl_read: s.kind("ctrl.read"),
            ctrl_write: s.kind("ctrl.write"),
            ctrl_pim: s.kind("ctrl.pim"),
            ctrl_read_done: s.kind("ctrl.read_done"),
            ctrl_pim_done: s.kind("ctrl.pim_done"),
            vault_access: s.kind("vault.access"),
            vault_wake: s.kind("vault.wake"),
            mpcu_cmd: s.kind("mpcu.cmd"),
            mpcu_vault_done: s.kind("mpcu.vault_done"),
            pmu_request: s.kind("pmu.request"),
            pmu_host_release: s.kind("pmu.host_release"),
            pmu_flush_done: s.kind("pmu.flush_done"),
            pmu_mem_result: s.kind("pmu.mem_result"),
            pmu_pfence: s.kind("pmu.pfence"),
            hpcu_decide_host: s.kind("hpcu.decide_host"),
            hpcu_dispatched_mem: s.kind("hpcu.dispatched_mem"),
            hpcu_l1_resp: s.kind("hpcu.l1_resp"),
            hpcu_mem_result: s.kind("hpcu.mem_result"),
            xbar_msg: s.kind("xbar.msg"),
            phase_start: s.kind("phase.start"),
            group_done: s.kind("group.done"),
        };
        Tracer {
            sink,
            core,
            cache,
            l3,
            vault,
            mpcu,
            hpcu,
            ctrl,
            pmu,
            xbar,
            system,
            k,
        }
    }
}
