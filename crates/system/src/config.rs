//! Whole-machine configuration presets.

use pei_core::{DispatchPolicy, PcuConfig, PmuConfig};
use pei_cpu::{CoreConfig, PageMap, TlbConfig};
use pei_hmc::HmcConfig;
use pei_mem::MemHierarchyConfig;
use pei_types::Cycle;

/// Configuration of the complete simulated machine.
///
/// Two presets exist: [`MachineConfig::paper`] reproduces Table 2 of the
/// paper (16 cores, 16 MB L3, 8 HMCs), and [`MachineConfig::scaled`] is a
/// proportionally shrunk machine (4 cores, 1 MB L3, 1 HMC) whose
/// cache-to-workload capacity ratios match the paper, so the experiment
/// suite reproduces the paper's *shape* in minutes instead of days
/// (DESIGN.md §2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Number of host cores (each with a private cache and host PCU).
    pub cores: usize,
    /// Core microarchitecture.
    pub core: CoreConfig,
    /// Cache hierarchy and crossbar.
    pub mem: MemHierarchyConfig,
    /// Main memory.
    pub hmc: HmcConfig,
    /// PCU parameters (operand buffer, execution width).
    pub pcu: PcuConfig,
    /// PEI dispatch policy.
    pub policy: DispatchPolicy,
    /// Idealize the PIM directory (§7.6 / Ideal-Host).
    pub ideal_dir: bool,
    /// Idealize the locality monitor (§7.6).
    pub ideal_mon: bool,
    /// PIM-directory entries.
    pub dir_entries: usize,
    /// Locality-monitor partial-tag bits.
    pub mon_tag_bits: u32,
    /// Honor the locality monitor's first-hit ignore bit (ablation knob).
    pub mon_ignore_bit: bool,
    /// Latency from the PMU/L3 complex to the HMC controller, host cycles.
    pub ctrl_latency: Cycle,
    /// Per-core TLB (§4.4). `None` models ideal translation (the default:
    /// the paper's results are data-side and its §4.4 point is that PEIs
    /// add no TLB pressure, checked by the test suite when enabled).
    pub tlb: Option<TlbConfig>,
    /// Virtual→physical page mapping.
    pub page_map: PageMap,
}

impl MachineConfig {
    /// The paper's Table 2 machine with the given dispatch policy.
    pub fn paper(policy: DispatchPolicy) -> Self {
        MachineConfig {
            cores: 16,
            core: CoreConfig::paper(),
            mem: MemHierarchyConfig::paper(),
            hmc: HmcConfig::paper(),
            pcu: PcuConfig::paper(),
            policy,
            ideal_dir: false,
            ideal_mon: false,
            dir_entries: 2048,
            mon_tag_bits: 10,
            mon_ignore_bit: true,
            ctrl_latency: 4,
            tlb: None,
            page_map: PageMap::Identity,
        }
    }

    /// The scaled-down default experiment machine (4 cores, 1 MB L3,
    /// 1 HMC × 16 vaults) with the given dispatch policy.
    pub fn scaled(policy: DispatchPolicy) -> Self {
        MachineConfig {
            cores: 4,
            mem: MemHierarchyConfig::scaled(),
            hmc: HmcConfig::scaled(),
            ..Self::paper(policy)
        }
    }

    /// The Ideal-Host reference configuration of §7 at this machine's
    /// scale: Host-Only execution with an infinite, zero-latency PIM
    /// directory.
    pub fn ideal_host(self) -> Self {
        MachineConfig {
            policy: DispatchPolicy::HostOnly,
            ideal_dir: true,
            ..self
        }
    }

    /// Builds the PMU configuration implied by this machine.
    pub fn pmu_config(&self) -> PmuConfig {
        let mut cfg = PmuConfig::paper(self.policy, self.mem.l3.sets(), self.mem.l3.ways);
        cfg.dir_entries = self.dir_entries;
        cfg.mon_tag_bits = self.mon_tag_bits;
        cfg.mon_ignore_bit = self.mon_ignore_bit;
        cfg.ideal_dir = self.ideal_dir;
        cfg.ideal_mon = self.ideal_mon;
        if self.ideal_dir {
            cfg.dir_latency = 0;
        }
        cfg
    }

    /// Per-core PEI-credit override: the core model's in-flight PEI bound
    /// must match the PCU operand-buffer size.
    pub fn core_config(&self) -> CoreConfig {
        CoreConfig {
            max_pei_inflight: self.pcu.operand_entries,
            ..self.core
        }
    }

    /// Total vault count.
    pub fn total_vaults(&self) -> usize {
        self.hmc.total_vaults()
    }

    /// Dominant event-scheduling horizon in host cycles: how far ahead
    /// of the dispatched cycle the bulk of events land. This sizes the
    /// calendar queue's near-future window (`EventQueue::with_horizon`);
    /// it is a performance hint only — events past it (deep channel
    /// backlogs under congestion) correctly take the overflow path.
    ///
    /// The bound is one full DRAM service worst case — a refresh
    /// (`t_rfc`) stacked on an activate/read/precharge sequence — or
    /// the full off-chip chain traversal, whichever is larger, plus the
    /// controller pipeline.
    pub fn event_horizon(&self) -> Cycle {
        let t = &self.hmc.timing;
        let dram_service = t.t_rcd + t.t_cl + t.t_rp + t.t_bl;
        let refresh = self.hmc.refresh.map_or(0, |r| r.t_rfc);
        let chain = self.hmc.link_latency + self.hmc.hop_latency * self.hmc.cubes as Cycle;
        (dram_service + refresh).max(chain) + self.ctrl_latency
    }

    /// Epoch window length `L` of the sharded engine, in host cycles
    /// (DESIGN.md §10).
    ///
    /// The sharded driver runs a *skewed* pipeline: in super-step `s`
    /// the host shard processes window `W_s = [sL, (s+1)L)` while every
    /// cube shard concurrently processes `W_{s+1}`. That skew is safe
    /// because the two inter-shard edges have asymmetric lookahead:
    ///
    /// - **Cube→host** completions carry zero lookahead (a memory-side
    ///   PCU can finish a command in the cycle it observes the vault
    ///   response), but a message timestamped inside `W_{s+1}` reaches
    ///   the host *before* the host starts `W_{s+1}` in step `s+1` —
    ///   the skew itself provides the slack.
    /// - **Host→cube** requests always traverse the serialized off-chip
    ///   link: the controller delivers them no earlier than
    ///   `now + link_latency`. With `L = link_latency / 2`, a request
    ///   issued in `W_s` lands at or after `(s+2)L`, which the cube
    ///   processes in step `s+1` — after the barrier delivery.
    ///
    /// So `link_latency` is the lookahead that bounds the epoch, and
    /// halving it is exactly what buys the cubes their one-window head
    /// start.
    ///
    /// # Panics
    ///
    /// Panics if `link_latency < 2` (no lookahead to shard on).
    pub fn shard_epoch(&self) -> Cycle {
        let epoch = self.hmc.link_latency / 2;
        assert!(
            epoch >= 1,
            "sharded execution needs hmc.link_latency >= 2 for lookahead"
        );
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_table2() {
        let c = MachineConfig::paper(DispatchPolicy::LocalityAware);
        assert_eq!(c.cores, 16);
        assert_eq!(c.core.issue_width, 4);
        assert_eq!(c.mem.l3.capacity, 16 * 1024 * 1024);
        assert_eq!(c.total_vaults(), 128);
        assert_eq!(c.dir_entries, 2048);
        let pmu = c.pmu_config();
        assert_eq!(pmu.mon_sets, 16384);
        assert_eq!(pmu.mon_ways, 16);
    }

    #[test]
    fn ideal_host_is_host_only_with_free_directory() {
        let c = MachineConfig::scaled(DispatchPolicy::PimOnly).ideal_host();
        assert_eq!(c.policy, DispatchPolicy::HostOnly);
        let pmu = c.pmu_config();
        assert!(pmu.ideal_dir);
        assert_eq!(pmu.dir_latency, 0);
    }

    #[test]
    fn core_config_follows_operand_buffer() {
        let mut c = MachineConfig::scaled(DispatchPolicy::LocalityAware);
        c.pcu.operand_entries = 16;
        assert_eq!(c.core_config().max_pei_inflight, 16);
    }
}
