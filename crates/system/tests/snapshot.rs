//! End-to-end tests of machine snapshot/restore (DESIGN.md §11): a
//! restored run must be byte-identical to an uninterrupted one — for
//! the sequential and the sharded engine, with and without checked
//! mode — capture must be non-perturbing, warm-state forking must be
//! sound across dispatch policies within a monitor class, and malformed
//! snapshot bytes must produce offset-reporting errors, never panics.

use pei_core::DispatchPolicy;
use pei_cpu::trace::{Op, PhasedTrace, VecPhases};
use pei_mem::BackingStore;
use pei_system::{CheckConfig, MachineConfig, PauseAt, RunResult, Snapshot, System};
use pei_trace::{Record, Recorder, Trace, TraceSink};
use pei_types::snap::SnapError;
use pei_types::{Addr, OperandValue, PimOpKind};

const LIMIT: u64 = 50_000_000;

/// A mixed multi-phase workload (loads, stores, PEIs on several cores)
/// so a mid-run cut lands with traffic in flight at every layer.
fn workload(store: &mut BackingStore, threads: usize, blocks: usize) -> Box<dyn PhasedTrace> {
    let addrs: Vec<Addr> = (0..blocks).map(|_| store.alloc_block()).collect();
    let mut phase1 = vec![Vec::new(); threads];
    let mut phase2 = vec![Vec::new(); threads];
    for (i, &a) in addrs.iter().enumerate() {
        let t = i % threads;
        phase1[t].push(Op::load(a));
        phase1[t].push(Op::pei(PimOpKind::IncU64, a, OperandValue::None));
        phase2[t].push(Op::store(a));
        if i % 3 == 0 {
            phase2[t].push(Op::pei(PimOpKind::MinU64, a, OperandValue::U64(1)));
        }
    }
    Box::new(VecPhases::new(threads, vec![phase1, phase2]))
}

/// Builds the standard machine for `cfg` — every call with the same
/// config constructs an identical machine over an identical store.
fn build(cfg: MachineConfig, blocks: usize) -> System {
    let mut store = BackingStore::new();
    let trace = workload(&mut store, cfg.cores, blocks);
    let mut sys = System::new(cfg, store);
    sys.add_workload(trace, (0..cfg.cores).collect());
    sys
}

/// Everything a run can observably produce, as one comparable string.
fn fingerprint(r: &RunResult) -> String {
    format!(
        "{} {} {} {:?} {} {:?}\n{:?}",
        r.cycles, r.instructions, r.peis, r.offchip_flits, r.dram_accesses, r.outcome, r.stats
    )
}

fn two_cube_cfg() -> MachineConfig {
    let mut cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
    cfg.hmc.cubes = 2;
    cfg
}

#[test]
fn sequential_snapshot_restore_is_byte_identical() {
    let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
    let reference = build(cfg, 48).run(LIMIT);
    assert!(reference.ok());
    let cut = reference.cycles / 2;
    assert!(cut > 0);

    // Pause a second, identical machine mid-run and snapshot it.
    let mut paused = build(cfg, 48);
    let at = paused
        .run_paused(LIMIT, Some(PauseAt::Cycle(cut)))
        .expect_paused();
    assert_eq!(at, cut);
    let snap = paused.snapshot().expect("snapshot a paused machine");
    assert!(!snap.is_sharded());
    assert!(snap.cycle() >= cut, "resume point is at or after the cut");

    // Capture is non-perturbing: the paused machine, continued, matches
    // the uninterrupted reference.
    let continued = paused.run(LIMIT);
    assert_eq!(fingerprint(&continued), fingerprint(&reference));

    // And a fresh machine restored from the snapshot matches too.
    let mut restored = build(cfg, 48);
    restored
        .restore(&snap)
        .expect("restore onto a twin machine");
    let resumed = restored.run(LIMIT);
    assert_eq!(fingerprint(&resumed), fingerprint(&reference));
}

#[test]
fn snapshot_roundtrips_to_identical_bytes() {
    // restore(snapshot(M)) followed by snapshot() must reproduce the
    // exact bytes: the format captures all state it restores.
    let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAwareBalanced);
    let mut m = build(cfg, 32);
    m.run_paused(LIMIT, Some(PauseAt::Cycle(1_500)))
        .expect_paused();
    let snap = m.snapshot().expect("snapshot");
    let mut twin = build(cfg, 32);
    twin.restore(&snap).expect("restore");
    let again = twin.snapshot().expect("re-snapshot");
    assert_eq!(snap.as_bytes(), again.as_bytes());
}

#[test]
fn snapshot_metadata_roundtrips() {
    let cfg = MachineConfig::scaled(DispatchPolicy::HostOnly);
    let mut m = build(cfg, 8);
    let meta = [
        ("workload".to_string(), "mixed".to_string()),
        ("seed".to_string(), "42".to_string()),
    ];
    let snap = m.snapshot_with_meta(&meta).expect("snapshot");
    let parsed = Snapshot::from_bytes(snap.as_bytes()).expect("parse");
    assert_eq!(parsed.meta_get("workload"), Some("mixed"));
    assert_eq!(parsed.meta_get("seed"), Some("42"));
    assert_eq!(parsed.meta_get("missing"), None);
    assert_eq!(parsed.exact_fingerprint(), snap.exact_fingerprint());
}

#[test]
fn warm_fork_across_policies_matches_cold_runs() {
    // Warm one locality-aware machine up to (but not including) its
    // first PMU dispatch, then fork the snapshot into both policies of
    // the monitor class. Each forked run must equal its cold twin.
    let warm_cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
    let mut warm = build(warm_cfg, 48);
    let at = warm
        .run_paused(LIMIT, Some(PauseAt::FirstPei))
        .expect_paused();
    assert!(at > 0);
    let snap = warm.snapshot().expect("snapshot the warmed machine");

    for policy in [
        DispatchPolicy::LocalityAware,
        DispatchPolicy::LocalityAwareBalanced,
    ] {
        let cfg = MachineConfig::scaled(policy);
        let cold = build(cfg, 48).run(LIMIT);
        assert!(cold.ok());
        let mut forked = build(cfg, 48);
        forked.restore(&snap).expect("same monitor class restores");
        let hot = forked.run(LIMIT);
        assert_eq!(
            fingerprint(&hot),
            fingerprint(&cold),
            "warm-forked {policy:?} run must equal its cold run"
        );
    }
}

#[test]
fn restore_rejects_a_different_monitor_class() {
    let mut la = build(MachineConfig::scaled(DispatchPolicy::LocalityAware), 8);
    let snap = la.snapshot().expect("snapshot");
    let mut host = build(MachineConfig::scaled(DispatchPolicy::HostOnly), 8);
    match host.restore(&snap) {
        Err(SnapError::Mismatch { what }) => {
            assert!(what.contains("monitor class"), "unexpected message: {what}")
        }
        other => panic!("expected a class mismatch, got {other:?}"),
    }
}

#[test]
fn restore_rejects_a_machine_that_already_ran() {
    let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
    let mut m = build(cfg, 8);
    let snap = m.snapshot().expect("snapshot");
    let mut used = build(cfg, 8);
    used.run(LIMIT);
    assert!(matches!(
        used.restore(&snap),
        Err(SnapError::Mismatch { .. })
    ));
}

#[test]
fn sharded_pause_resume_is_byte_identical_across_thread_counts() {
    let cfg = two_cube_cfg();
    let reference = build(cfg, 64).run_sharded(LIMIT, 1);
    assert!(reference.ok());
    let cut = reference.cycles / 2;

    // Pause under 3 threads, snapshot, resume the original under 1.
    let mut paused = build(cfg, 64);
    let at = paused
        .run_sharded_paused(LIMIT, 3, Some(cut))
        .expect_paused();
    assert!(at >= cut, "the pause lands at the next epoch barrier");
    let snap = paused.snapshot().expect("snapshot a sharded pause");
    assert!(snap.is_sharded());
    let continued = paused.run_sharded(LIMIT, 1);
    assert_eq!(fingerprint(&continued), fingerprint(&reference));

    // Restore into a twin and resume under yet another thread count.
    let mut restored = build(cfg, 64);
    restored.restore(&snap).expect("restore sharded pause");
    let resumed = restored.run_sharded(LIMIT, 2);
    assert_eq!(fingerprint(&resumed), fingerprint(&reference));
}

#[test]
fn checked_runs_snapshot_and_restore_identically() {
    let check = CheckConfig {
        interval: 512,
        ..CheckConfig::default()
    };
    // Sequential engine.
    let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
    let mut ref_sys = build(cfg, 48);
    ref_sys.enable_checks(check);
    let reference = ref_sys.run(LIMIT);
    assert!(reference.ok());

    let mut paused = build(cfg, 48);
    paused.enable_checks(check);
    let cut = reference.cycles / 2;
    paused
        .run_paused(LIMIT, Some(PauseAt::Cycle(cut)))
        .expect_paused();
    let snap = paused.snapshot().expect("snapshot under checked mode");
    let mut restored = build(cfg, 48);
    restored.enable_checks(check);
    restored.restore(&snap).expect("restore under checked mode");
    assert_eq!(fingerprint(&restored.run(LIMIT)), fingerprint(&reference));

    // Sharded engine.
    let cfg = two_cube_cfg();
    let mut ref_sys = build(cfg, 64);
    ref_sys.enable_checks(check);
    let reference = ref_sys.run_sharded(LIMIT, 1);
    assert!(reference.ok());

    let mut paused = build(cfg, 64);
    paused.enable_checks(check);
    let cut = reference.cycles / 2;
    paused
        .run_sharded_paused(LIMIT, 2, Some(cut))
        .expect_paused();
    let snap = paused.snapshot().expect("snapshot sharded checked run");
    let mut restored = build(cfg, 64);
    restored.enable_checks(check);
    restored
        .restore(&snap)
        .expect("restore sharded checked run");
    assert_eq!(
        fingerprint(&restored.run_sharded(LIMIT, 1)),
        fingerprint(&reference)
    );
}

#[test]
fn restore_rejects_a_checked_mode_mismatch() {
    let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
    let mut m = build(cfg, 8);
    m.enable_checks(CheckConfig::default());
    let snap = m.snapshot().expect("snapshot");
    let mut unchecked = build(cfg, 8);
    match unchecked.restore(&snap) {
        Err(SnapError::Mismatch { what }) => {
            assert!(what.contains("checked mode"), "unexpected message: {what}")
        }
        other => panic!("expected a checked-mode mismatch, got {other:?}"),
    }
}

fn records_of(sink: Box<dyn TraceSink>) -> Vec<Record> {
    let bytes = sink.to_petr().expect("recorder retains capture");
    Trace::from_bytes(&bytes)
        .expect("own encoding parses")
        .records
}

#[test]
fn trace_parts_concatenate_to_the_uninterrupted_trace() {
    let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
    let mut ref_sys = build(cfg, 32);
    ref_sys.attach_tracer(Box::new(Recorder::new()));
    let reference = ref_sys.run(LIMIT);
    let full = records_of(ref_sys.detach_tracer().expect("tracer"));
    assert!(!full.is_empty());

    // Part 1: trace up to the pause. Part 2: trace the restored remainder.
    let mut paused = build(cfg, 32);
    paused.attach_tracer(Box::new(Recorder::new()));
    let cut = reference.cycles / 2;
    paused
        .run_paused(LIMIT, Some(PauseAt::Cycle(cut)))
        .expect_paused();
    let snap = paused.snapshot().expect("snapshot");
    let part1 = records_of(paused.detach_tracer().expect("tracer"));

    let mut restored = build(cfg, 32);
    restored.restore(&snap).expect("restore");
    restored.attach_tracer(Box::new(Recorder::new()));
    restored.run(LIMIT);
    let part2 = records_of(restored.detach_tracer().expect("tracer"));

    // Both machines intern identical component/kind tables (same shape),
    // so raw records concatenate meaningfully.
    let stitched: Vec<Record> = part1.iter().chain(part2.iter()).cloned().collect();
    assert_eq!(stitched.len(), full.len(), "record counts differ");
    for (i, (a, b)) in stitched.iter().zip(full.iter()).enumerate() {
        assert_eq!(a, b, "record {i} diverges");
    }
}

#[test]
fn truncated_and_corrupt_snapshots_error_instead_of_panicking() {
    let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
    let mut m = build(cfg, 16);
    m.run_paused(LIMIT, Some(PauseAt::Cycle(1_000)))
        .expect_paused();
    let snap = m.snapshot().expect("snapshot");
    let bytes = snap.as_bytes().to_vec();

    // Bad magic is rejected at the header.
    let mut bad = bytes.clone();
    bad[0] ^= 0xff;
    assert!(matches!(
        Snapshot::from_bytes(&bad),
        Err(SnapError::BadMagic)
    ));

    // Every truncation point either fails header parsing or fails
    // restore with an offset-reporting error — never a panic, and the
    // reported offset never exceeds the truncated length.
    for len in (0..bytes.len()).step_by(97).chain([bytes.len() - 1]) {
        let cut = &bytes[..len];
        match Snapshot::from_bytes(cut) {
            Err(SnapError::Truncated { offset }) => assert!(offset <= len),
            Err(_) => {}
            Ok(parsed) => {
                let mut target = build(cfg, 16);
                match target.restore(&parsed) {
                    Err(SnapError::Truncated { offset }) => assert!(offset <= len),
                    Err(_) => {}
                    Ok(()) => panic!("restore accepted a truncated snapshot ({len} bytes)"),
                }
            }
        }
    }
}

#[test]
fn cancellable_run_is_byte_identical_to_unsliced() {
    // Slicing the loop into PauseAt::Cycle windows changes where the
    // driver pauses, never the event order inside a window — the
    // foundation of pei-serve's byte-identity contract.
    let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
    let reference = build(cfg, 48).run(LIMIT);
    assert!(reference.ok());

    let never = std::sync::atomic::AtomicBool::new(false);
    let mut beats = Vec::new();
    let sliced = build(cfg, 48)
        .run_cancellable(LIMIT, 500, &never, |at| beats.push(at))
        .expect("flag never set");
    assert_eq!(fingerprint(&sliced), fingerprint(&reference));
    assert!(
        beats.len() as u64 >= reference.cycles / 500 - 1,
        "expected a heartbeat per slice, got {} over {} cycles",
        beats.len(),
        reference.cycles
    );
    assert!(beats.windows(2).all(|w| w[0] < w[1]), "heartbeats advance");
}

#[test]
fn cancelled_run_stops_and_leaves_the_machine_resumable() {
    let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAwareBalanced);
    let reference = build(cfg, 48).run(LIMIT);
    assert!(reference.ok());

    // A pre-set flag stops the run before any work.
    let set = std::sync::atomic::AtomicBool::new(true);
    let mut m = build(cfg, 48);
    assert!(m.run_cancellable(LIMIT, 500, &set, |_| ()).is_none());

    // A flag raised mid-run (from the progress hook, as the daemon's
    // cancel request effectively does) stops at the next slice edge —
    // and the abandoned machine is merely paused, not corrupted:
    // resuming it completes byte-identically.
    let cancel = std::sync::atomic::AtomicBool::new(false);
    let mut m = build(cfg, 48);
    let out = m.run_cancellable(LIMIT, 500, &cancel, |at| {
        if at >= 2_000 {
            cancel.store(true, std::sync::atomic::Ordering::Relaxed);
        }
    });
    assert!(out.is_none(), "cancel observed at a slice boundary");
    let resumed = m.run(LIMIT);
    assert_eq!(fingerprint(&resumed), fingerprint(&reference));
}
