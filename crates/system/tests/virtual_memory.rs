//! Virtual-memory integration tests (§4.4): PEIs use virtual addresses,
//! translation happens once per PEI at the host TLB, and results are
//! unchanged under an arbitrary (bijective) page mapping.

use pei_core::DispatchPolicy;
use pei_cpu::trace::{Op, VecPhases};
use pei_cpu::{PageMap, TlbConfig};
use pei_mem::BackingStore;
use pei_system::{MachineConfig, System};
use pei_types::{Addr, OperandValue, PimOpKind};

const LIMIT: u64 = 100_000_000;

fn inc(target: Addr) -> Op {
    Op::pei(PimOpKind::IncU64, target, OperandValue::None)
}

fn vm_config(policy: DispatchPolicy, seed: u64) -> MachineConfig {
    MachineConfig {
        tlb: Some(TlbConfig::typical()),
        page_map: PageMap::Shuffled { seed },
        ..MachineConfig::scaled(policy)
    }
}

#[test]
fn results_identical_under_shuffled_page_map() {
    // The same workload must produce identical functional results with
    // identity and shuffled mappings (reads through the virtual view).
    let build = || {
        let mut store = BackingStore::new();
        let targets: Vec<Addr> = (0..64).map(|_| store.alloc_block()).collect();
        let ops: Vec<Op> = targets
            .iter()
            .flat_map(|&t| vec![inc(t), inc(t), inc(t)])
            .chain([Op::Pfence])
            .collect();
        (store, targets, ops)
    };

    let (store, targets, ops) = build();
    let mut plain = System::new(MachineConfig::scaled(DispatchPolicy::LocalityAware), store);
    plain.add_workload(Box::new(VecPhases::single(ops)), vec![0]);
    plain.run(LIMIT);

    let (store, _, ops) = build();
    let map = PageMap::Shuffled { seed: 99 };
    let mut shuffled = System::new(vm_config(DispatchPolicy::LocalityAware, 99), store);
    shuffled.add_workload(Box::new(VecPhases::single(ops)), vec![0]);
    shuffled.run(LIMIT);

    for &t in &targets {
        assert_eq!(plain.store().read_u64(t), 3);
        // The shuffled machine stored the value at the *physical* frame.
        assert_eq!(shuffled.store().read_u64(map.translate(t)), 3);
    }
}

#[test]
fn one_tlb_access_per_pei_and_per_memory_op() {
    // §4.4: "the single-cache-block restriction guarantees that only one
    // TLB access is needed for each PEI just as a normal memory access."
    let mut store = BackingStore::new();
    let targets: Vec<Addr> = (0..100).map(|_| store.alloc_block()).collect();
    let mut ops: Vec<Op> = Vec::new();
    for &t in &targets {
        ops.push(Op::load(t));
        ops.push(inc(t));
    }
    ops.push(Op::Pfence);
    let n_mem = targets.len() as u64;
    let n_pei = targets.len() as u64;

    let mut sys = System::new(vm_config(DispatchPolicy::LocalityAware, 3), store);
    sys.add_workload(Box::new(VecPhases::single(ops)), vec![0]);
    let r = sys.run(LIMIT);

    let hits = r.stats.expect("core.tlb.hits") as u64;
    let misses = r.stats.expect("core.tlb.misses") as u64;
    // Every op performs exactly one *successful* translation; each miss
    // costs one extra (filling) access. So hits == ops, exactly.
    assert_eq!(hits, n_mem + n_pei, "one successful translation per op");
    assert!(misses > 0, "cold pages must walk");
    assert!(misses <= n_mem + n_pei);
}

#[test]
fn tlb_misses_cost_cycles() {
    // Touch many distinct pages (TLB capacity 64): with a tiny TLB the
    // run must be slower than with a huge one.
    let build = || {
        let mut store = BackingStore::new();
        // Two rounds over 512 distinct pages: a big TLB hits the whole
        // second round, a tiny one thrashes.
        let ops: Vec<Op> = (0..1024u64)
            .map(|i| {
                store.alloc(4096, 4096); // one block per page
                Op::load(Addr(0x1000_0000 + (i % 512) * 4096))
            })
            .collect();
        (store, ops)
    };
    let run = |entries: usize| {
        let (store, ops) = build();
        let mut cfg = MachineConfig::scaled(DispatchPolicy::HostOnly);
        cfg.tlb = Some(TlbConfig {
            entries,
            walk_latency: 200,
        });
        cfg.page_map = PageMap::Identity;
        let mut sys = System::new(cfg, store);
        sys.add_workload(Box::new(VecPhases::single(ops)), vec![0]);
        sys.run(LIMIT).cycles
    };
    let small = run(4);
    let big = run(4096);
    assert!(
        small > big + 50_000,
        "walks must show up in runtime: small-TLB {small} vs big-TLB {big}"
    );
}

#[test]
fn page_reuse_hits_after_first_walk() {
    // Sixteen accesses to one page: 1 miss, 15 hits.
    let mut store = BackingStore::new();
    let base = store.alloc(4096, 4096);
    let ops: Vec<Op> = (0..16).map(|i| Op::load(base.offset(i * 64))).collect();
    let mut sys = System::new(vm_config(DispatchPolicy::HostOnly, 1), store);
    sys.add_workload(Box::new(VecPhases::single(ops)), vec![0]);
    let r = sys.run(LIMIT);
    assert_eq!(r.stats.expect("core.tlb.misses"), 1.0);
    assert_eq!(r.stats.expect("core.tlb.hits"), 16.0);
}
