//! System-level property tests: end-to-end atomicity and determinism of
//! the full machine under randomized PEI workloads, policies, and
//! machine parameters.

use pei_core::DispatchPolicy;
use pei_cpu::trace::{Op, VecPhases};
use pei_mem::BackingStore;
use pei_system::{MachineConfig, System};
use pei_types::{Addr, OperandValue, PimOpKind};
use proptest::prelude::*;

fn policy_strategy() -> impl Strategy<Value = DispatchPolicy> {
    prop_oneof![
        Just(DispatchPolicy::HostOnly),
        Just(DispatchPolicy::PimOnly),
        Just(DispatchPolicy::LocalityAware),
        Just(DispatchPolicy::LocalityAwareBalanced),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline end-to-end invariant: for any interleaving of
    /// increments and mins from all cores to a small set of contended
    /// blocks, under any dispatch policy, the final memory state equals
    /// the sequential reduction — lost updates are impossible. Each block
    /// carries a single operation type (increment or min), because mixing
    /// non-commuting operations on one word is order-dependent even with
    /// perfect atomicity.
    #[test]
    fn no_lost_updates_under_any_policy(
        ops in proptest::collection::vec((0usize..8, 1u64..1_000_000), 20..150),
        policy in policy_strategy(),
    ) {
        let mut store = BackingStore::new();
        let blocks: Vec<Addr> = (0..8).map(|_| store.alloc_block()).collect();
        for &b in &blocks {
            store.write_u64(b, u64::MAX / 2); // min candidates stay below
        }
        // Blocks 0..4 are increment-only; 4..8 are min-only.
        let kind_of = |b: usize| u8::from(b >= 4);
        // Expected final state from a sequential reduction.
        let mut expect: Vec<u64> = vec![u64::MAX / 2; 8];
        for &(b, val) in &ops {
            match kind_of(b) {
                0 => expect[b] = expect[b].wrapping_add(1),
                _ => expect[b] = expect[b].min(val),
            }
        }

        let cfg = MachineConfig::scaled(policy);
        let threads = cfg.cores;
        // Deal the ops round-robin to the cores.
        let mut phase: Vec<Vec<Op>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, &(b, val)) in ops.iter().enumerate() {
            let op = match kind_of(b) {
                0 => Op::pei(PimOpKind::IncU64, blocks[b], OperandValue::None),
                _ => Op::pei(PimOpKind::MinU64, blocks[b], OperandValue::U64(val)),
            };
            phase[i % threads].push(op);
        }
        for t in phase.iter_mut() {
            t.push(Op::Pfence);
        }
        let mut sys = System::new(cfg, store);
        sys.add_workload(
            Box::new(VecPhases::new(threads, vec![phase])),
            (0..threads).collect(),
        );
        let r = sys.run(500_000_000);
        prop_assert_eq!(r.peis, ops.len() as u64);
        for (i, &b) in blocks.iter().enumerate() {
            prop_assert_eq!(
                sys.store().read_u64(b),
                expect[i],
                "block {} diverged under {}",
                i,
                policy
            );
        }
    }

    /// Cycle counts are deterministic and invariant to rebuilding the
    /// system, for any policy and operand-buffer size.
    #[test]
    fn timing_deterministic(
        policy in policy_strategy(),
        entries in 1usize..8,
        n in 10usize..60,
    ) {
        let run = || {
            let mut store = BackingStore::new();
            let blocks: Vec<Addr> = (0..16).map(|_| store.alloc_block()).collect();
            let mut cfg = MachineConfig::scaled(policy);
            cfg.pcu.operand_entries = entries;
            let ops: Vec<Op> = (0..n)
                .map(|i| Op::pei(PimOpKind::IncU64, blocks[i % 16], OperandValue::None))
                .chain([Op::Pfence])
                .collect();
            let mut sys = System::new(cfg, store);
            sys.add_workload(Box::new(VecPhases::single(ops)), vec![0]);
            sys.run(500_000_000).cycles
        };
        prop_assert_eq!(run(), run());
    }
}
