//! System-level property tests: end-to-end atomicity and determinism of
//! the full machine under randomized PEI workloads, policies, and
//! machine parameters.

use pei_core::DispatchPolicy;
use pei_cpu::trace::{Op, VecPhases};
use pei_mem::BackingStore;
use pei_system::{MachineConfig, PauseAt, Snapshot, System};
use pei_types::snap::SnapError;
use pei_types::{Addr, OperandValue, PimOpKind};
use proptest::prelude::*;

fn policy_strategy() -> impl Strategy<Value = DispatchPolicy> {
    prop_oneof![
        Just(DispatchPolicy::HostOnly),
        Just(DispatchPolicy::PimOnly),
        Just(DispatchPolicy::LocalityAware),
        Just(DispatchPolicy::LocalityAwareBalanced),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline end-to-end invariant: for any interleaving of
    /// increments and mins from all cores to a small set of contended
    /// blocks, under any dispatch policy, the final memory state equals
    /// the sequential reduction — lost updates are impossible. Each block
    /// carries a single operation type (increment or min), because mixing
    /// non-commuting operations on one word is order-dependent even with
    /// perfect atomicity.
    #[test]
    fn no_lost_updates_under_any_policy(
        ops in proptest::collection::vec((0usize..8, 1u64..1_000_000), 20..150),
        policy in policy_strategy(),
    ) {
        let mut store = BackingStore::new();
        let blocks: Vec<Addr> = (0..8).map(|_| store.alloc_block()).collect();
        for &b in &blocks {
            store.write_u64(b, u64::MAX / 2); // min candidates stay below
        }
        // Blocks 0..4 are increment-only; 4..8 are min-only.
        let kind_of = |b: usize| u8::from(b >= 4);
        // Expected final state from a sequential reduction.
        let mut expect: Vec<u64> = vec![u64::MAX / 2; 8];
        for &(b, val) in &ops {
            match kind_of(b) {
                0 => expect[b] = expect[b].wrapping_add(1),
                _ => expect[b] = expect[b].min(val),
            }
        }

        let cfg = MachineConfig::scaled(policy);
        let threads = cfg.cores;
        // Deal the ops round-robin to the cores.
        let mut phase: Vec<Vec<Op>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, &(b, val)) in ops.iter().enumerate() {
            let op = match kind_of(b) {
                0 => Op::pei(PimOpKind::IncU64, blocks[b], OperandValue::None),
                _ => Op::pei(PimOpKind::MinU64, blocks[b], OperandValue::U64(val)),
            };
            phase[i % threads].push(op);
        }
        for t in phase.iter_mut() {
            t.push(Op::Pfence);
        }
        let mut sys = System::new(cfg, store);
        sys.add_workload(
            Box::new(VecPhases::new(threads, vec![phase])),
            (0..threads).collect(),
        );
        let r = sys.run(500_000_000);
        prop_assert_eq!(r.peis, ops.len() as u64);
        for (i, &b) in blocks.iter().enumerate() {
            prop_assert_eq!(
                sys.store().read_u64(b),
                expect[i],
                "block {} diverged under {}",
                i,
                policy
            );
        }
    }

    /// Cycle counts are deterministic and invariant to rebuilding the
    /// system, for any policy and operand-buffer size.
    #[test]
    fn timing_deterministic(
        policy in policy_strategy(),
        entries in 1usize..8,
        n in 10usize..60,
    ) {
        let run = || {
            let mut store = BackingStore::new();
            let blocks: Vec<Addr> = (0..16).map(|_| store.alloc_block()).collect();
            let mut cfg = MachineConfig::scaled(policy);
            cfg.pcu.operand_entries = entries;
            let ops: Vec<Op> = (0..n)
                .map(|i| Op::pei(PimOpKind::IncU64, blocks[i % 16], OperandValue::None))
                .chain([Op::Pfence])
                .collect();
            let mut sys = System::new(cfg, store);
            sys.add_workload(Box::new(VecPhases::single(ops)), vec![0]);
            sys.run(500_000_000).cycles
        };
        prop_assert_eq!(run(), run());
    }

    /// The snapshot format (DESIGN.md §11) is self-contained: for any
    /// policy and any mid-run cut point, restoring a snapshot into a
    /// twin machine and re-snapshotting reproduces the exact bytes.
    #[test]
    fn snapshot_restore_resnapshot_is_byte_identical(
        policy in policy_strategy(),
        cut in 200u64..6_000,
        blocks in 8usize..48,
    ) {
        let snap = pause_and_snapshot(policy, cut, blocks)?;
        let mut twin = mixed_machine(policy, blocks);
        twin.restore(&snap).expect("restore onto a twin machine");
        let again = twin.snapshot().expect("re-snapshot");
        prop_assert_eq!(snap.as_bytes(), again.as_bytes());
    }

    /// Malformed snapshot bytes — any truncation, any single-byte
    /// corruption — produce errors, never panics, and every reported
    /// truncation offset stays within the input.
    #[test]
    fn malformed_snapshot_bytes_error_instead_of_panicking(
        cut in 200u64..4_000,
        len_seed in any::<u64>(),
        off_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let policy = DispatchPolicy::LocalityAware;
        let snap = pause_and_snapshot(policy, cut, 16)?;
        let full = snap.as_bytes().to_vec();

        // Truncate at a random point, then flip a random byte in what
        // remains (when anything remains).
        let len = (len_seed % (full.len() as u64 + 1)) as usize;
        let mut bad = full[..len].to_vec();
        if !bad.is_empty() {
            let off = (off_seed % bad.len() as u64) as usize;
            bad[off] ^= flip;
        }
        match Snapshot::from_bytes(&bad) {
            Err(SnapError::Truncated { offset }) => prop_assert!(offset <= len),
            Err(_) => {}
            Ok(parsed) => {
                // Header survived; restore must still either succeed
                // (the flip landed in redundant bytes and an untouched
                // payload parsed) or error within bounds — never panic.
                let mut target = mixed_machine(policy, 16);
                if let Err(SnapError::Truncated { offset }) = target.restore(&parsed) {
                    prop_assert!(offset <= len);
                }
            }
        }
    }
}

/// A mixed load/store/PEI machine for the snapshot properties, sized by
/// `blocks`; every call with equal arguments builds an identical twin.
fn mixed_machine(policy: DispatchPolicy, blocks: usize) -> System {
    let mut store = BackingStore::new();
    let addrs: Vec<Addr> = (0..blocks).map(|_| store.alloc_block()).collect();
    let cfg = MachineConfig::scaled(policy);
    let threads = cfg.cores;
    let mut phase = vec![Vec::new(); threads];
    for (i, &a) in addrs.iter().enumerate() {
        let t = i % threads;
        phase[t].push(Op::load(a));
        phase[t].push(Op::pei(PimOpKind::IncU64, a, OperandValue::None));
        if i % 3 == 0 {
            phase[t].push(Op::store(a));
        }
    }
    let mut sys = System::new(cfg, store);
    sys.add_workload(
        Box::new(VecPhases::new(threads, vec![phase])),
        (0..threads).collect(),
    );
    sys
}

/// Pauses a fresh machine at `cut` and snapshots it; rejects the case
/// when the run finishes before the cut (nothing mid-run to capture).
fn pause_and_snapshot(
    policy: DispatchPolicy,
    cut: u64,
    blocks: usize,
) -> Result<Snapshot, TestCaseError> {
    let mut sys = mixed_machine(policy, blocks);
    match sys.run_paused(500_000_000, Some(PauseAt::Cycle(cut))) {
        pei_system::RunStatus::Paused { .. } => {}
        pei_system::RunStatus::Completed(_) => {
            return Err(TestCaseError::reject(
                "run completed before the cut".to_string(),
            ))
        }
    }
    Ok(sys.snapshot().expect("snapshot a paused machine"))
}
