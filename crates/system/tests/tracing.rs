//! End-to-end tests of event capture: attaching a tracer must observe
//! the run without perturbing it, identical runs must produce identical
//! traces, and the ring bound must hold at system level.

use pei_core::DispatchPolicy;
use pei_cpu::trace::{Op, VecPhases};
use pei_mem::BackingStore;
use pei_system::{MachineConfig, System};
use pei_trace::{diff, NullSink, Recorder, Trace, TraceSink};
use pei_types::{Addr, OperandValue, PimOpKind};

/// A small workload exercising plain loads, stores, and PEIs so every
/// layer of the machine (caches, crossbar, HMC, PCUs, PMU) sees
/// traffic.
fn workload(store: &mut BackingStore) -> Vec<Op> {
    let blocks: Vec<Addr> = (0..16).map(|_| store.alloc_block()).collect();
    let mut ops = Vec::new();
    for (i, &b) in blocks.iter().enumerate() {
        ops.push(Op::load(b));
        ops.push(Op::pei(PimOpKind::IncU64, b, OperandValue::None));
        if i % 3 == 0 {
            ops.push(Op::store(b));
        }
        ops.push(Op::Compute(4));
    }
    ops
}

/// Runs the standard workload, optionally tracing into `sink`; returns
/// the run result and the detached sink.
fn run(sink: Option<Box<dyn TraceSink>>) -> (pei_system::RunResult, Option<Box<dyn TraceSink>>) {
    let mut store = BackingStore::new();
    let ops = workload(&mut store);
    let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
    let mut sys = System::new(cfg, store);
    sys.add_workload(Box::new(VecPhases::single(ops)), vec![0]);
    if let Some(s) = sink {
        sys.attach_tracer(s);
    }
    let result = sys.run(10_000_000);
    let sink = sys.detach_tracer();
    (result, sink)
}

fn capture() -> Trace {
    let (_, sink) = run(Some(Box::new(Recorder::new())));
    let bytes = sink
        .expect("tracer attached")
        .to_petr()
        .expect("recorder retains its capture");
    Trace::from_bytes(&bytes).expect("own encoding parses")
}

#[test]
fn capture_does_not_perturb_the_run() {
    let (traced, _) = run(Some(Box::new(Recorder::new())));
    let (untraced, none) = run(None);
    assert!(none.is_none());
    assert_eq!(
        format!("{}", traced.stats),
        format!("{}", untraced.stats),
        "attaching a tracer must not change simulated behavior"
    );
}

#[test]
fn identical_runs_produce_identical_traces() {
    let a = capture();
    let b = capture();
    assert!(!a.records.is_empty(), "capture produced no records");
    assert_eq!(diff(&a, &b), None, "same-spec traces must be identical");

    // The capture covers every layer of the machine.
    for comp in [
        "core0", "cache0", "l3bank0", "ctrl", "pmu", "xbar", "system",
    ] {
        assert!(
            a.comps.iter().any(|c| c == comp),
            "component table missing {comp}: {:?}",
            a.comps
        );
    }
    for kind in [
        "core.tick",
        "priv.req",
        "l3.req",
        "vault.access",
        "pmu.request",
        "phase.start",
        "group.done",
        "xbar.msg",
    ] {
        let id = a
            .kinds
            .iter()
            .position(|k| k == kind)
            .unwrap_or_else(|| panic!("kind table missing {kind}: {:?}", a.kinds))
            as u16;
        assert!(
            a.records.iter().any(|r| r.kind.0 == id),
            "no records of kind {kind}"
        );
    }
    // Machine-shape metadata travels with the trace.
    assert_eq!(a.meta_get("machine.cores"), Some("4"));
    assert_eq!(a.dropped, 0);
}

#[test]
fn ring_capture_bounds_the_buffer() {
    let cap = 64;
    let (_, sink) = run(Some(Box::new(Recorder::with_capacity(cap))));
    let bytes = sink.unwrap().to_petr().unwrap();
    let t = Trace::from_bytes(&bytes).unwrap();
    assert_eq!(t.records.len(), cap);
    assert!(t.dropped > 0, "this workload overflows a 64-record ring");
    // The ring keeps the newest records: the tail must include the final
    // group.done marker.
    let done = t.kinds.iter().position(|k| k == "group.done").unwrap() as u16;
    assert_eq!(t.records.last().unwrap().kind.0, done);
}

#[test]
fn multi_phase_runs_emit_warmup_and_steady_sections() {
    let mut store = BackingStore::new();
    let first = workload(&mut store);
    let second = workload(&mut store);
    let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
    let mut sys = System::new(cfg, store);
    // Two phases: the end of the first is auto-marked as warmup.
    sys.add_workload(
        Box::new(VecPhases::new(1, vec![vec![first], vec![second]])),
        vec![0],
    );
    let result = sys.run(10_000_000);

    let warmup = result.stats.phase_section("warmup");
    let steady = result.stats.phase_section("steady");
    assert!(!warmup.is_empty(), "warmup section missing");
    assert!(!steady.is_empty(), "steady section missing");
    // Phase intervals partition each counter's whole-run total.
    for (name, w) in warmup.iter() {
        let total = result
            .stats
            .get(name)
            .unwrap_or_else(|| panic!("phase key {name} has no matching total"));
        let s = steady.get(name).unwrap_or(0.0);
        assert_eq!(w + s, total, "{name}: warmup {w} + steady {s} != {total}");
    }
    // Both phases did real work.
    assert!(warmup.expect("core.instructions") > 0.0);
    assert!(steady.expect("core.instructions") > 0.0);
}

#[test]
fn null_sink_observes_without_retaining() {
    let (_, sink) = run(Some(Box::new(NullSink::new())));
    assert!(sink.unwrap().to_petr().is_none());
}
