//! End-to-end integration tests of the assembled machine: PEI execution on
//! both sides, coherence interactions, atomicity, pfence, dispatch
//! policies, and multiprogramming.

use pei_core::DispatchPolicy;
use pei_cpu::trace::{Op, VecPhases};
use pei_mem::BackingStore;
use pei_system::{MachineConfig, System};
use pei_types::{Addr, OperandValue, PimOpKind};

const LIMIT: u64 = 50_000_000;

fn inc(target: Addr) -> Op {
    Op::pei(PimOpKind::IncU64, target, OperandValue::None)
}

#[test]
fn host_only_pei_executes_and_applies() {
    let mut store = BackingStore::new();
    let a = store.alloc_block();
    store.write_u64(a, 10);
    let mut sys = System::new(MachineConfig::scaled(DispatchPolicy::HostOnly), store);
    sys.add_workload(
        Box::new(VecPhases::single(vec![inc(a), Op::Pfence])),
        vec![0],
    );
    let r = sys.run(LIMIT);
    assert_eq!(sys.store().read_u64(a), 11);
    assert_eq!(r.peis, 1);
    assert_eq!(r.pim_fraction, 0.0, "host-only never offloads");
    // Host execution fetched the block from memory once (cold miss).
    assert!(r.dram_accesses >= 1);
}

#[test]
fn pim_only_pei_executes_in_memory() {
    let mut store = BackingStore::new();
    let a = store.alloc_block();
    store.write_u64(a, 10);
    let mut sys = System::new(MachineConfig::scaled(DispatchPolicy::PimOnly), store);
    sys.add_workload(
        Box::new(VecPhases::single(vec![inc(a), Op::Pfence])),
        vec![0],
    );
    let r = sys.run(LIMIT);
    assert_eq!(sys.store().read_u64(a), 11);
    assert_eq!(r.pim_fraction, 1.0, "pim-only always offloads");
    // The increment is a read-modify-write at the vault: 2 DRAM accesses.
    assert_eq!(r.dram_accesses, 2);
    // Off-chip: one 16 B PimReq + one 16 B PimResp.
    assert_eq!(r.offchip_flits, (1, 1));
}

#[test]
fn atomicity_under_contention_from_all_cores() {
    // Every core hammers the same block with increments; the final value
    // must be exact regardless of policy. This exercises the PIM
    // directory's writer serialization end to end.
    for policy in [
        DispatchPolicy::HostOnly,
        DispatchPolicy::PimOnly,
        DispatchPolicy::LocalityAware,
    ] {
        let mut store = BackingStore::new();
        let a = store.alloc_block();
        let cfg = MachineConfig::scaled(policy);
        let per_core = 50u64;
        let mut sys = System::new(cfg, store);
        let phases = vec![(0..cfg.cores)
            .map(|_| {
                let mut ops: Vec<Op> = (0..per_core).map(|_| inc(a)).collect();
                ops.push(Op::Pfence);
                ops
            })
            .collect()];
        sys.add_workload(
            Box::new(VecPhases::new(cfg.cores, phases)),
            (0..cfg.cores).collect(),
        );
        let r = sys.run(LIMIT);
        assert_eq!(
            sys.store().read_u64(a),
            per_core * cfg.cores as u64,
            "lost updates under {policy}"
        );
        assert_eq!(r.peis, per_core * cfg.cores as u64);
    }
}

#[test]
fn min_converges_to_global_minimum() {
    let mut store = BackingStore::new();
    let a = store.alloc_block();
    store.write_u64(a, u64::MAX);
    let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
    let mut sys = System::new(cfg, store);
    // Each core contributes decreasing candidates; global min is 3.
    let phase: Vec<Vec<Op>> = (0..cfg.cores)
        .map(|c| {
            (0..20)
                .map(|i| {
                    Op::pei(
                        PimOpKind::MinU64,
                        a,
                        OperandValue::U64(3 + ((c as u64 * 7 + i * 13) % 1000)),
                    )
                })
                .chain([Op::Pfence])
                .collect()
        })
        .collect();
    sys.add_workload(
        Box::new(VecPhases::new(cfg.cores, vec![phase])),
        (0..cfg.cores).collect(),
    );
    sys.run(LIMIT);
    assert_eq!(sys.store().read_u64(a), 3);
}

#[test]
fn locality_aware_hot_block_stays_on_host() {
    let mut store = BackingStore::new();
    let a = store.alloc_block();
    let mut sys = System::new(MachineConfig::scaled(DispatchPolicy::LocalityAware), store);
    // Warm the block with loads (L3 sees the miss fill), then issue PEIs.
    let mut ops = vec![Op::load(a), Op::Barrier];
    ops.extend((0..10).map(|_| inc(a)));
    ops.push(Op::Pfence);
    sys.add_workload(Box::new(VecPhases::single(ops)), vec![0]);
    let r = sys.run(LIMIT);
    assert!(
        r.pim_fraction < 0.5,
        "hot block should mostly run on host, pim_fraction = {}",
        r.pim_fraction
    );
    assert_eq!(sys.store().read_u64(a), 10);
}

#[test]
fn locality_aware_cold_stream_goes_to_memory() {
    let mut store = BackingStore::new();
    // A long stream of distinct cold blocks.
    let targets: Vec<Addr> = (0..400).map(|_| store.alloc_block()).collect();
    let mut sys = System::new(MachineConfig::scaled(DispatchPolicy::LocalityAware), store);
    let mut ops: Vec<Op> = targets.iter().map(|&t| inc(t)).collect();
    ops.push(Op::Pfence);
    sys.add_workload(Box::new(VecPhases::single(ops)), vec![0]);
    let r = sys.run(LIMIT);
    assert!(
        r.pim_fraction > 0.9,
        "cold blocks should offload, pim_fraction = {}",
        r.pim_fraction
    );
}

#[test]
fn dirty_host_data_reaches_memory_side_pei() {
    // A host-side PEI dirties the block in the L1; a later PIM-only-style
    // offload must see the value via back-invalidation. We force this by
    // warming (host executes first PEI under LocalityAware after L3
    // touch), then issuing enough cold traffic to evict... simpler: use
    // two phases with different policies via functional check under
    // LocalityAware where the second PEI offloads (ignore-bit path).
    let mut store = BackingStore::new();
    let a = store.alloc_block();
    let mut sys = System::new(MachineConfig::scaled(DispatchPolicy::LocalityAware), store);
    // Phase 1: two PEIs — first offloads (cold), allocating a monitor
    // entry with the ignore bit; second offloads again (first hit
    // ignored); third runs on host (hit). Then a fourth cold-start PEI...
    // Regardless of where each runs, the sum must be exact — that is the
    // coherence guarantee under test.
    let ops: Vec<Op> = (0..5).map(|_| inc(a)).chain([Op::Pfence]).collect();
    sys.add_workload(Box::new(VecPhases::single(ops)), vec![0]);
    let r = sys.run(LIMIT);
    assert_eq!(sys.store().read_u64(a), 5);
    // Both execution sides were exercised.
    let host = r.stats.expect("pmu.host_dispatched");
    let mem = r.stats.expect("pmu.mem_dispatched");
    assert!(host > 0.0 && mem > 0.0, "host {host} mem {mem}");
    // The host-side executions required flushes when later offloads hit
    // the same block.
    assert!(r.stats.expect("l3.flushes") > 0.0);
}

#[test]
fn pfence_orders_phases() {
    let mut store = BackingStore::new();
    let a = store.alloc_block();
    let mut sys = System::new(MachineConfig::scaled(DispatchPolicy::PimOnly), store);
    // Phase 1 increments; phase 2 (after the implicit barrier) loads the
    // value. The pfence inside phase 1 guarantees writer completion.
    let phases = vec![
        vec![vec![inc(a), inc(a), Op::Pfence]],
        vec![vec![Op::load(a)]],
    ];
    sys.add_workload(Box::new(VecPhases::new(1, phases)), vec![0]);
    let r = sys.run(LIMIT);
    assert_eq!(sys.store().read_u64(a), 2);
    assert_eq!(r.stats.expect("pmu.pfences"), 1.0);
}

#[test]
fn reader_pei_returns_outputs_through_both_paths() {
    // HashProbe through memory (cold) and host (after warming).
    let mut store = BackingStore::new();
    let bucket = store.alloc_block();
    store.write_u64(bucket, 777); // key present
    let mut sys = System::new(MachineConfig::scaled(DispatchPolicy::LocalityAware), store);
    let probe = |dep| Op::Pei {
        op: PimOpKind::HashProbe,
        target: bucket,
        input: OperandValue::U64(777),
        dep_dist: dep,
    };
    sys.add_workload(
        Box::new(VecPhases::single(vec![
            probe(0),
            probe(1),
            probe(1),
            probe(1),
        ])),
        vec![0],
    );
    let r = sys.run(LIMIT);
    assert_eq!(r.peis, 4);
    assert_eq!(sys.store().read_u64(bucket), 777, "probe must not mutate");
}

#[test]
fn multiprogrammed_groups_complete_independently() {
    let mut store = BackingStore::new();
    let a = store.alloc_block();
    let b = store.alloc_block();
    let cfg = MachineConfig::scaled(DispatchPolicy::LocalityAware);
    assert!(cfg.cores >= 4);
    let mut sys = System::new(cfg, store);
    // Group A: 2 threads, many phases. Group B: 2 threads, few phases.
    let phases_a = (0..4)
        .map(|_| vec![vec![inc(a), Op::Pfence], vec![Op::Compute(100)]])
        .collect();
    let phases_b = vec![vec![vec![inc(b), Op::Pfence], vec![Op::Compute(10)]]];
    sys.add_workload(Box::new(VecPhases::new(2, phases_a)), vec![0, 1]);
    sys.add_workload(Box::new(VecPhases::new(2, phases_b)), vec![2, 3]);
    let r = sys.run(LIMIT);
    assert_eq!(sys.store().read_u64(a), 4);
    assert_eq!(sys.store().read_u64(b), 1);
    assert!(r.instructions > 0);
}

#[test]
fn ideal_host_is_at_least_as_fast_as_host_only() {
    let mk = |cfg: MachineConfig| {
        let mut store = BackingStore::new();
        let a = store.alloc_block();
        let mut sys = System::new(cfg, store);
        let ops: Vec<Op> = (0..200).map(|_| inc(a)).chain([Op::Pfence]).collect();
        sys.add_workload(Box::new(VecPhases::single(ops)), vec![0]);
        sys.run(LIMIT).cycles
    };
    let host_only = mk(MachineConfig::scaled(DispatchPolicy::HostOnly));
    let ideal = mk(MachineConfig::scaled(DispatchPolicy::HostOnly).ideal_host());
    assert!(ideal <= host_only, "ideal {ideal} vs real {host_only}");
}

#[test]
fn normal_loads_and_stores_complete_with_coherence() {
    // Cores ping-pong a block with stores: exercises GetM/recall paths.
    let mut store = BackingStore::new();
    let a = store.alloc_block();
    let cfg = MachineConfig::scaled(DispatchPolicy::HostOnly);
    let mut sys = System::new(cfg, store);
    let phase: Vec<Vec<Op>> = (0..cfg.cores)
        .map(|_| (0..30).map(|_| Op::store(a)).collect())
        .collect();
    sys.add_workload(
        Box::new(VecPhases::new(cfg.cores, vec![phase])),
        (0..cfg.cores).collect(),
    );
    let r = sys.run(LIMIT);
    assert!(
        r.stats.expect("cache.l2.recalls") > 0.0,
        "write sharing must recall"
    );
    assert_eq!(r.instructions, 30 * cfg.cores as u64);
}

#[test]
fn streaming_loads_generate_expected_offchip_traffic() {
    // 256 cold blocks, read once: 256 reads = 256 * (16 + 80) wire bytes,
    // plus nothing else (no writebacks of clean data).
    let mut store = BackingStore::new();
    let targets: Vec<Addr> = (0..256).map(|_| store.alloc_block()).collect();
    let mut sys = System::new(MachineConfig::scaled(DispatchPolicy::HostOnly), store);
    let ops: Vec<Op> = targets.iter().map(|&t| Op::load(t)).collect();
    sys.add_workload(Box::new(VecPhases::single(ops)), vec![0]);
    let r = sys.run(LIMIT);
    assert_eq!(r.offchip_bytes, 256 * 96);
    assert_eq!(r.dram_accesses, 256);
}
