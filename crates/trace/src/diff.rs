//! First-divergent-record comparison between two traces.
//!
//! Two same-seed runs of the deterministic simulator must produce
//! identical record streams; when they don't, the *first* divergent
//! record localizes the regression to a cycle and a component — far
//! more actionable than "final stats differ". Comparison resolves ids
//! through each trace's own name tables, so it is robust to the two
//! captures having interned names in different orders.

use crate::record::Record;
use crate::recorder::Trace;

/// A record with its component and kind ids resolved to names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolved {
    /// Simulated cycle of the record.
    pub cycle: u64,
    /// Resolved component name.
    pub comp: String,
    /// Resolved event-kind name.
    pub kind: String,
    /// The record's payload word.
    pub payload: u64,
}

impl Resolved {
    fn new(t: &Trace, r: &Record) -> Resolved {
        Resolved {
            cycle: r.cycle,
            comp: t.comp_name(r.comp).to_string(),
            kind: t.kind_name(r.kind).to_string(),
            payload: r.payload,
        }
    }
}

impl std::fmt::Display for Resolved {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cycle {} {} {} payload {:#x}",
            self.cycle, self.comp, self.kind, self.payload
        )
    }
}

/// How two traces first differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// Record `index` exists in both traces but differs.
    Record {
        /// Zero-based index into both record streams.
        index: u64,
        /// The record on the left side.
        left: Resolved,
        /// The record on the right side.
        right: Resolved,
    },
    /// One trace ends while the other still has records.
    Length {
        /// Record count of the left trace.
        left: u64,
        /// Record count of the right trace.
        right: u64,
        /// The first record present on only one side.
        extra: Resolved,
    },
    /// The traces dropped different numbers of records to their rings,
    /// so the streams are not comparable from the same starting point.
    Dropped {
        /// Drop count of the left trace.
        left: u64,
        /// Drop count of the right trace.
        right: u64,
    },
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Divergence::Record { index, left, right } => {
                write!(
                    f,
                    "record {index} differs:\n  left:  {left}\n  right: {right}"
                )
            }
            Divergence::Length { left, right, extra } => {
                write!(
                    f,
                    "record counts differ ({left} vs {right}); first unmatched: {extra}"
                )
            }
            Divergence::Dropped { left, right } => {
                write!(f, "ring drop counts differ ({left} vs {right})")
            }
        }
    }
}

/// Compares two traces record-by-record, returning the first
/// divergence, or `None` if the streams are identical.
///
/// Meta tables are *not* compared — they carry run descriptions and
/// wall-clock-adjacent digests, not simulated behavior.
pub fn diff(left: &Trace, right: &Trace) -> Option<Divergence> {
    if left.dropped != right.dropped {
        return Some(Divergence::Dropped {
            left: left.dropped,
            right: right.dropped,
        });
    }
    for (i, (l, r)) in left.records.iter().zip(&right.records).enumerate() {
        let lr = Resolved::new(left, l);
        let rr = Resolved::new(right, r);
        if lr != rr {
            return Some(Divergence::Record {
                index: i as u64,
                left: lr,
                right: rr,
            });
        }
    }
    if left.records.len() != right.records.len() {
        let (longer, rec) = if left.records.len() > right.records.len() {
            (left, &left.records[right.records.len()])
        } else {
            (right, &right.records[left.records.len()])
        };
        return Some(Divergence::Length {
            left: left.records.len() as u64,
            right: right.records.len() as u64,
            extra: Resolved::new(longer, rec),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::sink::TraceSink;

    fn capture(names: &[(&str, &str, u64, u64)]) -> Trace {
        let mut rec = Recorder::new();
        for &(comp, kind, cycle, payload) in names {
            let c = rec.comp(comp);
            let k = rec.kind(kind);
            rec.record(cycle, c, k, payload);
        }
        rec.to_trace()
    }

    #[test]
    fn identical_streams_diff_clean() {
        let t = capture(&[("core0", "tick", 1, 0), ("vault2", "access", 3, 64)]);
        assert_eq!(diff(&t, &t), None);
    }

    #[test]
    fn interning_order_does_not_matter() {
        // Same events, but the right-hand capture interns vault2 first.
        let a = capture(&[("core0", "tick", 1, 0), ("vault2", "access", 3, 64)]);
        let mut rec = Recorder::new();
        let v = rec.comp("vault2");
        let acc = rec.kind("access");
        let c = rec.comp("core0");
        let t = rec.kind("tick");
        rec.record(1, c, t, 0);
        rec.record(3, v, acc, 64);
        assert_eq!(diff(&a, &rec.to_trace()), None);
    }

    #[test]
    fn first_divergent_record_is_reported() {
        let a = capture(&[("a", "x", 1, 0), ("a", "x", 2, 0), ("a", "x", 3, 0)]);
        let b = capture(&[("a", "x", 1, 0), ("a", "x", 2, 9), ("a", "x", 99, 0)]);
        match diff(&a, &b) {
            Some(Divergence::Record { index, left, right }) => {
                assert_eq!(index, 1);
                assert_eq!(left.payload, 0);
                assert_eq!(right.payload, 9);
            }
            other => panic!("expected record divergence, got {other:?}"),
        }
    }

    #[test]
    fn length_mismatch_reports_first_extra() {
        let a = capture(&[("a", "x", 1, 0)]);
        let b = capture(&[("a", "x", 1, 0), ("b", "y", 5, 7)]);
        match diff(&a, &b) {
            Some(Divergence::Length { left, right, extra }) => {
                assert_eq!((left, right), (1, 2));
                assert_eq!(extra.comp, "b");
                assert_eq!(extra.cycle, 5);
            }
            other => panic!("expected length divergence, got {other:?}"),
        }
    }

    #[test]
    fn drop_count_mismatch_detected() {
        let mut a = Recorder::with_capacity(2);
        let c = a.comp("a");
        let k = a.kind("x");
        for i in 0..5 {
            a.record(i, c, k, 0);
        }
        let b = capture(&[("a", "x", 3, 0), ("a", "x", 4, 0)]);
        assert_eq!(
            diff(&a.to_trace(), &b),
            Some(Divergence::Dropped { left: 3, right: 0 })
        );
    }
}
