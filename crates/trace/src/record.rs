//! The trace record: the unit of capture.
//!
//! A record is 20 bytes on disk (see [`crate::format`]): the cycle it
//! happened, which component it happened at, what kind of event it was,
//! and one 64-bit payload word (an address, a request id, a sequence
//! number — whatever best localizes the event; kinds document their
//! payload meaning at the emission site).

/// Index of an interned component name (e.g. `"core2"`, `"vault13"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompId(pub u16);

/// Index of an interned event-kind name (e.g. `"l3.req"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KindId(pub u16);

/// One captured event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Simulated cycle (host clock) the event was captured at.
    pub cycle: u64,
    /// The component it belongs to.
    pub comp: CompId,
    /// What happened.
    pub kind: KindId,
    /// Event-kind-specific 64-bit payload (address, id, ...).
    pub payload: u64,
}

/// Encoded size of one record in the `.petr` format, in bytes.
pub const RECORD_BYTES: usize = 20;

impl Record {
    /// Appends the little-endian wire form (20 bytes) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.cycle.to_le_bytes());
        out.extend_from_slice(&self.comp.0.to_le_bytes());
        out.extend_from_slice(&self.kind.0.to_le_bytes());
        out.extend_from_slice(&self.payload.to_le_bytes());
    }

    /// Decodes one record from exactly [`RECORD_BYTES`] bytes.
    pub fn decode(bytes: &[u8; RECORD_BYTES]) -> Record {
        Record {
            cycle: u64::from_le_bytes(bytes[0..8].try_into().unwrap()),
            comp: CompId(u16::from_le_bytes(bytes[8..10].try_into().unwrap())),
            kind: KindId(u16::from_le_bytes(bytes[10..12].try_into().unwrap())),
            payload: u64::from_le_bytes(bytes[12..20].try_into().unwrap()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let r = Record {
            cycle: 0xdead_beef_cafe_f00d,
            comp: CompId(7),
            kind: KindId(65535),
            payload: u64::MAX,
        };
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert_eq!(buf.len(), RECORD_BYTES);
        let back = Record::decode(buf.as_slice().try_into().unwrap());
        assert_eq!(back, r);
    }

    #[test]
    fn encoding_is_little_endian() {
        let r = Record {
            cycle: 1,
            comp: CompId(0x0102),
            kind: KindId(0x0304),
            payload: 2,
        };
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert_eq!(buf[0], 1); // low byte of cycle first
        assert_eq!(&buf[8..10], &[0x02, 0x01]);
        assert_eq!(&buf[10..12], &[0x04, 0x03]);
        assert_eq!(buf[12], 2);
    }
}
