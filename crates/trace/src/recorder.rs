//! The standard in-memory recorder and the loaded-trace type.

use crate::record::{CompId, KindId, Record};
use crate::sink::TraceSink;
use crate::TraceError;
use std::collections::HashMap;

/// A [`TraceSink`] that buffers records in memory, optionally as a ring
/// keeping only the most recent `capacity` records (older records are
/// evicted and counted in [`dropped`](Recorder::dropped)).
///
/// # Examples
///
/// ```
/// use pei_trace::{Recorder, TraceSink};
///
/// let mut rec = Recorder::with_capacity(2);
/// let c = rec.comp("pmu");
/// let k = rec.kind("pmu.request");
/// for cycle in 0..5 {
///     rec.record(cycle, c, k, cycle);
/// }
/// assert_eq!(rec.dropped(), 3);
/// let cycles: Vec<u64> = rec.records().map(|r| r.cycle).collect();
/// assert_eq!(cycles, vec![3, 4]); // the ring keeps the newest two
/// ```
#[derive(Debug, Default)]
pub struct Recorder {
    comps: Vec<String>,
    comp_ids: HashMap<String, u16>,
    kinds: Vec<String>,
    kind_ids: HashMap<String, u16>,
    meta: Vec<(String, String)>,
    buf: Vec<Record>,
    /// Ring capacity; `None` = unbounded.
    cap: Option<usize>,
    /// Index of the oldest record within `buf` (ring mode only).
    start: usize,
    dropped: u64,
}

impl Recorder {
    /// An unbounded recorder: every record is kept.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// A ring recorder keeping only the most recent `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be at least 1");
        Recorder {
            cap: Some(capacity),
            ..Recorder::default()
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no records are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of records evicted by the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The ring capacity this recorder was built with (`None` =
    /// unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.cap
    }

    /// Held records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.buf[self.start..].iter().chain(&self.buf[..self.start])
    }

    /// Snapshots this recorder into an owned [`Trace`] (records in
    /// oldest-first order, tables and meta cloned).
    pub fn to_trace(&self) -> Trace {
        Trace {
            meta: self.meta.clone(),
            comps: self.comps.clone(),
            kinds: self.kinds.clone(),
            dropped: self.dropped,
            records: self.records().copied().collect(),
        }
    }

    /// Serializes to the `.petr` binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_trace().to_bytes()
    }

    /// Writes the `.petr` file at `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating or writing the file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }
}

fn intern(table: &mut Vec<String>, ids: &mut HashMap<String, u16>, name: &str) -> u16 {
    if let Some(&id) = ids.get(name) {
        return id;
    }
    assert!(table.len() < u16::MAX as usize, "interned-table overflow");
    let id = table.len() as u16;
    table.push(name.to_string());
    ids.insert(name.to_string(), id);
    id
}

impl TraceSink for Recorder {
    fn comp(&mut self, name: &str) -> CompId {
        CompId(intern(&mut self.comps, &mut self.comp_ids, name))
    }

    fn kind(&mut self, name: &str) -> KindId {
        KindId(intern(&mut self.kinds, &mut self.kind_ids, name))
    }

    #[inline]
    fn record(&mut self, cycle: u64, comp: CompId, kind: KindId, payload: u64) {
        let r = Record {
            cycle,
            comp,
            kind,
            payload,
        };
        match self.cap {
            Some(cap) if self.buf.len() == cap => {
                // Ring overwrite: replace the oldest slot and advance.
                self.buf[self.start] = r;
                self.start = (self.start + 1) % cap;
                self.dropped += 1;
            }
            _ => self.buf.push(r),
        }
    }

    fn meta(&mut self, key: &str, value: &str) {
        if let Some(slot) = self.meta.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value.to_string();
        } else {
            self.meta.push((key.to_string(), value.to_string()));
        }
    }

    fn to_petr(&self) -> Option<Vec<u8>> {
        Some(self.to_bytes())
    }
}

/// A fully loaded trace: name tables, metadata, and records in capture
/// order (oldest first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Ordered key → value metadata (run description, stats digest).
    pub meta: Vec<(String, String)>,
    /// Component name table; a [`CompId`] indexes it.
    pub comps: Vec<String>,
    /// Event-kind name table; a [`KindId`] indexes it.
    pub kinds: Vec<String>,
    /// Records evicted by the capture ring before these.
    pub dropped: u64,
    /// The captured records.
    pub records: Vec<Record>,
}

impl Trace {
    /// Looks up a metadata value by key.
    pub fn meta_get(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The component name of a record.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this trace's table.
    pub fn comp_name(&self, id: CompId) -> &str {
        &self.comps[id.0 as usize]
    }

    /// The kind name of a record.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this trace's table.
    pub fn kind_name(&self, id: KindId) -> &str {
        &self.kinds[id.0 as usize]
    }

    /// Serializes to the `.petr` binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        crate::format::encode(self)
    }

    /// Parses a `.petr` byte image.
    ///
    /// # Errors
    ///
    /// [`TraceError`] on truncation, bad magic, or malformed tables.
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceError> {
        crate::format::decode(bytes)
    }

    /// Loads the `.petr` file at `path`.
    ///
    /// # Errors
    ///
    /// I/O errors are wrapped in [`TraceError::Io`]; malformed content
    /// reports the offending offset.
    pub fn load(path: &std::path::Path) -> Result<Trace, TraceError> {
        let bytes = std::fs::read(path).map_err(|e| TraceError::Io(e.to_string()))?;
        Trace::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_keeps_everything_in_order() {
        let mut rec = Recorder::new();
        let c = rec.comp("a");
        let k = rec.kind("x");
        for i in 0..100 {
            rec.record(i, c, k, i * 2);
        }
        assert_eq!(rec.len(), 100);
        assert_eq!(rec.dropped(), 0);
        let t = rec.to_trace();
        assert!(t.records.windows(2).all(|w| w[0].cycle < w[1].cycle));
    }

    #[test]
    fn ring_wraps_multiple_times() {
        let mut rec = Recorder::with_capacity(3);
        let c = rec.comp("a");
        let k = rec.kind("x");
        for i in 0..10 {
            rec.record(i, c, k, 0);
        }
        assert_eq!(rec.dropped(), 7);
        let cycles: Vec<u64> = rec.records().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
    }

    #[test]
    fn meta_overwrites_by_key() {
        let mut rec = Recorder::new();
        rec.meta("k", "1");
        rec.meta("other", "x");
        rec.meta("k", "2");
        let t = rec.to_trace();
        assert_eq!(t.meta_get("k"), Some("2"));
        assert_eq!(t.meta.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        let _ = Recorder::with_capacity(0);
    }
}
