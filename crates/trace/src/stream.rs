//! A [`TraceSink`] that writes `.petr` incrementally to disk.
//!
//! [`Recorder`](crate::Recorder) buffers every record in memory (20 B
//! per event), which caps full-scale captures at available RAM. The
//! [`StreamSink`] removes that bound: records flow straight to disk
//! through a buffered writer while only the (tiny) interning tables and
//! metadata stay resident.
//!
//! The `.petr` layout puts the metadata, string tables, and record count
//! *before* the records (see [`crate::format`]), and all three grow
//! during a capture — so the sink streams records to a sibling spill
//! file (`<path>.tmp`) and assembles the final file in
//! [`finish`](StreamSink::finish): header + tables first, then the
//! spilled records appended with a bounded copy buffer. Peak memory is
//! `O(tables + metadata)` regardless of record count.
//!
//! I/O errors inside the hot [`record`](TraceSink::record) path are
//! latched rather than panicking (the trait is infallible by design);
//! `finish` surfaces the first one. Dropping an unfinished sink removes
//! the spill file.

use crate::record::{CompId, KindId, Record, RECORD_BYTES};
use crate::sink::TraceSink;
use crate::{format, Trace};
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Streams `.petr` records to disk as they are captured.
///
/// # Examples
///
/// ```no_run
/// use pei_trace::{StreamSink, TraceSink, Trace};
///
/// let mut sink = StreamSink::create("run.petr".as_ref()).unwrap();
/// let core = sink.comp("core0");
/// let tick = sink.kind("tick");
/// sink.record(1, core, tick, 0);
/// sink.meta("spec.workload", "atf");
/// let written = sink.finish().unwrap();
/// assert_eq!(written, 1);
/// let t = Trace::load("run.petr".as_ref()).unwrap();
/// assert_eq!(t.records.len(), 1);
/// ```
#[derive(Debug)]
pub struct StreamSink {
    path: PathBuf,
    spill_path: PathBuf,
    spill: Option<BufWriter<File>>,
    comps: Vec<String>,
    kinds: Vec<String>,
    meta: Vec<(String, String)>,
    records: u64,
    scratch: Vec<u8>,
    err: Option<io::Error>,
}

impl StreamSink {
    /// Opens a streaming capture that will materialize at `path` when
    /// [`finish`](Self::finish)ed. A `<path>.tmp` sibling spill file is
    /// created immediately.
    ///
    /// # Errors
    ///
    /// Fails if the spill file cannot be created.
    pub fn create(path: &Path) -> io::Result<StreamSink> {
        let mut spill_path = path.as_os_str().to_owned();
        spill_path.push(".tmp");
        let spill_path = PathBuf::from(spill_path);
        let spill = BufWriter::new(File::create(&spill_path)?);
        Ok(StreamSink {
            path: path.to_path_buf(),
            spill_path,
            spill: Some(spill),
            comps: Vec::new(),
            kinds: Vec::new(),
            meta: Vec::new(),
            records: 0,
            scratch: Vec::with_capacity(RECORD_BYTES),
            err: None,
        })
    }

    /// Records streamed so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Finalizes the capture: writes the `.petr` header, metadata, and
    /// string tables to the target path, appends the spilled records,
    /// and removes the spill file. Returns the record count.
    ///
    /// # Errors
    ///
    /// Surfaces the first I/O error latched during capture, or any
    /// error during assembly.
    pub fn finish(mut self) -> io::Result<u64> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        let mut spill = self.spill.take().expect("finish consumes the sink");
        spill.flush()?;
        // The spill handle is write-only; reopen it for the read-back.
        drop(spill);
        let mut spill = File::open(&self.spill_path)?;

        // Header + tables come from an empty-records Trace, minus the
        // trailing record count `encode` appends for zero records.
        let head = Trace {
            meta: std::mem::take(&mut self.meta),
            comps: std::mem::take(&mut self.comps),
            kinds: std::mem::take(&mut self.kinds),
            dropped: 0,
            records: Vec::new(),
        };
        let mut bytes = format::encode(&head);
        bytes.truncate(bytes.len() - 8);
        bytes.extend_from_slice(&self.records.to_le_bytes());

        let mut out = BufWriter::new(File::create(&self.path)?);
        out.write_all(&bytes)?;
        let mut buf = [0u8; 64 * RECORD_BYTES];
        loop {
            let n = spill.read(&mut buf)?;
            if n == 0 {
                break;
            }
            out.write_all(&buf[..n])?;
        }
        out.flush()?;
        drop(spill);
        std::fs::remove_file(&self.spill_path)?;
        Ok(self.records)
    }
}

impl Drop for StreamSink {
    fn drop(&mut self) {
        // `finish` took the writer; an unfinished sink cleans up its
        // spill file (best effort).
        if self.spill.take().is_some() {
            let _ = std::fs::remove_file(&self.spill_path);
        }
    }
}

fn intern(table: &mut Vec<String>, name: &str) -> u16 {
    if let Some(i) = table.iter().position(|n| n == name) {
        return i as u16;
    }
    assert!(table.len() < u16::MAX as usize, "interned-table overflow");
    table.push(name.to_string());
    (table.len() - 1) as u16
}

impl TraceSink for StreamSink {
    fn comp(&mut self, name: &str) -> CompId {
        CompId(intern(&mut self.comps, name))
    }

    fn kind(&mut self, name: &str) -> KindId {
        KindId(intern(&mut self.kinds, name))
    }

    fn record(&mut self, cycle: u64, comp: CompId, kind: KindId, payload: u64) {
        if self.err.is_some() {
            return;
        }
        self.scratch.clear();
        Record {
            cycle,
            comp,
            kind,
            payload,
        }
        .encode(&mut self.scratch);
        let w = self.spill.as_mut().expect("sink not finished");
        if let Err(e) = w.write_all(&self.scratch) {
            self.err = Some(e);
            return;
        }
        self.records += 1;
    }

    fn meta(&mut self, key: &str, value: &str) {
        if let Some(slot) = self.meta.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value.to_string();
        } else {
            self.meta.push((key.to_string(), value.to_string()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pei_stream_{name}_{}.petr", std::process::id()));
        p
    }

    #[test]
    fn stream_matches_recorder() {
        let path = tmp("roundtrip");
        let mut stream = StreamSink::create(&path).unwrap();
        let mut rec = crate::Recorder::new();
        for sink in [&mut stream as &mut dyn TraceSink, &mut rec] {
            let core = sink.comp("core0");
            let vault = sink.comp("vault1");
            let tick = sink.kind("tick");
            sink.meta("spec.workload", "atf");
            for i in 0..1000u64 {
                sink.record(i, if i % 2 == 0 { core } else { vault }, tick, i * 3);
            }
        }
        assert_eq!(stream.finish().unwrap(), 1000);
        let streamed = Trace::load(&path).unwrap();
        assert_eq!(streamed, rec.to_trace());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn meta_keeps_last_value() {
        let path = tmp("meta");
        let mut s = StreamSink::create(&path).unwrap();
        s.meta("k", "first");
        s.meta("k", "second");
        s.finish().unwrap();
        let t = Trace::load(&path).unwrap();
        assert_eq!(t.meta_get("k"), Some("second"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unfinished_sink_cleans_its_spill_file() {
        let path = tmp("cleanup");
        let spill = {
            let mut s = StreamSink::create(&path).unwrap();
            let c = s.comp("c");
            let k = s.kind("k");
            s.record(0, c, k, 0);
            s.spill_path.clone()
        };
        assert!(!spill.exists(), "dropped sink must remove its spill file");
        assert!(!path.exists(), "no final file without finish()");
    }

    #[test]
    fn empty_capture_is_a_valid_trace() {
        let path = tmp("empty");
        let s = StreamSink::create(&path).unwrap();
        assert_eq!(s.finish().unwrap(), 0);
        let t = Trace::load(&path).unwrap();
        assert!(t.records.is_empty() && t.comps.is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
