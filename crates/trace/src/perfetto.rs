//! Chrome `trace_event` JSON export, loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! The export maps the simulator onto the trace-event model as one
//! process ("pei-sim") with one thread per component: thread metadata
//! events name each component, and every record becomes a
//! thread-scoped instant event whose timestamp is the simulated cycle
//! (the viewer's microsecond axis therefore reads as cycles). Record
//! payloads and the trace's metadata table travel in `args`, so nothing
//! captured is lost in export.

use crate::recorder::Trace;

/// Escapes a string for inclusion inside a JSON string literal.
fn escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders a trace as a Chrome `trace_event` JSON array.
///
/// One "M" (metadata) event names the process and one names each
/// component thread; each record becomes an "i" (instant) event with
/// `ts` = cycle, `tid` = component id, and the payload in `args`.
/// Trace metadata is attached to the process-name event's `args`.
pub fn chrome_trace_json(t: &Trace) -> String {
    // Rough sizing: ~120 bytes per record row.
    let mut out = String::with_capacity(256 + t.records.len() * 120);
    out.push_str("[\n");

    // Process metadata, carrying the trace's meta table.
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"pei-sim\"",
    );
    for (k, v) in &t.meta {
        out.push_str(",\"");
        escape(k, &mut out);
        out.push_str("\":\"");
        escape(v, &mut out);
        out.push('"');
    }
    out.push_str("}}");

    // One named thread per component; tid is the interned comp id.
    for (tid, name) in t.comps.iter().enumerate() {
        out.push_str(&format!(
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\""
        ));
        escape(name, &mut out);
        out.push_str("\"}}");
    }

    for r in &t.records {
        out.push_str(",\n{\"name\":\"");
        escape(t.kind_name(r.kind), &mut out);
        out.push_str(&format!(
            "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\
             \"args\":{{\"payload\":{}}}}}",
            r.comp.0, r.cycle, r.payload
        ));
    }

    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::sink::TraceSink;

    #[test]
    fn export_names_threads_and_orders_records() {
        let mut rec = Recorder::new();
        rec.meta("spec.workload", "atf");
        let c0 = rec.comp("core0");
        let v = rec.comp("vault1");
        let k = rec.kind("vault.access");
        rec.record(7, c0, k, 1);
        rec.record(9, v, k, 2);
        let json = chrome_trace_json(&rec.to_trace());
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"name\":\"pei-sim\""));
        assert!(json.contains("\"spec.workload\":\"atf\""));
        assert!(json.contains("\"name\":\"core0\""));
        assert!(json.contains("\"name\":\"vault1\""));
        assert!(json.contains("\"ts\":7"));
        assert!(json.contains("\"ts\":9"));
        assert!(json.trim_end().ends_with(']'));
        // Every record row carries its payload.
        assert!(json.contains("\"payload\":1"));
        assert!(json.contains("\"payload\":2"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut rec = Recorder::new();
        rec.meta("note", "a\"b\\c\nd");
        let c = rec.comp("comp\t1");
        let k = rec.kind("k");
        rec.record(1, c, k, 0);
        let json = chrome_trace_json(&rec.to_trace());
        assert!(json.contains("a\\\"b\\\\c\\nd"));
        assert!(json.contains("comp\\t1"));
    }
}
