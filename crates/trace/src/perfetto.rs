//! Chrome `trace_event` JSON export, loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! The export maps the simulator onto the trace-event model as one
//! process ("pei-sim") with one thread per component: thread metadata
//! events name each component, and every record becomes a
//! thread-scoped instant event whose timestamp is the simulated cycle
//! (the viewer's microsecond axis therefore reads as cycles). Record
//! payloads and the trace's metadata table travel in `args`, so nothing
//! captured is lost in export.
//!
//! On top of the instants, PEI request *lifetimes* export as duration
//! ("B"/"E") spans: a span opens at the `pmu.request` record of each
//! request id and closes at its `pmu.host_release` or `pmu.mem_result`
//! record, so in-flight PEIs render as bars rather than dots.
//! Concurrent requests would violate B/E nesting on a single thread,
//! so spans are packed onto synthetic "pei-lane" threads by greedy
//! interval coloring — each lane holds non-overlapping spans only, and
//! the lane count reads as the peak number of in-flight PEIs.

use crate::recorder::Trace;

/// Escapes a string for inclusion inside a JSON string literal.
fn escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// One PEI request lifetime: opened by `pmu.request`, closed by the
/// matching `pmu.host_release` or `pmu.mem_result`.
struct PeiSpan {
    begin: u64,
    end: u64,
    id: u64,
}

/// Extracts PEI request lifetimes from a trace by matching each
/// `pmu.request` record to the first later completion record
/// (`pmu.host_release` or `pmu.mem_result`) with the same id payload.
/// Requests still in flight when the capture ends are dropped.
fn pei_spans(t: &Trace) -> Vec<PeiSpan> {
    let find = |name: &str| {
        t.kinds
            .iter()
            .position(|k| k == name)
            .map(|i| crate::record::KindId(i as u16))
    };
    let (Some(req), Some(rel), Some(mem)) = (
        find("pmu.request"),
        find("pmu.host_release"),
        find("pmu.mem_result"),
    ) else {
        return Vec::new();
    };
    let mut open: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut spans = Vec::new();
    for r in &t.records {
        if r.kind == req {
            open.entry(r.payload).or_insert(r.cycle);
        } else if (r.kind == rel || r.kind == mem) && open.contains_key(&r.payload) {
            let begin = open.remove(&r.payload).expect("checked above");
            spans.push(PeiSpan {
                begin,
                end: r.cycle,
                id: r.payload,
            });
        }
    }
    spans.sort_by_key(|s| (s.begin, s.end, s.id));
    spans
}

/// Assigns each span the lowest-numbered lane free at its begin cycle
/// (greedy interval coloring), so no lane holds overlapping spans.
/// Returns `(lane, span)` pairs plus the number of lanes used.
fn pack_lanes(spans: Vec<PeiSpan>) -> (Vec<(usize, PeiSpan)>, usize) {
    // `lanes[i]` is the end cycle of the last span placed on lane i; a
    // span whose begin is >= that end may reuse the lane (B/E pairs at
    // equal ts stay well-nested because each pair closes before the
    // next opens in emission order).
    let mut lanes: Vec<u64> = Vec::new();
    let mut placed = Vec::with_capacity(spans.len());
    for s in spans {
        let lane = match lanes.iter().position(|&busy_until| s.begin >= busy_until) {
            Some(i) => i,
            None => {
                lanes.push(0);
                lanes.len() - 1
            }
        };
        lanes[lane] = s.end.max(s.begin) + 1;
        placed.push((lane, s));
    }
    let n = lanes.len();
    (placed, n)
}

/// Renders a trace as a Chrome `trace_event` JSON array.
///
/// One "M" (metadata) event names the process and one names each
/// component thread; each record becomes an "i" (instant) event with
/// `ts` = cycle, `tid` = component id, and the payload in `args`.
/// Trace metadata is attached to the process-name event's `args`.
/// PEI request lifetimes additionally export as "B"/"E" duration spans
/// on synthetic `pei-lane<N>` threads (tids after the components).
pub fn chrome_trace_json(t: &Trace) -> String {
    // Rough sizing: ~120 bytes per record row.
    let mut out = String::with_capacity(256 + t.records.len() * 120);
    out.push_str("[\n");

    // Process metadata, carrying the trace's meta table.
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"pei-sim\"",
    );
    for (k, v) in &t.meta {
        out.push_str(",\"");
        escape(k, &mut out);
        out.push_str("\":\"");
        escape(v, &mut out);
        out.push('"');
    }
    out.push_str("}}");

    // One named thread per component; tid is the interned comp id.
    for (tid, name) in t.comps.iter().enumerate() {
        out.push_str(&format!(
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\""
        ));
        escape(name, &mut out);
        out.push_str("\"}}");
    }

    // PEI request lifetimes as B/E spans on synthetic lanes, named and
    // numbered after the component threads.
    let (placed, n_lanes) = pack_lanes(pei_spans(t));
    let lane_base = t.comps.len();
    for lane in 0..n_lanes {
        out.push_str(&format!(
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"pei-lane{lane}\"}}}}",
            lane_base + lane
        ));
    }
    for (lane, s) in &placed {
        out.push_str(&format!(
            ",\n{{\"name\":\"pei\",\"ph\":\"B\",\"pid\":1,\"tid\":{tid},\"ts\":{},\
             \"args\":{{\"id\":{}}}}},\n\
             {{\"name\":\"pei\",\"ph\":\"E\",\"pid\":1,\"tid\":{tid},\"ts\":{}}}",
            s.begin,
            s.id,
            s.end,
            tid = lane_base + lane,
        ));
    }

    for r in &t.records {
        out.push_str(",\n{\"name\":\"");
        escape(t.kind_name(r.kind), &mut out);
        out.push_str(&format!(
            "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\
             \"args\":{{\"payload\":{}}}}}",
            r.comp.0, r.cycle, r.payload
        ));
    }

    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::sink::TraceSink;

    #[test]
    fn export_names_threads_and_orders_records() {
        let mut rec = Recorder::new();
        rec.meta("spec.workload", "atf");
        let c0 = rec.comp("core0");
        let v = rec.comp("vault1");
        let k = rec.kind("vault.access");
        rec.record(7, c0, k, 1);
        rec.record(9, v, k, 2);
        let json = chrome_trace_json(&rec.to_trace());
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"name\":\"pei-sim\""));
        assert!(json.contains("\"spec.workload\":\"atf\""));
        assert!(json.contains("\"name\":\"core0\""));
        assert!(json.contains("\"name\":\"vault1\""));
        assert!(json.contains("\"ts\":7"));
        assert!(json.contains("\"ts\":9"));
        assert!(json.trim_end().ends_with(']'));
        // Every record row carries its payload.
        assert!(json.contains("\"payload\":1"));
        assert!(json.contains("\"payload\":2"));
    }

    #[test]
    fn pei_lifetimes_export_as_nested_be_spans() {
        let mut rec = Recorder::new();
        let pmu = rec.comp("pmu");
        let req = rec.kind("pmu.request");
        let rel = rec.kind("pmu.host_release");
        let mem = rec.kind("pmu.mem_result");
        // Two overlapping requests (ids 1 and 2) and one later request
        // that can reuse a freed lane.
        rec.record(5, pmu, req, 1);
        rec.record(6, pmu, req, 2);
        rec.record(9, pmu, mem, 1);
        rec.record(12, pmu, rel, 2);
        rec.record(20, pmu, req, 3);
        rec.record(25, pmu, mem, 3);
        let t = rec.to_trace();
        let json = chrome_trace_json(&t);
        // Overlap forces two lanes; the third span reuses lane 0.
        assert!(json.contains("\"name\":\"pei-lane0\""));
        assert!(json.contains("\"name\":\"pei-lane1\""));
        assert!(!json.contains("\"name\":\"pei-lane2\""));
        // Lane tids start after the component table.
        let lane0 = t.comps.len();
        assert!(json.contains(&format!("\"ph\":\"B\",\"pid\":1,\"tid\":{lane0},\"ts\":5")));
        assert!(json.contains(&format!("\"ph\":\"E\",\"pid\":1,\"tid\":{lane0},\"ts\":9")));
        assert!(json.contains(&format!(
            "\"ph\":\"B\",\"pid\":1,\"tid\":{},\"ts\":6",
            lane0 + 1
        )));
        assert!(json.contains(&format!("\"ph\":\"B\",\"pid\":1,\"tid\":{lane0},\"ts\":20")));
        assert!(json.contains("\"args\":{\"id\":3}"));
    }

    #[test]
    fn unmatched_requests_produce_no_spans() {
        let mut rec = Recorder::new();
        let pmu = rec.comp("pmu");
        let req = rec.kind("pmu.request");
        rec.record(5, pmu, req, 1);
        let json = chrome_trace_json(&rec.to_trace());
        assert!(!json.contains("\"ph\":\"B\""));
        assert!(!json.contains("pei-lane"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut rec = Recorder::new();
        rec.meta("note", "a\"b\\c\nd");
        let c = rec.comp("comp\t1");
        let k = rec.kind("k");
        rec.record(1, c, k, 0);
        let json = chrome_trace_json(&rec.to_trace());
        assert!(json.contains("a\\\"b\\\\c\\nd"));
        assert!(json.contains("comp\\t1"));
    }
}
