//! Cycle-accurate event tracing for the PEI simulator.
//!
//! The simulator's figure harness reports end-of-run aggregates; this
//! crate captures the *timeline* behind them: one compact record per
//! simulated event — (cycle, component, event kind, payload) — with
//! string-interned component and kind tables so the hot path never
//! touches a `String`.
//!
//! The pieces:
//!
//! * [`TraceSink`] — the capture interface `pei-system` drives. It is
//!   object-safe and `Send`, so a boxed sink travels with a `System`
//!   onto worker threads.
//! * [`Recorder`] — the standard sink: an in-memory, optionally
//!   ring-bounded record buffer that serializes to the `.petr` binary
//!   format ([`mod@format`]).
//! * [`Trace`] — a loaded `.petr` file, with resolved name tables.
//! * [`diff`](diff::diff) — first-divergent-record comparison between
//!   two traces: the regression gate that localizes a timing change to
//!   a specific component and cycle.
//! * [`perfetto`] — Chrome `trace_event` JSON export, loadable in
//!   Perfetto / `chrome://tracing`.
//!
//! Replay (re-running a capture from the machine/workload description
//! embedded in its meta table and checking stats byte-identity) lives
//! in `pei-bench::tracecap`, which owns the experiment vocabulary; this
//! crate is deliberately ignorant of the simulated architecture.
//!
//! # Examples
//!
//! ```
//! use pei_trace::{Recorder, TraceSink};
//!
//! let mut rec = Recorder::new();
//! let vault = rec.comp("vault0");
//! let access = rec.kind("vault.access");
//! rec.record(100, vault, access, 0x40);
//! rec.record(105, vault, access, 0x80);
//! let trace = rec.to_trace();
//! assert_eq!(trace.records.len(), 2);
//! assert_eq!(trace.comps[trace.records[0].comp.0 as usize], "vault0");
//! assert!(pei_trace::diff::diff(&trace, &trace).is_none());
//! ```
//!
//! This crate's place in the workspace is mapped in DESIGN.md §5; the
//! binary record layout and the sink contract are specified in
//! DESIGN.md §8.

#![warn(missing_docs)]

pub mod diff;
pub mod format;
pub mod perfetto;
pub mod record;
pub mod recorder;
pub mod sink;
pub mod stream;

pub use diff::{diff, Divergence, Resolved};
pub use format::TraceError;
pub use record::{CompId, KindId, Record};
pub use recorder::{Recorder, Trace};
pub use sink::{NullSink, TraceSink};
pub use stream::StreamSink;
