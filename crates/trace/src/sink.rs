//! The capture interface driven by the simulator.

use crate::record::{CompId, KindId};

/// Where trace records go.
///
/// `pei-system` holds an `Option<Box<dyn TraceSink>>`; when it is
/// `None` the per-event cost is a single branch (the zero-cost-when-off
/// guarantee, DESIGN.md §8). Component and kind names are interned
/// *once* when the tracer is attached — [`record`](TraceSink::record)
/// takes only pre-interned ids, so the hot path never hashes a string.
///
/// Interning is required to be stable: calling [`comp`](TraceSink::comp)
/// (or [`kind`](TraceSink::kind)) twice with the same name returns the
/// same id.
pub trait TraceSink: Send {
    /// Interns a component name, returning its stable id.
    fn comp(&mut self, name: &str) -> CompId;

    /// Interns an event-kind name, returning its stable id.
    fn kind(&mut self, name: &str) -> KindId;

    /// Captures one event. Hot path.
    fn record(&mut self, cycle: u64, comp: CompId, kind: KindId, payload: u64);

    /// Attaches a key → value metadata entry (run description, stats
    /// digest). Order is preserved; duplicate keys keep the last value.
    fn meta(&mut self, key: &str, value: &str);

    /// Serializes the sink's captured trace to `.petr` bytes, if it
    /// retains one. Sinks that stream or discard records (like
    /// [`NullSink`]) return `None`; [`crate::Recorder`] returns its
    /// buffer. This is how callers holding only the boxed sink a
    /// simulator hands back recover the capture without downcasting.
    fn to_petr(&self) -> Option<Vec<u8>> {
        None
    }
}

/// A sink that interns names and counts records but stores nothing:
/// the measurement baseline for the capture hooks themselves (hook
/// dispatch + virtual call, no buffer traffic).
#[derive(Debug, Default)]
pub struct NullSink {
    comps: Vec<String>,
    kinds: Vec<String>,
    records: u64,
}

impl NullSink {
    /// A fresh null sink.
    pub fn new() -> Self {
        NullSink::default()
    }

    /// Number of records that were offered to this sink.
    pub fn records(&self) -> u64 {
        self.records
    }
}

fn intern(table: &mut Vec<String>, name: &str) -> u16 {
    if let Some(i) = table.iter().position(|n| n == name) {
        return i as u16;
    }
    assert!(table.len() < u16::MAX as usize, "interned-table overflow");
    table.push(name.to_string());
    (table.len() - 1) as u16
}

impl TraceSink for NullSink {
    fn comp(&mut self, name: &str) -> CompId {
        CompId(intern(&mut self.comps, name))
    }

    fn kind(&mut self, name: &str) -> KindId {
        KindId(intern(&mut self.kinds, name))
    }

    fn record(&mut self, _cycle: u64, _comp: CompId, _kind: KindId, _payload: u64) {
        self.records += 1;
    }

    fn meta(&mut self, _key: &str, _value: &str) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_counts_and_interns_stably() {
        let mut s = NullSink::new();
        let a = s.comp("core0");
        let b = s.comp("core1");
        assert_ne!(a, b);
        assert_eq!(s.comp("core0"), a);
        let tick = s.kind("tick");
        assert_eq!(s.kind("tick"), tick);
        s.record(1, a, tick, 0);
        s.record(2, b, tick, 0);
        assert_eq!(s.records(), 2);
    }
}
