//! The `.petr` binary file format (PEI TRace).
//!
//! Everything is little-endian. Layout (DESIGN.md §8):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"PETR"
//! 4       2     version (currently 1)
//! 6       4     meta entry count
//!               per entry: key len u32, key bytes, value len u32, value bytes
//!         4     component table count; per entry: len u32, UTF-8 bytes
//!         4     kind table count; per entry: len u32, UTF-8 bytes
//!         8     dropped record count (ring evictions before the first record)
//!         8     record count
//!               records: 20 bytes each (cycle u64, comp u16, kind u16,
//!               payload u64)
//! ```
//!
//! String tables are written in interning order, so a [`CompId`] /
//! [`KindId`] in a record indexes the table directly.
//!
//! [`CompId`]: crate::record::CompId
//! [`KindId`]: crate::record::KindId

use crate::record::{Record, RECORD_BYTES};
use crate::recorder::Trace;

/// The 4-byte magic at the start of every `.petr` file.
pub const MAGIC: &[u8; 4] = b"PETR";

/// Format version written by this crate.
pub const VERSION: u16 = 1;

/// Why a `.petr` image failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Underlying file I/O failed.
    Io(String),
    /// The magic bytes are not `PETR`.
    BadMagic,
    /// The file's version is newer than this reader.
    BadVersion(u16),
    /// The image ended before the structure it declared.
    Truncated {
        /// Byte offset at which more data was expected.
        offset: usize,
    },
    /// A table string is not valid UTF-8.
    BadString {
        /// Byte offset of the offending string.
        offset: usize,
    },
    /// A record references a table index the file does not define.
    BadIndex {
        /// Index of the offending record.
        record: u64,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic => write!(f, "not a .petr file (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported .petr version {v}"),
            TraceError::Truncated { offset } => write!(f, "truncated .petr file at byte {offset}"),
            TraceError::BadString { offset } => write!(f, "non-UTF-8 string at byte {offset}"),
            TraceError::BadIndex { record } => {
                write!(f, "record {record} references an undefined table entry")
            }
        }
    }
}

impl std::error::Error for TraceError {}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Serializes a [`Trace`] into its `.petr` byte image.
pub fn encode(t: &Trace) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + t.records.len() * RECORD_BYTES);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(t.meta.len() as u32).to_le_bytes());
    for (k, v) in &t.meta {
        put_str(&mut out, k);
        put_str(&mut out, v);
    }
    for table in [&t.comps, &t.kinds] {
        out.extend_from_slice(&(table.len() as u32).to_le_bytes());
        for name in table {
            put_str(&mut out, name);
        }
    }
    out.extend_from_slice(&t.dropped.to_le_bytes());
    out.extend_from_slice(&(t.records.len() as u64).to_le_bytes());
    for r in &t.records {
        r.encode(&mut out);
    }
    out
}

/// Cursor over a byte image with truncation tracking.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        if self.pos + n > self.bytes.len() {
            return Err(TraceError::Truncated { offset: self.pos });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, TraceError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, TraceError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, TraceError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, TraceError> {
        let len = self.u32()? as usize;
        let offset = self.pos;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| TraceError::BadString { offset })
    }
}

/// Parses a `.petr` byte image into a [`Trace`].
///
/// # Errors
///
/// See [`TraceError`]; record table indexes are validated against the
/// declared tables.
pub fn decode(bytes: &[u8]) -> Result<Trace, TraceError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(TraceError::BadVersion(version));
    }
    let meta_n = r.u32()? as usize;
    let mut meta = Vec::with_capacity(meta_n);
    for _ in 0..meta_n {
        let k = r.string()?;
        let v = r.string()?;
        meta.push((k, v));
    }
    let mut tables: [Vec<String>; 2] = [Vec::new(), Vec::new()];
    for table in &mut tables {
        let n = r.u32()? as usize;
        table.reserve(n);
        for _ in 0..n {
            table.push(r.string()?);
        }
    }
    let [comps, kinds] = tables;
    let dropped = r.u64()?;
    let count = r.u64()?;
    let mut records = Vec::with_capacity(count.min(1 << 24) as usize);
    for i in 0..count {
        let raw: &[u8; RECORD_BYTES] = r.take(RECORD_BYTES)?.try_into().unwrap();
        let rec = Record::decode(raw);
        if rec.comp.0 as usize >= comps.len() || rec.kind.0 as usize >= kinds.len() {
            return Err(TraceError::BadIndex { record: i });
        }
        records.push(rec);
    }
    Ok(Trace {
        meta,
        comps,
        kinds,
        dropped,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CompId, KindId};

    fn sample() -> Trace {
        Trace {
            meta: vec![("spec.workload".into(), "atf".into())],
            comps: vec!["core0".into(), "vault3".into()],
            kinds: vec!["tick".into(), "vault.access".into()],
            dropped: 5,
            records: vec![
                Record {
                    cycle: 10,
                    comp: CompId(0),
                    kind: KindId(0),
                    payload: 1,
                },
                Record {
                    cycle: 11,
                    comp: CompId(1),
                    kind: KindId(1),
                    payload: 0xffff_ffff_ffff,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        assert_eq!(decode(&encode(&t)).unwrap(), t);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut b = encode(&sample());
        b[0] = b'X';
        assert_eq!(decode(&b), Err(TraceError::BadMagic));
    }

    #[test]
    fn future_version_rejected() {
        let mut b = encode(&sample());
        b[4] = 99;
        assert_eq!(decode(&b), Err(TraceError::BadVersion(99)));
    }

    #[test]
    fn truncation_reports_offset() {
        let b = encode(&sample());
        let cut = &b[..b.len() - 3];
        match decode(cut) {
            Err(TraceError::Truncated { offset }) => assert!(offset > 0),
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_record_index_rejected() {
        let mut t = sample();
        t.records[1].comp = CompId(9);
        assert_eq!(decode(&encode(&t)), Err(TraceError::BadIndex { record: 1 }));
    }
}
