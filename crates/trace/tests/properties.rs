//! Property-based tests of the trace format: arbitrary captures
//! (including ring wraparound and interned-table growth) must survive a
//! `.petr` encode/decode round trip byte-for-byte, and the diff must be
//! reflexively clean.

use pei_trace::{diff, Divergence, Recorder, Trace, TraceSink};
use proptest::prelude::*;

/// Builds a capture from generated raw material: `events` drive both
/// interning (names derived from small indices, so tables grow and
/// repeat) and recording; `ring` optionally bounds the buffer.
fn capture(events: &[(u64, u8, u8, u64)], ring: Option<usize>, meta: &[(String, String)]) -> Trace {
    let mut rec = match ring {
        Some(cap) => Recorder::with_capacity(cap),
        None => Recorder::new(),
    };
    for (k, v) in meta {
        rec.meta(k, v);
    }
    for &(cycle, comp, kind, payload) in events {
        let c = rec.comp(&format!("comp{}", comp % 13));
        let k = rec.kind(&format!("kind.{}", kind % 7));
        rec.record(cycle, c, k, payload);
    }
    rec.to_trace()
}

proptest! {
    /// Any capture — unbounded or ring-wrapped — round-trips through
    /// the binary format exactly, and re-encoding is byte-stable.
    #[test]
    fn petr_roundtrip(
        events in proptest::collection::vec(
            (any::<u64>(), any::<u8>(), any::<u8>(), any::<u64>()),
            0..200,
        ),
        ring in prop_oneof![
            Just(None),
            (1usize..50).prop_map(Some),
        ],
        metas in proptest::collection::vec((0u8..5, 0u64..1000), 0..8),
    ) {
        let meta: Vec<(String, String)> = metas
            .iter()
            .map(|&(k, v)| (format!("key{k}"), format!("value {v}\nline2")))
            .collect();
        let t = capture(&events, ring, &meta);
        if let Some(cap) = ring {
            prop_assert!(t.records.len() <= cap);
            prop_assert_eq!(
                t.dropped as usize,
                events.len().saturating_sub(cap),
            );
        } else {
            prop_assert_eq!(t.records.len(), events.len());
            prop_assert_eq!(t.dropped, 0);
        }
        let bytes = t.to_bytes();
        let back = Trace::from_bytes(&bytes).expect("decode of own encoding");
        prop_assert_eq!(&back, &t);
        prop_assert_eq!(back.to_bytes(), bytes, "re-encode not byte-stable");
    }

    /// Ring captures keep exactly the newest `cap` records, in order.
    #[test]
    fn ring_keeps_newest(
        n in 0usize..300,
        cap in 1usize..40,
    ) {
        let events: Vec<(u64, u8, u8, u64)> =
            (0..n as u64).map(|i| (i, (i % 3) as u8, 0, i * 10)).collect();
        let t = capture(&events, Some(cap), &[]);
        let expect: Vec<u64> = (n.saturating_sub(cap) as u64..n as u64).collect();
        let got: Vec<u64> = t.records.iter().map(|r| r.cycle).collect();
        prop_assert_eq!(got, expect);
    }

    /// diff() is reflexive on any capture, and detects a single flipped
    /// payload at exactly the right index.
    #[test]
    fn diff_localizes_mutation(
        events in proptest::collection::vec(
            (0u64..1_000, 0u8..4, 0u8..4, 0u64..100),
            1..100,
        ),
        victim_seed in any::<u64>(),
    ) {
        let t = capture(&events, None, &[]);
        prop_assert_eq!(diff(&t, &t), None);

        let victim = (victim_seed % events.len() as u64) as usize;
        let mut mutated = t.clone();
        mutated.records[victim].payload ^= 0x8000_0000_0000_0000;
        match diff(&t, &mutated) {
            Some(Divergence::Record { index, left, right }) => {
                prop_assert_eq!(index as usize, victim);
                prop_assert_ne!(left.payload, right.payload);
            }
            other => prop_assert!(false, "expected record divergence, got {:?}", other),
        }
    }

    /// Truncating an encoded trace anywhere inside the structure never
    /// panics and never yields a successful parse claiming full length.
    #[test]
    fn truncation_is_detected(
        events in proptest::collection::vec(
            (any::<u64>(), any::<u8>(), any::<u8>(), any::<u64>()),
            1..50,
        ),
        frac in 0u64..1000,
    ) {
        let t = capture(&events, None, &[("k".into(), "v".into())]);
        let bytes = t.to_bytes();
        let cut = (frac as usize * (bytes.len() - 1)) / 1000;
        if let Ok(parsed) = Trace::from_bytes(&bytes[..cut]) {
            prop_assert!(
                false,
                "truncated parse succeeded with {} records",
                parsed.records.len()
            );
        }
    }
}
