//! Property-based tests of the workload generators: structural validity
//! of generated inputs and conservation laws of the emitted traces.

use pei_cpu::trace::{Op, PhasedTrace};
use pei_workloads::graph::Graph;
use pei_workloads::graph_kernels::Atf;
use pei_workloads::{InputSize, Workload, WorkloadParams};
use proptest::prelude::*;

fn drain_count(trace: &mut dyn PhasedTrace) -> (u64, u64, u64) {
    // (phases, ops, peis)
    let (mut phases, mut ops, mut peis) = (0, 0, 0);
    while let Some(p) = trace.next_phase() {
        phases += 1;
        assert!(phases < 200_000, "runaway generation");
        for t in &p {
            ops += t.len() as u64;
            peis += t.iter().filter(|o| matches!(o, Op::Pei { .. })).count() as u64;
        }
    }
    (phases, ops, peis)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any power-law graph is a structurally valid CSR.
    #[test]
    fn graph_csr_always_valid(n in 1usize..2000, deg in 1usize..12, seed in any::<u64>()) {
        let g = Graph::power_law(n, deg, seed);
        prop_assert_eq!(g.xadj.len(), g.n + 1);
        prop_assert_eq!(g.xadj[0], 0);
        prop_assert!(g.xadj.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*g.xadj.last().unwrap() as usize, g.edges());
        prop_assert!(g.adj.iter().all(|&d| (d as usize) < g.n));
        // succ() covers exactly the edge list.
        let total: usize = (0..g.n).map(|v| g.succ(v).len()).sum();
        prop_assert_eq!(total, g.edges());
    }

    /// ATF emits exactly one increment PEI per teen out-edge, regardless
    /// of thread count and chunking.
    #[test]
    fn atf_pei_conservation(n in 50usize..500, threads in 1usize..8, seed in any::<u64>()) {
        let mut params = WorkloadParams::quick_test(threads);
        params.seed = seed;
        let g = Graph::power_law(n, 5, seed);
        let (mut atf, _store) = Atf::new(g, &params);
        let (_, _, peis) = drain_count(&mut atf);
        let expect: u64 = atf.reference().iter().sum();
        prop_assert_eq!(peis, expect);
    }

    /// Every workload's generation terminates under any budget, and a
    /// larger budget never yields fewer PEIs.
    #[test]
    fn budget_monotone(widx in 0usize..10, budget in 64u64..4000) {
        let w = Workload::ALL[widx];
        let run = |b: u64| {
            let params = WorkloadParams {
                pei_budget: b,
                ..WorkloadParams::quick_test(2)
            };
            let (_store, mut trace) = w.build(InputSize::Small, &params);
            drain_count(trace.as_mut()).2
        };
        let small = run(budget);
        let big = run(budget * 4);
        prop_assert!(big >= small, "{w}: budget {budget}: {small} vs {big}");
    }

    /// Trace generation is deterministic in the seed.
    #[test]
    fn generation_deterministic(widx in 0usize..10, seed in any::<u64>()) {
        let w = Workload::ALL[widx];
        let run = || {
            let params = WorkloadParams {
                pei_budget: 500,
                seed,
                ..WorkloadParams::quick_test(2)
            };
            let (_store, mut trace) = w.build(InputSize::Small, &params);
            drain_count(trace.as_mut())
        };
        prop_assert_eq!(run(), run());
    }
}
